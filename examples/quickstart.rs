//! Quickstart: sort, compact and select over an outsourced array obliviously,
//! count the I/Os the honest-but-curious server observes, then serve online
//! point accesses through the hierarchical ORAM built from those primitives.
//!
//! Run with: `cargo run --release --example quickstart`

use odo::prelude::*;

fn main() {
    // The model: N elements outsourced to Bob in blocks of B, Alice owns a
    // private cache of M words.
    let (n, b, m) = (1 << 14, 64, 1 << 10);
    let cfg = Config::new(n, b, m);
    cfg.validate().expect("valid model parameters");

    // Bob's store, with the adversary's trace captured.
    let mut mem = ExtMem::with_trace(b);
    let items: Vec<Element> = (0..n)
        .map(|i| Element::keyed((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40, i))
        .collect();
    let h = mem.alloc_array_from_elements(&items);

    // The paper's Lemma 2 sort: O((N/B)(1 + log²(N/M))) I/Os.
    let report = external_oblivious_sort(&mut mem, &h, m, SortOrder::Ascending);

    let sorted = mem.snapshot_elements(&h);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "output is sorted");

    println!("sorted N={n} elements (B={b}, M={m})");
    println!(
        "I/Os: {} reads + {} writes = {} total",
        report.io.reads,
        report.io.writes,
        report.io.total()
    );
    println!(
        "structure: {} in-cache presort regions of {} elems, {} external levels, {} finishing passes",
        report.presort_regions, report.region_elems, report.external_levels, report.finish_passes
    );
    let trace = mem.take_trace().expect("trace was enabled");
    println!(
        "adversary saw {} block accesses — and would see the identical sequence for ANY input of this shape",
        trace.len()
    );

    // The other sort engine: the randomized bucket oblivious sort drops the
    // squared log for the external-memory optimum O((N/B)·log_{M/B}(N/B)) —
    // the engine of choice once N ≫ M. Trade-off: its trace is a
    // deterministic function of (shape, seed, data) — reruns replay it byte
    // for byte, but it is not shape-only like the Lemma 2 trace above. See
    // DESIGN.md "Sorter strategy" for when to pick which.
    let mut bmem = ExtMem::new(b);
    let bh = bmem.alloc_array_from_elements(&items);
    let breport = sort_with(
        &mut bmem,
        &bh,
        m,
        SortOrder::Ascending,
        &OblivSorter::bucket(0xB0C_C1A0),
    );
    assert_eq!(bmem.snapshot_elements(&bh), sorted, "engines agree");
    println!(
        "bucket engine: {} I/Os vs Lemma 2 {} at N/M = {} — same sorted output",
        breport.io.total(),
        report.io.total(),
        n / m
    );

    // --- §3 tight order-preserving compaction, over an ENCRYPTED store ---
    // Delete ~half the records, then compact the survivors to a prefix in
    // O((N/B)(1 + log(N/M))) I/Os — one log factor, cheaper than sorting.
    // The identical algorithm runs over the re-encrypting store (fresh
    // ciphertext on every block write) with zero extra I/Os.
    let cells: Vec<Cell> = (0..n)
        .map(|i| (i % 5 != 0).then(|| Element::keyed(i as u64, i)))
        .collect();
    let survivors = cells.iter().filter(|c| c.is_some()).count();

    let mut store = EncryptedStore::new(b, 0xA11CE);
    let handle = store.alloc_array_from_cells(&cells);
    let report = compact(&mut store, &handle, m);

    assert_eq!(report.occupied, survivors);
    println!(
        "compacted {survivors}/{n} occupied cells to a prefix (order preserved) on the encrypted store"
    );
    println!(
        "I/Os: {} reads + {} writes = {} total — {} levels in cache (window {}), {} external block-pair levels",
        report.io.reads,
        report.io.writes,
        report.io.total(),
        report.in_cache_levels,
        report.window_elems,
        report.external_levels
    );

    // The network also runs in reverse: route the prefix back to the
    // original occupied positions, restoring the array exactly.
    let targets: Vec<usize> = (0..n).filter(|i| i % 5 != 0).collect();
    expand(&mut store, &handle, &targets, m);
    assert_eq!(store.snapshot_cells(&handle), cells);
    println!("expansion (the network in reverse) restored the original layout");

    // --- §4 selection: the median, without the server learning it ---
    // select_kth prunes candidates with weighted splitters + §3 compaction
    // and finishes with the Lemma 2 sort: O((N/B)(1 + log(N/M))) I/Os — one
    // log factor, cheaper than sorting — and the trace hides the data AND
    // the requested rank k. Runs over the same encrypted store; the input
    // array is left untouched.
    let survivors_arr: Vec<Cell> = cells.iter().flatten().map(|e| Some(*e)).collect();
    let sel_handle = store.alloc_array_from_cells(&survivors_arr);
    let k = survivors / 2;
    let (median, report) = select_kth(&mut store, &sel_handle, m, k);
    println!(
        "selected the median (rank {k} of {survivors}) on the encrypted store: key {}",
        median.key
    );
    println!(
        "I/Os: {} reads + {} writes = {} total — {} pruning rounds, final window {} elems",
        report.io.reads,
        report.io.writes,
        report.io.total(),
        report.rounds,
        report.final_window
    );
    println!("the server saw the SAME trace it would for any dataset and any rank k of this shape");

    // Several order statistics at once: one oblivious sort of a working
    // copy serves any number of quantiles.
    let (qs, qio) = quantiles(
        &mut store,
        &sel_handle,
        m,
        &[
            0,
            survivors / 4,
            survivors / 2,
            3 * survivors / 4,
            survivors - 1,
        ],
    );
    println!(
        "quantiles (min, q1, median, q3, max) = {:?} in {} I/Os",
        qs.iter().map(|e| e.key).collect::<Vec<_>>(),
        qio.total()
    );
    assert_eq!(qs[2], median, "the quantile sweep agrees with select_kth");

    // --- tamper detection: the server is UNTRUSTED, not merely curious ---
    // Wrap the encrypted store in a deterministic fault injector (standing in
    // for a malicious server) and an authenticated store that MACs every
    // block with its address and a client-tracked version. A corrupting
    // server now yields a typed error — never silently wrong data.
    install_quiet_abort_hook(); // tampered runs abort internally via a caught panic
    let tamper_n = n;
    let enc = EncryptedStore::new(b, 0xA11CE);
    let faulty = FaultyStore::new(enc, 42, FaultSpec::none());
    let mut auth = AuthenticatedStore::new(faulty, 0x0FEE_D4AC);
    let data: Vec<Cell> = (0..tamper_n)
        .map(|i| Some(Element::keyed((i as u64).wrapping_mul(0xDEF1) >> 4, i)))
        .collect();
    let th = BlockStore::alloc_array(&mut auth, tamper_n);
    auth.try_store_span(&th, 0, &data).expect("honest populate");
    auth.flush_macs().expect("honest flush");

    // Bob starts flipping bits in ~0.5% of the blocks he serves.
    auth.inner_mut().set_spec(FaultSpec {
        corrupt_read_ppm: 5_000,
        ..FaultSpec::none()
    });
    match try_sort(
        &mut auth,
        &th,
        m,
        SortOrder::Ascending,
        RetryPolicy::default(),
    ) {
        Err(OdoError::Store(StoreError::Corrupted { addr })) => {
            println!("tampering server: sort ABORTED — block {addr} failed authentication");
        }
        other => panic!("a corrupting server must be detected, got {other:?}"),
    }

    // A merely flaky server (transient read failures, ~2% of ops) is ridden
    // out by the data-independent retry schedule to the exact correct result.
    auth.inner_mut().set_spec(FaultSpec {
        transient_read_ppm: 20_000,
        ..FaultSpec::none()
    });
    let (_, retry) = try_sort(
        &mut auth,
        &th,
        m,
        SortOrder::Ascending,
        RetryPolicy::default(),
    )
    .expect("transient faults are survivable");
    auth.inner_mut().set_spec(FaultSpec::none());
    let recovered = auth
        .try_load_span(&th, 0, tamper_n)
        .expect("verified read-back");
    assert!(
        recovered.windows(2).all(|w| w[0].unwrap() <= w[1].unwrap()),
        "sorted despite the flaky server"
    );
    println!(
        "flaky server: sort SUCCEEDED after {} retries ({} backoff units) — output verified",
        retry.retries, retry.backoff_units
    );

    // --- wall clock: the same sort against real encrypted files, timed ---
    // Everything above ran against the in-memory simulator, which *counts*
    // I/Os. `FileStore` is the backend that actually pays for them: one
    // preallocated file, one pread/pwrite per block. Stacking
    // `EncryptedStore` on top re-encrypts every block write, and wrapping
    // the pair in `PrefetchingStore` turns the sort's shape-derived block
    // hints into coalesced, decrypt-ahead read spans on worker threads and
    // batched (keystream-kernel) write-behind spans — a latency optimization
    // only; the logical access pattern the server observes is unchanged.
    let ecells: Vec<Cell> = items.iter().map(|e| Some(*e)).collect();
    let mut efile =
        EncryptedStore::with_backing(FileStore::temp(b).expect("temp-backed block file"), 0x50F8);
    let fh = efile.alloc_array_from_cells(&ecells);
    let t = std::time::Instant::now();
    let freport = sort_with(
        &mut efile,
        &fh,
        m,
        SortOrder::Ascending,
        &OblivSorter::bucket(0xB0C_C1A0),
    );
    let plain = t.elapsed();
    let fsorted: Vec<Element> = efile.snapshot_cells(&fh).into_iter().flatten().collect();
    assert_eq!(fsorted, sorted, "encrypted file backend agrees");

    let mut pf = PrefetchingStore::new(EncryptedStore::with_backing(
        FileStore::temp(b).expect("temp-backed block file"),
        0x50F8,
    ));
    let ph = pf.inner_mut().alloc_array_from_cells(&ecells);
    let t = std::time::Instant::now();
    let preport = sort_with(
        &mut pf,
        &ph,
        m,
        SortOrder::Ascending,
        &OblivSorter::bucket(0xB0C_C1A0),
    );
    pf.flush_writes().expect("write-behind flush");
    let prefetched = t.elapsed();
    let psorted: Vec<Element> = pf
        .inner()
        .snapshot_cells(&ph)
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(psorted, sorted, "decrypt-ahead agrees");
    assert_eq!(freport.io, preport.io, "read-ahead never changes the I/Os");
    println!(
        "encrypted file-backed bucket sort: {} I/Os in {:.1} ms plain, {:.1} ms with decrypt-ahead ({:?})",
        freport.io.total(),
        plain.as_secs_f64() * 1e3,
        prefetched.as_secs_f64() * 1e3,
        pf.prefetch_stats()
    );

    // --- hierarchical ORAM: online point access from the batch primitives ---
    // Everything above is batch. The ORAM layer turns the same parts into an
    // online read(addr)/write(addr, value) API: a geometric hierarchy of
    // epoch-salted hash tables, one dummy-padded bucket probe per occupied
    // level on EVERY access (hit or miss, read or write — indistinguishable),
    // and amortized rebuilds that are nothing but sort + compact pipelines.
    // Amortized cost: O(log² n) I/Os per access, gated in `bench oram`.
    let oram_n = 1u64 << 10;
    let mut omem = ExtMem::new(b);
    let ocfg = OramConfig::new(64, 1 << 10, 0x04A7_0B5E);
    let mut oram = Oram::new(&mut omem, oram_n, &ocfg);
    omem.enable_trace();
    let before = omem.io_stats();
    for a in 0..oram_n {
        oram.write(&mut omem, a, a * 3 + 1);
    }
    for a in 0..oram_n {
        assert_eq!(oram.read(&mut omem, a), a * 3 + 1, "ORAM round-trips");
    }
    let oio = omem.io_stats() - before;
    let otrace = omem.take_trace().expect("trace was enabled");
    println!(
        "ORAM: {} point accesses over {} levels in {} I/Os — {:.1} amortized per access, {} rebuilds, stash {}",
        2 * oram_n,
        oram.level_count(),
        oio.total(),
        oio.total() as f64 / (2 * oram_n) as f64,
        oram.flushes(),
        oram.stash_len()
    );
    println!(
        "the server saw {} block accesses — the identical sequence for ANY equal-length request stream",
        otrace.len()
    );
}
