//! Seeded-interleaving stress battery for the prefetch pool and the shared
//! block arena. `loom` is not available in this workspace, so the harness
//! shakes interleavings the pedestrian way: many seeded operation sequences
//! against pool geometries chosen to maximize contention (one starved
//! worker, several racing workers, a one-slot ready set), with correctness
//! checked against an in-memory mirror after every load and at the end.

use std::sync::Arc;

use extmem::element::Cell;
use extmem::util::hash64;
use extmem::{Block, BlockArena, BlockStore, Element, FileStore, PrefetchConfig, PrefetchingStore};

const B: usize = 8;
const BLOCKS: usize = 64;

fn mk_store() -> (PrefetchingStore<FileStore>, extmem::ArrayHandle, Vec<Cell>) {
    let mut fs = FileStore::temp(B).expect("temp store");
    let cells: Vec<Cell> = (0..BLOCKS * B)
        .map(|i| Some(Element::keyed(i as u64, i)))
        .collect();
    let h = fs.alloc_array_from_cells(&cells);
    (PrefetchingStore::new(fs), h, cells)
}

/// One seeded session: a pseudo-random interleaving of hints, loads and
/// stores, with every load checked against the mirror immediately.
fn stress_session(seed: u64, cfg: PrefetchConfig, ops: usize) {
    let mut fs = FileStore::temp(B).expect("temp store");
    let mut mirror: Vec<Cell> = (0..BLOCKS * B)
        .map(|i| Some(Element::keyed(hash64(i as u64, seed), i)))
        .collect();
    let h = fs.alloc_array_from_cells(&mirror);
    let mut ps = PrefetchingStore::with_config(fs, cfg);

    for op in 0..ops {
        let r = hash64(op as u64, seed ^ 0x5EED);
        let beta = (r as usize >> 8) % BLOCKS;
        match r % 10 {
            // Hint a random window of upcoming blocks (dups on purpose).
            0..=2 => {
                let w = 1 + (r as usize >> 20) % 8;
                let schedule: Vec<usize> = (0..w).map(|j| (beta + j) % BLOCKS).collect();
                ps.hint_blocks(&h, &schedule);
            }
            // Load and verify against the mirror.
            3..=6 => {
                let blk = ps.load_block(&h, beta);
                for t in 0..B {
                    assert_eq!(
                        blk.get(t),
                        mirror[beta * B + t],
                        "seed {seed} op {op}: block {beta} slot {t} diverged"
                    );
                }
                ps.recycle(blk);
            }
            // Store fresh content — must invalidate any in-flight prefetch.
            _ => {
                let mut blk = Block::empty(B);
                for t in 0..B {
                    let e = Element::keyed(hash64((op * B + t) as u64, seed), beta * B + t);
                    blk.set(t, Some(e));
                    mirror[beta * B + t] = Some(e);
                }
                ps.store_block(&h, beta, blk);
            }
        }
    }

    // Drain: every block must hold exactly the mirror's final contents.
    // `inner_mut` flushes the write-behind buffer first — unflushed `inner`
    // would still show stale file contents for buffered addresses.
    let final_cells = ps.inner_mut().snapshot_cells(&h);
    assert_eq!(final_cells, mirror, "seed {seed}: final state diverged");

    // Accounting: every foreground load was served exactly once.
    let stats = ps.prefetch_stats();
    let loads = ps.io_stats().reads;
    assert_eq!(
        stats.hits + stats.misses + stats.steals + stats.wb_hits,
        loads,
        "seed {seed}: every load is a hit, miss, steal or write-buffer hit"
    );
}

#[test]
fn seeded_interleavings_with_a_starved_pool() {
    let cfg = PrefetchConfig {
        workers: 1,
        max_ready: 1,
        write_buffer: 2,
    };
    for seed in 0..8u64 {
        stress_session(seed, cfg, 600);
    }
}

#[test]
fn seeded_interleavings_with_racing_workers() {
    let cfg = PrefetchConfig {
        workers: 4,
        max_ready: 16,
        write_buffer: 8,
    };
    for seed in 100..108u64 {
        stress_session(seed, cfg, 600);
    }
}

#[test]
fn hint_storms_then_immediate_overwrites_stay_consistent() {
    // The nastiest schedule for staleness: hint *everything*, then overwrite
    // blocks while workers race to fetch them, then read it all back.
    let (mut ps, h, mut mirror) = mk_store();
    for round in 0..20u64 {
        let all: Vec<usize> = (0..BLOCKS).collect();
        ps.hint_blocks(&h, &all);
        for beta in 0..BLOCKS {
            if hash64(beta as u64, round).is_multiple_of(2) {
                let mut blk = Block::empty(B);
                for t in 0..B {
                    let e = Element::keyed(round * 1000 + beta as u64, beta * B + t);
                    blk.set(t, Some(e));
                    mirror[beta * B + t] = Some(e);
                }
                ps.store_block(&h, beta, blk);
            }
        }
        for beta in 0..BLOCKS {
            let blk = ps.load_block(&h, beta);
            for t in 0..B {
                assert_eq!(
                    blk.get(t),
                    mirror[beta * B + t],
                    "round {round} block {beta}"
                );
            }
            ps.recycle(blk);
        }
    }
}

#[test]
fn arena_survives_contended_take_put_across_threads() {
    let arena = BlockArena::new();
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let a = Arc::clone(&arena);
        handles.push(std::thread::spawn(move || {
            for i in 0..2000u64 {
                let size = [4usize, 8, 16][(hash64(i, t) % 3) as usize];
                let mut buf = a.take(size);
                assert_eq!(buf.len(), size);
                assert!(
                    buf.iter().all(Cell::is_none),
                    "arena must hand out clean buffers"
                );
                // Dirty it so a recycled buffer that isn't cleared is caught.
                buf[0] = Some(Element::keyed(i, t as usize));
                if !hash64(i, t ^ 0xF00).is_multiple_of(4) {
                    a.put(buf);
                } // else: drop it, exercising the non-recycled path
            }
        }));
    }
    for jh in handles {
        jh.join().expect("arena stress thread panicked");
    }
    let stats = arena.stats();
    assert_eq!(stats.allocated + stats.reused, 8 * 2000);
    assert!(stats.reused > 0, "contended reuse must actually occur");
}

#[test]
fn arena_is_shared_between_store_and_prefetch_readers() {
    // The store and its background readers draw from one arena: after a
    // prefetch-heavy workload the arena must show real reuse, bounding
    // allocation churn.
    let (mut ps, h, _) = mk_store();
    for _ in 0..10 {
        let all: Vec<usize> = (0..BLOCKS).collect();
        ps.hint_blocks(&h, &all);
        for beta in 0..BLOCKS {
            let blk = ps.load_block(&h, beta);
            ps.recycle(blk);
        }
    }
    let stats = ps.inner().arena().stats();
    assert!(
        stats.reused > stats.allocated,
        "sustained prefetch traffic must recycle buffers: {stats:?}"
    );
}
