//! Seeded-interleaving stress battery for the *encrypted* span pipeline:
//! decrypt-ahead workers ([`EncryptedReader`] under [`PrefetchingStore`]),
//! verify-ahead workers ([`AuthenticatedReader`] in the full
//! `Prefetching(Auth(Encrypted(FileStore)))` stack), and run-straddling
//! span rewrites through every layer.
//!
//! Mirrors the PR 6 prefetch battery (`prefetch_stress.rs`): `loom` is not
//! available, so interleavings are shaken out with many seeded operation
//! sequences against pool geometries chosen to maximize contention, with
//! every load checked against an in-memory mirror immediately and the full
//! state checked at the end.

use extmem::element::Cell;
use extmem::prefetch::Prefetchable;
use extmem::util::hash64;
use extmem::{
    AuthenticatedStore, Block, BlockStore, Element, EncryptedStore, FileStore, PrefetchConfig,
    PrefetchingStore,
};

const B: usize = 8;
const BLOCKS: usize = 64;

fn fresh_mirror(seed: u64) -> Vec<Cell> {
    (0..BLOCKS * B)
        .map(|i| Some(Element::keyed(hash64(i as u64, seed), i)))
        .collect()
}

/// One seeded session over `Prefetching(Encrypted(FileStore))`: a
/// pseudo-random interleaving of hints, loads and stores. Workers decrypt
/// on their own threads with their own scratch buffers; every load is
/// checked against the plaintext mirror immediately, so a stale nonce, a
/// torn scratch buffer, or a slot served across an invalidation shows up as
/// a failed assertion, not silent garbage.
fn encrypted_session(seed: u64, cfg: PrefetchConfig, ops: usize) {
    let mut enc = EncryptedStore::with_backing(FileStore::temp(B).expect("temp store"), seed | 1);
    let mut mirror = fresh_mirror(seed);
    let h = enc.alloc_array_from_cells(&mirror);
    let mut ps = PrefetchingStore::with_config(enc, cfg);

    for op in 0..ops {
        let r = hash64(op as u64, seed ^ 0x5EED);
        let beta = (r as usize >> 8) % BLOCKS;
        match r % 10 {
            0..=2 => {
                let w = 1 + (r as usize >> 20) % 8;
                let schedule: Vec<usize> = (0..w).map(|j| (beta + j) % BLOCKS).collect();
                ps.hint_blocks(&h, &schedule);
            }
            3..=6 => {
                let blk = ps.load_block(&h, beta);
                for t in 0..B {
                    assert_eq!(
                        blk.get(t),
                        mirror[beta * B + t],
                        "seed {seed} op {op}: block {beta} slot {t} diverged"
                    );
                }
                ps.recycle(blk);
            }
            _ => {
                let mut blk = Block::empty(B);
                for t in 0..B {
                    let e = Element::keyed(hash64((op * B + t) as u64, seed), beta * B + t);
                    blk.set(t, Some(e));
                    mirror[beta * B + t] = Some(e);
                }
                ps.store_block(&h, beta, blk);
            }
        }
    }

    // Drain through the foreground decrypt path (flushes write-behind).
    let final_cells = ps.inner_mut().snapshot_cells(&h);
    assert_eq!(final_cells, mirror, "seed {seed}: final state diverged");

    let stats = ps.prefetch_stats();
    let loads = ps.io_stats().reads;
    assert_eq!(
        stats.hits + stats.misses + stats.steals + stats.wb_hits,
        loads,
        "seed {seed}: every load is a hit, miss, steal or write-buffer hit"
    );
}

/// Same battery over the full stack: spans are encrypted behind, MACed as a
/// batch, decrypted *and verified* ahead on worker threads — any block a
/// worker verified against a stale version table or an unflushed MAC entry
/// it failed to see would panic the load.
fn authenticated_session(seed: u64, cfg: PrefetchConfig, ops: usize) {
    let enc = EncryptedStore::with_backing(FileStore::temp(B).expect("temp store"), seed | 1);
    let mut auth = AuthenticatedStore::new(enc, seed ^ 0x4D41_4343);
    let mut mirror = fresh_mirror(seed);
    let h = BlockStore::alloc_array(&mut auth, BLOCKS * B);
    auth.try_store_span(&h, 0, &mirror).expect("initial fill");
    let mut ps = PrefetchingStore::with_config(auth, cfg);

    for op in 0..ops {
        let r = hash64(op as u64, seed ^ 0xA57E);
        let beta = (r as usize >> 8) % BLOCKS;
        match r % 10 {
            0..=2 => {
                let w = 1 + (r as usize >> 20) % 8;
                let schedule: Vec<usize> = (0..w).map(|j| (beta + j) % BLOCKS).collect();
                ps.hint_blocks(&h, &schedule);
            }
            3..=6 => {
                let blk = ps.load_block(&h, beta);
                for t in 0..B {
                    assert_eq!(
                        blk.get(t),
                        mirror[beta * B + t],
                        "seed {seed} op {op}: block {beta} slot {t} diverged"
                    );
                }
                ps.recycle(blk);
            }
            _ => {
                let mut blk = Block::empty(B);
                for t in 0..B {
                    let e = Element::keyed(hash64((op * B + t) as u64, seed), beta * B + t);
                    blk.set(t, Some(e));
                    mirror[beta * B + t] = Some(e);
                }
                ps.store_block(&h, beta, blk);
            }
        }
    }

    // Drain through the verified foreground path.
    for beta in 0..BLOCKS {
        let blk = ps.load_block(&h, beta);
        for t in 0..B {
            assert_eq!(blk.get(t), mirror[beta * B + t], "seed {seed}: final state");
        }
        ps.recycle(blk);
    }
    // The MAC cache flushes cleanly after all that span traffic.
    ps.inner_mut().flush_macs().expect("flush_macs");
}

#[test]
fn encrypted_interleavings_with_a_starved_pool() {
    let cfg = PrefetchConfig {
        workers: 1,
        max_ready: 1,
        write_buffer: 2,
    };
    for seed in 0..6u64 {
        encrypted_session(seed, cfg, 600);
    }
}

#[test]
fn encrypted_interleavings_with_racing_workers() {
    let cfg = PrefetchConfig {
        workers: 4,
        max_ready: 16,
        write_buffer: 8,
    };
    for seed in 100..106u64 {
        encrypted_session(seed, cfg, 600);
    }
}

#[test]
fn authenticated_interleavings_with_a_starved_pool() {
    let cfg = PrefetchConfig {
        workers: 1,
        max_ready: 1,
        write_buffer: 2,
    };
    for seed in 200..205u64 {
        authenticated_session(seed, cfg, 500);
    }
}

#[test]
fn authenticated_interleavings_with_racing_workers() {
    let cfg = PrefetchConfig {
        workers: 4,
        max_ready: 16,
        write_buffer: 8,
    };
    for seed in 300..305u64 {
        authenticated_session(seed, cfg, 500);
    }
}

#[test]
fn run_straddling_rewrites_stay_identical_to_scalar_writes() {
    // Overlapping span writes — runs that straddle earlier runs at every
    // offset — must leave byte-identical ciphertext to issuing the same
    // writes block at a time: the nonce sequence is the same, so the
    // keystream is the same, so the server sees the same bytes.
    let b = 4;
    let n_blocks = 24;
    let spans: &[(usize, usize)] = &[
        (0, 8),  // a fresh run
        (4, 8),  // straddles the tail of the first
        (2, 3),  // interior rewrite, shorter than a keystream chunk
        (7, 17), // long run crossing the 8-wide lane boundary at both ends
        (23, 1), // single trailing block
        (0, 24), // the whole array in one run
    ];

    let mk_block = |round: usize, addr: usize| {
        let mut blk = Block::empty(b);
        for t in 0..b {
            blk.set(
                t,
                Some(Element::new(
                    hash64((round * 100 + addr * b + t) as u64, 0xC0FFEE),
                    (addr * b + t) as u64,
                )),
            );
        }
        blk
    };

    let mut run = EncryptedStore::with_backing(FileStore::temp(b).unwrap(), 0x5EC7E7);
    let mut one = EncryptedStore::with_backing(FileStore::temp(b).unwrap(), 0x5EC7E7);
    let hr = run.alloc_array(n_blocks * b);
    let ho = one.alloc_array(n_blocks * b);

    for (round, &(start, len)) in spans.iter().enumerate() {
        let blks: Vec<Block> = (0..len).map(|k| mk_block(round, start + k)).collect();
        run.store_run(hr.global_block(start), blks.clone()).unwrap();
        for (k, blk) in blks.into_iter().enumerate() {
            one.write_block(&ho, start + k, &blk);
        }
        // Ciphertext equality after every round, not just at the end.
        for i in 0..n_blocks {
            assert_eq!(
                run.raw_ciphertext(&hr, i),
                one.raw_ciphertext(&ho, i),
                "round {round}: ciphertext of block {i} diverged"
            );
        }
    }
    // And both decrypt to the same plaintext.
    assert_eq!(run.snapshot_cells(&hr), one.snapshot_cells(&ho));
}

#[test]
fn run_straddling_rewrites_verify_through_the_auth_layer() {
    // The same overlap pattern through Auth(Encrypted(FileStore)): each
    // straddling run bumps versions and MACs for exactly the rewritten
    // blocks, and the result verifies block for block against a twin fed
    // one block at a time.
    let b = 4;
    let n_blocks = 16;
    let mk = |enc_key: u64| {
        AuthenticatedStore::new(
            EncryptedStore::with_backing(FileStore::temp(b).unwrap(), enc_key),
            0x4D4143,
        )
    };
    let mut run = mk(7);
    let mut one = mk(7);
    let hr = BlockStore::alloc_array(&mut run, n_blocks * b);
    let ho = BlockStore::alloc_array(&mut one, n_blocks * b);

    let mk_block = |round: usize, addr: usize| {
        let mut blk = Block::empty(b);
        for t in 0..b {
            blk.set(
                t,
                Some(Element::new(
                    hash64((round * 64 + addr) as u64, 9),
                    t as u64,
                )),
            );
        }
        blk
    };

    for (round, &(start, len)) in [(0usize, 10usize), (6, 10), (3, 5), (0, 16)]
        .iter()
        .enumerate()
    {
        let blks: Vec<Block> = (0..len).map(|k| mk_block(round, start + k)).collect();
        run.store_run(hr.global_block(start), blks.clone()).unwrap();
        for (k, blk) in blks.into_iter().enumerate() {
            one.try_store_block(&ho, start + k, blk).unwrap();
        }
    }
    for i in 0..n_blocks {
        assert_eq!(
            run.try_load_block(&hr, i).unwrap(),
            one.try_load_block(&ho, i).unwrap(),
            "block {i} diverged"
        );
    }
    // Version tables agree, so future freshness checks agree too.
    run.flush_macs().unwrap();
    one.flush_macs().unwrap();
}
