//! Regression: a stat failure while sizing a [`FileStore`] must surface as a
//! typed [`StoreError`], not silently size the store at `n_blocks == 0`.
//!
//! The pre-fix constructor ran `file.metadata().map(|m| m.len()).unwrap_or(0)`
//! — on a stat error a reopened store would "recover" with every block
//! invisible. `fstat` on a healthy descriptor essentially never fails on
//! Linux, so the test manufactures the failure directly: duplicate ownership
//! of one raw fd, close it through the first owner, and hand the now-dangling
//! second `File` to [`FileStore::from_handle`] — its `fstat` fails with
//! `EBADF`.
//!
//! One test only: the dangling-fd trick depends on the closed fd number not
//! being reused between `drop` and `from_handle`, and sibling tests running
//! on other threads open files of their own. Keeping this file single-test
//! keeps the window race-free.

use std::fs::File;
use std::os::fd::{AsRawFd, FromRawFd};

use extmem::{FileStore, StoreError};

#[test]
fn stat_failure_is_a_typed_error_not_an_empty_store() {
    let dir = std::env::temp_dir().join(format!("odo-file-errors-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("blocks.odo");
    // A real, non-empty store file: if the buggy path were still live it
    // would report n_blocks == 0 for this file, hiding all of its data.
    std::fs::write(&path, vec![0u8; 24 * 4 * 8]).unwrap();

    let owner = File::open(&path).unwrap();
    // SAFETY: deliberate double ownership of `owner`'s fd. `owner` is
    // dropped (closing the fd) before `dead` is used, so every operation on
    // `dead` fails with EBADF — exactly the stat failure under test. `dead`
    // is consumed by `from_handle`, whose stat-error path leaks the handle
    // instead of double-closing it (which would abort the process via the
    // runtime's IO-safety check).
    let dead = unsafe { File::from_raw_fd(owner.as_raw_fd()) };
    drop(owner);

    let err = FileStore::from_handle(dead, &path, 4)
        .expect_err("a failing stat must not produce an (empty) store");
    assert!(
        matches!(err, StoreError::Io { addr: 0, .. }),
        "EBADF should map to the Io lane, got {err:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
