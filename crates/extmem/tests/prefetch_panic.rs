//! Regression: a prefetch worker whose reader panics must not take the
//! adapter down with it.
//!
//! Pre-fix there were two failure shapes, both pinned here. A panic *under*
//! the shared lock poisoned the mutex and every later client load died on
//! `.expect("prefetch state poisoned")` (that path is pinned by the unit
//! test inside `prefetch.rs`, which can reach the private mutex). A panic
//! *outside* the lock — a reader blowing up mid-fetch, the case this file
//! injects — leaked the in-flight claim and left the slot `Fetching`
//! forever, so a later load of the same address deadlocked waiting for a
//! park that could never come. Post-fix the unwind is caught in the worker:
//! every claimed address surfaces as a retryable [`StoreError::Transient`]
//! on the `try_*` path, the pool keeps serving, and a plain retry reads the
//! real data synchronously.

use extmem::retry::{install_quiet_abort_hook, StoreAbort};
use extmem::store::BlockStore;
use extmem::{
    ArrayHandle, Block, Cell, Element, FileStore, IoStats, PrefetchConfig, PrefetchRead,
    Prefetchable, PrefetchingStore, StoreError,
};

/// A [`FileStore`] whose background readers always panic. Foreground
/// (synchronous) reads still work — that asymmetry is what lets the test
/// separate "the pool broke" from "the data is gone".
struct PanickyStore(FileStore);

impl BlockStore for PanickyStore {
    fn block_elems(&self) -> usize {
        self.0.block_elems()
    }
    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        self.0.alloc_array(len_elements)
    }
    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.0.load_block(h, i)
    }
    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.0.store_block(h, i, blk)
    }
    fn io_stats(&self) -> IoStats {
        self.0.io_stats()
    }
    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        self.0.try_load_block(h, i)
    }
    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        self.0.try_store_block(h, i, blk)
    }
}

struct PanickyReader;

impl PrefetchRead for PanickyReader {
    fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
        // The typed payload only keeps the quiet panic hook from spamming
        // the test output; any panic exercises the same recovery path.
        std::panic::panic_any(StoreAbort(StoreError::Transient { addr }));
    }
}

impl Prefetchable for PanickyStore {
    type Reader = PanickyReader;
    fn reader(&self) -> Self::Reader {
        PanickyReader
    }
}

fn e(k: u64) -> Element {
    Element::new(k, k + 1000)
}

#[test]
fn a_panicking_worker_surfaces_transient_errors_not_a_dead_pool() {
    install_quiet_abort_hook();
    let mut file = FileStore::temp(2).expect("temp file");
    let h = file.alloc_array(16);
    let cells: Vec<Cell> = (0..16).map(|k| Some(e(k))).collect();
    file.store_span(&h, 0, &cells);

    let mut store = PrefetchingStore::with_config(
        PanickyStore(file),
        PrefetchConfig {
            workers: 1,
            max_ready: 64,
            write_buffer: 0,
        },
    );
    store.hint_blocks(&h, &(0..h.n_blocks()).collect::<Vec<_>>());
    // Let the worker claim the batch and panic mid-fetch. (If the
    // foreground wins the race instead, its batch-steal uses the same
    // panicking reader and the same catch — either interleaving must yield
    // typed errors below, never a panic or a hang.)
    std::thread::sleep(std::time::Duration::from_millis(30));

    let mut transients = 0;
    for i in 0..h.n_blocks() {
        match store.try_load_block(&h, i) {
            Err(StoreError::Transient { .. }) => transients += 1,
            Ok(blk) => store.recycle(blk),
            Err(e) => panic!("block {i}: want Transient or Ok, got {e:?}"),
        }
    }
    assert!(
        transients > 0,
        "the injected panics must surface as typed Transient errors"
    );

    // The failed claims are cleared, the pool is alive, and a retry reads
    // the real data through the (working) synchronous path.
    for i in 0..h.n_blocks() {
        let blk = store.try_load_block(&h, i).expect("retry must succeed");
        assert_eq!(blk.occupied()[0], e(i as u64 * 2));
        store.recycle(blk);
    }
}
