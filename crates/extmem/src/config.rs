//! Model parameters `(N, B, M)` and the paper's model assumptions.
//!
//! The paper states its results under combinations of the following
//! assumptions (Section 1, "Our Results"):
//!
//! * **baseline**: `B ≥ 1` and `M ≥ 2B` (at least two blocks of private
//!   cache), sometimes `M ≥ 3B`;
//! * **wide-block**: `B ≥ log(N/B)`;
//! * **tall-cache** (weak form): `M ≥ B^{1+ε}` for a small constant `ε > 0`.
//!
//! [`Config`] bundles the three parameters, provides the derived quantities
//! used throughout (`n = ⌈N/B⌉` blocks, `m = ⌊M/B⌋` cache blocks,
//! `log_{M/B}(N/B)`, …) and checks each assumption so that algorithms can
//! refuse or warn when invoked outside their stated regime.

use std::fmt;

/// Parameters of the external-memory model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Total number of element slots in the problem instance (`N`).
    pub n_elements: usize,
    /// Block size in elements (`B`).
    pub block_elems: usize,
    /// Private cache size in elements (`M`).
    pub cache_elems: usize,
}

/// Errors produced by [`Config::validate`] and the per-assumption checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `B` must be at least 1.
    BlockTooSmall,
    /// `N` must be at least 1.
    EmptyInput,
    /// The private cache must hold at least `min_blocks` blocks.
    CacheTooSmall {
        /// Number of blocks the failing requirement asked for.
        min_blocks: usize,
    },
    /// The wide-block assumption `B ≥ log2(N/B)` does not hold.
    WideBlockViolated,
    /// The tall-cache assumption `M ≥ B^{1+ε}` does not hold.
    TallCacheViolated {
        /// The ε used in the check.
        epsilon_hundredths: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BlockTooSmall => write!(f, "block size B must be >= 1"),
            ConfigError::EmptyInput => write!(f, "input size N must be >= 1"),
            ConfigError::CacheTooSmall { min_blocks } => {
                write!(f, "private cache must hold at least {min_blocks} blocks")
            }
            ConfigError::WideBlockViolated => {
                write!(f, "wide-block assumption B >= log2(N/B) violated")
            }
            ConfigError::TallCacheViolated { epsilon_hundredths } => write!(
                f,
                "tall-cache assumption M >= B^(1+{}) violated",
                *epsilon_hundredths as f64 / 100.0
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Creates a configuration; prefer [`Config::validate`] before use.
    pub fn new(n_elements: usize, block_elems: usize, cache_elems: usize) -> Self {
        Config {
            n_elements,
            block_elems,
            cache_elems,
        }
    }

    /// Number of blocks `n = ⌈N/B⌉` needed to store the input.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.n_elements.div_ceil(self.block_elems)
    }

    /// Number of blocks `m = ⌊M/B⌋` that fit in the private cache.
    #[inline]
    pub fn m_blocks(&self) -> usize {
        self.cache_elems / self.block_elems
    }

    /// `log2(x)` rounded up, with `log2ceil(x) = 1` for `x ≤ 2`.
    pub fn log2_ceil(x: usize) -> u32 {
        if x <= 2 {
            1
        } else {
            usize::BITS - (x - 1).leading_zeros()
        }
    }

    /// `log_{M/B}(N/B)`, the number of passes an optimal external-memory sort
    /// needs; at least 1.
    pub fn log_m_n(&self) -> f64 {
        let n = self.n_blocks().max(2) as f64;
        let m = self.m_blocks().max(2) as f64;
        (n.ln() / m.ln()).max(1.0)
    }

    /// Basic validity: `N ≥ 1`, `B ≥ 1`, and the cache holds at least
    /// `min_cache_blocks` blocks.
    pub fn validate_basic(&self, min_cache_blocks: usize) -> Result<(), ConfigError> {
        if self.block_elems == 0 {
            return Err(ConfigError::BlockTooSmall);
        }
        if self.n_elements == 0 {
            return Err(ConfigError::EmptyInput);
        }
        if self.m_blocks() < min_cache_blocks {
            return Err(ConfigError::CacheTooSmall {
                min_blocks: min_cache_blocks,
            });
        }
        Ok(())
    }

    /// Full validation with the paper's default requirement `M ≥ 2B`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.validate_basic(2)
    }

    /// Checks the wide-block assumption `B ≥ log2(N/B)`.
    pub fn check_wide_block(&self) -> Result<(), ConfigError> {
        let n = self.n_blocks();
        if self.block_elems >= Self::log2_ceil(n.max(2)) as usize {
            Ok(())
        } else {
            Err(ConfigError::WideBlockViolated)
        }
    }

    /// Checks the weak tall-cache assumption `M ≥ B^{1+ε}`.
    ///
    /// `epsilon_hundredths` is ε expressed in hundredths (e.g. `50` for
    /// ε = 0.5), which keeps the API free of floating-point surprises.
    pub fn check_tall_cache(&self, epsilon_hundredths: u32) -> Result<(), ConfigError> {
        let eps = epsilon_hundredths as f64 / 100.0;
        let needed = (self.block_elems as f64).powf(1.0 + eps);
        if (self.cache_elems as f64) >= needed {
            Ok(())
        } else {
            Err(ConfigError::TallCacheViolated { epsilon_hundredths })
        }
    }

    /// Convenience used by the loose-compaction and sorting algorithms: the
    /// paper's combined requirement that `m = M/B ≥ log2(N/B)^2` (implied by
    /// wide-block + tall-cache in its analysis, stated explicitly before
    /// Theorem 8).
    pub fn check_region_fits_cache(&self) -> Result<(), ConfigError> {
        let need = (Self::log2_ceil(self.n_blocks().max(2)) as usize).pow(2);
        if self.m_blocks() >= need {
            Ok(())
        } else {
            Err(ConfigError::CacheTooSmall { min_blocks: need })
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} B={} M={} (n={} blocks, m={} cache blocks)",
            self.n_elements,
            self.block_elems,
            self.cache_elems,
            self.n_blocks(),
            self.m_blocks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_block_counts_round_up() {
        let c = Config::new(100, 8, 64);
        assert_eq!(c.n_blocks(), 13);
        assert_eq!(c.m_blocks(), 8);
    }

    #[test]
    fn validate_rejects_degenerate_parameters() {
        assert_eq!(
            Config::new(10, 0, 10).validate(),
            Err(ConfigError::BlockTooSmall)
        );
        assert_eq!(
            Config::new(0, 4, 16).validate(),
            Err(ConfigError::EmptyInput)
        );
        assert_eq!(
            Config::new(100, 8, 8).validate(),
            Err(ConfigError::CacheTooSmall { min_blocks: 2 })
        );
        assert!(Config::new(100, 8, 64).validate().is_ok());
    }

    #[test]
    fn wide_block_check_matches_definition() {
        // n = 1024/4 = 256 blocks, log2 = 8 > B = 4 -> violated.
        assert!(Config::new(1024, 4, 64).check_wide_block().is_err());
        // B = 16 >= 8 -> ok.
        assert!(Config::new(1024 * 4, 16, 256).check_wide_block().is_ok());
    }

    #[test]
    fn tall_cache_check_matches_definition() {
        // B = 64, eps = 0.5 -> need M >= 64^1.5 = 512.
        assert!(Config::new(1 << 16, 64, 512).check_tall_cache(50).is_ok());
        assert!(Config::new(1 << 16, 64, 511).check_tall_cache(50).is_err());
    }

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(Config::log2_ceil(1), 1);
        assert_eq!(Config::log2_ceil(2), 1);
        assert_eq!(Config::log2_ceil(3), 2);
        assert_eq!(Config::log2_ceil(4), 2);
        assert_eq!(Config::log2_ceil(5), 3);
        assert_eq!(Config::log2_ceil(1024), 10);
    }

    #[test]
    fn log_m_n_is_at_least_one() {
        let c = Config::new(1 << 10, 16, 1 << 12);
        assert!(c.log_m_n() >= 1.0);
    }

    #[test]
    fn region_fits_cache_requires_m_at_least_log_squared() {
        // n = 2^14 blocks -> log2 = 14 -> need m >= 196.
        let ok = Config::new((1 << 14) * 16, 16, 200 * 16);
        assert!(ok.check_region_fits_cache().is_ok());
        let bad = Config::new((1 << 14) * 16, 16, 100 * 16);
        assert!(bad.check_region_fits_cache().is_err());
    }

    #[test]
    fn display_is_informative() {
        let c = Config::new(128, 8, 32);
        let s = format!("{c}");
        assert!(s.contains("N=128"));
        assert!(s.contains("B=8"));
    }
}
