//! [`PrefetchingStore`]: shape-derived read-ahead over a file-backed store.
//!
//! The oblivious algorithms in this workspace have a property a normal
//! program does not: **every pass knows its entire block-read schedule
//! before it starts**, because the schedule is a function of the input
//! *shape* alone (that is the definition of data-obliviousness). A pass can
//! therefore announce its schedule up front via
//! [`BlockStore::hint_blocks`], and this adapter turns those hints into
//! batched read-ahead on a small background thread pool: workers pull
//! addresses off the hint queue, perform the positioned read + decode off
//! the critical path (into buffers from the shared
//! [`BlockArena`](crate::arena::BlockArena)), and park the ready blocks
//! until the foreground asks for them.
//!
//! ## Why this is oblivious
//!
//! The server-visible read set is exactly the hinted schedule plus the
//! foreground's residual misses — all derived from shape, never from data.
//! Prefetching reorders *when* physical reads happen, but the logical trace
//! (what the algorithm asked for, in order) is recorded by this adapter
//! itself and is byte-identical to the trace the same run leaves over
//! [`ExtMem`](crate::mem::ExtMem); the trace-parity battery asserts this for
//! every primitive. For the one data-dependent schedule in the workspace —
//! the bucket sort's final multi-way merge — hints cover a fixed-depth
//! window of each run cursor's own upcoming blocks, so the physical reads
//! stay within the run set the cursor-advance schedule (already visible in
//! the trace) determines; only the lookahead depth differs from what the
//! merge itself does. The same argument covers write-behind: buffered
//! writes land at the same addresses a write-through run touches, merely
//! batched later into span writes.
//!
//! ## Consistency protocol
//!
//! Per global address the adapter tracks one slot:
//! `Queued → Fetching → Ready | Failed`, with `Cancelled` marking a block
//! invalidated by a foreground write while a worker was mid-fetch.
//!
//! * [`BlockStore::load_block`] takes `Ready` blocks for free ("hit"),
//!   *steals* `Queued` entries — claiming the whole contiguous hinted run
//!   and reading it with one positioned span read, parking the tail — so a
//!   deep queue can never deadlock the foreground; waits only on
//!   `Fetching` (a read already in flight); and falls back to a synchronous
//!   read otherwise ("miss").
//! * [`BlockStore::store_block`] invalidates any slot for the address, so a
//!   stale prefetch can never be served after a write. (The pass structure
//!   already guarantees every hinted block is consumed before the pass
//!   writes it back; this is the safety net.) Over a store with span-write
//!   support ([`Prefetchable::store_run`]) the write then parks in a
//!   bounded *write-behind buffer* — its slot marked `Buffered`, which
//!   hints skip and worker parks leave alone — and is flushed as one
//!   positioned span write per maximal contiguous run when the buffer
//!   fills, on [`PrefetchingStore::flush_writes`] /
//!   [`PrefetchingStore::inner_mut`], or on drop. Loads of a buffered
//!   address are served from the buffer (read-your-writes), never from the
//!   stale file copy.
//! * Workers respect `max_ready`: parked *plus* in-flight blocks never
//!   exceed it, bounding the adapter's memory at
//!   `(max_ready + write_buffer) · B` cells. This budget is accounted
//!   against the client's private memory `M` by the callers that size it.
//!
//! ## Why the pool is cheap
//!
//! A file on a fast device (or tmpfs in CI) serves a block read in about a
//! microsecond, so per-block locking would cost more than the reads it
//! hides. The pool therefore amortizes everything:
//!
//! * a worker claims a *batch* of queued addresses in one lock acquisition,
//!   reads contiguous runs with a single positioned span read
//!   ([`PrefetchRead::fetch_run`]), and parks the whole batch under one
//!   more lock acquisition;
//! * condvars are split (`work` for idle workers, `done` for a foreground
//!   load waiting on an in-flight fetch) and only signalled when the shared
//!   state says someone is actually waiting — the steady-state hit path
//!   performs one uncontended lock round-trip and no syscalls.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::block::Block;
use crate::error::StoreError;
use crate::mem::{AccessEvent, AccessOp, AccessTrace, ArrayHandle, IoStats};
use crate::store::BlockStore;

/// A background block reader: the half of a store that can be cloned onto a
/// worker thread. Positioned reads must be independent of the foreground
/// (no shared seek cursor).
pub trait PrefetchRead: Send + 'static {
    /// Reads and decodes the block at global address `addr`.
    fn fetch(&mut self, addr: usize) -> Result<Block, StoreError>;

    /// Reads and decodes `count` consecutive blocks starting at `start`.
    /// The default loops [`fetch`](PrefetchRead::fetch); implementations
    /// with positioned I/O should override it with one span read so a
    /// sequential schedule costs one syscall per batch instead of one per
    /// block.
    fn fetch_run(&mut self, start: usize, count: usize) -> Vec<Result<Block, StoreError>> {
        (start..start + count).map(|a| self.fetch(a)).collect()
    }
}

/// A store that can hand out independent background readers; implementing
/// this is what makes a store wrappable by [`PrefetchingStore`].
pub trait Prefetchable: BlockStore {
    /// The background reader type.
    type Reader: PrefetchRead;

    /// Creates a reader sharing this store's file and buffer pool.
    fn reader(&self) -> Self::Reader;

    /// True when [`store_run`](Prefetchable::store_run) performs a real
    /// positioned span write. Gates the adapter's write-behind buffer: a
    /// store that leaves this `false` gets plain write-through.
    fn supports_store_runs(&self) -> bool {
        false
    }

    /// Writes `blks` to consecutive global addresses starting at `start`
    /// (one positioned write for the whole run), recycling the buffers.
    /// Only called when [`supports_store_runs`](Prefetchable::supports_store_runs)
    /// returns true.
    ///
    /// The default body is for stores that never advertise span-write
    /// support: a wrapper that calls it anyway (misreporting
    /// `supports_store_runs`) gets a typed [`StoreError::Corrupted`] for the
    /// run's first address — the write was *not* performed — rather than a
    /// process-killing panic. Debug builds additionally `debug_assert` so
    /// the misbehavior is loud under test.
    fn store_run(&mut self, start: usize, blks: Vec<Block>) -> Result<(), StoreError> {
        debug_assert!(
            false,
            "store_run requires supports_store_runs() == true (run of {} at {start})",
            blks.len()
        );
        drop(blks);
        Err(StoreError::Corrupted { addr: start })
    }
}

/// Tuning knobs for the prefetch pool.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Background reader threads. Zero is legitimate: every hinted load is
    /// then served by a foreground batch-steal (one span read per
    /// contiguous hinted run), which is the profitable mode on a machine
    /// where extra threads cannot overlap anything.
    pub workers: usize,
    /// Maximum decoded blocks parked awaiting consumption.
    pub max_ready: usize,
    /// Write-behind buffer capacity in blocks (0 disables). Stores are
    /// accepted into the buffer and flushed as coalesced span writes — one
    /// positioned write per maximal contiguous run — once it fills, on
    /// [`PrefetchingStore::flush_writes`], or on drop. Only effective over
    /// stores whose [`Prefetchable::supports_store_runs`] is true.
    pub write_buffer: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        // Leave one core for the algorithm itself; on a single-core
        // machine that means no background readers at all — they could
        // only time-slice against the foreground, so batched foreground
        // steals do all the coalescing instead.
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get() - 1);
        PrefetchConfig {
            workers: workers.min(3),
            max_ready: 64,
            write_buffer: 64,
        }
    }
}

/// Counters describing how effective the read-ahead was.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Loads served from a parked prefetched block.
    pub hits: u64,
    /// Loads with no matching hint: synchronous read.
    pub misses: u64,
    /// Loads that found their hint still queued and read synchronously
    /// (the pool had not gotten to it yet).
    pub steals: u64,
    /// Loads that waited for an in-flight background read.
    pub waits: u64,
    /// Parked or in-flight blocks invalidated by a foreground write.
    pub invalidated: u64,
    /// Hints accepted onto the queue.
    pub hinted: u64,
    /// Loads served by cloning a block still parked in the write-behind
    /// buffer (read-your-writes without touching the file).
    pub wb_hits: u64,
    /// Physical span writes issued by write-behind flushes (each covers one
    /// maximal contiguous run of buffered addresses).
    pub write_spans: u64,
}

#[derive(Debug)]
enum Slot {
    /// No hint outstanding for this address.
    Empty,
    Queued,
    Fetching,
    Ready(Block),
    Failed(StoreError),
    Cancelled,
    /// The newest content for this address sits in the adapter's
    /// write-behind buffer; the file copy is stale until the next flush.
    /// Workers never touch this state (hints skip it, parks leave it).
    Buffered,
}

/// Most addresses a worker claims per lock acquisition. Batching is what
/// keeps the pool's synchronization cost below the cost of the reads it
/// hides; contiguous claims also collapse into span reads.
const CLAIM_BATCH: usize = 16;

#[derive(Debug)]
struct Shared {
    /// Worker feed: hinted addresses in hint order. Left empty when the
    /// pool has no workers (foreground batch-steals read `slots` directly,
    /// so queue maintenance would be pure overhead).
    queue: VecDeque<usize>,
    /// Per-address slot state, indexed by global block address. The file's
    /// address space is dense and small, so a flat vector keeps the hot
    /// hit path at an indexed load instead of a hash lookup.
    slots: Vec<Slot>,
    /// Decoded blocks parked in `slots`.
    ready: usize,
    /// Blocks claimed by a worker and not yet parked; `ready + inflight`
    /// never exceeds `max_ready`.
    inflight: usize,
    /// Workers parked on `SharedSync::work` (gates wakeup syscalls).
    idle_workers: usize,
    /// Foreground loads parked on `SharedSync::done` (gates wakeups).
    fg_waiting: usize,
    max_ready: usize,
    n_workers: usize,
    shutdown: bool,
}

impl Shared {
    /// The slot for `addr` (addresses past the vector are `Empty`).
    fn slot(&self, addr: usize) -> &Slot {
        self.slots.get(addr).unwrap_or(&Slot::Empty)
    }

    /// Sets the slot for `addr`, growing the vector on first touch.
    fn set(&mut self, addr: usize, s: Slot) {
        if self.slots.len() <= addr {
            self.slots.resize_with(addr + 1, || Slot::Empty);
        }
        self.slots[addr] = s;
    }

    /// Removes and returns the slot for `addr`.
    fn take_slot(&mut self, addr: usize) -> Slot {
        if self.slots.len() <= addr {
            return Slot::Empty;
        }
        std::mem::replace(&mut self.slots[addr], Slot::Empty)
    }

    /// True when a parked worker would find something to do.
    fn has_work(&self) -> bool {
        !self.queue.is_empty() && self.ready + self.inflight < self.max_ready
    }

    /// True when a parked worker could claim a whole batch (or fill the
    /// budget, for tiny budgets). Consumers wake workers on *this* rather
    /// than on [`has_work`](Shared::has_work) so one wakeup syscall buys a
    /// batch worth of refill instead of a single block.
    fn batch_slack(&self) -> bool {
        !self.queue.is_empty()
            && self.ready + self.inflight + CLAIM_BATCH.min(self.max_ready) <= self.max_ready
    }
}

#[derive(Debug)]
struct SharedSync {
    state: Mutex<Shared>,
    /// Workers wait here for queue items or ready budget.
    work: Condvar,
    /// The foreground waits here for an in-flight fetch to park.
    done: Condvar,
}

impl SharedSync {
    /// Locks the shared state, *recovering* a poisoned mutex instead of
    /// cascading the panic. The state is repairable by construction — see
    /// [`repair`](SharedSync::repair) — so a thread that panicked while
    /// holding the lock must not condemn every later client load to an
    /// `.expect("prefetch state poisoned")` panic: the pool degrades to
    /// synchronous reads for the orphaned claims and keeps serving.
    fn lock_state(&self) -> MutexGuard<'_, Shared> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                self.state.clear_poison();
                self.repair(&mut g);
                g
            }
        }
    }

    /// Waits on `cv`, applying the same poison recovery as
    /// [`lock_state`](SharedSync::lock_state) on wakeup.
    fn wait_on<'a>(&self, cv: &Condvar, g: MutexGuard<'a, Shared>) -> MutexGuard<'a, Shared> {
        match cv.wait(g) {
            Ok(g) => g,
            Err(poisoned) => {
                let mut g = poisoned.into_inner();
                self.state.clear_poison();
                self.repair(&mut g);
                g
            }
        }
    }

    /// Restores the shared invariants after a panic under the lock. The
    /// panicking thread may have died owning in-flight claims, so demote
    /// every `Fetching` slot to `Cancelled` (consumers fall back to a
    /// synchronous read; a surviving worker parking into a `Cancelled` slot
    /// just drops its block), zero the in-flight count, and wake every
    /// sleeper so nobody keeps waiting on a fetch that will never park.
    /// Surviving threads decrement `inflight` with saturating arithmetic,
    /// so the zeroed count cannot underflow afterwards.
    fn repair(&self, g: &mut Shared) {
        for slot in &mut g.slots {
            if matches!(slot, Slot::Fetching) {
                *slot = Slot::Cancelled;
            }
        }
        g.inflight = 0;
        self.done.notify_all();
        self.work.notify_all();
    }
}

type SharedState = Arc<SharedSync>;

fn worker_loop<R: PrefetchRead>(mut reader: R, shared: SharedState) {
    let mut claimed: Vec<usize> = Vec::with_capacity(CLAIM_BATCH);
    loop {
        // Claim up to a batch of queued addresses in one lock acquisition.
        {
            let mut g = shared.lock_state();
            loop {
                if g.shutdown {
                    return;
                }
                while claimed.len() < CLAIM_BATCH && g.ready + g.inflight < g.max_ready {
                    // Skip entries the foreground stole or cancelled.
                    let Some(a) = g.queue.pop_front() else { break };
                    if matches!(g.slot(a), Slot::Queued) {
                        g.set(a, Slot::Fetching);
                        g.inflight += 1;
                        claimed.push(a);
                    }
                }
                if !claimed.is_empty() {
                    break;
                }
                g.idle_workers += 1;
                g = shared.wait_on(&shared.work, g);
                g.idle_workers -= 1;
            }
        }

        // Fetch outside the lock, collapsing contiguous runs into span reads.
        // A panicking reader must not take its claims (or the pool) down
        // with it: catch the unwind and park every claimed address as a
        // retryable `Transient` failure — the `try_*` path surfaces it as a
        // typed `Err`, a plain reload falls back to a synchronous read, and
        // the worker lives to serve the next batch.
        let results: Vec<(usize, Result<Block, StoreError>)> =
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut results = Vec::with_capacity(claimed.len());
                let mut i = 0;
                while i < claimed.len() {
                    let mut j = i + 1;
                    while j < claimed.len() && claimed[j] == claimed[j - 1] + 1 {
                        j += 1;
                    }
                    let start = claimed[i];
                    for (k, res) in reader.fetch_run(start, j - i).into_iter().enumerate() {
                        results.push((start + k, res));
                    }
                    i = j;
                }
                results
            })) {
                Ok(results) => results,
                Err(_) => claimed
                    .iter()
                    .map(|&a| (a, Err(StoreError::Transient { addr: a })))
                    .collect(),
            };
        claimed.clear();

        // Park the whole batch under one more lock acquisition.
        let mut g = shared.lock_state();
        for (addr, res) in results {
            g.inflight = g.inflight.saturating_sub(1);
            match g.slot(addr) {
                Slot::Fetching => match res {
                    Ok(blk) => {
                        g.ready += 1;
                        g.set(addr, Slot::Ready(blk));
                    }
                    Err(e) => {
                        g.set(addr, Slot::Failed(e));
                    }
                },
                // A foreground write raced the fetch: the block is stale,
                // drop it.
                Slot::Cancelled => {
                    g.set(addr, Slot::Empty);
                }
                _ => {}
            }
        }
        if g.fg_waiting > 0 {
            shared.done.notify_all();
        }
    }
}

/// The read-ahead adapter. Wraps any [`Prefetchable`] store and honors
/// [`BlockStore::hint_blocks`] schedules with a background thread pool; see
/// the module docs for the protocol and obliviousness argument.
#[derive(Debug)]
pub struct PrefetchingStore<S: Prefetchable> {
    inner: S,
    shared: SharedState,
    workers: Vec<JoinHandle<()>>,
    /// Reader for foreground batch-steals (span reads of hinted runs the
    /// pool has not reached yet).
    fg_reader: S::Reader,
    /// Logical I/O counters: what the algorithm asked for, independent of
    /// whether a background worker or the foreground did the physical read.
    stats: IoStats,
    trace: Option<AccessTrace>,
    prefetch_stats: PrefetchStats,
    /// Write-behind buffer: `(global address, newest block)` pairs, flushed
    /// as coalesced span writes. Every entry has its slot set to
    /// [`Slot::Buffered`], which is what keeps workers and hints away.
    wb: Vec<(usize, Block)>,
    /// Capacity of `wb`; 0 when the inner store has no span-write support.
    wb_cap: usize,
}

impl<S: Prefetchable> PrefetchingStore<S> {
    /// Wraps `inner` with the default pool configuration.
    pub fn new(inner: S) -> Self {
        Self::with_config(inner, PrefetchConfig::default())
    }

    /// Wraps `inner` with an explicit pool configuration.
    pub fn with_config(inner: S, cfg: PrefetchConfig) -> Self {
        assert!(cfg.max_ready >= 1, "prefetch pool needs a ready budget");
        let shared: SharedState = Arc::new(SharedSync {
            state: Mutex::new(Shared {
                queue: VecDeque::new(),
                slots: Vec::new(),
                ready: 0,
                inflight: 0,
                idle_workers: 0,
                fg_waiting: 0,
                max_ready: cfg.max_ready,
                n_workers: cfg.workers,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let reader = inner.reader();
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(reader, shared))
            })
            .collect();
        let fg_reader = inner.reader();
        let wb_cap = if inner.supports_store_runs() {
            cfg.write_buffer
        } else {
            0
        };
        PrefetchingStore {
            inner,
            shared,
            workers,
            fg_reader,
            stats: IoStats::default(),
            trace: None,
            prefetch_stats: PrefetchStats::default(),
            wb: Vec::with_capacity(wb_cap),
            wb_cap,
        }
    }

    /// The wrapped store. NOTE: does *not* flush the write-behind buffer —
    /// pending writes are not yet visible through the inner store. Use
    /// [`inner_mut`](PrefetchingStore::inner_mut) (which flushes) or
    /// [`flush_writes`](PrefetchingStore::flush_writes) before reading the
    /// inner store's contents directly.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store, after flushing the write-behind
    /// buffer so the inner store reflects every accepted write.
    pub fn inner_mut(&mut self) -> &mut S {
        self.flush_writes()
            .unwrap_or_else(|e| panic!("PrefetchingStore: write-behind flush failed: {e}"));
        &mut self.inner
    }

    /// Writes every buffered block back to the wrapped store, coalescing
    /// contiguous addresses into single span writes. A no-op when nothing
    /// is buffered; returns the first error a span (or its per-block retry)
    /// surfaces.
    pub fn flush_writes(&mut self) -> Result<(), StoreError> {
        if self.wb.is_empty() {
            return Ok(());
        }
        let mut wb = std::mem::take(&mut self.wb);
        wb.sort_by_key(|(a, _)| *a);
        {
            let mut g = self.shared.lock_state();
            for (a, _) in &wb {
                debug_assert!(matches!(g.slot(*a), Slot::Buffered));
                g.set(*a, Slot::Empty);
            }
        }
        let mut first_err = None;
        let mut iter = wb.into_iter().peekable();
        while let Some((start, blk)) = iter.next() {
            let mut run = vec![blk];
            let mut next = start + 1;
            while iter.peek().is_some_and(|(a, _)| *a == next) {
                run.push(iter.next().expect("peeked").1);
                next += 1;
            }
            self.prefetch_stats.write_spans += 1;
            if let Err(e) = self.inner.store_run(start, run) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Accepts a write into the write-behind buffer (the newest content for
    /// `addr` now lives here; any prefetch state for it is invalidated) and
    /// flushes when the buffer fills.
    fn buffer_write(&mut self, addr: usize, blk: Block) -> Result<(), StoreError> {
        let mut g = self.shared.lock_state();
        match g.slot(addr) {
            Slot::Buffered => {
                drop(g);
                let entry = self
                    .wb
                    .iter_mut()
                    .find(|(a, _)| *a == addr)
                    .expect("Buffered slot implies a buffer entry");
                let old = std::mem::replace(&mut entry.1, blk);
                self.inner.recycle(old);
                return Ok(());
            }
            Slot::Ready(_) => {
                g.take_slot(addr);
                g.ready -= 1;
                self.prefetch_stats.invalidated += 1;
                if g.idle_workers > 0 && g.batch_slack() {
                    self.shared.work.notify_one();
                }
            }
            // A fetch in flight parks into `_ => {}` once it sees the slot
            // is no longer `Fetching`, so overwriting the state right away
            // is safe — the worker still decrements `inflight` itself.
            Slot::Fetching | Slot::Queued | Slot::Failed(_) => {
                self.prefetch_stats.invalidated += 1;
            }
            Slot::Empty | Slot::Cancelled => {}
        }
        g.set(addr, Slot::Buffered);
        drop(g);
        self.wb.push((addr, blk));
        if self.wb.len() >= self.wb_cap {
            self.flush_writes()?;
        }
        Ok(())
    }

    /// Read-ahead effectiveness counters.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetch_stats
    }

    /// Starts recording the *logical* access trace — the algorithm's request
    /// order, byte-identical to the trace the same run leaves over a
    /// non-prefetching store.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the captured logical trace, if any.
    pub fn take_trace(&mut self) -> Option<AccessTrace> {
        self.trace.take()
    }

    fn record(&mut self, op: AccessOp, addr: usize) {
        match op {
            AccessOp::Read => self.stats.reads += 1,
            AccessOp::Write => self.stats.writes += 1,
        }
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { op, addr });
        }
    }

    fn take_prefetched(&mut self, addr: usize) -> Option<Result<Block, StoreError>> {
        let mut g = self.shared.lock_state();
        loop {
            match g.slot(addr) {
                Slot::Empty => {
                    self.prefetch_stats.misses += 1;
                    return None;
                }
                Slot::Queued => {
                    // The pool has not gotten here yet: steal the whole
                    // contiguous hinted run in the foreground with one span
                    // read, park the tail as ready. On a machine where the
                    // pool cannot overlap (one core, or reads served from
                    // the page cache), this coalescing is the schedule's
                    // entire payoff: one syscall per run instead of one per
                    // block.
                    let spare = g.max_ready.saturating_sub(g.ready + g.inflight);
                    let mut run = 1usize;
                    while run < CLAIM_BATCH
                        && run <= spare
                        && matches!(g.slot(addr + run), Slot::Queued)
                    {
                        run += 1;
                    }
                    for k in 0..run {
                        g.set(addr + k, Slot::Fetching);
                    }
                    g.inflight += run;
                    drop(g);

                    let mut results = self.fg_reader.fetch_run(addr, run);
                    let first = results.remove(0);
                    self.prefetch_stats.steals += 1;

                    g = self.shared.lock_state();
                    g.inflight = g.inflight.saturating_sub(run);
                    g.set(addr, Slot::Empty);
                    for (k, res) in results.into_iter().enumerate() {
                        let a = addr + 1 + k;
                        match g.slot(a) {
                            Slot::Fetching => match res {
                                Ok(blk) => {
                                    g.ready += 1;
                                    g.set(a, Slot::Ready(blk));
                                }
                                Err(e) => {
                                    g.set(a, Slot::Failed(e));
                                }
                            },
                            Slot::Cancelled => {
                                g.set(a, Slot::Empty);
                            }
                            _ => {}
                        }
                    }
                    return Some(first);
                }
                Slot::Cancelled => {
                    g.set(addr, Slot::Empty);
                    self.prefetch_stats.steals += 1;
                    return None;
                }
                Slot::Fetching => {
                    self.prefetch_stats.waits += 1;
                    g.fg_waiting += 1;
                    g = self.shared.wait_on(&self.shared.done, g);
                    g.fg_waiting -= 1;
                }
                Slot::Ready(_) => {
                    let Slot::Ready(blk) = g.take_slot(addr) else {
                        unreachable!("slot state checked under the same lock");
                    };
                    g.ready -= 1;
                    // Consuming a parked block frees ready budget; wake one
                    // worker only once a whole batch of budget is free.
                    if g.idle_workers > 0 && g.batch_slack() {
                        self.shared.work.notify_one();
                    }
                    self.prefetch_stats.hits += 1;
                    return Some(Ok(blk));
                }
                Slot::Failed(_) => {
                    let Slot::Failed(e) = g.take_slot(addr) else {
                        unreachable!("slot state checked under the same lock");
                    };
                    return Some(Err(e));
                }
                Slot::Buffered => {
                    // Read-your-writes: the newest content is still in the
                    // write-behind buffer — serve a copy without touching
                    // the file (the slot stays Buffered; the entry remains
                    // the durable source until flushed).
                    self.prefetch_stats.wb_hits += 1;
                    let blk = self
                        .wb
                        .iter()
                        .find(|(a, _)| *a == addr)
                        .expect("Buffered slot implies a buffer entry")
                        .1
                        .clone();
                    return Some(Ok(blk));
                }
            }
        }
    }

    fn invalidate(&mut self, addr: usize) {
        let mut g = self.shared.lock_state();
        match g.slot(addr) {
            Slot::Ready(_) => {
                g.set(addr, Slot::Empty);
                g.ready -= 1;
                self.prefetch_stats.invalidated += 1;
                if g.idle_workers > 0 && g.batch_slack() {
                    self.shared.work.notify_one();
                }
            }
            Slot::Fetching => {
                g.set(addr, Slot::Cancelled);
                self.prefetch_stats.invalidated += 1;
            }
            Slot::Queued | Slot::Failed(_) => {
                g.set(addr, Slot::Empty);
                self.prefetch_stats.invalidated += 1;
            }
            // Buffered is unreachable here: invalidate() is only used on the
            // write-through path (wb_cap == 0), which never buffers.
            Slot::Cancelled | Slot::Empty | Slot::Buffered => {}
        }
    }
}

impl<S: Prefetchable> Drop for PrefetchingStore<S> {
    fn drop(&mut self) {
        // Best-effort durability: a flush error cannot surface from Drop,
        // but callers that care read back through `inner_mut`/`flush_writes`
        // first, which do propagate it.
        let _ = self.flush_writes();
        {
            let mut g = self.shared.lock_state();
            g.shutdown = true;
            g.queue.clear();
            self.shared.work.notify_all();
            self.shared.done.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl<S: Prefetchable> BlockStore for PrefetchingStore<S> {
    fn block_elems(&self) -> usize {
        self.inner.block_elems()
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        self.inner.alloc_array(len_elements)
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.try_load_block(h, i)
            .unwrap_or_else(|e| panic!("PrefetchingStore: {e}"))
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.try_store_block(h, i, blk)
            .unwrap_or_else(|e| panic!("PrefetchingStore: {e}"))
    }

    fn io_stats(&self) -> IoStats {
        self.stats
    }

    fn hint_blocks(&mut self, h: &ArrayHandle, blocks: &[usize]) {
        let mut g = self.shared.lock_state();
        for &i in blocks {
            let addr = h.global_block(i);
            if matches!(g.slot(addr), Slot::Empty) {
                g.set(addr, Slot::Queued);
                if g.n_workers > 0 {
                    g.queue.push_back(addr);
                }
                self.prefetch_stats.hinted += 1;
            }
        }
        if g.idle_workers > 0 && g.has_work() {
            self.shared.work.notify_all();
        }
    }

    fn recycle(&mut self, blk: Block) {
        self.inner.recycle(blk);
    }

    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        let addr = h.global_block(i);
        let blk = match self.take_prefetched(addr) {
            Some(res) => res?,
            None => self.inner.try_load_block(h, i)?,
        };
        self.record(AccessOp::Read, addr);
        Ok(blk)
    }

    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        let addr = h.global_block(i);
        if self.wb_cap == 0 {
            self.invalidate(addr);
            self.inner.try_store_block(h, i, blk)?;
        } else {
            self.buffer_write(addr, blk)?;
        }
        self.record(AccessOp::Write, addr);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Cell, Element};
    use crate::file::FileStore;

    fn e(k: u64) -> Element {
        Element::new(k, k + 1000)
    }

    fn temp_prefetching(b: usize) -> PrefetchingStore<FileStore> {
        PrefetchingStore::new(FileStore::temp(b).expect("temp file"))
    }

    #[test]
    fn unhinted_loads_are_plain_misses() {
        let mut store = temp_prefetching(4);
        let h = store
            .inner_mut()
            .alloc_array_from_elements(&(0..16).map(e).collect::<Vec<_>>());
        for i in 0..4 {
            assert_eq!(store.load_block(&h, i).occupied()[0], e(i as u64 * 4));
        }
        let ps = store.prefetch_stats();
        assert_eq!(ps.misses, 4);
        assert_eq!(ps.hits, 0);
    }

    #[test]
    fn hinted_blocks_are_served_and_correct() {
        let mut store = temp_prefetching(4);
        let cells: Vec<Cell> = (0..64).map(|k| Some(e(k))).collect();
        let h = store.inner_mut().alloc_array_from_cells(&cells);
        let schedule: Vec<usize> = (0..h.n_blocks()).collect();
        store.hint_blocks(&h, &schedule);
        let mut out = Vec::new();
        for i in 0..h.n_blocks() {
            out.extend(store.load_block(&h, i).occupied());
        }
        assert_eq!(out, (0..64).map(e).collect::<Vec<_>>());
        let ps = store.prefetch_stats();
        assert_eq!(ps.hinted, 16);
        assert_eq!(
            ps.misses, 0,
            "every load was covered by the schedule, got {ps:?}"
        );
        assert_eq!(ps.hits + ps.steals, 16);
    }

    #[test]
    fn writes_invalidate_parked_prefetches() {
        let mut store = temp_prefetching(2);
        let h = store
            .inner_mut()
            .alloc_array_from_elements(&(0..8).map(e).collect::<Vec<_>>());
        store.hint_blocks(&h, &[0, 1, 2, 3]);
        // Give the pool time to park everything, then overwrite block 1.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut blk = Block::empty(2);
        blk.set(0, Some(e(777)));
        store.store_block(&h, 1, blk);
        assert_eq!(store.load_block(&h, 1).get(0), Some(e(777)));
    }

    #[test]
    fn logical_stats_count_requests_not_physical_reads() {
        let mut store = temp_prefetching(4);
        let h = store
            .inner_mut()
            .alloc_array_from_elements(&(0..32).map(e).collect::<Vec<_>>());
        store.hint_blocks(&h, &(0..8).collect::<Vec<_>>());
        for i in 0..8 {
            let blk = store.load_block(&h, i);
            store.recycle(blk);
        }
        assert_eq!(store.io_stats().reads, 8);
    }

    #[test]
    fn logical_trace_is_identical_to_an_unprefetched_run() {
        let run = |hint: bool| {
            let mut store = temp_prefetching(4);
            store.enable_trace();
            let h = store
                .inner_mut()
                .alloc_array_from_elements(&(0..32).map(e).collect::<Vec<_>>());
            if hint {
                store.hint_blocks(&h, &(0..8).collect::<Vec<_>>());
            }
            for i in 0..8 {
                let mut blk = store.load_block(&h, i);
                blk.set(0, Some(e(1)));
                store.store_block(&h, i, blk);
            }
            store.take_trace().unwrap()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn a_poisoned_mutex_is_recovered_not_cascaded() {
        crate::retry::install_quiet_abort_hook();
        let mut store = temp_prefetching(2);
        let h = store
            .inner_mut()
            .alloc_array_from_elements(&(0..8).map(e).collect::<Vec<_>>());
        // Poison the shared mutex exactly the way a crashed thread would:
        // panic while holding the lock. (The typed `StoreAbort` payload only
        // keeps the quiet panic hook from spamming test output.)
        let shared = Arc::clone(&store.shared);
        let _ = std::thread::spawn(move || {
            let _g = shared.state.lock().unwrap();
            std::panic::panic_any(crate::retry::StoreAbort(StoreError::Transient { addr: 0 }));
        })
        .join();
        assert!(store.shared.state.is_poisoned(), "setup must poison");
        // Pre-fix every later client load died on
        // `.expect("prefetch state poisoned")`; now the guard is recovered
        // and the store keeps serving — including fresh hints.
        assert_eq!(store.load_block(&h, 0).occupied()[0], e(0));
        assert!(!store.shared.state.is_poisoned(), "lock must be repaired");
        store.hint_blocks(&h, &[1, 2, 3]);
        for i in 1..4 {
            assert_eq!(store.load_block(&h, i).occupied()[0], e(i as u64 * 2));
        }
    }

    /// A store that implements [`Prefetchable`] but never advertises (or
    /// overrides) span writes — the shape of a minimal custom wrapper.
    struct NoRuns(crate::mem::ExtMem);

    struct NoRunsReader;

    impl PrefetchRead for NoRunsReader {
        fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
            Err(StoreError::Transient { addr })
        }
    }

    impl BlockStore for NoRuns {
        fn block_elems(&self) -> usize {
            self.0.block_elems()
        }
        fn alloc_array(&mut self, len: usize) -> ArrayHandle {
            self.0.alloc_array(len)
        }
        fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
            self.0.read_block(h, i)
        }
        fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
            self.0.write_block(h, i, blk);
        }
        fn io_stats(&self) -> IoStats {
            self.0.stats()
        }
    }

    impl Prefetchable for NoRuns {
        type Reader = NoRunsReader;
        fn reader(&self) -> NoRunsReader {
            NoRunsReader
        }
    }

    /// Regression: the default `store_run` body used to be `unreachable!`,
    /// so a wrapper that misreported `supports_store_runs` panicked instead
    /// of erroring. It must now surface a typed error (and only
    /// `debug_assert` in debug builds).
    #[test]
    fn default_store_run_is_a_typed_error_not_an_unconditional_panic() {
        let mut s = NoRuns(crate::mem::ExtMem::new(2));
        assert!(!s.supports_store_runs());
        #[cfg(debug_assertions)]
        {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s.store_run(3, vec![Block::empty(2)])
            }));
            assert!(r.is_err(), "debug builds assert loudly");
        }
        #[cfg(not(debug_assertions))]
        {
            assert_eq!(
                s.store_run(3, vec![Block::empty(2)]),
                Err(StoreError::Corrupted { addr: 3 }),
                "release builds report a typed error for the run start"
            );
        }
    }

    #[test]
    fn stale_hints_left_behind_do_not_leak_on_drop() {
        let mut store = temp_prefetching(2);
        let h = store.inner_mut().alloc_array(64);
        store.hint_blocks(&h, &(0..32).collect::<Vec<_>>());
        // Never consume them; drop must shut the pool down cleanly.
        drop(store);
    }
}
