//! Simulated semantically secure block encryption.
//!
//! The paper assumes block contents are encrypted "using a semantically
//! secure encryption scheme such that re-encryption of the same value is
//! indistinguishable from an encryption of a different value" (Section 1).
//! The obliviousness arguments never rely on *how* encryption works — only on
//! the fact that the server learns nothing from ciphertexts and therefore the
//! only signal is the address trace.
//!
//! [`EncryptedStore`] exists so the examples and integration tests exercise
//! the full read–decrypt–modify–re-encrypt–write path a real outsourced-store
//! client would use, and so we can *demonstrate* the semantic-security
//! modelling: every write uses a fresh nonce, so writing the same plaintext
//! block twice produces different ciphertexts.
//!
//! The cipher is a keyed `splitmix64` keystream (a toy stream cipher). It is
//! **not** cryptographically strong and is clearly documented as a
//! simulation substitute — the substitution table in `DESIGN.md` at the
//! workspace root maps every toy primitive to its real counterpart;
//! swapping in a real AEAD would not change any access pattern or I/O
//! count. Note that
//! encryption alone provides **no integrity or freshness**: wrap the store
//! in [`AuthenticatedStore`](crate::auth::AuthenticatedStore) when the
//! server may tamper or roll back.
//!
//! # Encoding
//!
//! Each cell is serialised to two 64-bit plaintext words: the key, and a word
//! whose top bit is the occupancy flag and whose low 63 bits are the payload.
//! Consequently payloads stored through the encrypted path are limited to 63
//! bits: the infallible write path panics on wider payloads, the fallible
//! path ([`BlockStore::try_store_block`]) rejects them with
//! [`StoreError::PayloadTooWide`]. Keys keep the full 64 bits.

use crate::block::Block;
use crate::element::{Cell, Element};
use crate::error::StoreError;
use crate::mem::{ArrayHandle, ExtMem, IoStats};
use crate::store::{BackingStore, BlockStore};
use crate::util::hash64;

const PAYLOAD_MASK: u64 = (1 << 63) - 1;
const OCC_BIT: u64 = 1 << 63;

/// An encrypted view over an [`ExtMem`] arena.
///
/// Plaintext blocks are encrypted on write and decrypted on read; the
/// underlying arena only ever holds ciphertext words. The per-write nonce is
/// a monotone counter mixed into the keystream, so identical plaintexts
/// encrypt to different ciphertexts on every write (the semantic-security
/// property the paper requires).
#[derive(Debug)]
pub struct EncryptedStore<S: BackingStore = ExtMem> {
    mem: S,
    key: u64,
    write_counter: u64,
    /// Nonce of the latest write for each global block; `u64::MAX` means the
    /// block was never written and decrypts to the all-dummy block.
    nonces: Vec<u64>,
}

impl EncryptedStore {
    /// Creates an encrypted store over a fresh in-memory [`ExtMem`] arena
    /// with the given secret key.
    pub fn new(block_elems: usize, key: u64) -> Self {
        Self::with_backing(ExtMem::new(block_elems), key)
    }
}

impl<S: BackingStore> EncryptedStore<S> {
    /// Wraps an arbitrary backend — in-memory [`ExtMem`] or the on-disk
    /// [`FileStore`](crate::file::FileStore) — with the re-encrypting
    /// masking layer. The backend must be empty (nothing allocated yet):
    /// ciphertext written through this layer is only decryptable through it.
    pub fn with_backing(mem: S, key: u64) -> Self {
        assert_eq!(
            mem.allocated_blocks(),
            0,
            "EncryptedStore must own its backend from the start"
        );
        EncryptedStore {
            mem,
            key,
            write_counter: 0,
            nonces: Vec::new(),
        }
    }

    /// The wrapped backend.
    pub fn backing(&self) -> &S {
        &self.mem
    }

    /// Enables trace capture on the underlying backend.
    pub fn enable_trace(&mut self) {
        BackingStore::enable_trace(&mut self.mem);
    }

    /// Returns and clears the captured access trace.
    pub fn take_trace(&mut self) -> Option<crate::mem::AccessTrace> {
        BackingStore::take_trace(&mut self.mem)
    }

    /// Cumulative I/O statistics of the underlying backend.
    pub fn stats(&self) -> IoStats {
        self.mem.io_stats()
    }

    /// Block size `B`.
    pub fn block_elems(&self) -> usize {
        BlockStore::block_elems(&self.mem)
    }

    #[inline]
    fn keystream(&self, addr: usize, nonce: u64, slot: usize, lane: u64) -> u64 {
        hash64(
            (addr as u64) ^ (slot as u64).rotate_left(20) ^ lane.rotate_left(40),
            self.key ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    fn encrypt_block(&self, addr: usize, nonce: u64, blk: &Block) -> Block {
        let mut out = Block::empty(blk.len());
        for (i, cell) in blk.slots().iter().enumerate() {
            let (w0, w1) = match cell {
                Some(e) => {
                    assert!(
                        e.payload <= PAYLOAD_MASK,
                        "EncryptedStore payloads are limited to 63 bits \
                         (got {:#x} > PAYLOAD_MASK = 2^63 - 1); use try_store_block for a \
                         typed StoreError::PayloadTooWide instead",
                        e.payload
                    );
                    (e.key, OCC_BIT | e.payload)
                }
                None => (0, 0),
            };
            let c0 = w0 ^ self.keystream(addr, nonce, i, 0);
            let c1 = w1 ^ self.keystream(addr, nonce, i, 1);
            out.set(i, Some(Element::new(c0, c1)));
        }
        out
    }

    fn decrypt_block(&self, addr: usize, nonce: u64, blk: &Block) -> Block {
        let mut out = Block::empty(blk.len());
        for i in 0..blk.len() {
            let ct = blk.get(i).expect("ciphertext slots are always present");
            let w0 = ct.key ^ self.keystream(addr, nonce, i, 0);
            let w1 = ct.payload ^ self.keystream(addr, nonce, i, 1);
            if w1 & OCC_BIT != 0 {
                out.set(i, Some(Element::new(w0, w1 & PAYLOAD_MASK)));
            } else {
                out.set(i, None);
            }
        }
        out
    }

    fn ensure_nonces(&mut self) {
        while self.nonces.len() < BackingStore::allocated_blocks(&self.mem) {
            self.nonces.push(u64::MAX);
        }
    }

    /// Allocates an array of `len_elements` slots (initially all dummies).
    pub fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        let h = BlockStore::alloc_array(&mut self.mem, len_elements);
        self.ensure_nonces();
        h
    }

    /// Allocates an array and encrypts the given cells into it. The initial
    /// population is not charged as I/Os, mirroring
    /// [`ExtMem::alloc_array_from_cells`].
    pub fn alloc_array_from_cells(&mut self, cells: &[Cell]) -> ArrayHandle {
        let h = self.alloc_array(cells.len().max(1));
        let b = self.block_elems();
        for (i, chunk) in cells.chunks(b).enumerate() {
            let mut blk = Block::empty(b);
            for (j, c) in chunk.iter().enumerate() {
                blk.set(j, *c);
            }
            self.write_block(&h, i, &blk);
        }
        BackingStore::reset_stats(&mut self.mem);
        h
    }

    /// Reads and decrypts local block `i` of array `h` (one I/O).
    pub fn read_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.try_read_block(h, i)
            .unwrap_or_else(|e| panic!("EncryptedStore: {e}"))
    }

    /// Fallible [`Self::read_block`]: backing-store failures (disk errors,
    /// injected faults) propagate as typed [`StoreError`]s.
    pub fn try_read_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        let addr = h.global_block(i);
        let ct = self.mem.try_load_block(h, i)?;
        let nonce = self.nonces.get(addr).copied().unwrap_or(u64::MAX);
        Ok(if nonce == u64::MAX {
            self.mem.recycle(ct);
            Block::empty(self.block_elems())
        } else {
            let pt = self.decrypt_block(addr, nonce, &ct);
            self.mem.recycle(ct);
            pt
        })
    }

    /// Encrypts and writes local block `i` of array `h` (one I/O). A fresh
    /// nonce is used on every call, so rewriting identical plaintext produces
    /// a different ciphertext.
    pub fn write_block(&mut self, h: &ArrayHandle, i: usize, blk: &Block) {
        self.try_write_block(h, i, blk)
            .unwrap_or_else(|e| panic!("EncryptedStore: {e}"))
    }

    /// Fallible [`Self::write_block`]. The nonce table and write counter are
    /// only advanced after the backing store acknowledges the write, so a
    /// failed (and later retried) write never leaves the nonce map pointing
    /// at a ciphertext that was never persisted.
    pub fn try_write_block(
        &mut self,
        h: &ArrayHandle,
        i: usize,
        blk: &Block,
    ) -> Result<(), StoreError> {
        self.ensure_nonces();
        let addr = h.global_block(i);
        let nonce = self.write_counter + 1;
        let ct = self.encrypt_block(addr, nonce, blk);
        self.mem.try_store_block(h, i, ct)?;
        self.write_counter = nonce;
        self.nonces[addr] = nonce;
        Ok(())
    }

    /// The raw ciphertext currently stored for local block `i` (free of
    /// charge; used by tests to demonstrate ciphertext freshness).
    pub fn raw_ciphertext(&self, h: &ArrayHandle, i: usize) -> Block {
        let cells = BackingStore::snapshot_cells(&self.mem, h);
        let b = self.block_elems();
        let start = i * b;
        Block::from_cells(&cells[start..(start + b).min(cells.len())])
    }

    /// Non-oblivious convenience used by tests and oracles: decrypts the
    /// whole array into a flat vector of plaintext cells **without** charging
    /// I/Os or touching the trace. Never use this inside an algorithm under
    /// test.
    pub fn snapshot_cells(&self, h: &ArrayHandle) -> Vec<Cell> {
        let b = self.block_elems();
        let mut out = Vec::with_capacity(h.len());
        for i in 0..h.n_blocks() {
            let addr = h.global_block(i);
            let nonce = self.nonces.get(addr).copied().unwrap_or(u64::MAX);
            let blk = if nonce == u64::MAX {
                Block::empty(b)
            } else {
                self.decrypt_block(addr, nonce, &self.raw_ciphertext(h, i))
            };
            for j in 0..b {
                if out.len() < h.len() {
                    out.push(blk.get(j));
                }
            }
        }
        out
    }
}

impl<S: BackingStore> BlockStore for EncryptedStore<S> {
    fn block_elems(&self) -> usize {
        EncryptedStore::block_elems(self)
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        EncryptedStore::alloc_array(self, len_elements)
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.read_block(h, i)
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.write_block(h, i, &blk);
        self.mem.recycle(blk);
    }

    fn io_stats(&self) -> IoStats {
        self.stats()
    }

    fn hint_blocks(&mut self, h: &ArrayHandle, blocks: &[usize]) {
        self.mem.hint_blocks(h, blocks);
    }

    fn recycle(&mut self, blk: Block) {
        self.mem.recycle(blk);
    }

    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        self.try_read_block(h, i)
    }

    /// The fallible write path rejects over-wide payloads with a typed
    /// [`StoreError::PayloadTooWide`] instead of panicking, so retrying
    /// wrappers and the `try_` algorithm variants can propagate it; backing
    /// store failures (disk errors, injected faults) propagate unchanged.
    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        if let Some(e) = blk
            .slots()
            .iter()
            .flatten()
            .find(|e| e.payload > PAYLOAD_MASK)
        {
            return Err(StoreError::PayloadTooWide {
                addr: h.global_block(i),
                payload: e.payload,
            });
        }
        self.try_write_block(h, i, &blk)?;
        self.mem.recycle(blk);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: u64) -> Element {
        Element::new(k, k * 10)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut store = EncryptedStore::new(4, 0xDEAD_BEEF);
        let h = store.alloc_array(8);
        let mut blk = Block::empty(4);
        blk.set(0, Some(e(1)));
        blk.set(2, Some(e(2)));
        store.write_block(&h, 0, &blk);
        let back = store.read_block(&h, 0);
        assert_eq!(back, blk);
    }

    #[test]
    fn unwritten_blocks_decrypt_to_dummies() {
        let mut store = EncryptedStore::new(4, 7);
        let h = store.alloc_array(8);
        let blk = store.read_block(&h, 1);
        assert!(blk.is_all_dummy());
    }

    #[test]
    fn rewriting_same_plaintext_changes_ciphertext() {
        let mut store = EncryptedStore::new(4, 42);
        let h = store.alloc_array(4);
        let mut blk = Block::empty(4);
        blk.set(1, Some(e(5)));
        store.write_block(&h, 0, &blk);
        let ct1 = store.raw_ciphertext(&h, 0);
        store.write_block(&h, 0, &blk);
        let ct2 = store.raw_ciphertext(&h, 0);
        assert_ne!(ct1, ct2, "re-encryption must produce a fresh ciphertext");
        assert_eq!(store.read_block(&h, 0), blk);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut store = EncryptedStore::new(2, 9);
        let h = store.alloc_array(2);
        let mut blk = Block::empty(2);
        blk.set(0, Some(e(1)));
        store.write_block(&h, 0, &blk);
        let ct = store.raw_ciphertext(&h, 0);
        assert_ne!(ct.get(0), Some(e(1)));
    }

    #[test]
    fn dummy_and_occupied_slots_are_indistinguishable_in_ciphertext() {
        // Every ciphertext slot is Some(..) regardless of plaintext occupancy,
        // so the server cannot count occupied slots.
        let mut store = EncryptedStore::new(4, 11);
        let h = store.alloc_array(4);
        let mut blk = Block::empty(4);
        blk.set(0, Some(e(1)));
        store.write_block(&h, 0, &blk);
        let ct = store.raw_ciphertext(&h, 0);
        assert!(ct.slots().iter().all(|s| s.is_some()));
    }

    #[test]
    fn io_is_charged_per_block() {
        let mut store = EncryptedStore::new(4, 1);
        let h = store.alloc_array(8);
        let blk = Block::empty(4);
        store.write_block(&h, 0, &blk);
        let _ = store.read_block(&h, 0);
        assert_eq!(store.stats().reads, 1);
        assert_eq!(store.stats().writes, 1);
    }

    #[test]
    fn populated_construction_is_free_and_roundtrips() {
        let mut store = EncryptedStore::new(4, 3);
        let cells: Vec<Cell> = (0..10).map(|i| Some(e(i))).collect();
        let h = store.alloc_array_from_cells(&cells);
        assert_eq!(store.stats().total(), 0);
        let mut out = Vec::new();
        for i in 0..h.n_blocks() {
            out.extend(store.read_block(&h, i).occupied());
        }
        assert_eq!(out, (0..10).map(e).collect::<Vec<_>>());
    }

    #[test]
    fn block_store_trait_roundtrips_through_encryption() {
        let mut store = EncryptedStore::new(4, 0xFACE);
        let h = BlockStore::alloc_array(&mut store, 10);
        let cells: Vec<Cell> = (0..10).map(|i| Some(e(i))).collect();
        store.store_span(&h, 0, &cells);
        assert_eq!(store.load_span(&h, 0, 10), cells);
        // The free snapshot decrypts to the same plaintext.
        assert_eq!(store.snapshot_cells(&h), cells);
        // ...and the underlying arena holds only ciphertext.
        assert_ne!(store.raw_ciphertext(&h, 0).get(0), cells[0]);
    }

    #[test]
    #[should_panic(expected = "63 bits")]
    fn oversized_payload_is_rejected() {
        let mut store = EncryptedStore::new(2, 1);
        let h = store.alloc_array(2);
        let mut blk = Block::empty(2);
        blk.set(0, Some(Element::new(1, u64::MAX)));
        store.write_block(&h, 0, &blk);
    }

    #[test]
    fn oversized_payload_is_a_typed_error_on_the_fallible_path() {
        let mut store = EncryptedStore::new(2, 1);
        let h = store.alloc_array(4);
        let mut blk = Block::empty(2);
        blk.set(0, Some(Element::new(1, u64::MAX)));
        let err = store.try_store_block(&h, 1, blk).unwrap_err();
        assert_eq!(
            err,
            StoreError::PayloadTooWide {
                addr: h.global_block(1),
                payload: u64::MAX
            }
        );
        // Nothing was written and no I/O was charged for the rejected call.
        assert_eq!(store.stats().writes, 0);
        // Valid payloads still go through the fallible path.
        let mut ok = Block::empty(2);
        ok.set(0, Some(Element::new(1, (1 << 63) - 1)));
        store.try_store_block(&h, 1, ok.clone()).unwrap();
        assert_eq!(store.try_load_block(&h, 1).unwrap(), ok);
    }
}
