//! Simulated semantically secure block encryption.
//!
//! The paper assumes block contents are encrypted "using a semantically
//! secure encryption scheme such that re-encryption of the same value is
//! indistinguishable from an encryption of a different value" (Section 1).
//! The obliviousness arguments never rely on *how* encryption works — only on
//! the fact that the server learns nothing from ciphertexts and therefore the
//! only signal is the address trace.
//!
//! [`EncryptedStore`] exists so the examples and integration tests exercise
//! the full read–decrypt–modify–re-encrypt–write path a real outsourced-store
//! client would use, and so we can *demonstrate* the semantic-security
//! modelling: every write uses a fresh nonce, so writing the same plaintext
//! block twice produces different ciphertexts.
//!
//! The cipher is a keyed `splitmix64` keystream (a toy stream cipher). It is
//! **not** cryptographically strong and is clearly documented as a
//! simulation substitute — the substitution table in `DESIGN.md` at the
//! workspace root maps every toy primitive to its real counterpart;
//! swapping in a real AEAD would not change any access pattern or I/O
//! count. Note that
//! encryption alone provides **no integrity or freshness**: wrap the store
//! in [`AuthenticatedStore`](crate::auth::AuthenticatedStore) when the
//! server may tamper or roll back.
//!
//! # Encoding
//!
//! Each cell is serialised to two 64-bit plaintext words: the key, and a word
//! whose top bit is the occupancy flag and whose low 63 bits are the payload.
//! Consequently payloads stored through the encrypted path are limited to 63
//! bits: the infallible write path panics on wider payloads, the fallible
//! path ([`BlockStore::try_store_block`]) rejects them with
//! [`StoreError::PayloadTooWide`]. Keys keep the full 64 bits.
//!
//! # The batched keystream kernel
//!
//! The scalar reference path derives each keystream word independently as
//! `hash64(addr ⊕ rot(slot) ⊕ rot(lane), key ⊕ nonce·φ)` — two `splitmix64`
//! applications per word, four per cell. [`fill_keystream`] produces the
//! identical words for a whole block at once: the inner `splitmix64(salt)`
//! depends only on `(key, nonce)`, so it is hoisted out of the loop, and the
//! remaining per-word finalizer runs over 8-wide unrolled lanes so the
//! compiler can keep eight independent mixing chains in flight. The kernel
//! is **bit-identical to the scalar path by construction** (same ops per
//! word, only hoisted and reordered across independent words); the property
//! battery asserts equality word for word.
//!
//! **Scratch-buffer lifetime.** The kernel writes into a caller-owned
//! `Vec<u64>` that is resized (never shrunk) to `2B` words. The store and
//! every [`EncryptedReader`] own exactly one such scratch each, reused
//! across calls, so steady-state en/decryption performs no allocation. The
//! scratch holds *keystream*, not plaintext, and is overwritten in full by
//! the next call — nothing needs zeroizing between blocks. Never share one
//! scratch across threads: parallel span encryption gives each worker its
//! own (see [`Prefetchable::store_run`] on this type).

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::block::Block;
use crate::element::{Cell, Element};
use crate::error::StoreError;
use crate::mem::{ArrayHandle, ExtMem, IoStats};
use crate::prefetch::{PrefetchRead, Prefetchable};
use crate::store::{BackingStore, BlockStore};
use crate::util::{hash64, splitmix64};

const PAYLOAD_MASK: u64 = (1 << 63) - 1;
const OCC_BIT: u64 = 1 << 63;

/// The golden-ratio multiplier mixed into the per-write nonce (the same
/// constant `splitmix64` increments by).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Lane-1 (payload word) tweak: `1u64.rotate_left(40)` of the scalar path.
const LANE1: u64 = 1u64 << 40;

/// Unroll width of the batched keystream kernel.
const KS_LANES: usize = 8;

/// Runs at least this many blocks are worth encrypting on scoped worker
/// threads inside [`Prefetchable::store_run`]; shorter runs stay on the
/// calling thread (thread spawn would cost more than the keystream).
const PAR_ENCRYPT_MIN_BLOCKS: usize = 64;

/// Scalar reference keystream word for `(addr, nonce, slot, lane)` — the
/// oracle the batched kernel is tested against, and the exact function the
/// original per-word path computed.
#[cfg_attr(not(test), allow(dead_code))]
#[inline]
fn keystream_word(key: u64, addr: usize, nonce: u64, slot: usize, lane: u64) -> u64 {
    hash64(
        (addr as u64) ^ (slot as u64).rotate_left(20) ^ lane.rotate_left(40),
        key ^ nonce.wrapping_mul(GOLDEN),
    )
}

/// Fills `out` with the `2·b` keystream words of block `addr` under `nonce`:
/// `out[2i]` masks the key word of slot `i`, `out[2i+1]` the payload word.
/// Bit-identical to [`keystream_word`] per word; see the module docs for the
/// hoisting/unrolling argument and the scratch-buffer lifetime rules.
fn fill_keystream(key: u64, addr: usize, nonce: u64, b: usize, out: &mut Vec<u64>) {
    out.resize(2 * b, 0);
    // hash64(x, salt) = splitmix64(x ^ splitmix64(salt)): the inner
    // application depends only on (key, nonce) — hoist it.
    let salt_mix = splitmix64(key ^ nonce.wrapping_mul(GOLDEN));
    let base = (addr as u64) ^ salt_mix;
    let mut i = 0;
    while i + KS_LANES <= b {
        let mut x0 = [0u64; KS_LANES];
        let mut x1 = [0u64; KS_LANES];
        for l in 0..KS_LANES {
            let x = base ^ ((i + l) as u64).rotate_left(20);
            x0[l] = x;
            x1[l] = x ^ LANE1;
        }
        for x in &mut x0 {
            *x = splitmix64(*x);
        }
        for x in &mut x1 {
            *x = splitmix64(*x);
        }
        for l in 0..KS_LANES {
            out[2 * (i + l)] = x0[l];
            out[2 * (i + l) + 1] = x1[l];
        }
        i += KS_LANES;
    }
    while i < b {
        let x = base ^ (i as u64).rotate_left(20);
        out[2 * i] = splitmix64(x);
        out[2 * i + 1] = splitmix64(x ^ LANE1);
        i += 1;
    }
}

/// Encrypts `blk` into a fresh ciphertext block using the batched kernel.
/// Panics on payloads wider than 63 bits (the fallible store paths reject
/// them with a typed error before reaching this point).
fn encrypt_block_with(key: u64, addr: usize, nonce: u64, blk: &Block, ks: &mut Vec<u64>) -> Block {
    fill_keystream(key, addr, nonce, blk.len(), ks);
    let mut out = Block::empty(blk.len());
    for (i, cell) in blk.slots().iter().enumerate() {
        let (w0, w1) = match cell {
            Some(e) => {
                assert!(
                    e.payload <= PAYLOAD_MASK,
                    "EncryptedStore payloads are limited to 63 bits \
                     (got {:#x} > PAYLOAD_MASK = 2^63 - 1); use try_store_block for a \
                     typed StoreError::PayloadTooWide instead",
                    e.payload
                );
                (e.key, OCC_BIT | e.payload)
            }
            None => (0, 0),
        };
        out.set(i, Some(Element::new(w0 ^ ks[2 * i], w1 ^ ks[2 * i + 1])));
    }
    out
}

/// Decrypts a ciphertext block using the batched kernel. A missing
/// ciphertext slot (only possible when a background reader races the very
/// first write of a block) decrypts as zero words — the garbage result is
/// dropped by the prefetch invalidation protocol, never served.
fn decrypt_block_with(key: u64, addr: usize, nonce: u64, blk: &Block, ks: &mut Vec<u64>) -> Block {
    fill_keystream(key, addr, nonce, blk.len(), ks);
    let mut out = Block::empty(blk.len());
    for i in 0..blk.len() {
        let (c0, c1) = match blk.get(i) {
            Some(ct) => (ct.key, ct.payload),
            None => (0, 0),
        };
        let w0 = c0 ^ ks[2 * i];
        let w1 = c1 ^ ks[2 * i + 1];
        if w1 & OCC_BIT != 0 {
            out.set(i, Some(Element::new(w0, w1 & PAYLOAD_MASK)));
        } else {
            out.set(i, None);
        }
    }
    out
}

/// Locks the shared nonce table for reading, recovering from poison (no
/// writer mutates it non-atomically, so a panicked holder leaves it valid).
fn read_nonces(nonces: &RwLock<Vec<u64>>) -> RwLockReadGuard<'_, Vec<u64>> {
    nonces.read().unwrap_or_else(|p| p.into_inner())
}

fn write_nonces(nonces: &RwLock<Vec<u64>>) -> RwLockWriteGuard<'_, Vec<u64>> {
    nonces.write().unwrap_or_else(|p| p.into_inner())
}

/// An encrypted view over an [`ExtMem`] arena.
///
/// Plaintext blocks are encrypted on write and decrypted on read; the
/// underlying arena only ever holds ciphertext words. The per-write nonce is
/// a monotone counter mixed into the keystream, so identical plaintexts
/// encrypt to different ciphertexts on every write (the semantic-security
/// property the paper requires).
#[derive(Debug)]
pub struct EncryptedStore<S: BackingStore = ExtMem> {
    mem: S,
    key: u64,
    write_counter: u64,
    /// Nonce of the latest write for each global block; `u64::MAX` means the
    /// block was never written and decrypts to the all-dummy block. Shared
    /// (read-only) with every [`EncryptedReader`] this store hands out, so
    /// background workers can decrypt ahead of the foreground.
    nonces: Arc<RwLock<Vec<u64>>>,
    /// Reusable keystream scratch of the batched kernel (see module docs).
    ks: Vec<u64>,
}

impl EncryptedStore {
    /// Creates an encrypted store over a fresh in-memory [`ExtMem`] arena
    /// with the given secret key.
    pub fn new(block_elems: usize, key: u64) -> Self {
        Self::with_backing(ExtMem::new(block_elems), key)
    }
}

impl<S: BackingStore> EncryptedStore<S> {
    /// Wraps an arbitrary backend — in-memory [`ExtMem`] or the on-disk
    /// [`FileStore`](crate::file::FileStore) — with the re-encrypting
    /// masking layer. The backend must be empty (nothing allocated yet):
    /// ciphertext written through this layer is only decryptable through it.
    /// Panics on a non-empty backend; see
    /// [`try_with_backing`](Self::try_with_backing) for the fallible form.
    pub fn with_backing(mem: S, key: u64) -> Self {
        Self::try_with_backing(mem, key).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::with_backing`]: wrapping a backend that already has
    /// blocks allocated is refused with a typed
    /// [`StoreError::InvalidArgument`] instead of a panic (the ciphertext
    /// this layer writes is only decryptable through it, so adopting
    /// pre-existing foreign blocks could never round-trip).
    pub fn try_with_backing(mem: S, key: u64) -> Result<Self, StoreError> {
        if mem.allocated_blocks() != 0 {
            return Err(StoreError::InvalidArgument {
                reason: "EncryptedStore must own its backend from the start",
            });
        }
        Ok(EncryptedStore {
            mem,
            key,
            write_counter: 0,
            nonces: Arc::new(RwLock::new(Vec::new())),
            ks: Vec::new(),
        })
    }

    /// The wrapped backend.
    pub fn backing(&self) -> &S {
        &self.mem
    }

    /// Enables trace capture on the underlying backend.
    pub fn enable_trace(&mut self) {
        BackingStore::enable_trace(&mut self.mem);
    }

    /// Returns and clears the captured access trace.
    pub fn take_trace(&mut self) -> Option<crate::mem::AccessTrace> {
        BackingStore::take_trace(&mut self.mem)
    }

    /// Cumulative I/O statistics of the underlying backend.
    pub fn stats(&self) -> IoStats {
        self.mem.io_stats()
    }

    /// Block size `B`.
    pub fn block_elems(&self) -> usize {
        BlockStore::block_elems(&self.mem)
    }

    /// The latest-write nonce of global block `addr` (`u64::MAX` = never
    /// written).
    fn nonce_of(&self, addr: usize) -> u64 {
        read_nonces(&self.nonces)
            .get(addr)
            .copied()
            .unwrap_or(u64::MAX)
    }

    fn ensure_nonces(&mut self) {
        let top = BackingStore::allocated_blocks(&self.mem);
        let mut nonces = write_nonces(&self.nonces);
        while nonces.len() < top {
            nonces.push(u64::MAX);
        }
    }

    /// Allocates an array of `len_elements` slots (initially all dummies).
    pub fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        let h = BlockStore::alloc_array(&mut self.mem, len_elements);
        self.ensure_nonces();
        h
    }

    /// Allocates an array and encrypts the given cells into it. The initial
    /// population is not charged as I/Os, mirroring
    /// [`ExtMem::alloc_array_from_cells`].
    pub fn alloc_array_from_cells(&mut self, cells: &[Cell]) -> ArrayHandle {
        let h = self.alloc_array(cells.len().max(1));
        let b = self.block_elems();
        for (i, chunk) in cells.chunks(b).enumerate() {
            let mut blk = Block::empty(b);
            for (j, c) in chunk.iter().enumerate() {
                blk.set(j, *c);
            }
            self.write_block(&h, i, &blk);
        }
        BackingStore::reset_stats(&mut self.mem);
        h
    }

    /// Reads and decrypts local block `i` of array `h` (one I/O).
    pub fn read_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.try_read_block(h, i)
            .unwrap_or_else(|e| panic!("EncryptedStore: {e}"))
    }

    /// Fallible [`Self::read_block`]: backing-store failures (disk errors,
    /// injected faults) propagate as typed [`StoreError`]s.
    pub fn try_read_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        let addr = h.global_block(i);
        let ct = self.mem.try_load_block(h, i)?;
        let nonce = self.nonce_of(addr);
        Ok(if nonce == u64::MAX {
            self.mem.recycle(ct);
            Block::empty(self.block_elems())
        } else {
            let pt = decrypt_block_with(self.key, addr, nonce, &ct, &mut self.ks);
            self.mem.recycle(ct);
            pt
        })
    }

    /// Encrypts and writes local block `i` of array `h` (one I/O). A fresh
    /// nonce is used on every call, so rewriting identical plaintext produces
    /// a different ciphertext.
    pub fn write_block(&mut self, h: &ArrayHandle, i: usize, blk: &Block) {
        self.try_write_block(h, i, blk)
            .unwrap_or_else(|e| panic!("EncryptedStore: {e}"))
    }

    /// Fallible [`Self::write_block`]. The nonce table and write counter are
    /// only advanced after the backing store acknowledges the write, so a
    /// failed (and later retried) write never leaves the nonce map pointing
    /// at a ciphertext that was never persisted.
    pub fn try_write_block(
        &mut self,
        h: &ArrayHandle,
        i: usize,
        blk: &Block,
    ) -> Result<(), StoreError> {
        self.ensure_nonces();
        let addr = h.global_block(i);
        let nonce = self.write_counter + 1;
        let ct = encrypt_block_with(self.key, addr, nonce, blk, &mut self.ks);
        self.mem.try_store_block(h, i, ct)?;
        self.write_counter = nonce;
        write_nonces(&self.nonces)[addr] = nonce;
        Ok(())
    }

    /// The raw ciphertext currently stored for local block `i` (free of
    /// charge; used by tests to demonstrate ciphertext freshness).
    pub fn raw_ciphertext(&self, h: &ArrayHandle, i: usize) -> Block {
        let cells = BackingStore::snapshot_cells(&self.mem, h);
        let b = self.block_elems();
        let start = i * b;
        Block::from_cells(&cells[start..(start + b).min(cells.len())])
    }

    /// Non-oblivious convenience used by tests and oracles: decrypts the
    /// whole array into a flat vector of plaintext cells **without** charging
    /// I/Os or touching the trace. Never use this inside an algorithm under
    /// test.
    pub fn snapshot_cells(&self, h: &ArrayHandle) -> Vec<Cell> {
        let b = self.block_elems();
        let mut ks = Vec::new();
        let mut out = Vec::with_capacity(h.len());
        for i in 0..h.n_blocks() {
            let addr = h.global_block(i);
            let nonce = self.nonce_of(addr);
            let blk = if nonce == u64::MAX {
                Block::empty(b)
            } else {
                decrypt_block_with(self.key, addr, nonce, &self.raw_ciphertext(h, i), &mut ks)
            };
            for j in 0..b {
                if out.len() < h.len() {
                    out.push(blk.get(j));
                }
            }
        }
        out
    }
}

impl<S: BackingStore> BlockStore for EncryptedStore<S> {
    fn block_elems(&self) -> usize {
        EncryptedStore::block_elems(self)
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        EncryptedStore::alloc_array(self, len_elements)
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.read_block(h, i)
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.write_block(h, i, &blk);
        self.mem.recycle(blk);
    }

    fn io_stats(&self) -> IoStats {
        self.stats()
    }

    fn hint_blocks(&mut self, h: &ArrayHandle, blocks: &[usize]) {
        self.mem.hint_blocks(h, blocks);
    }

    fn recycle(&mut self, blk: Block) {
        self.mem.recycle(blk);
    }

    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        self.try_read_block(h, i)
    }

    /// The fallible write path rejects over-wide payloads with a typed
    /// [`StoreError::PayloadTooWide`] instead of panicking, so retrying
    /// wrappers and the `try_` algorithm variants can propagate it; backing
    /// store failures (disk errors, injected faults) propagate unchanged.
    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        if let Some(e) = blk
            .slots()
            .iter()
            .flatten()
            .find(|e| e.payload > PAYLOAD_MASK)
        {
            return Err(StoreError::PayloadTooWide {
                addr: h.global_block(i),
                payload: e.payload,
            });
        }
        self.try_write_block(h, i, &blk)?;
        self.mem.recycle(blk);
        Ok(())
    }
}

/// Background reader over an encrypted store: fetches ciphertext through the
/// backend's own reader and decrypts it *on the worker thread* (the
/// decrypt-ahead half of the span pipeline), sharing the store's nonce table
/// read-only. A fetch racing a foreground write may decrypt under a
/// mismatched nonce; the prefetch invalidation protocol guarantees such a
/// result is dropped, never served.
#[derive(Debug)]
pub struct EncryptedReader<R: PrefetchRead> {
    inner: R,
    key: u64,
    block_elems: usize,
    nonces: Arc<RwLock<Vec<u64>>>,
    ks: Vec<u64>,
}

impl<R: PrefetchRead> EncryptedReader<R> {
    fn decrypt(&mut self, addr: usize, nonce: u64, ct: Block) -> Block {
        if nonce == u64::MAX {
            Block::empty(self.block_elems)
        } else {
            decrypt_block_with(self.key, addr, nonce, &ct, &mut self.ks)
        }
    }
}

impl<R: PrefetchRead> PrefetchRead for EncryptedReader<R> {
    fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
        let ct = self.inner.fetch(addr)?;
        let nonce = read_nonces(&self.nonces)
            .get(addr)
            .copied()
            .unwrap_or(u64::MAX);
        Ok(self.decrypt(addr, nonce, ct))
    }

    fn fetch_run(&mut self, start: usize, count: usize) -> Vec<Result<Block, StoreError>> {
        let cts = self.inner.fetch_run(start, count);
        // One lock round-trip covers the whole run's nonces.
        let nonces: Vec<u64> = {
            let g = read_nonces(&self.nonces);
            (start..start + count)
                .map(|a| g.get(a).copied().unwrap_or(u64::MAX))
                .collect()
        };
        cts.into_iter()
            .zip(nonces)
            .enumerate()
            .map(|(k, (res, nonce))| res.map(|ct| self.decrypt(start + k, nonce, ct)))
            .collect()
    }
}

impl<S: BackingStore + Prefetchable> Prefetchable for EncryptedStore<S> {
    type Reader = EncryptedReader<S::Reader>;

    fn reader(&self) -> Self::Reader {
        EncryptedReader {
            inner: self.mem.reader(),
            key: self.key,
            block_elems: self.block_elems(),
            nonces: Arc::clone(&self.nonces),
            ks: Vec::new(),
        }
    }

    fn supports_store_runs(&self) -> bool {
        self.mem.supports_store_runs()
    }

    /// Encrypts the whole run — in parallel on scoped threads once the run
    /// is long enough to amortize them (the encrypt-behind half of the span
    /// pipeline; bit-identical either way, since each block's ciphertext is
    /// a pure function of `(key, addr, nonce, plaintext)`) — then hands the
    /// backend one span write. Nonces are assigned monotonically per block
    /// exactly as `block_at_a_time` writes would, and committed only after
    /// the backend acknowledges the span, so a cleanly failed span leaves
    /// every nonce at its pre-call value. (A *partially torn* span is
    /// indistinguishable from any other torn server write: stale-nonce
    /// ciphertext that decrypts to garbage, caught by the authentication
    /// layer, exactly like a torn block-at-a-time write sequence.)
    fn store_run(&mut self, start: usize, blks: Vec<Block>) -> Result<(), StoreError> {
        for (k, blk) in blks.iter().enumerate() {
            if let Some(e) = blk
                .slots()
                .iter()
                .flatten()
                .find(|e| e.payload > PAYLOAD_MASK)
            {
                return Err(StoreError::PayloadTooWide {
                    addr: start + k,
                    payload: e.payload,
                });
            }
        }
        self.ensure_nonces();
        let base = self.write_counter;
        let key = self.key;
        let n = blks.len();
        let par = n >= PAR_ENCRYPT_MIN_BLOCKS
            && std::thread::available_parallelism().map_or(1, |p| p.get()) > 1;
        let cts: Vec<Block> = if par {
            let workers = std::thread::available_parallelism()
                .map_or(1, |p| p.get())
                .min(4);
            let chunk = n.div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = blks
                    .chunks(chunk)
                    .enumerate()
                    .map(|(c, part)| {
                        scope.spawn(move || {
                            let mut ks = Vec::new();
                            part.iter()
                                .enumerate()
                                .map(|(j, blk)| {
                                    let k = c * chunk + j;
                                    encrypt_block_with(
                                        key,
                                        start + k,
                                        base + 1 + k as u64,
                                        blk,
                                        &mut ks,
                                    )
                                })
                                .collect::<Vec<Block>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("encrypt worker panicked"))
                    .collect()
            })
        } else {
            blks.iter()
                .enumerate()
                .map(|(k, blk)| {
                    encrypt_block_with(key, start + k, base + 1 + k as u64, blk, &mut self.ks)
                })
                .collect()
        };
        for blk in blks {
            self.mem.recycle(blk);
        }
        self.mem.store_run(start, cts)?;
        self.write_counter = base + n as u64;
        let mut nonces = write_nonces(&self.nonces);
        for k in 0..n {
            nonces[start + k] = base + 1 + k as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::FileStore;

    fn e(k: u64) -> Element {
        Element::new(k, k * 10)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut store = EncryptedStore::new(4, 0xDEAD_BEEF);
        let h = store.alloc_array(8);
        let mut blk = Block::empty(4);
        blk.set(0, Some(e(1)));
        blk.set(2, Some(e(2)));
        store.write_block(&h, 0, &blk);
        let back = store.read_block(&h, 0);
        assert_eq!(back, blk);
    }

    #[test]
    fn unwritten_blocks_decrypt_to_dummies() {
        let mut store = EncryptedStore::new(4, 7);
        let h = store.alloc_array(8);
        let blk = store.read_block(&h, 1);
        assert!(blk.is_all_dummy());
    }

    #[test]
    fn rewriting_same_plaintext_changes_ciphertext() {
        let mut store = EncryptedStore::new(4, 42);
        let h = store.alloc_array(4);
        let mut blk = Block::empty(4);
        blk.set(1, Some(e(5)));
        store.write_block(&h, 0, &blk);
        let ct1 = store.raw_ciphertext(&h, 0);
        store.write_block(&h, 0, &blk);
        let ct2 = store.raw_ciphertext(&h, 0);
        assert_ne!(ct1, ct2, "re-encryption must produce a fresh ciphertext");
        assert_eq!(store.read_block(&h, 0), blk);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut store = EncryptedStore::new(2, 9);
        let h = store.alloc_array(2);
        let mut blk = Block::empty(2);
        blk.set(0, Some(e(1)));
        store.write_block(&h, 0, &blk);
        let ct = store.raw_ciphertext(&h, 0);
        assert_ne!(ct.get(0), Some(e(1)));
    }

    #[test]
    fn dummy_and_occupied_slots_are_indistinguishable_in_ciphertext() {
        // Every ciphertext slot is Some(..) regardless of plaintext occupancy,
        // so the server cannot count occupied slots.
        let mut store = EncryptedStore::new(4, 11);
        let h = store.alloc_array(4);
        let mut blk = Block::empty(4);
        blk.set(0, Some(e(1)));
        store.write_block(&h, 0, &blk);
        let ct = store.raw_ciphertext(&h, 0);
        assert!(ct.slots().iter().all(|s| s.is_some()));
    }

    #[test]
    fn io_is_charged_per_block() {
        let mut store = EncryptedStore::new(4, 1);
        let h = store.alloc_array(8);
        let blk = Block::empty(4);
        store.write_block(&h, 0, &blk);
        let _ = store.read_block(&h, 0);
        assert_eq!(store.stats().reads, 1);
        assert_eq!(store.stats().writes, 1);
    }

    #[test]
    fn populated_construction_is_free_and_roundtrips() {
        let mut store = EncryptedStore::new(4, 3);
        let cells: Vec<Cell> = (0..10).map(|i| Some(e(i))).collect();
        let h = store.alloc_array_from_cells(&cells);
        assert_eq!(store.stats().total(), 0);
        let mut out = Vec::new();
        for i in 0..h.n_blocks() {
            out.extend(store.read_block(&h, i).occupied());
        }
        assert_eq!(out, (0..10).map(e).collect::<Vec<_>>());
    }

    #[test]
    fn block_store_trait_roundtrips_through_encryption() {
        let mut store = EncryptedStore::new(4, 0xFACE);
        let h = BlockStore::alloc_array(&mut store, 10);
        let cells: Vec<Cell> = (0..10).map(|i| Some(e(i))).collect();
        store.store_span(&h, 0, &cells);
        assert_eq!(store.load_span(&h, 0, 10), cells);
        // The free snapshot decrypts to the same plaintext.
        assert_eq!(store.snapshot_cells(&h), cells);
        // ...and the underlying arena holds only ciphertext.
        assert_ne!(store.raw_ciphertext(&h, 0).get(0), cells[0]);
    }

    #[test]
    #[should_panic(expected = "63 bits")]
    fn oversized_payload_is_rejected() {
        let mut store = EncryptedStore::new(2, 1);
        let h = store.alloc_array(2);
        let mut blk = Block::empty(2);
        blk.set(0, Some(Element::new(1, u64::MAX)));
        store.write_block(&h, 0, &blk);
    }

    #[test]
    fn oversized_payload_is_a_typed_error_on_the_fallible_path() {
        let mut store = EncryptedStore::new(2, 1);
        let h = store.alloc_array(4);
        let mut blk = Block::empty(2);
        blk.set(0, Some(Element::new(1, u64::MAX)));
        let err = store.try_store_block(&h, 1, blk).unwrap_err();
        assert_eq!(
            err,
            StoreError::PayloadTooWide {
                addr: h.global_block(1),
                payload: u64::MAX
            }
        );
        // Nothing was written and no I/O was charged for the rejected call.
        assert_eq!(store.stats().writes, 0);
        // Valid payloads still go through the fallible path.
        let mut ok = Block::empty(2);
        ok.set(0, Some(Element::new(1, (1 << 63) - 1)));
        store.try_store_block(&h, 1, ok.clone()).unwrap();
        assert_eq!(store.try_load_block(&h, 1).unwrap(), ok);
    }

    // --- the batched kernel and the span path ---

    #[test]
    fn batched_keystream_is_bit_identical_to_the_scalar_oracle() {
        // Every block size from 1 (all tail) through several unroll widths,
        // across addresses and nonces including the extremes.
        let mut ks = Vec::new();
        for b in [1usize, 2, 3, 7, 8, 9, 16, 17, 64] {
            for &addr in &[0usize, 1, 5, 1 << 20, usize::MAX >> 1] {
                for &nonce in &[0u64, 1, 2, 0xFFFF_FFFF, u64::MAX - 1] {
                    for &key in &[0u64, 0xA11CE, u64::MAX] {
                        fill_keystream(key, addr, nonce, b, &mut ks);
                        for slot in 0..b {
                            assert_eq!(
                                ks[2 * slot],
                                keystream_word(key, addr, nonce, slot, 0),
                                "lane0 b={b} addr={addr} nonce={nonce} slot={slot}"
                            );
                            assert_eq!(
                                ks[2 * slot + 1],
                                keystream_word(key, addr, nonce, slot, 1),
                                "lane1 b={b} addr={addr} nonce={nonce} slot={slot}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn store_run_produces_byte_identical_ciphertext_to_block_writes() {
        // Same key, same plaintexts, same nonce sequence: the span path must
        // leave the exact bytes on the backend that N block writes would.
        let cells: Vec<Cell> = (0..256).map(|i| Some(e(i))).collect();
        let b = 4;
        let n_blocks = cells.len() / b;

        let mut one = EncryptedStore::with_backing(FileStore::temp(b).unwrap(), 0x50F7);
        let h1 = BlockStore::alloc_array(&mut one, cells.len());
        for (i, chunk) in cells.chunks(b).enumerate() {
            one.write_block(&h1, i, &Block::from_cells(chunk));
        }

        let mut run = EncryptedStore::with_backing(FileStore::temp(b).unwrap(), 0x50F7);
        let h2 = BlockStore::alloc_array(&mut run, cells.len());
        let blks: Vec<Block> = cells.chunks(b).map(Block::from_cells).collect();
        run.store_run(h2.global_block(0), blks).unwrap();

        for i in 0..n_blocks {
            assert_eq!(
                one.raw_ciphertext(&h1, i),
                run.raw_ciphertext(&h2, i),
                "ciphertext of block {i} diverged between the span and block paths"
            );
        }
        assert_eq!(run.snapshot_cells(&h2), cells);
    }

    #[test]
    fn long_runs_take_the_parallel_encrypt_path_and_stay_identical() {
        // PAR_ENCRYPT_MIN_BLOCKS or more blocks: the scoped-thread encrypt
        // must produce the same bytes as the sequential path.
        let b = 8;
        let n = PAR_ENCRYPT_MIN_BLOCKS + 7;
        let cells: Vec<Cell> = (0..(n * b) as u64).map(|i| Some(e(i))).collect();
        let blks: Vec<Block> = cells.chunks(b).map(Block::from_cells).collect();

        let mut seq = EncryptedStore::with_backing(FileStore::temp(b).unwrap(), 0xBEE);
        let hs = BlockStore::alloc_array(&mut seq, cells.len());
        for (i, blk) in blks.iter().enumerate() {
            seq.write_block(&hs, i, blk);
        }

        let mut par = EncryptedStore::with_backing(FileStore::temp(b).unwrap(), 0xBEE);
        let hp = BlockStore::alloc_array(&mut par, cells.len());
        par.store_run(hp.global_block(0), blks).unwrap();

        for i in 0..n {
            assert_eq!(seq.raw_ciphertext(&hs, i), par.raw_ciphertext(&hp, i));
        }
    }

    #[test]
    fn store_run_rejects_oversized_payloads_before_writing_anything() {
        let mut store = EncryptedStore::with_backing(FileStore::temp(2).unwrap(), 1);
        let h = BlockStore::alloc_array(&mut store, 8);
        let mut bad = Block::empty(2);
        bad.set(0, Some(Element::new(1, u64::MAX)));
        let err = store
            .store_run(h.global_block(0), vec![Block::empty(2), bad])
            .unwrap_err();
        assert_eq!(
            err,
            StoreError::PayloadTooWide {
                addr: h.global_block(1),
                payload: u64::MAX
            }
        );
        assert_eq!(store.stats().writes, 0, "the run was refused up front");
        // Nonces untouched: every block still decrypts as never-written.
        assert!(store.read_block(&h, 0).is_all_dummy());
    }

    #[test]
    fn reader_decrypts_what_the_foreground_wrote() {
        let mut store = EncryptedStore::with_backing(FileStore::temp(4).unwrap(), 0xD0_0D);
        let cells: Vec<Cell> = (0..32).map(|i| Some(e(i))).collect();
        let h = store.alloc_array_from_cells(&cells);
        let mut reader = store.reader();
        // Single fetch and span fetch agree with the foreground view.
        for i in 0..h.n_blocks() {
            let addr = h.global_block(i);
            assert_eq!(reader.fetch(addr).unwrap(), store.read_block(&h, i));
        }
        let run: Vec<Block> = reader
            .fetch_run(h.global_block(0), h.n_blocks())
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        for (i, blk) in run.iter().enumerate() {
            assert_eq!(*blk, store.read_block(&h, i));
        }
    }

    #[test]
    fn reader_sees_unwritten_blocks_as_dummies() {
        let mut store = EncryptedStore::with_backing(FileStore::temp(4).unwrap(), 3);
        let h = store.alloc_array(16);
        let mut reader = store.reader();
        for res in reader.fetch_run(h.global_block(0), h.n_blocks()) {
            assert!(res.unwrap().is_all_dummy());
        }
    }

    #[test]
    fn try_with_backing_refuses_a_non_empty_backend_with_a_typed_error() {
        let mut fs = FileStore::temp(4).unwrap();
        let _ = BlockStore::alloc_array(&mut fs, 8);
        let err = EncryptedStore::try_with_backing(fs, 1).unwrap_err();
        assert_eq!(
            err,
            StoreError::InvalidArgument {
                reason: "EncryptedStore must own its backend from the start"
            }
        );
    }

    #[test]
    #[should_panic(expected = "must own its backend")]
    fn with_backing_still_panics_on_a_non_empty_backend() {
        let mut fs = FileStore::temp(4).unwrap();
        let _ = BlockStore::alloc_array(&mut fs, 8);
        let _ = EncryptedStore::with_backing(fs, 1);
    }
}
