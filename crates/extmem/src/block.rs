//! Blocks: the unit of transfer between the client cache and the server.
//!
//! In the external-memory model (Aggarwal–Vitter), data moves between the
//! private cache and external storage in contiguous blocks of `B` words. Each
//! [`Block`] here holds `B` element slots ([`Cell`]s); a slot may be empty
//! (dummy). Block-level helpers used by the consolidation and compaction
//! algorithms — counting occupied slots, packing occupied slots while
//! preserving order, merging two blocks — all live here so the algorithm
//! crates can stay at the level the paper describes.

use crate::element::{Cell, Element};

/// A block of `B` element slots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    slots: Vec<Cell>,
}

impl Block {
    /// Creates an empty block with `b` slots (all dummies).
    pub fn empty(b: usize) -> Self {
        Block {
            slots: vec![None; b],
        }
    }

    /// Creates a block from a slice of cells (its length becomes `B`).
    pub fn from_cells(cells: &[Cell]) -> Self {
        Block {
            slots: cells.to_vec(),
        }
    }

    /// Wraps an owned buffer (typically recycled from a
    /// [`BlockArena`](crate::arena::BlockArena)) as a block without copying.
    pub fn from_buffer(slots: Vec<Cell>) -> Self {
        Block { slots }
    }

    /// Unwraps the block into its owned buffer so it can be returned to a
    /// [`BlockArena`](crate::arena::BlockArena) instead of dropped.
    pub fn into_buffer(self) -> Vec<Cell> {
        self.slots
    }

    /// The block size `B` (number of slots).
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the block has zero slots (never the case for allocated blocks).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Read-only view of the slots.
    #[inline]
    pub fn slots(&self) -> &[Cell] {
        &self.slots
    }

    /// Mutable view of the slots.
    #[inline]
    pub fn slots_mut(&mut self) -> &mut [Cell] {
        &mut self.slots
    }

    /// Gets slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Cell {
        self.slots[i]
    }

    /// Sets slot `i`.
    #[inline]
    pub fn set(&mut self, i: usize, cell: Cell) {
        self.slots[i] = cell;
    }

    /// Number of occupied (non-dummy) slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|c| c.is_some()).count()
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.slots.iter().all(|c| c.is_some())
    }

    /// Whether every slot is a dummy.
    pub fn is_all_dummy(&self) -> bool {
        self.slots.iter().all(|c| c.is_none())
    }

    /// Returns the occupied elements in slot order (relative order preserved).
    pub fn occupied(&self) -> Vec<Element> {
        self.slots.iter().filter_map(|c| *c).collect()
    }

    /// Clears every slot to a dummy.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
    }

    /// Packs the occupied elements to the front of the block, preserving their
    /// relative order, and fills the rest with dummies.
    pub fn pack_front(&mut self) {
        let occ = self.occupied();
        let b = self.len();
        self.clear();
        for (i, e) in occ.into_iter().enumerate() {
            debug_assert!(i < b);
            self.slots[i] = Some(e);
        }
    }

    /// Builds a full block from the first `B` elements of `items`, returning
    /// the block and the number of items consumed. Panics if fewer than `B`
    /// items are provided.
    pub fn filled_from(items: &[Element], b: usize) -> Self {
        assert!(items.len() >= b, "need at least B elements to fill a block");
        Block {
            slots: items[..b].iter().map(|e| Some(*e)).collect(),
        }
    }

    /// Builds a (possibly partially full) block from at most `B` elements,
    /// padding the remainder with dummies.
    pub fn padded_from(items: &[Element], b: usize) -> Self {
        assert!(items.len() <= b, "too many elements for one block");
        let mut slots: Vec<Cell> = items.iter().map(|e| Some(*e)).collect();
        slots.resize(b, None);
        Block { slots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: u64) -> Element {
        Element::new(k, 0)
    }

    #[test]
    fn empty_block_has_zero_occupancy() {
        let b = Block::empty(8);
        assert_eq!(b.len(), 8);
        assert_eq!(b.occupancy(), 0);
        assert!(b.is_all_dummy());
        assert!(!b.is_full());
    }

    #[test]
    fn occupancy_counts_non_dummy_slots() {
        let mut b = Block::empty(4);
        b.set(1, Some(e(10)));
        b.set(3, Some(e(20)));
        assert_eq!(b.occupancy(), 2);
        assert_eq!(b.occupied(), vec![e(10), e(20)]);
    }

    #[test]
    fn pack_front_preserves_relative_order() {
        let mut b = Block::empty(5);
        b.set(1, Some(e(3)));
        b.set(2, Some(e(1)));
        b.set(4, Some(e(2)));
        b.pack_front();
        assert_eq!(b.get(0), Some(e(3)));
        assert_eq!(b.get(1), Some(e(1)));
        assert_eq!(b.get(2), Some(e(2)));
        assert_eq!(b.get(3), None);
        assert_eq!(b.get(4), None);
    }

    #[test]
    fn filled_from_takes_exactly_b_elements() {
        let items: Vec<Element> = (0..10).map(e).collect();
        let b = Block::filled_from(&items, 4);
        assert!(b.is_full());
        assert_eq!(b.occupied(), items[..4].to_vec());
    }

    #[test]
    fn padded_from_pads_with_dummies() {
        let items: Vec<Element> = (0..2).map(e).collect();
        let b = Block::padded_from(&items, 4);
        assert_eq!(b.occupancy(), 2);
        assert_eq!(b.len(), 4);
        assert_eq!(b.get(2), None);
    }

    #[test]
    #[should_panic]
    fn padded_from_rejects_overfull_input() {
        let items: Vec<Element> = (0..5).map(e).collect();
        let _ = Block::padded_from(&items, 4);
    }

    #[test]
    fn clear_resets_all_slots() {
        let items: Vec<Element> = (0..4).map(e).collect();
        let mut b = Block::filled_from(&items, 4);
        b.clear();
        assert!(b.is_all_dummy());
    }
}
