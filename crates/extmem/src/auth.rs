//! Authenticated, freshness-checked storage: tampering becomes a typed
//! error, never wrong data.
//!
//! [`AuthenticatedStore`] wraps any [`BlockStore`] and maintains, for every
//! data array it allocates, a parallel server-side *MAC array* holding one
//! entry per data block: a keyed hash over the block image ‖ block address ‖
//! version, paired with that version number. Client-side it keeps the root
//! of trust the server can never touch: a **version table** with the latest
//! version of every block, charged against a [`CacheBudget`] together with a
//! small LRU cache of MAC blocks.
//!
//! On every read the served block is verified:
//!
//! * MAC mismatch (bit flips, fabricated data, a dropped write that split
//!   the data from its MAC entry) → [`StoreError::Corrupted`];
//! * valid MAC but a version **older** than the client's table (a rollback
//!   or replay of a consistent earlier state) → [`StoreError::Stale`];
//! * valid MAC at the expected version → the block is returned.
//!
//! Because the MAC key and the version table never leave the client, a
//! server cannot forge a block that verifies, and cannot replay an old one
//! without the version mismatch showing — *tampering surfaces as
//! `Err(Corrupted | Stale)`, never as silently wrong data*. The MAC blocks
//! themselves need no authentication: corrupting them only makes
//! verification fail.
//!
//! **Obliviousness.** MAC-array traffic is a deterministic function of the
//! data-block access sequence (one MAC entry per data access, LRU-cached),
//! so the authenticated trace is again identical for any same-shape input.
//! One MAC block covers `B` data blocks, which with the LRU cache keeps the
//! authentication overhead around `1/B` extra I/Os on sequential passes —
//! the `faults` bench gates it at ≤ 15% at the headline point.
//!
//! **The span path.** [`Prefetchable::store_run`] MACs a whole run with the
//! batched kernel ([`mac_run`]: interleaved absorb chains, bit-identical to
//! the scalar path per block) before one span write of the data;
//! [`AuthenticatedReader`] verifies spans *on the prefetch worker threads*
//! — the verify-ahead half of the pipeline — sharing the foreground's
//! version table and MAC cache behind a mutex, so dirty (unflushed) MAC
//! entries are always visible to the workers. A reader verification racing
//! a foreground write may verify against the pre- or post-write state; the
//! prefetch invalidation protocol drops such results, so nothing stale is
//! ever served.
//!
//! The MAC is a toy keyed `splitmix64` chain, deliberately matching the toy
//! cipher in [`crypto`](crate::crypto) — see `DESIGN.md` for the
//! substitution table mapping it to a real HMAC.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::block::Block;
use crate::budget::CacheBudget;
use crate::element::{Cell, Element};
use crate::error::StoreError;
use crate::mem::{ArrayHandle, IoStats};
use crate::prefetch::{PrefetchRead, Prefetchable};
use crate::store::BlockStore;
use crate::util::hash64;

/// Default number of MAC blocks the client caches.
const DEFAULT_MAC_CACHE_BLOCKS: usize = 8;

/// Interleave width of the batched MAC kernel.
const MAC_LANES: usize = 8;

/// Keyed MAC over a block image bound to its global address and version.
/// A toy stand-in for HMAC: a `splitmix64` chain absorbing occupancy, key
/// and payload of every slot (see `DESIGN.md`).
fn mac_block(key: u64, addr: usize, version: u64, blk: &Block) -> u64 {
    let mut acc = hash64((addr as u64) ^ version.rotate_left(32), key);
    for (i, cell) in blk.slots().iter().enumerate() {
        let (occ, k, p) = match cell {
            Some(e) => (1u64 << 63, e.key, e.payload),
            None => (0, 0, 0),
        };
        acc = hash64(acc ^ k.wrapping_add(i as u64), key ^ p ^ occ);
    }
    acc
}

/// Batched [`mac_block`] over many `(addr, version, block)` triples. Each
/// MAC chain is sequential by construction, but chains for different blocks
/// are independent, so the kernel runs [`MAC_LANES`] of them interleaved
/// (slot-major) to keep that many mixing chains in flight per core.
/// Bit-identical to the scalar path: every chain performs exactly the
/// operations [`mac_block`] performs for its block — the property battery
/// asserts equality MAC for MAC.
fn mac_run(key: u64, inputs: &[(usize, u64, &Block)]) -> Vec<u64> {
    let mut out = Vec::with_capacity(inputs.len());
    let mut i = 0;
    while i + MAC_LANES <= inputs.len() {
        let chunk = &inputs[i..i + MAC_LANES];
        let mut acc = [0u64; MAC_LANES];
        for (l, (addr, ver, _)) in chunk.iter().enumerate() {
            acc[l] = hash64((*addr as u64) ^ ver.rotate_left(32), key);
        }
        let max_len = chunk.iter().map(|(_, _, b)| b.len()).max().unwrap_or(0);
        for s in 0..max_len {
            for (l, (_, _, blk)) in chunk.iter().enumerate() {
                if s >= blk.len() {
                    continue;
                }
                let (occ, k, p) = match blk.get(s) {
                    Some(e) => (1u64 << 63, e.key, e.payload),
                    None => (0, 0, 0),
                };
                acc[l] = hash64(acc[l] ^ k.wrapping_add(s as u64), key ^ p ^ occ);
            }
        }
        out.extend_from_slice(&acc);
        i += MAC_LANES;
    }
    for (addr, ver, blk) in &inputs[i..] {
        out.push(mac_block(key, *addr, *ver, blk));
    }
    out
}

/// Result of the metadata-only half of verification: either a final verdict
/// (no MAC computation needed) or the `(mac, version)` pair to check.
enum Verdict {
    Done(Result<(), StoreError>),
    NeedsMac { mac_s: u64, ver_s: u64 },
}

/// The version/occupancy classification that precedes any MAC computation —
/// shared verbatim by the foreground path and the reader so the two can
/// never drift.
fn preclassify(addr: usize, expected: u64, entry: Cell, blk: &Block) -> Verdict {
    match entry {
        None => {
            if expected == 0 {
                // Never written: only the all-dummy block is authentic.
                if blk.is_all_dummy() {
                    Verdict::Done(Ok(()))
                } else {
                    Verdict::Done(Err(StoreError::Corrupted { addr }))
                }
            } else {
                // The server "forgot" a block the client wrote.
                Verdict::Done(Err(StoreError::Stale {
                    addr,
                    expected,
                    got: 0,
                }))
            }
        }
        Some(e) => {
            let (mac_s, ver_s) = (e.key, e.payload);
            if expected == 0 || ver_s > expected {
                // A MAC entry for writes the client never made.
                Verdict::Done(Err(StoreError::Corrupted { addr }))
            } else {
                Verdict::NeedsMac { mac_s, ver_s }
            }
        }
    }
}

/// Second half of verification, given the freshly computed MAC.
fn finish_verify(
    addr: usize,
    expected: u64,
    mac_s: u64,
    ver_s: u64,
    computed: u64,
) -> Result<(), StoreError> {
    if mac_s != computed {
        Err(StoreError::Corrupted { addr })
    } else if ver_s < expected {
        // Authentic but old: a rollback/replay.
        Err(StoreError::Stale {
            addr,
            expected,
            got: ver_s,
        })
    } else {
        Ok(())
    }
}

/// Full scalar verification of one served block.
fn verify_block(
    key: u64,
    addr: usize,
    expected: u64,
    entry: Cell,
    blk: &Block,
) -> Result<(), StoreError> {
    match preclassify(addr, expected, entry, blk) {
        Verdict::Done(r) => r,
        Verdict::NeedsMac { mac_s, ver_s } => finish_verify(
            addr,
            expected,
            mac_s,
            ver_s,
            mac_block(key, addr, ver_s, blk),
        ),
    }
}

/// The client-side root of trust of an [`AuthenticatedStore`], as an opaque
/// checkpointable value: the MAC key, the per-block version table, and the
/// data-array → MAC-array map. Everything else (the MAC arrays themselves)
/// lives server-side and is *verified against* this state, so persisting it
/// across a client crash is exactly what makes torn server state detectable
/// on restart. See [`AuthenticatedStore::client_state`] /
/// [`AuthenticatedStore::resume`].
#[derive(Clone, Debug)]
pub struct AuthClientState {
    key: u64,
    versions: Vec<u64>,
    mac_arrays: HashMap<usize, ArrayHandle>,
}

#[derive(Debug)]
struct MacCacheEntry {
    mac_h: ArrayHandle,
    blk_idx: usize,
    blk: Block,
    dirty: bool,
    last_used: u64,
}

/// The verification state shared between the foreground store and its
/// background readers: version table, MAC-array map, and the MAC cache.
/// The cache *must* live here — a dirty (unflushed) MAC entry is the only
/// authentic one, and a reader verifying against the stale server copy
/// would reject honest data.
#[derive(Debug)]
struct AuthShared {
    /// Latest version of every data block, by global address — the client's
    /// root of trust. Version 0 means "never written".
    versions: Vec<u64>,
    /// Data-array start address → its MAC array.
    mac_arrays: HashMap<usize, ArrayHandle>,
    cache: Vec<MacCacheEntry>,
    tick: u64,
}

impl AuthShared {
    /// The data array covering global address `addr`, as
    /// `(start address, MAC array)` — the MAC array has one entry per data
    /// block, so its element count is exactly the data array's block count.
    fn owning_array(&self, addr: usize) -> Option<(usize, ArrayHandle)> {
        self.mac_arrays
            .iter()
            .find(|(start, mh)| addr >= **start && addr < **start + mh.len())
            .map(|(start, mh)| (*start, *mh))
    }

    /// The cached MAC entry for slot `slot` of MAC block `blk_idx` of `mh`,
    /// if that MAC block is cached (read-only: does not touch LRU state).
    fn cached_mac_entry(&self, mh: &ArrayHandle, blk_idx: usize, slot: usize) -> Option<Cell> {
        let id = mh.global_block(0);
        self.cache
            .iter()
            .find(|e| e.mac_h.global_block(0) == id && e.blk_idx == blk_idx)
            .map(|e| e.blk.get(slot))
    }
}

/// Locks the shared verification state, recovering from poison: every
/// mutation under the lock leaves the state internally consistent (entries
/// are pushed/removed whole), so a panicked holder cannot strand it.
fn lock_shared(s: &Mutex<AuthShared>) -> MutexGuard<'_, AuthShared> {
    s.lock().unwrap_or_else(|p| p.into_inner())
}

/// Per-block MAC + client-side version table over any [`BlockStore`]. See
/// the module docs for the threat model and detection guarantees.
///
/// Client-side state is charged to a [`CacheBudget`] **in 64-bit words**:
/// one word per data block for the version table, `2B` words per cached MAC
/// block.
#[derive(Debug)]
pub struct AuthenticatedStore<S: BlockStore> {
    inner: S,
    key: u64,
    shared: Arc<Mutex<AuthShared>>,
    cache_cap: usize,
    budget: CacheBudget,
    mac_io: IoStats,
}

impl<S: BlockStore> AuthenticatedStore<S> {
    /// Wraps `inner` with MAC key `key`, an effectively unbounded budget and
    /// the default MAC-cache size.
    pub fn new(inner: S, key: u64) -> Self {
        Self::with_budget(inner, key, DEFAULT_MAC_CACHE_BLOCKS, usize::MAX >> 1)
    }

    /// Wraps `inner` with an explicit MAC-cache size (in blocks) and a
    /// client-memory budget (in 64-bit words).
    pub fn with_budget(inner: S, key: u64, mac_cache_blocks: usize, budget_words: usize) -> Self {
        assert!(
            mac_cache_blocks >= 1,
            "the MAC cache needs at least 1 block"
        );
        AuthenticatedStore {
            inner,
            key,
            shared: Arc::new(Mutex::new(AuthShared {
                versions: Vec::new(),
                mac_arrays: HashMap::new(),
                cache: Vec::new(),
                tick: 0,
            })),
            cache_cap: mac_cache_blocks,
            budget: CacheBudget::new(budget_words),
            mac_io: IoStats::default(),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the store, discarding the client state (and any dirty MAC
    /// cache — call [`AuthenticatedStore::flush_macs`] first if the server
    /// copy must be complete).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Snapshots the client-side root of trust — MAC key, version table and
    /// the data-array → MAC-array map — as an opaque, durable value. This is
    /// the state a real client would checkpoint to its own trusted storage:
    /// with it, a crashed-and-restarted client can [`AuthenticatedStore::resume`]
    /// over a reopened server file and still detect every torn, rolled-back
    /// or corrupted block. Flush the MAC cache first
    /// ([`AuthenticatedStore::flush_macs`]) so the snapshot's server-side
    /// counterpart is complete.
    pub fn client_state(&self) -> AuthClientState {
        let sh = lock_shared(&self.shared);
        AuthClientState {
            key: self.key,
            versions: sh.versions.clone(),
            mac_arrays: sh.mac_arrays.clone(),
        }
    }

    /// Reconstructs an authenticated view over a reopened server store from
    /// a checkpointed [`AuthClientState`] (the crash-recovery path). Array
    /// handles from before the crash remain valid, since handles address
    /// blocks the same way across backends and restarts.
    pub fn resume(inner: S, state: AuthClientState) -> Self {
        let mut auth = Self::new(inner, state.key);
        // Re-charge the version table against the fresh budget, exactly as
        // the original alloc_array calls did.
        auth.budget.acquire(state.versions.len());
        {
            let mut sh = lock_shared(&auth.shared);
            sh.versions = state.versions;
            sh.mac_arrays = state.mac_arrays;
        }
        auth
    }

    /// Mutable access to the wrapped store (e.g. to reconfigure a
    /// [`FaultyStore`](crate::fault::FaultyStore) below).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The budget charging the version table and MAC cache (words).
    pub fn budget(&self) -> &CacheBudget {
        &self.budget
    }

    /// I/Os spent on MAC-array traffic (a subset of the inner store's
    /// totals) — the authentication overhead. Foreground traffic only:
    /// MAC blocks fetched by background [`AuthenticatedReader`]s for
    /// verify-ahead are not counted here (they surface in the prefetch
    /// adapter's physical counters instead).
    pub fn mac_io(&self) -> IoStats {
        self.mac_io
    }

    /// Writes back every dirty MAC block and drops the MAC cache, releasing
    /// its budget. Afterwards the server holds the complete MAC state.
    pub fn flush_macs(&mut self) -> Result<(), StoreError> {
        let mut sh = lock_shared(&self.shared);
        for idx in 0..sh.cache.len() {
            if sh.cache[idx].dirty {
                let (mh, bi, blk) = {
                    let e = &sh.cache[idx];
                    (e.mac_h, e.blk_idx, e.blk.clone())
                };
                self.inner.try_store_block(&mh, bi, blk)?;
                self.mac_io.writes += 1;
                sh.cache[idx].dirty = false;
            }
        }
        let b = self.inner.block_elems();
        self.budget.release(2 * b * sh.cache.len());
        sh.cache.clear();
        Ok(())
    }

    fn mac_handle(&self, h: &ArrayHandle) -> ArrayHandle {
        *lock_shared(&self.shared)
            .mac_arrays
            .get(&h.global_block(0))
            .expect("array was not allocated through this AuthenticatedStore")
    }

    /// Runs `f` on the cache entry holding MAC block `blk_idx` of `mh`,
    /// loading (and evicting LRU, write-back) as needed — all under one
    /// acquisition of the shared lock. On `Err` the cache is unchanged or
    /// only cleaned — safe to retry.
    fn with_cache_entry<T>(
        &mut self,
        mh: &ArrayHandle,
        blk_idx: usize,
        f: impl FnOnce(&mut MacCacheEntry) -> T,
    ) -> Result<T, StoreError> {
        let mut sh = lock_shared(&self.shared);
        sh.tick += 1;
        let tick = sh.tick;
        let id = mh.global_block(0);
        if let Some(pos) = sh
            .cache
            .iter()
            .position(|e| e.mac_h.global_block(0) == id && e.blk_idx == blk_idx)
        {
            sh.cache[pos].last_used = tick;
            return Ok(f(&mut sh.cache[pos]));
        }
        let b = self.inner.block_elems();
        if sh.cache.len() >= self.cache_cap {
            let victim = sh
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            if sh.cache[victim].dirty {
                let (mh_v, bi_v, blk_v) = {
                    let e = &sh.cache[victim];
                    (e.mac_h, e.blk_idx, e.blk.clone())
                };
                // Flush before removing: if this write fails transiently the
                // entry stays cached and dirty, and the retry redoes it.
                self.inner.try_store_block(&mh_v, bi_v, blk_v)?;
                self.mac_io.writes += 1;
                sh.cache[victim].dirty = false;
            }
            sh.cache.remove(victim);
            self.budget.release(2 * b);
        }
        let blk = self.inner.try_load_block(mh, blk_idx)?;
        self.mac_io.reads += 1;
        self.budget.try_acquire(2 * b)?;
        sh.cache.push(MacCacheEntry {
            mac_h: *mh,
            blk_idx,
            blk,
            dirty: false,
            last_used: tick,
        });
        let last = sh.cache.len() - 1;
        Ok(f(&mut sh.cache[last]))
    }

    fn mac_entry(&mut self, mh: &ArrayHandle, data_blk: usize) -> Result<Cell, StoreError> {
        let b = self.inner.block_elems();
        self.with_cache_entry(mh, data_blk / b, |e| e.blk.get(data_blk % b))
    }

    fn set_mac_entry(
        &mut self,
        mh: &ArrayHandle,
        data_blk: usize,
        cell: Cell,
    ) -> Result<(), StoreError> {
        let b = self.inner.block_elems();
        self.with_cache_entry(mh, data_blk / b, |e| {
            e.blk.set(data_blk % b, cell);
            e.dirty = true;
        })
    }
}

impl<S: BlockStore> BlockStore for AuthenticatedStore<S> {
    fn block_elems(&self) -> usize {
        self.inner.block_elems()
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        let h = self.inner.alloc_array(len_elements);
        let mh = self.inner.alloc_array(h.n_blocks());
        let mut sh = lock_shared(&self.shared);
        let top = h.global_block(h.n_blocks() - 1) + 1;
        if top > sh.versions.len() {
            sh.versions.resize(top, 0);
        }
        // One version word per data block, client-side forever.
        self.budget.acquire(h.n_blocks());
        sh.mac_arrays.insert(h.global_block(0), mh);
        h
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.try_load_block(h, i)
            .unwrap_or_else(|e| panic!("AuthenticatedStore: {e}"))
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.try_store_block(h, i, blk)
            .unwrap_or_else(|e| panic!("AuthenticatedStore: {e}"))
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn hint_blocks(&mut self, h: &ArrayHandle, blocks: &[usize]) {
        self.inner.hint_blocks(h, blocks);
    }

    fn recycle(&mut self, blk: Block) {
        self.inner.recycle(blk);
    }

    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        let mh = self.mac_handle(h);
        let addr = h.global_block(i);
        let blk = self.inner.try_load_block(h, i)?;
        let entry = self.mac_entry(&mh, i)?;
        let expected = lock_shared(&self.shared).versions[addr];
        verify_block(self.key, addr, expected, entry, &blk)?;
        Ok(blk)
    }

    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        let mh = self.mac_handle(h);
        let addr = h.global_block(i);
        // The version is bumped only after both the data write and the MAC
        // entry update succeed, so a transiently failed attempt can be
        // retried verbatim.
        let ver = lock_shared(&self.shared).versions[addr] + 1;
        let mac = mac_block(self.key, addr, ver, &blk);
        self.inner.try_store_block(h, i, blk)?;
        self.set_mac_entry(&mh, i, Some(Element::new(mac, ver)))?;
        lock_shared(&self.shared).versions[addr] = ver;
        Ok(())
    }
}

/// Background reader over an authenticated store: fetches data through the
/// wrapped store's reader and **verifies on the worker thread** (the
/// verify-ahead half of the span pipeline), sharing the foreground's version
/// table and MAC cache. MAC blocks not in the shared cache are fetched
/// through the reader's own inner reader and *not* inserted into the cache
/// (background threads hold no budget); a verification racing a foreground
/// write may resolve against either side of the write — the prefetch
/// invalidation protocol drops such results before they are served.
#[derive(Debug)]
pub struct AuthenticatedReader<R: PrefetchRead> {
    inner: R,
    key: u64,
    block_elems: usize,
    shared: Arc<Mutex<AuthShared>>,
}

impl<R: PrefetchRead> PrefetchRead for AuthenticatedReader<R> {
    fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
        let blk = self.inner.fetch(addr)?;
        let b = self.block_elems;
        let (expected, entry) = {
            let sh = lock_shared(&self.shared);
            let Some((astart, mh)) = sh.owning_array(addr) else {
                // An address outside every array this client allocated can
                // never verify; workers must not panic, so classify it the
                // way any unverifiable block is classified.
                return Err(StoreError::Corrupted { addr });
            };
            let i = addr - astart;
            let expected = sh.versions.get(addr).copied().unwrap_or(0);
            let entry = match sh.cached_mac_entry(&mh, i / b, i % b) {
                Some(cell) => cell,
                None => self.inner.fetch(mh.global_block(i / b))?.get(i % b),
            };
            (expected, entry)
        };
        verify_block(self.key, addr, expected, entry, &blk)?;
        Ok(blk)
    }

    fn fetch_run(&mut self, start: usize, count: usize) -> Vec<Result<Block, StoreError>> {
        let mut out = self.inner.fetch_run(start, count);
        let b = self.block_elems;
        // Phase 1: gather (expected version, MAC entry) per fetched block
        // under one lock acquisition, memoizing MAC-block fetches so a run
        // costs one MAC read per covered MAC block, not per data block.
        let mut meta: Vec<Option<Result<(u64, Cell), StoreError>>> = Vec::with_capacity(count);
        {
            let sh = lock_shared(&self.shared);
            let mut fetched_macs: Vec<(usize, Result<Block, StoreError>)> = Vec::new();
            for (k, res) in out.iter().enumerate() {
                if res.is_err() {
                    meta.push(None);
                    continue;
                }
                let addr = start + k;
                let Some((astart, mh)) = sh.owning_array(addr) else {
                    meta.push(Some(Err(StoreError::Corrupted { addr })));
                    continue;
                };
                let i = addr - astart;
                let expected = sh.versions.get(addr).copied().unwrap_or(0);
                let entry = match sh.cached_mac_entry(&mh, i / b, i % b) {
                    Some(cell) => Ok(cell),
                    None => {
                        let mac_addr = mh.global_block(i / b);
                        let blk_res = match fetched_macs.iter().find(|(a, _)| *a == mac_addr) {
                            Some((_, r)) => r.clone(),
                            None => {
                                let r = self.inner.fetch(mac_addr);
                                fetched_macs.push((mac_addr, r.clone()));
                                r
                            }
                        };
                        blk_res.map(|mb| mb.get(i % b))
                    }
                };
                meta.push(Some(entry.map(|cell| (expected, cell))));
            }
        }
        // Phase 2: metadata-only classification, then one batched MAC pass
        // over everything that still needs its MAC checked.
        let mut need: Vec<(usize, u64, u64, u64)> = Vec::new(); // (k, expected, mac_s, ver_s)
        for (k, m) in meta.into_iter().enumerate() {
            let addr = start + k;
            let Ok(blk) = &out[k] else { continue };
            match m.expect("meta recorded for every successfully fetched block") {
                Err(e) => out[k] = Err(e),
                Ok((expected, entry)) => match preclassify(addr, expected, entry, blk) {
                    Verdict::Done(Ok(())) => {}
                    Verdict::Done(Err(e)) => out[k] = Err(e),
                    Verdict::NeedsMac { mac_s, ver_s } => need.push((k, expected, mac_s, ver_s)),
                },
            }
        }
        let macs = {
            let inputs: Vec<(usize, u64, &Block)> = need
                .iter()
                .map(|(k, _, _, ver_s)| {
                    (start + k, *ver_s, out[*k].as_ref().expect("fetched above"))
                })
                .collect();
            mac_run(self.key, &inputs)
        };
        for ((k, expected, mac_s, ver_s), mac) in need.into_iter().zip(macs) {
            if let Err(e) = finish_verify(start + k, expected, mac_s, ver_s, mac) {
                out[k] = Err(e);
            }
        }
        out
    }
}

impl<S: BlockStore + Prefetchable> Prefetchable for AuthenticatedStore<S> {
    type Reader = AuthenticatedReader<S::Reader>;

    fn reader(&self) -> Self::Reader {
        AuthenticatedReader {
            inner: self.inner.reader(),
            key: self.key,
            block_elems: self.inner.block_elems(),
            shared: Arc::clone(&self.shared),
        }
    }

    fn supports_store_runs(&self) -> bool {
        self.inner.supports_store_runs()
    }

    /// MACs the whole run with the batched kernel, hands the data to the
    /// wrapped store as one span write, then commits MAC entries and
    /// versions block by block (same commit discipline as the single-block
    /// path: version bumped only after its MAC entry landed). A failure
    /// mid-commit leaves a prefix committed — detectable on the next read
    /// exactly like a torn block-at-a-time write sequence.
    fn store_run(&mut self, start: usize, blks: Vec<Block>) -> Result<(), StoreError> {
        let n = blks.len();
        if n == 0 {
            return Ok(());
        }
        let (astart, mh, vers, macs) = {
            let sh = lock_shared(&self.shared);
            let (astart, mh) = sh
                .owning_array(start)
                .expect("array was not allocated through this AuthenticatedStore");
            debug_assert!(
                start + n <= astart + mh.len(),
                "store_run must stay within one array"
            );
            let vers: Vec<u64> = (0..n).map(|k| sh.versions[start + k] + 1).collect();
            let inputs: Vec<(usize, u64, &Block)> = blks
                .iter()
                .enumerate()
                .map(|(k, blk)| (start + k, vers[k], blk))
                .collect();
            let macs = mac_run(self.key, &inputs);
            (astart, mh, vers, macs)
        };
        self.inner.store_run(start, blks)?;
        for k in 0..n {
            self.set_mac_entry(
                &mh,
                start - astart + k,
                Some(Element::new(macs[k], vers[k])),
            )?;
            lock_shared(&self.shared).versions[start + k] = vers[k];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::EncryptedStore;
    use crate::fault::{FaultSpec, FaultyStore};
    use crate::file::FileStore;
    use crate::mem::ExtMem;

    const FULL: u32 = 1_000_000;

    fn elems(n: u64) -> Vec<Cell> {
        (0..n).map(|k| Some(Element::new(k * 3 + 1, k))).collect()
    }

    fn auth_over_faulty(b: usize) -> AuthenticatedStore<FaultyStore<EncryptedStore>> {
        let enc = EncryptedStore::new(b, 0xA11CE);
        let faulty = FaultyStore::new(enc, 0x5EED, FaultSpec::none());
        AuthenticatedStore::new(faulty, 0x4D4143)
    }

    #[test]
    fn honest_roundtrip_verifies_and_returns_the_data() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 16);
        auth.try_store_span(&h, 0, &elems(16)).unwrap();
        assert_eq!(auth.try_load_span(&h, 0, 16).unwrap(), elems(16));
        // Survives a cache drop: MAC state persists server-side.
        auth.flush_macs().unwrap();
        assert_eq!(auth.try_load_span(&h, 0, 16).unwrap(), elems(16));
    }

    #[test]
    fn never_written_blocks_verify_as_dummies() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 8);
        assert!(auth.try_load_block(&h, 1).unwrap().is_all_dummy());
    }

    #[test]
    fn corrupted_read_is_detected_never_served() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 8);
        auth.try_store_span(&h, 0, &elems(8)).unwrap();
        auth.flush_macs().unwrap();
        auth.inner_mut().set_spec(FaultSpec {
            corrupt_read_ppm: FULL,
            ..FaultSpec::none()
        });
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupted { .. }),
            "got {err:?} instead of Corrupted"
        );
    }

    #[test]
    fn consistent_rollback_is_detected_as_stale() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        // Two versions of block 0, with MAC state flushed after each so the
        // server's history holds a *consistent* (data, MAC) pair per version.
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.flush_macs().unwrap();
        let v2: Vec<Cell> = (0..4).map(|k| Some(Element::new(100 + k, k))).collect();
        auth.try_store_span(&h, 0, &v2).unwrap();
        auth.flush_macs().unwrap();
        // The adversary now replays the previous version of everything.
        auth.inner_mut().set_spec(FaultSpec {
            stale_read_ppm: FULL,
            ..FaultSpec::none()
        });
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert_eq!(
            err,
            StoreError::Stale {
                addr: h.global_block(0),
                expected: 2,
                got: 1
            },
            "a consistent rollback must be classified as Stale"
        );
    }

    #[test]
    fn dropped_write_is_detected_on_the_next_read() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        // Every write dropped: the data write is lost, and so is the MAC
        // flush — the server has nothing the client's version table expects.
        auth.inner_mut().set_spec(FaultSpec {
            drop_write_ppm: FULL,
            ..FaultSpec::none()
        });
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.flush_macs().unwrap();
        auth.inner_mut().set_spec(FaultSpec::none());
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(
            err.is_tampering(),
            "a lost write must surface as tampering, got {err:?}"
        );
    }

    #[test]
    fn tampering_with_the_mac_array_is_also_detected() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.flush_macs().unwrap();
        // Corrupt every read — including the MAC-block read itself. Whatever
        // the adversary hits first, verification must fail, not mis-serve.
        auth.inner_mut().set_spec(FaultSpec {
            corrupt_read_ppm: FULL,
            ..FaultSpec::none()
        });
        for _ in 0..4 {
            let err = auth.try_load_block(&h, 0).unwrap_err();
            assert!(err.is_tampering(), "got {err:?}");
        }
    }

    #[test]
    fn transient_inner_faults_pass_through_untouched() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.inner_mut().set_spec(FaultSpec {
            transient_read_ppm: FULL,
            ..FaultSpec::none()
        });
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(err.is_transient(), "got {err:?}");
        auth.inner_mut().set_spec(FaultSpec::none());
        assert_eq!(auth.try_load_span(&h, 0, 4).unwrap(), elems(4));
    }

    #[test]
    fn budget_charges_versions_and_mac_cache_and_reports_high_water() {
        let enc = EncryptedStore::new(4, 1);
        // 2 MAC cache blocks => 2 * 2*4 = 16 words, plus version words.
        let mut auth = AuthenticatedStore::with_budget(enc, 2, 2, 64);
        let h = BlockStore::alloc_array(&mut auth, 32); // 8 data blocks
        assert_eq!(auth.budget().in_use(), 8, "one word per data block");
        auth.try_store_span(&h, 0, &elems(32)).unwrap();
        assert!(auth.budget().high_water() <= 8 + 16);
        assert!(auth.budget().high_water() > 8, "the MAC cache was used");
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error_on_the_fallible_path() {
        let enc = EncryptedStore::new(4, 1);
        // Versions for 8 blocks fit (8 words), but a single MAC cache block
        // needs 8 more words than the 10-word budget allows.
        let mut auth = AuthenticatedStore::with_budget(enc, 2, 2, 10);
        let h = BlockStore::alloc_array(&mut auth, 32);
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(
            matches!(err, StoreError::BudgetExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn mac_overhead_is_small_on_sequential_passes() {
        // One MAC block covers B data blocks, so a sequential sweep pays
        // ~1/B extra I/Os for authentication.
        let mut auth = auth_over_faulty(8);
        let h = BlockStore::alloc_array(&mut auth, 1024); // 128 data blocks
        let cells = elems(1024);
        auth.try_store_span(&h, 0, &cells).unwrap();
        auth.flush_macs().unwrap();
        let before = auth.io_stats();
        let _ = auth.try_load_span(&h, 0, 1024).unwrap();
        let delta = auth.io_stats() - before;
        // 128 data reads + at most ceil(128/8)=16 MAC block reads.
        assert!(
            delta.total() <= 128 + 16,
            "authenticated sweep cost {} I/Os",
            delta.total()
        );
    }

    #[test]
    fn plain_extmem_can_also_be_authenticated() {
        let mut auth = AuthenticatedStore::new(ExtMem::new(4), 9);
        let h = BlockStore::alloc_array(&mut auth, 8);
        auth.try_store_span(&h, 0, &elems(8)).unwrap();
        assert_eq!(auth.try_load_span(&h, 0, 8).unwrap(), elems(8));
    }

    #[test]
    #[should_panic(expected = "not allocated through this AuthenticatedStore")]
    fn foreign_handles_are_rejected() {
        let mut mem = ExtMem::new(4);
        let foreign = mem.alloc_array(8);
        let mut auth = AuthenticatedStore::new(mem, 9);
        let _ = auth.try_load_block(&foreign, 0);
    }

    // --- the batched MAC kernel and the span path ---

    #[test]
    fn batched_mac_is_bit_identical_to_the_scalar_oracle() {
        // Input counts spanning 0, a partial chunk, exactly MAC_LANES, and
        // several chunks plus tail; block sizes exercising empty, tiny and
        // mixed-occupancy images.
        for b in [1usize, 3, 8] {
            for count in [0usize, 1, 7, 8, 9, 16, 27] {
                let blocks: Vec<Block> = (0..count)
                    .map(|i| {
                        let mut blk = Block::empty(b);
                        for s in 0..b {
                            // A deterministic mix of occupied and dummy slots.
                            if (i + s) % 3 != 0 {
                                blk.set(
                                    s,
                                    Some(Element::new(
                                        hash64((i * b + s) as u64, 0xF00D),
                                        (i * b + s) as u64,
                                    )),
                                );
                            }
                        }
                        blk
                    })
                    .collect();
                let inputs: Vec<(usize, u64, &Block)> = blocks
                    .iter()
                    .enumerate()
                    .map(|(i, blk)| (100 + i, (i as u64) * 7 + 1, blk))
                    .collect();
                let batched = mac_run(0x4D4143, &inputs);
                for ((addr, ver, blk), got) in inputs.iter().zip(&batched) {
                    assert_eq!(
                        *got,
                        mac_block(0x4D4143, *addr, *ver, blk),
                        "b={b} count={count} addr={addr}"
                    );
                }
            }
        }
    }

    fn auth_over_encrypted_file(b: usize) -> AuthenticatedStore<EncryptedStore<FileStore>> {
        AuthenticatedStore::new(
            EncryptedStore::with_backing(FileStore::temp(b).unwrap(), 0xA11CE),
            0x4D4143,
        )
    }

    #[test]
    fn store_run_is_equivalent_to_block_at_a_time_writes() {
        let cells = elems(64);
        let b = 4;

        let mut one = auth_over_encrypted_file(b);
        let h1 = BlockStore::alloc_array(&mut one, cells.len());
        one.try_store_span(&h1, 0, &cells).unwrap();

        let mut run = auth_over_encrypted_file(b);
        let h2 = BlockStore::alloc_array(&mut run, cells.len());
        let blks: Vec<Block> = cells.chunks(b).map(Block::from_cells).collect();
        run.store_run(h2.global_block(0), blks).unwrap();

        // Same version table, same verified contents.
        assert_eq!(run.try_load_span(&h2, 0, 64).unwrap(), cells);
        let s1 = one.client_state();
        let s2 = run.client_state();
        assert_eq!(s1.versions, s2.versions);
    }

    #[test]
    fn reader_verifies_honest_spans_including_dirty_mac_entries() {
        let mut auth = auth_over_encrypted_file(4);
        let h = BlockStore::alloc_array(&mut auth, 32);
        auth.try_store_span(&h, 0, &elems(32)).unwrap();
        // Deliberately NO flush_macs: the authentic MAC entries live only in
        // the shared cache, which the reader must consult.
        let mut reader = auth.reader();
        for (i, res) in reader
            .fetch_run(h.global_block(0), h.n_blocks())
            .into_iter()
            .enumerate()
        {
            let blk = res.unwrap_or_else(|e| panic!("block {i} failed verify-ahead: {e}"));
            assert_eq!(blk, auth.try_load_block(&h, i).unwrap());
        }
        // Single fetches agree too, and unwritten arrays verify as dummies.
        let h2 = BlockStore::alloc_array(&mut auth, 8);
        let mut reader = auth.reader();
        assert!(reader.fetch(h2.global_block(1)).unwrap().is_all_dummy());
    }

    #[test]
    fn reader_detects_tampering_behind_the_auth_layer() {
        let mut auth = auth_over_encrypted_file(4);
        let h = BlockStore::alloc_array(&mut auth, 8);
        auth.try_store_span(&h, 0, &elems(8)).unwrap();
        auth.flush_macs().unwrap();
        // Rewrite block 0's data through the encryption layer directly,
        // bypassing authentication: the data changes, the MAC does not.
        let mut evil = Block::empty(4);
        evil.set(0, Some(Element::new(666, 0)));
        auth.inner_mut().write_block(&h, 0, &evil);
        let mut reader = auth.reader();
        assert_eq!(
            reader.fetch(h.global_block(0)).unwrap_err(),
            StoreError::Corrupted {
                addr: h.global_block(0)
            }
        );
        // The rest of the span still verifies.
        let results = reader.fetch_run(h.global_block(0), 2);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }

    #[test]
    fn reader_rejects_addresses_outside_every_array() {
        let mut auth = auth_over_encrypted_file(4);
        let h = BlockStore::alloc_array(&mut auth, 8);
        auth.try_store_span(&h, 0, &elems(8)).unwrap();
        let mut reader = auth.reader();
        // The MAC array's own blocks are not client data and cannot verify.
        let mac_addr = h.global_block(h.n_blocks() - 1) + 1;
        assert!(matches!(
            reader.fetch(mac_addr),
            Err(StoreError::Corrupted { .. })
        ));
    }
}
