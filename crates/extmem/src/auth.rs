//! Authenticated, freshness-checked storage: tampering becomes a typed
//! error, never wrong data.
//!
//! [`AuthenticatedStore`] wraps any [`BlockStore`] and maintains, for every
//! data array it allocates, a parallel server-side *MAC array* holding one
//! entry per data block: a keyed hash over the block image ‖ block address ‖
//! version, paired with that version number. Client-side it keeps the root
//! of trust the server can never touch: a **version table** with the latest
//! version of every block, charged against a [`CacheBudget`] together with a
//! small LRU cache of MAC blocks.
//!
//! On every read the served block is verified:
//!
//! * MAC mismatch (bit flips, fabricated data, a dropped write that split
//!   the data from its MAC entry) → [`StoreError::Corrupted`];
//! * valid MAC but a version **older** than the client's table (a rollback
//!   or replay of a consistent earlier state) → [`StoreError::Stale`];
//! * valid MAC at the expected version → the block is returned.
//!
//! Because the MAC key and the version table never leave the client, a
//! server cannot forge a block that verifies, and cannot replay an old one
//! without the version mismatch showing — *tampering surfaces as
//! `Err(Corrupted | Stale)`, never as silently wrong data*. The MAC blocks
//! themselves need no authentication: corrupting them only makes
//! verification fail.
//!
//! **Obliviousness.** MAC-array traffic is a deterministic function of the
//! data-block access sequence (one MAC entry per data access, LRU-cached),
//! so the authenticated trace is again identical for any same-shape input.
//! One MAC block covers `B` data blocks, which with the LRU cache keeps the
//! authentication overhead around `1/B` extra I/Os on sequential passes —
//! the `faults` bench gates it at ≤ 15% at the headline point.
//!
//! The MAC is a toy keyed `splitmix64` chain, deliberately matching the toy
//! cipher in [`crypto`](crate::crypto) — see `DESIGN.md` for the
//! substitution table mapping it to a real HMAC.

use std::collections::HashMap;

use crate::block::Block;
use crate::budget::CacheBudget;
use crate::element::{Cell, Element};
use crate::error::StoreError;
use crate::mem::{ArrayHandle, IoStats};
use crate::store::BlockStore;
use crate::util::hash64;

/// Default number of MAC blocks the client caches.
const DEFAULT_MAC_CACHE_BLOCKS: usize = 8;

/// Keyed MAC over a block image bound to its global address and version.
/// A toy stand-in for HMAC: a `splitmix64` chain absorbing occupancy, key
/// and payload of every slot (see `DESIGN.md`).
fn mac_block(key: u64, addr: usize, version: u64, blk: &Block) -> u64 {
    let mut acc = hash64((addr as u64) ^ version.rotate_left(32), key);
    for (i, cell) in blk.slots().iter().enumerate() {
        let (occ, k, p) = match cell {
            Some(e) => (1u64 << 63, e.key, e.payload),
            None => (0, 0, 0),
        };
        acc = hash64(acc ^ k.wrapping_add(i as u64), key ^ p ^ occ);
    }
    acc
}

/// The client-side root of trust of an [`AuthenticatedStore`], as an opaque
/// checkpointable value: the MAC key, the per-block version table, and the
/// data-array → MAC-array map. Everything else (the MAC arrays themselves)
/// lives server-side and is *verified against* this state, so persisting it
/// across a client crash is exactly what makes torn server state detectable
/// on restart. See [`AuthenticatedStore::client_state`] /
/// [`AuthenticatedStore::resume`].
#[derive(Clone, Debug)]
pub struct AuthClientState {
    key: u64,
    versions: Vec<u64>,
    mac_arrays: HashMap<usize, ArrayHandle>,
}

#[derive(Debug)]
struct MacCacheEntry {
    mac_h: ArrayHandle,
    blk_idx: usize,
    blk: Block,
    dirty: bool,
    last_used: u64,
}

/// Per-block MAC + client-side version table over any [`BlockStore`]. See
/// the module docs for the threat model and detection guarantees.
///
/// Client-side state is charged to a [`CacheBudget`] **in 64-bit words**:
/// one word per data block for the version table, `2B` words per cached MAC
/// block.
#[derive(Debug)]
pub struct AuthenticatedStore<S: BlockStore> {
    inner: S,
    key: u64,
    /// Latest version of every data block, by global address — the client's
    /// root of trust. Version 0 means "never written".
    versions: Vec<u64>,
    /// Data-array start address → its MAC array.
    mac_arrays: HashMap<usize, ArrayHandle>,
    cache: Vec<MacCacheEntry>,
    cache_cap: usize,
    budget: CacheBudget,
    mac_io: IoStats,
    tick: u64,
}

impl<S: BlockStore> AuthenticatedStore<S> {
    /// Wraps `inner` with MAC key `key`, an effectively unbounded budget and
    /// the default MAC-cache size.
    pub fn new(inner: S, key: u64) -> Self {
        Self::with_budget(inner, key, DEFAULT_MAC_CACHE_BLOCKS, usize::MAX >> 1)
    }

    /// Wraps `inner` with an explicit MAC-cache size (in blocks) and a
    /// client-memory budget (in 64-bit words).
    pub fn with_budget(inner: S, key: u64, mac_cache_blocks: usize, budget_words: usize) -> Self {
        assert!(
            mac_cache_blocks >= 1,
            "the MAC cache needs at least 1 block"
        );
        AuthenticatedStore {
            inner,
            key,
            versions: Vec::new(),
            mac_arrays: HashMap::new(),
            cache: Vec::new(),
            cache_cap: mac_cache_blocks,
            budget: CacheBudget::new(budget_words),
            mac_io: IoStats::default(),
            tick: 0,
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the store, discarding the client state (and any dirty MAC
    /// cache — call [`AuthenticatedStore::flush_macs`] first if the server
    /// copy must be complete).
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Snapshots the client-side root of trust — MAC key, version table and
    /// the data-array → MAC-array map — as an opaque, durable value. This is
    /// the state a real client would checkpoint to its own trusted storage:
    /// with it, a crashed-and-restarted client can [`AuthenticatedStore::resume`]
    /// over a reopened server file and still detect every torn, rolled-back
    /// or corrupted block. Flush the MAC cache first
    /// ([`AuthenticatedStore::flush_macs`]) so the snapshot's server-side
    /// counterpart is complete.
    pub fn client_state(&self) -> AuthClientState {
        AuthClientState {
            key: self.key,
            versions: self.versions.clone(),
            mac_arrays: self.mac_arrays.clone(),
        }
    }

    /// Reconstructs an authenticated view over a reopened server store from
    /// a checkpointed [`AuthClientState`] (the crash-recovery path). Array
    /// handles from before the crash remain valid, since handles address
    /// blocks the same way across backends and restarts.
    pub fn resume(inner: S, state: AuthClientState) -> Self {
        let mut auth = Self::new(inner, state.key);
        // Re-charge the version table against the fresh budget, exactly as
        // the original alloc_array calls did.
        auth.budget.acquire(state.versions.len());
        auth.versions = state.versions;
        auth.mac_arrays = state.mac_arrays;
        auth
    }

    /// Mutable access to the wrapped store (e.g. to reconfigure a
    /// [`FaultyStore`](crate::fault::FaultyStore) below).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// The budget charging the version table and MAC cache (words).
    pub fn budget(&self) -> &CacheBudget {
        &self.budget
    }

    /// I/Os spent on MAC-array traffic (a subset of the inner store's
    /// totals) — the authentication overhead.
    pub fn mac_io(&self) -> IoStats {
        self.mac_io
    }

    /// Writes back every dirty MAC block and drops the MAC cache, releasing
    /// its budget. Afterwards the server holds the complete MAC state.
    pub fn flush_macs(&mut self) -> Result<(), StoreError> {
        for idx in 0..self.cache.len() {
            if self.cache[idx].dirty {
                let (mh, bi, blk) = {
                    let e = &self.cache[idx];
                    (e.mac_h, e.blk_idx, e.blk.clone())
                };
                self.inner.try_store_block(&mh, bi, blk)?;
                self.mac_io.writes += 1;
                self.cache[idx].dirty = false;
            }
        }
        let b = self.inner.block_elems();
        self.budget.release(2 * b * self.cache.len());
        self.cache.clear();
        Ok(())
    }

    fn mac_handle(&self, h: &ArrayHandle) -> ArrayHandle {
        *self
            .mac_arrays
            .get(&h.global_block(0))
            .expect("array was not allocated through this AuthenticatedStore")
    }

    /// Returns the cache index holding MAC block `blk_idx` of `mh`, loading
    /// (and evicting LRU, write-back) as needed. On `Err` the cache is
    /// unchanged or only cleaned — safe to retry.
    fn cache_entry_idx(&mut self, mh: &ArrayHandle, blk_idx: usize) -> Result<usize, StoreError> {
        self.tick += 1;
        let id = mh.global_block(0);
        if let Some(pos) = self
            .cache
            .iter()
            .position(|e| e.mac_h.global_block(0) == id && e.blk_idx == blk_idx)
        {
            self.cache[pos].last_used = self.tick;
            return Ok(pos);
        }
        let b = self.inner.block_elems();
        if self.cache.len() >= self.cache_cap {
            let victim = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            if self.cache[victim].dirty {
                let (mh_v, bi_v, blk_v) = {
                    let e = &self.cache[victim];
                    (e.mac_h, e.blk_idx, e.blk.clone())
                };
                // Flush before removing: if this write fails transiently the
                // entry stays cached and dirty, and the retry redoes it.
                self.inner.try_store_block(&mh_v, bi_v, blk_v)?;
                self.mac_io.writes += 1;
                self.cache[victim].dirty = false;
            }
            self.cache.remove(victim);
            self.budget.release(2 * b);
        }
        let blk = self.inner.try_load_block(mh, blk_idx)?;
        self.mac_io.reads += 1;
        self.budget.try_acquire(2 * b)?;
        self.cache.push(MacCacheEntry {
            mac_h: *mh,
            blk_idx,
            blk,
            dirty: false,
            last_used: self.tick,
        });
        Ok(self.cache.len() - 1)
    }

    fn mac_entry(&mut self, mh: &ArrayHandle, data_blk: usize) -> Result<Cell, StoreError> {
        let b = self.inner.block_elems();
        let pos = self.cache_entry_idx(mh, data_blk / b)?;
        Ok(self.cache[pos].blk.get(data_blk % b))
    }

    fn set_mac_entry(
        &mut self,
        mh: &ArrayHandle,
        data_blk: usize,
        cell: Cell,
    ) -> Result<(), StoreError> {
        let b = self.inner.block_elems();
        let pos = self.cache_entry_idx(mh, data_blk / b)?;
        self.cache[pos].blk.set(data_blk % b, cell);
        self.cache[pos].dirty = true;
        Ok(())
    }
}

impl<S: BlockStore> BlockStore for AuthenticatedStore<S> {
    fn block_elems(&self) -> usize {
        self.inner.block_elems()
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        let h = self.inner.alloc_array(len_elements);
        let mh = self.inner.alloc_array(h.n_blocks());
        let top = h.global_block(h.n_blocks() - 1) + 1;
        if top > self.versions.len() {
            self.versions.resize(top, 0);
        }
        // One version word per data block, client-side forever.
        self.budget.acquire(h.n_blocks());
        self.mac_arrays.insert(h.global_block(0), mh);
        h
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.try_load_block(h, i)
            .unwrap_or_else(|e| panic!("AuthenticatedStore: {e}"))
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.try_store_block(h, i, blk)
            .unwrap_or_else(|e| panic!("AuthenticatedStore: {e}"))
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn hint_blocks(&mut self, h: &ArrayHandle, blocks: &[usize]) {
        self.inner.hint_blocks(h, blocks);
    }

    fn recycle(&mut self, blk: Block) {
        self.inner.recycle(blk);
    }

    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        let mh = self.mac_handle(h);
        let addr = h.global_block(i);
        let blk = self.inner.try_load_block(h, i)?;
        let entry = self.mac_entry(&mh, i)?;
        let expected = self.versions[addr];
        match entry {
            None => {
                if expected == 0 {
                    // Never written: only the all-dummy block is authentic.
                    if blk.is_all_dummy() {
                        Ok(blk)
                    } else {
                        Err(StoreError::Corrupted { addr })
                    }
                } else {
                    // The server "forgot" a block the client wrote.
                    Err(StoreError::Stale {
                        addr,
                        expected,
                        got: 0,
                    })
                }
            }
            Some(e) => {
                let (mac_s, ver_s) = (e.key, e.payload);
                if expected == 0 || ver_s > expected {
                    // A MAC entry for writes the client never made.
                    Err(StoreError::Corrupted { addr })
                } else if mac_s != mac_block(self.key, addr, ver_s, &blk) {
                    Err(StoreError::Corrupted { addr })
                } else if ver_s < expected {
                    // Authentic but old: a rollback/replay.
                    Err(StoreError::Stale {
                        addr,
                        expected,
                        got: ver_s,
                    })
                } else {
                    Ok(blk)
                }
            }
        }
    }

    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        let mh = self.mac_handle(h);
        let addr = h.global_block(i);
        // The version is bumped only after both the data write and the MAC
        // entry update succeed, so a transiently failed attempt can be
        // retried verbatim.
        let ver = self.versions[addr] + 1;
        let mac = mac_block(self.key, addr, ver, &blk);
        self.inner.try_store_block(h, i, blk)?;
        self.set_mac_entry(&mh, i, Some(Element::new(mac, ver)))?;
        self.versions[addr] = ver;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::EncryptedStore;
    use crate::fault::{FaultSpec, FaultyStore};
    use crate::mem::ExtMem;

    const FULL: u32 = 1_000_000;

    fn elems(n: u64) -> Vec<Cell> {
        (0..n).map(|k| Some(Element::new(k * 3 + 1, k))).collect()
    }

    fn auth_over_faulty(b: usize) -> AuthenticatedStore<FaultyStore<EncryptedStore>> {
        let enc = EncryptedStore::new(b, 0xA11CE);
        let faulty = FaultyStore::new(enc, 0x5EED, FaultSpec::none());
        AuthenticatedStore::new(faulty, 0x4D4143)
    }

    #[test]
    fn honest_roundtrip_verifies_and_returns_the_data() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 16);
        auth.try_store_span(&h, 0, &elems(16)).unwrap();
        assert_eq!(auth.try_load_span(&h, 0, 16).unwrap(), elems(16));
        // Survives a cache drop: MAC state persists server-side.
        auth.flush_macs().unwrap();
        assert_eq!(auth.try_load_span(&h, 0, 16).unwrap(), elems(16));
    }

    #[test]
    fn never_written_blocks_verify_as_dummies() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 8);
        assert!(auth.try_load_block(&h, 1).unwrap().is_all_dummy());
    }

    #[test]
    fn corrupted_read_is_detected_never_served() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 8);
        auth.try_store_span(&h, 0, &elems(8)).unwrap();
        auth.flush_macs().unwrap();
        auth.inner_mut().set_spec(FaultSpec {
            corrupt_read_ppm: FULL,
            ..FaultSpec::none()
        });
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(
            matches!(err, StoreError::Corrupted { .. }),
            "got {err:?} instead of Corrupted"
        );
    }

    #[test]
    fn consistent_rollback_is_detected_as_stale() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        // Two versions of block 0, with MAC state flushed after each so the
        // server's history holds a *consistent* (data, MAC) pair per version.
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.flush_macs().unwrap();
        let v2: Vec<Cell> = (0..4).map(|k| Some(Element::new(100 + k, k))).collect();
        auth.try_store_span(&h, 0, &v2).unwrap();
        auth.flush_macs().unwrap();
        // The adversary now replays the previous version of everything.
        auth.inner_mut().set_spec(FaultSpec {
            stale_read_ppm: FULL,
            ..FaultSpec::none()
        });
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert_eq!(
            err,
            StoreError::Stale {
                addr: h.global_block(0),
                expected: 2,
                got: 1
            },
            "a consistent rollback must be classified as Stale"
        );
    }

    #[test]
    fn dropped_write_is_detected_on_the_next_read() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        // Every write dropped: the data write is lost, and so is the MAC
        // flush — the server has nothing the client's version table expects.
        auth.inner_mut().set_spec(FaultSpec {
            drop_write_ppm: FULL,
            ..FaultSpec::none()
        });
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.flush_macs().unwrap();
        auth.inner_mut().set_spec(FaultSpec::none());
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(
            err.is_tampering(),
            "a lost write must surface as tampering, got {err:?}"
        );
    }

    #[test]
    fn tampering_with_the_mac_array_is_also_detected() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.flush_macs().unwrap();
        // Corrupt every read — including the MAC-block read itself. Whatever
        // the adversary hits first, verification must fail, not mis-serve.
        auth.inner_mut().set_spec(FaultSpec {
            corrupt_read_ppm: FULL,
            ..FaultSpec::none()
        });
        for _ in 0..4 {
            let err = auth.try_load_block(&h, 0).unwrap_err();
            assert!(err.is_tampering(), "got {err:?}");
        }
    }

    #[test]
    fn transient_inner_faults_pass_through_untouched() {
        let mut auth = auth_over_faulty(4);
        let h = BlockStore::alloc_array(&mut auth, 4);
        auth.try_store_span(&h, 0, &elems(4)).unwrap();
        auth.inner_mut().set_spec(FaultSpec {
            transient_read_ppm: FULL,
            ..FaultSpec::none()
        });
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(err.is_transient(), "got {err:?}");
        auth.inner_mut().set_spec(FaultSpec::none());
        assert_eq!(auth.try_load_span(&h, 0, 4).unwrap(), elems(4));
    }

    #[test]
    fn budget_charges_versions_and_mac_cache_and_reports_high_water() {
        let enc = EncryptedStore::new(4, 1);
        // 2 MAC cache blocks => 2 * 2*4 = 16 words, plus version words.
        let mut auth = AuthenticatedStore::with_budget(enc, 2, 2, 64);
        let h = BlockStore::alloc_array(&mut auth, 32); // 8 data blocks
        assert_eq!(auth.budget().in_use(), 8, "one word per data block");
        auth.try_store_span(&h, 0, &elems(32)).unwrap();
        assert!(auth.budget().high_water() <= 8 + 16);
        assert!(auth.budget().high_water() > 8, "the MAC cache was used");
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error_on_the_fallible_path() {
        let enc = EncryptedStore::new(4, 1);
        // Versions for 8 blocks fit (8 words), but a single MAC cache block
        // needs 8 more words than the 10-word budget allows.
        let mut auth = AuthenticatedStore::with_budget(enc, 2, 2, 10);
        let h = BlockStore::alloc_array(&mut auth, 32);
        let err = auth.try_load_block(&h, 0).unwrap_err();
        assert!(
            matches!(err, StoreError::BudgetExceeded { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn mac_overhead_is_small_on_sequential_passes() {
        // One MAC block covers B data blocks, so a sequential sweep pays
        // ~1/B extra I/Os for authentication.
        let mut auth = auth_over_faulty(8);
        let h = BlockStore::alloc_array(&mut auth, 1024); // 128 data blocks
        let cells = elems(1024);
        auth.try_store_span(&h, 0, &cells).unwrap();
        auth.flush_macs().unwrap();
        let before = auth.io_stats();
        let _ = auth.try_load_span(&h, 0, 1024).unwrap();
        let delta = auth.io_stats() - before;
        // 128 data reads + at most ceil(128/8)=16 MAC block reads.
        assert!(
            delta.total() <= 128 + 16,
            "authenticated sweep cost {} I/Os",
            delta.total()
        );
    }

    #[test]
    fn plain_extmem_can_also_be_authenticated() {
        let mut auth = AuthenticatedStore::new(ExtMem::new(4), 9);
        let h = BlockStore::alloc_array(&mut auth, 8);
        auth.try_store_span(&h, 0, &elems(8)).unwrap();
        assert_eq!(auth.try_load_span(&h, 0, 8).unwrap(), elems(8));
    }

    #[test]
    #[should_panic(expected = "not allocated through this AuthenticatedStore")]
    fn foreign_handles_are_rejected() {
        let mut mem = ExtMem::new(4);
        let foreign = mem.alloc_array(8);
        let mut auth = AuthenticatedStore::new(mem, 9);
        let _ = auth.try_load_block(&foreign, 0);
    }
}
