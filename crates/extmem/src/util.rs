//! Small numeric and hashing utilities shared across the workspace.
//!
//! The paper's randomized constructions need hash functions modelled as
//! random oracles (for the invertible Bloom lookup table) and seeded
//! randomness for sampling and shuffling. We implement a standard 64-bit
//! finalizer-style mixer (`splitmix64`) in-crate rather than pulling in an
//! extra hashing dependency; its avalanche behaviour is more than adequate
//! for the simulator-scale experiments here and keeps the dependency list to
//! the crates allowed by the project brief.

/// The `splitmix64` mixing function: a bijective 64-bit finalizer with good
/// avalanche properties, used as the basis of all in-crate hashing.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes `x` with a salt, producing a pseudo-random 64-bit value.
#[inline]
pub fn hash64(x: u64, salt: u64) -> u64 {
    splitmix64(x ^ splitmix64(salt))
}

/// Maps a 64-bit hash to a bucket in `[0, n)` using the widening-multiply
/// trick (unbiased enough for our purposes and much faster than `%`).
#[inline]
pub fn bucket_of(hash: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    (((hash as u128) * (n as u128)) >> 64) as usize
}

/// Integer `⌈log2⌉`, with `ilog2_ceil(x) = 0` for `x ≤ 1`.
#[inline]
pub fn ilog2_ceil(x: usize) -> u32 {
    if x <= 1 {
        0
    } else {
        usize::BITS - (x - 1).leading_zeros()
    }
}

/// Integer `⌊log2⌋`, with `ilog2_floor(0) = 0`.
#[inline]
pub fn ilog2_floor(x: usize) -> u32 {
    if x == 0 {
        0
    } else {
        usize::BITS - 1 - x.leading_zeros()
    }
}

/// The smallest power of two `≥ x` (and `1` for `x = 0`).
#[inline]
pub fn next_pow2(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

/// Iterated logarithm `log*₂(x)`: the number of times `log2` must be applied
/// before the value drops to at most 1. Used to report the complexity of the
/// Appendix-B loose-compaction algorithm.
pub fn log_star(mut x: f64) -> u32 {
    let mut c = 0;
    while x > 1.0 {
        x = x.log2();
        c += 1;
    }
    c
}

/// Integer square root (floor).
pub fn isqrt(x: usize) -> usize {
    if x < 2 {
        return x;
    }
    let mut r = (x as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= x {
        r += 1;
    }
    while r * r > x {
        r -= 1;
    }
    r
}

/// `⌈x^p⌉` for a fractional power `p`, used for the paper's `n^{1/2}`,
/// `n^{3/8}`, `N^{3/4}` … sample-size formulas.
#[inline]
pub fn ceil_pow(x: usize, p: f64) -> usize {
    (x as f64).powf(p).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // A couple of reference values computed from the canonical algorithm.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn hash64_depends_on_salt() {
        assert_ne!(hash64(7, 1), hash64(7, 2));
        assert_eq!(hash64(7, 1), hash64(7, 1));
    }

    #[test]
    fn bucket_of_stays_in_range_and_spreads() {
        let n = 13;
        let mut seen = vec![false; n];
        for i in 0..1000u64 {
            let b = bucket_of(hash64(i, 42), n);
            assert!(b < n);
            seen[b] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn ilog2_variants() {
        assert_eq!(ilog2_ceil(1), 0);
        assert_eq!(ilog2_ceil(2), 1);
        assert_eq!(ilog2_ceil(3), 2);
        assert_eq!(ilog2_ceil(1024), 10);
        assert_eq!(ilog2_floor(1), 0);
        assert_eq!(ilog2_floor(3), 1);
        assert_eq!(ilog2_floor(1024), 10);
    }

    #[test]
    fn next_pow2_rounds_up() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn log_star_of_tower_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
    }

    #[test]
    fn isqrt_exact_and_floor() {
        assert_eq!(isqrt(0), 0);
        assert_eq!(isqrt(1), 1);
        assert_eq!(isqrt(15), 3);
        assert_eq!(isqrt(16), 4);
        assert_eq!(isqrt(1_000_000), 1000);
        assert_eq!(isqrt(999_999), 999);
    }

    #[test]
    fn ceil_pow_matches_paper_sample_sizes() {
        assert_eq!(ceil_pow(65536, 0.5), 256);
        assert_eq!(ceil_pow(65536, 0.75), 4096);
        assert_eq!(ceil_pow(100, 0.375), 6); // 100^(3/8) ≈ 5.62
    }
}
