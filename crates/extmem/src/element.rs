//! The machine-word record type stored in external memory.
//!
//! The paper assumes that "keys and values can be stored in memory words or
//! blocks of memory words, which support the operations of read, write, copy,
//! compare, add, and subtract, as in the standard RAM model" (Section 1).
//! [`Element`] is exactly that: a two-word record with a comparable `key` and
//! an opaque `payload`. Array cells are [`Cell`]s, i.e. possibly-empty slots,
//! because the paper's arrays contain *distinguished* items, dummies and
//! padding.

use std::cmp::Ordering;
use std::fmt;

/// A two-word record: a comparable key plus an opaque payload word.
///
/// Ordering is by `key` first and `payload` second. The second component is
/// routinely used by the algorithm crates to break ties by original array
/// index, which keeps the high-probability bounds of the selection and
/// quantile algorithms valid even when keys repeat (see `odo-core`'s module
/// documentation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Element {
    /// The comparable key.
    pub key: u64,
    /// An opaque payload word (often an original index or user value).
    pub payload: u64,
}

impl Element {
    /// Creates a new element.
    #[inline]
    pub fn new(key: u64, payload: u64) -> Self {
        Element { key, payload }
    }

    /// Creates an element whose payload is an array index, the common pattern
    /// for order-preserving compaction and tie-breaking.
    #[inline]
    pub fn keyed(key: u64, index: usize) -> Self {
        Element {
            key,
            payload: index as u64,
        }
    }

    /// Packs the element into a single 128-bit word (key in the high half).
    ///
    /// Used by the invertible Bloom lookup table, whose cells accumulate sums
    /// of values, and by the encryption layer.
    #[inline]
    pub fn pack(&self) -> u128 {
        ((self.key as u128) << 64) | self.payload as u128
    }

    /// Inverse of [`Element::pack`].
    #[inline]
    pub fn unpack(word: u128) -> Self {
        Element {
            key: (word >> 64) as u64,
            payload: word as u64,
        }
    }
}

impl PartialOrd for Element {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Element {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        (self.key, self.payload).cmp(&(other.key, other.payload))
    }
}

impl fmt::Debug for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E({}:{})", self.key, self.payload)
    }
}

/// A possibly-empty array cell.
///
/// `None` models the paper's "empty"/"null" cells ("we consider a cell
/// 'empty' if it stores a null value that is different from any input
/// value", Section 3). All algorithms treat `None` as a dummy that must be
/// handled with the same access pattern as a real element.
pub type Cell = Option<Element>;

/// Compares two cells treating `None` as +∞, the convention used when sorting
/// padded arrays ("considering empty cells as holding +∞", Section 4).
#[inline]
pub fn cell_cmp_none_last(a: &Cell, b: &Cell) -> Ordering {
    match (a, b) {
        (Some(x), Some(y)) => x.cmp(y),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

/// Compares two cells by *descending* element order while still treating
/// `None` as the very last value, the order a descending sort with
/// dummies-at-the-end padding needs (the padding argument of the external
/// sorts relies on dummies never sorting before an occupied cell).
#[inline]
pub fn cell_cmp_none_last_desc(a: &Cell, b: &Cell) -> Ordering {
    match (a, b) {
        (Some(x), Some(y)) => y.cmp(x),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => Ordering::Equal,
    }
}

/// Compares two cells treating `None` as −∞ (occasionally needed when packing
/// occupied cells towards the end of an array).
#[inline]
pub fn cell_cmp_none_first(a: &Cell, b: &Cell) -> Ordering {
    match (a, b) {
        (Some(x), Some(y)) => x.cmp(y),
        (Some(_), None) => Ordering::Greater,
        (None, Some(_)) => Ordering::Less,
        (None, None) => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_ordering_is_lexicographic() {
        let a = Element::new(1, 9);
        let b = Element::new(2, 0);
        let c = Element::new(2, 1);
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let e = Element::new(0xDEAD_BEEF_0123_4567, 0x89AB_CDEF_FEDC_BA98);
        assert_eq!(Element::unpack(e.pack()), e);
    }

    #[test]
    fn keyed_stores_index_in_payload() {
        let e = Element::keyed(42, 7);
        assert_eq!(e.key, 42);
        assert_eq!(e.payload, 7);
    }

    #[test]
    fn cell_comparison_none_last_puts_empty_cells_at_the_end() {
        let full: Cell = Some(Element::new(5, 0));
        let empty: Cell = None;
        assert_eq!(cell_cmp_none_last(&full, &empty), Ordering::Less);
        assert_eq!(cell_cmp_none_last(&empty, &full), Ordering::Greater);
        assert_eq!(cell_cmp_none_last(&empty, &empty), Ordering::Equal);
    }

    #[test]
    fn cell_comparison_none_first_puts_empty_cells_at_the_front() {
        let full: Cell = Some(Element::new(5, 0));
        let empty: Cell = None;
        assert_eq!(cell_cmp_none_first(&full, &empty), Ordering::Greater);
        assert_eq!(cell_cmp_none_first(&empty, &full), Ordering::Less);
    }

    #[test]
    fn default_element_is_zero() {
        let e = Element::default();
        assert_eq!(e.key, 0);
        assert_eq!(e.payload, 0);
    }
}
