//! A tiny write-back block cache used by the scanning algorithms.
//!
//! Many of the paper's algorithms are phrased as one or more synchronized
//! sequential scans ("read the next block of A, keep a block in Alice's
//! memory, write a block to A'"). [`BlockCache`] gives those algorithms an
//! ergonomic way to work at element granularity while still being charged
//! block I/Os exactly as the model prescribes: it holds at most `capacity`
//! blocks of one array in the client's private memory, loads a block on first
//! touch, and writes a block back when it is evicted (only if dirty) or when
//! the cache is flushed.
//!
//! The eviction policy is least-recently-used. Because every algorithm in
//! this workspace touches elements through monotone cursors (or through
//! explicitly data-independent index sequences), which blocks get loaded and
//! evicted — i.e. the access pattern the server sees — remains a function of
//! the input *shape* only, never of data values; the obliviousness tests
//! verify this end to end.

use crate::block::Block;
use crate::element::Cell;
use crate::mem::{ArrayHandle, ExtMem};
use crate::store::BlockStore;

/// A small write-back cache of blocks from a single array.
///
/// Generic over the [`BlockStore`] backend, so the same scanning algorithms
/// run over a plaintext [`ExtMem`] arena or an encrypting store; `S` defaults
/// to [`ExtMem`], the common case.
pub struct BlockCache<'a, S: BlockStore = ExtMem> {
    mem: &'a mut S,
    handle: ArrayHandle,
    capacity: usize,
    /// (block index, block contents, dirty, last-use tick)
    resident: Vec<(usize, Block, bool, u64)>,
    tick: u64,
}

impl<'a, S: BlockStore> BlockCache<'a, S> {
    /// Creates a cache over `handle` holding at most `capacity_blocks` blocks
    /// of private memory.
    pub fn new(mem: &'a mut S, handle: ArrayHandle, capacity_blocks: usize) -> Self {
        assert!(capacity_blocks >= 1, "cache must hold at least one block");
        BlockCache {
            mem,
            handle,
            capacity: capacity_blocks,
            resident: Vec::new(),
            tick: 0,
        }
    }

    /// The array handle this cache serves.
    pub fn handle(&self) -> ArrayHandle {
        self.handle
    }

    fn touch(&mut self, slot: usize) {
        self.tick += 1;
        self.resident[slot].3 = self.tick;
    }

    fn load(&mut self, block_idx: usize) -> usize {
        if let Some(pos) = self.resident.iter().position(|(b, ..)| *b == block_idx) {
            self.touch(pos);
            return pos;
        }
        if self.resident.len() == self.capacity {
            // Evict the least recently used block.
            let victim = self
                .resident
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, _, t))| *t)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            let (bi, blk, dirty, _) = self.resident.swap_remove(victim);
            if dirty {
                self.mem.store_block(&self.handle, bi, blk);
            } else {
                // Clean victims skip the write-back; return the buffer to the
                // store's arena instead of dropping it.
                self.mem.recycle(blk);
            }
        }
        let blk = self.mem.load_block(&self.handle, block_idx);
        self.resident.push((block_idx, blk, false, 0));
        let pos = self.resident.len() - 1;
        self.touch(pos);
        pos
    }

    /// Reads the cell at element index `idx`.
    pub fn read(&mut self, idx: usize) -> Cell {
        assert!(idx < self.handle.len(), "element index out of range");
        let b = self.handle.block_elems();
        let pos = self.load(idx / b);
        self.resident[pos].1.get(idx % b)
    }

    /// Writes the cell at element index `idx`.
    pub fn write(&mut self, idx: usize, cell: Cell) {
        assert!(idx < self.handle.len(), "element index out of range");
        let b = self.handle.block_elems();
        let pos = self.load(idx / b);
        self.resident[pos].1.set(idx % b, cell);
        self.resident[pos].2 = true;
    }

    /// Writes every dirty resident block back and empties the cache.
    pub fn flush(&mut self) {
        let resident = std::mem::take(&mut self.resident);
        for (bi, blk, dirty, _) in resident {
            if dirty {
                self.mem.store_block(&self.handle, bi, blk);
            } else {
                self.mem.recycle(blk);
            }
        }
    }

    /// Number of blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }
}

impl<S: BlockStore> Drop for BlockCache<'_, S> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn e(k: u64) -> Element {
        Element::new(k, 0)
    }

    #[test]
    fn read_write_through_cache_roundtrips() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..16).map(e).collect::<Vec<_>>());
        {
            let mut cache = BlockCache::new(&mut mem, h, 2);
            assert_eq!(cache.read(5), Some(e(5)));
            cache.write(5, Some(e(99)));
            assert_eq!(cache.read(5), Some(e(99)));
        } // drop flushes
        assert_eq!(mem.snapshot_cells(&h)[5], Some(e(99)));
    }

    #[test]
    fn sequential_scan_costs_one_read_per_block() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..32).map(e).collect::<Vec<_>>());
        {
            let mut cache = BlockCache::new(&mut mem, h, 1);
            for i in 0..32 {
                let _ = cache.read(i);
            }
        }
        // 8 blocks, read once each, nothing dirty.
        assert_eq!(mem.stats().reads, 8);
        assert_eq!(mem.stats().writes, 0);
    }

    #[test]
    fn two_monotone_cursors_fit_in_two_blocks() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..32).map(e).collect::<Vec<_>>());
        {
            let mut cache = BlockCache::new(&mut mem, h, 2);
            // Compare-exchange style pass: pairs (i, i + 16).
            for i in 0..16 {
                let a = cache.read(i);
                let b = cache.read(i + 16);
                cache.write(i, b);
                cache.write(i + 16, a);
            }
        }
        // Each of the 8 blocks is loaded once and written once.
        assert_eq!(mem.stats().reads, 8);
        assert_eq!(mem.stats().writes, 8);
        let cells = mem.snapshot_cells(&h);
        assert_eq!(cells[0], Some(e(16)));
        assert_eq!(cells[16], Some(e(0)));
    }

    #[test]
    fn clean_blocks_are_not_written_back() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..8).map(e).collect::<Vec<_>>());
        {
            let mut cache = BlockCache::new(&mut mem, h, 1);
            let _ = cache.read(0);
            let _ = cache.read(4); // evicts block 0 (clean)
        }
        assert_eq!(mem.stats().writes, 0);
    }

    #[test]
    fn lru_eviction_writes_back_dirty_victim() {
        let mut mem = ExtMem::new(2);
        let h = mem.alloc_array(8);
        {
            let mut cache = BlockCache::new(&mut mem, h, 2);
            cache.write(0, Some(e(1))); // block 0 dirty
            cache.write(2, Some(e(2))); // block 1 dirty
            cache.write(4, Some(e(3))); // evicts block 0 -> write-back
        }
        let cells = mem.snapshot_cells(&h);
        assert_eq!(cells[0], Some(e(1)));
        assert_eq!(cells[2], Some(e(2)));
        assert_eq!(cells[4], Some(e(3)));
    }

    #[test]
    fn resident_count_never_exceeds_capacity() {
        let mut mem = ExtMem::new(2);
        let h = mem.alloc_array(20);
        let mut cache = BlockCache::new(&mut mem, h, 3);
        for i in 0..20 {
            cache.write(i, Some(e(i as u64)));
            assert!(cache.resident_blocks() <= 3);
        }
    }
}
