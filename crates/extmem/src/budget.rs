//! Private-cache budget accounting.
//!
//! The model gives Alice a private cache of `M` words that the adversary
//! cannot observe. The algorithms in this workspace are written so that their
//! client-side working set never exceeds `M`; [`CacheBudget`] makes that an
//! explicit, testable claim. Algorithms `acquire` capacity (in element slots)
//! when they pull blocks into the cache and `release` it when they evict.
//! Exceeding the budget is a logic error and panics, which is how the test
//! suite catches algorithms that quietly assume a larger cache than the
//! configuration allows.

use crate::error::StoreError;

/// Tracks how much of the private cache an algorithm is currently using.
#[derive(Clone, Debug)]
pub struct CacheBudget {
    capacity: usize,
    in_use: usize,
    high_water: usize,
}

impl CacheBudget {
    /// Creates a budget with capacity `capacity` element slots (typically `M`).
    pub fn new(capacity: usize) -> Self {
        CacheBudget {
            capacity,
            in_use: 0,
            high_water: 0,
        }
    }

    /// Capacity in element slots.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently accounted as in use.
    #[inline]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// The maximum number of slots that were ever simultaneously in use.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Claims `slots` slots of private cache.
    ///
    /// # Panics
    /// Panics if the claim would exceed the capacity — the algorithm is using
    /// more private memory than the model configuration allows.
    pub fn acquire(&mut self, slots: usize) {
        self.in_use += slots;
        assert!(
            self.in_use <= self.capacity,
            "private cache budget exceeded: {} in use, capacity {}",
            self.in_use,
            self.capacity
        );
        self.high_water = self.high_water.max(self.in_use);
    }

    /// Fallible variant of [`CacheBudget::acquire`]: claims `slots` slots,
    /// or returns [`StoreError::BudgetExceeded`] leaving the budget
    /// untouched. Used by the authenticated store, whose client-side
    /// verification state competes with the algorithms for private memory.
    pub fn try_acquire(&mut self, slots: usize) -> Result<(), StoreError> {
        if self.in_use + slots > self.capacity {
            return Err(StoreError::BudgetExceeded {
                requested: slots,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += slots;
        self.high_water = self.high_water.max(self.in_use);
        Ok(())
    }

    /// Releases `slots` previously acquired slots.
    pub fn release(&mut self, slots: usize) {
        assert!(
            slots <= self.in_use,
            "releasing more cache than was acquired"
        );
        self.in_use -= slots;
    }

    /// Runs `f` with `slots` slots temporarily acquired.
    pub fn with<R>(&mut self, slots: usize, f: impl FnOnce(&mut Self) -> R) -> R {
        self.acquire(slots);
        let r = f(self);
        self.release(slots);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_tracks_usage_and_high_water() {
        let mut b = CacheBudget::new(10);
        b.acquire(4);
        b.acquire(3);
        assert_eq!(b.in_use(), 7);
        b.release(5);
        assert_eq!(b.in_use(), 2);
        assert_eq!(b.high_water(), 7);
    }

    #[test]
    #[should_panic(expected = "private cache budget exceeded")]
    fn exceeding_capacity_panics() {
        let mut b = CacheBudget::new(4);
        b.acquire(5);
    }

    #[test]
    #[should_panic(expected = "releasing more cache")]
    fn over_release_panics() {
        let mut b = CacheBudget::new(4);
        b.acquire(2);
        b.release(3);
    }

    #[test]
    fn scoped_with_releases_on_exit() {
        let mut b = CacheBudget::new(8);
        let r = b.with(6, |inner| inner.in_use());
        assert_eq!(r, 6);
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.high_water(), 6);
    }

    #[test]
    fn acquire_to_exactly_capacity_is_allowed() {
        // The boundary case: using every last slot of M is legal; it is
        // capacity + 1 that is the violation.
        let mut b = CacheBudget::new(10);
        b.acquire(10);
        assert_eq!(b.in_use(), 10);
        assert_eq!(b.high_water(), 10);
        b.release(10);
        assert_eq!(b.in_use(), 0);
        b.acquire(9);
        b.acquire(1); // incremental path to exactly-full is legal too
        assert_eq!(b.in_use(), 10);
    }

    #[test]
    #[should_panic(expected = "private cache budget exceeded")]
    fn one_past_capacity_panics_even_incrementally() {
        let mut b = CacheBudget::new(10);
        b.acquire(10);
        b.acquire(1);
    }

    #[test]
    fn release_to_exactly_zero_is_allowed() {
        let mut b = CacheBudget::new(4);
        b.acquire(4);
        b.release(4);
        assert_eq!(b.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing more cache")]
    fn release_below_zero_panics_from_empty() {
        let mut b = CacheBudget::new(4);
        b.release(1);
    }

    #[test]
    fn high_water_tracks_the_peak_across_nested_acquires() {
        let mut b = CacheBudget::new(32);
        b.with(8, |b| {
            b.with(16, |b| {
                b.acquire(4); // peak: 8 + 16 + 4 = 28
                b.release(4);
            });
            assert_eq!(b.in_use(), 8);
        });
        assert_eq!(b.in_use(), 0);
        assert_eq!(b.high_water(), 28, "the peak survives every release");
        // A later, smaller burst never lowers the recorded peak.
        b.with(5, |_| {});
        assert_eq!(b.high_water(), 28);
    }

    #[test]
    fn try_acquire_succeeds_up_to_capacity() {
        let mut b = CacheBudget::new(10);
        b.try_acquire(10).unwrap();
        assert_eq!(b.in_use(), 10);
        assert_eq!(b.high_water(), 10);
    }

    #[test]
    fn try_acquire_over_capacity_is_a_typed_error_and_leaves_state_untouched() {
        let mut b = CacheBudget::new(10);
        b.acquire(7);
        let err = b.try_acquire(4).unwrap_err();
        assert_eq!(
            err,
            StoreError::BudgetExceeded {
                requested: 4,
                in_use: 7,
                capacity: 10
            }
        );
        assert_eq!(b.in_use(), 7, "a failed claim must not leak slots");
        assert_eq!(b.high_water(), 7);
        b.try_acquire(3).unwrap(); // the budget remains usable
        assert_eq!(b.in_use(), 10);
    }
}
