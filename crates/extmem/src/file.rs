//! [`FileStore`]: the block server over a real file — wall-clock external
//! memory.
//!
//! Every other store in this crate ultimately bottoms out in the in-memory
//! [`ExtMem`](crate::mem::ExtMem) arena, which counts I/Os but costs
//! nanoseconds per "I/O". `FileStore` implements the same [`BlockStore`]
//! interface over a single preallocated file, so the paper's `O(N/B)`-style
//! bounds can be measured in *seconds*: every `load_block`/`store_block` is a
//! positioned read/write (`pread`/`pwrite`) of one `B`-cell block image.
//!
//! Addressing is identical to `ExtMem` — arrays are allocated back-to-back
//! and a handle's local block `i` lives at global address
//! `start_block + i`, at byte offset `addr · 24B` — so the access trace a
//! `FileStore` records is **byte-identical** to the trace `ExtMem` records
//! for the same algorithm run (the bench harness and the trace-parity test
//! battery assert this at every grid point).
//!
//! # On-disk encoding
//!
//! Each cell is 24 bytes, little-endian: an occupancy word (`0` dummy, `1`
//! occupied — anything else fails decoding as
//! [`StoreError::Corrupted`]), the 64-bit key, and the 64-bit payload. A
//! zero-filled file region therefore decodes to all-dummy blocks, which is
//! exactly what a freshly allocated (`ftruncate`-extended) array must read
//! as. Unlike the [encrypted encoding](crate::crypto::EncryptedStore), the
//! full 64-bit payload range is representable.
//!
//! # Fallible operations
//!
//! The `try_*` path maps real [`std::io::Error`]s to typed [`StoreError`]s:
//! retryable kinds (`Interrupted`, `TimedOut`, `WouldBlock`) become
//! [`StoreError::Transient`], truncated or garbled block images become
//! [`StoreError::Corrupted`], and everything else surfaces as
//! [`StoreError::Io`] with the offending [`std::io::ErrorKind`].
//!
//! # Crash injection
//!
//! [`FileStore::crash_after_writes`] arms a panic hook that aborts the
//! process-level computation (via the typed [`InjectedCrash`] payload) after
//! a given number of further block writes — mid-pass, with the file left
//! torn. The crash-consistency tests use this to check that an
//! [`AuthenticatedStore`](crate::auth::AuthenticatedStore) reopening the
//! file detects the torn state as `Corrupted`/`Stale` rather than serving
//! stale data.

use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::arena::BlockArena;
use crate::block::Block;
use crate::element::{Cell, Element};
use crate::error::StoreError;
use crate::mem::{AccessEvent, AccessOp, AccessTrace, ArrayHandle, IoStats};
use crate::prefetch::{PrefetchRead, Prefetchable};
use crate::store::{BackingStore, BlockStore};

/// Bytes per cell on disk: occupancy word, key, payload.
pub const CELL_BYTES: usize = 24;

/// Typed panic payload of an injected crash (see
/// [`FileStore::crash_after_writes`]), so tests can `catch_unwind` and
/// positively identify the simulated power-cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedCrash;

/// Byte offset of global block `addr` with `bytes` bytes per block,
/// computed with both operands widened to `u64` *before* the multiply.
/// `(addr * bytes) as u64` wraps silently in `usize` on 32-bit targets once
/// a geometry crosses 4 GiB and then reads or writes the wrong block; the
/// widened checked form cannot, and a product that genuinely exceeds `u64`
/// (no real file can) panics loudly instead of truncating.
#[inline]
fn byte_offset(addr: usize, bytes: usize) -> u64 {
    (addr as u64)
        .checked_mul(bytes as u64)
        .expect("file byte offset overflows u64")
}

/// Maps a real OS error to the typed [`StoreError`] vocabulary.
fn map_io_err(addr: usize, e: &io::Error) -> StoreError {
    match e.kind() {
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
            StoreError::Transient { addr }
        }
        io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData => StoreError::Corrupted { addr },
        kind => StoreError::Io { addr, kind },
    }
}

/// Decodes one block image; the buffer is drawn from `arena`.
pub(crate) fn decode_block(
    bytes: &[u8],
    block_elems: usize,
    arena: &BlockArena,
    addr: usize,
) -> Result<Block, StoreError> {
    debug_assert_eq!(bytes.len(), block_elems * CELL_BYTES);
    let mut buf = arena.take(block_elems);
    for (slot, chunk) in buf.iter_mut().zip(bytes.chunks_exact(CELL_BYTES)) {
        let occ = u64::from_le_bytes(chunk[0..8].try_into().expect("8-byte chunk"));
        match occ {
            0 => *slot = None,
            1 => {
                let key = u64::from_le_bytes(chunk[8..16].try_into().expect("8-byte chunk"));
                let payload = u64::from_le_bytes(chunk[16..24].try_into().expect("8-byte chunk"));
                *slot = Some(Element::new(key, payload));
            }
            _ => {
                arena.put(buf);
                return Err(StoreError::Corrupted { addr });
            }
        }
    }
    Ok(Block::from_buffer(buf))
}

/// Encodes a block by *appending* its image to `out` (callers clear first
/// when they want exactly one image; span writers append several).
pub(crate) fn encode_block(blk: &Block, out: &mut Vec<u8>) {
    out.reserve(blk.len() * CELL_BYTES);
    for cell in blk.slots() {
        match cell {
            Some(e) => {
                out.extend_from_slice(&1u64.to_le_bytes());
                out.extend_from_slice(&e.key.to_le_bytes());
                out.extend_from_slice(&e.payload.to_le_bytes());
            }
            None => out.extend_from_slice(&[0u8; CELL_BYTES]),
        }
    }
}

/// A [`BlockStore`] over a single preallocated file. See the module docs.
#[derive(Debug)]
pub struct FileStore {
    file: Arc<File>,
    path: PathBuf,
    block_elems: usize,
    n_blocks: usize,
    stats: IoStats,
    trace: Option<AccessTrace>,
    arena: Arc<BlockArena>,
    scratch: Vec<u8>,
    delete_on_drop: bool,
    /// `Some(n)`: panic with [`InjectedCrash`] when the `n+1`-th further
    /// block write is attempted.
    crash_after: Option<u64>,
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl FileStore {
    fn from_file(
        file: File,
        path: PathBuf,
        block_elems: usize,
        delete_on_drop: bool,
    ) -> Result<Self, StoreError> {
        assert!(block_elems >= 1, "block size must be at least 1");
        // A stat failure here must surface, not default to an empty store:
        // `unwrap_or(0)` would silently report `n_blocks == 0` and a reopen
        // after a crash would "recover" a store with all its data invisible.
        let len = match file.metadata() {
            Ok(m) => m.len(),
            Err(e) => {
                // On Linux `fstat` on an open descriptor fails essentially
                // only with EBADF — a descriptor already closed elsewhere.
                // Dropping such a `File` double-closes and trips the
                // runtime's IO-safety abort, so the error path must leak the
                // handle rather than drop it.
                let err = map_io_err(0, &e);
                std::mem::forget(file);
                return Err(err);
            }
        };
        let n_blocks = (len / byte_offset(block_elems, CELL_BYTES)) as usize;
        Ok(FileStore {
            file: Arc::new(file),
            path,
            block_elems,
            n_blocks,
            stats: IoStats::default(),
            trace: None,
            arena: BlockArena::new(),
            scratch: Vec::new(),
            delete_on_drop,
            crash_after: None,
        })
    }

    /// Creates (truncating) a store file at `path` with block size
    /// `block_elems`. Open and stat failures surface as typed
    /// [`StoreError`]s.
    pub fn create(path: impl AsRef<Path>, block_elems: usize) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| map_io_err(0, &e))?;
        Self::from_file(file, path, block_elems, false)
    }

    /// Reopens an existing store file (e.g. after a crash); the allocation
    /// high-water mark is recovered from the file length, so a failing stat
    /// is a typed [`StoreError`] — never a silently empty store.
    pub fn open(path: impl AsRef<Path>, block_elems: usize) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = File::options()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| map_io_err(0, &e))?;
        Self::from_file(file, path, block_elems, false)
    }

    /// Wraps an already-open handle (e.g. one received across a privilege
    /// boundary) as a store rooted at `path`. The same recovery rules as
    /// [`FileStore::open`] apply: the allocation high-water mark comes from
    /// `fstat`, and a stat failure (a dead or revoked descriptor) is a typed
    /// [`StoreError`], never an empty store.
    pub fn from_handle(
        file: File,
        path: impl AsRef<Path>,
        block_elems: usize,
    ) -> Result<Self, StoreError> {
        Self::from_file(file, path.as_ref().to_path_buf(), block_elems, false)
    }

    /// Creates a store over a fresh uniquely-named file in the system temp
    /// directory, deleted when the store is dropped.
    pub fn temp(block_elems: usize) -> Result<Self, StoreError> {
        let path = std::env::temp_dir().join(format!(
            "odo-filestore-{}-{}.blocks",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut store = Self::create(&path, block_elems)?;
        store.delete_on_drop = true;
        Ok(store)
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Block size `B`.
    #[inline]
    pub fn block_elems(&self) -> usize {
        self.block_elems
    }

    /// Total number of blocks currently allocated in the file.
    #[inline]
    pub fn allocated_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Cumulative I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// The buffer pool decoded blocks draw from.
    pub fn arena(&self) -> &Arc<BlockArena> {
        &self.arena
    }

    /// Starts recording the access trace (clearing any previous recording).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the captured trace, if any.
    pub fn take_trace(&mut self) -> Option<AccessTrace> {
        self.trace.take()
    }

    /// Resets the I/O counters (does not clear the trace).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Arms the crash hook: the store performs `writes` more block writes
    /// normally, then panics with the typed [`InjectedCrash`] payload
    /// *instead of* performing the next one — simulating a power cut that
    /// tears the on-disk state mid-pass.
    pub fn crash_after_writes(&mut self, writes: u64) {
        self.crash_after = Some(writes);
    }

    #[inline]
    fn block_bytes(&self) -> usize {
        self.block_elems * CELL_BYTES
    }

    fn record(&mut self, op: AccessOp, addr: usize) {
        match op {
            AccessOp::Read => self.stats.reads += 1,
            AccessOp::Write => self.stats.writes += 1,
        }
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { op, addr });
        }
    }

    fn read_raw(&mut self, addr: usize) -> Result<Block, StoreError> {
        let bytes = self.block_bytes();
        self.scratch.resize(bytes, 0);
        self.file
            .read_exact_at(&mut self.scratch, byte_offset(addr, bytes))
            .map_err(|e| map_io_err(addr, &e))?;
        decode_block(&self.scratch, self.block_elems, &self.arena, addr)
    }

    fn write_raw(&mut self, addr: usize, blk: &Block) -> Result<(), StoreError> {
        assert_eq!(blk.len(), self.block_elems, "block size mismatch");
        if let Some(n) = self.crash_after.as_mut() {
            if *n == 0 {
                std::panic::panic_any(InjectedCrash);
            }
            *n -= 1;
        }
        let bytes = self.block_bytes();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        encode_block(blk, &mut scratch);
        let res = self
            .file
            .write_all_at(&scratch, byte_offset(addr, bytes))
            .map_err(|e| map_io_err(addr, &e));
        self.scratch = scratch;
        res
    }

    /// Allocates an array and fills it from a slice of cells, free of
    /// charge (mirrors [`ExtMem::alloc_array_from_cells`]).
    ///
    /// [`ExtMem::alloc_array_from_cells`]: crate::mem::ExtMem::alloc_array_from_cells
    pub fn alloc_array_from_cells(&mut self, cells: &[Cell]) -> ArrayHandle {
        let h = BlockStore::alloc_array(self, cells.len().max(1));
        let b = self.block_elems;
        for (i, chunk) in cells.chunks(b).enumerate() {
            let mut blk = Block::from_buffer(self.arena.take(b));
            for (j, c) in chunk.iter().enumerate() {
                blk.set(j, *c);
            }
            self.write_raw(h.global_block(i), &blk)
                .unwrap_or_else(|e| panic!("FileStore: initial population failed: {e}"));
            self.arena.put(blk.into_buffer());
        }
        h
    }

    /// Allocates an array and fills it from a slice of elements (all
    /// occupied), free of charge.
    pub fn alloc_array_from_elements(&mut self, items: &[Element]) -> ArrayHandle {
        let cells: Vec<Cell> = items.iter().map(|e| Some(*e)).collect();
        self.alloc_array_from_cells(&cells)
    }

    /// Non-oblivious convenience used by tests and oracles: the whole array
    /// decoded from disk, without charging I/Os or touching the trace.
    pub fn snapshot_cells(&self, h: &ArrayHandle) -> Vec<Cell> {
        let bytes = self.block_bytes();
        let mut image = vec![0u8; bytes];
        let mut out = Vec::with_capacity(h.len());
        for i in 0..h.n_blocks() {
            let addr = h.global_block(i);
            self.file
                .read_exact_at(&mut image, byte_offset(addr, bytes))
                .expect("snapshot read failed");
            let blk = decode_block(&image, self.block_elems, &self.arena, addr)
                .unwrap_or_else(|e| panic!("snapshot decode failed: {e}"));
            for j in 0..self.block_elems {
                if out.len() < h.len() {
                    out.push(blk.get(j));
                }
            }
            self.arena.put(blk.into_buffer());
        }
        out
    }

    /// The occupied elements of the array in slot order, free of charge.
    pub fn snapshot_elements(&self, h: &ArrayHandle) -> Vec<Element> {
        self.snapshot_cells(h).into_iter().flatten().collect()
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl BlockStore for FileStore {
    fn block_elems(&self) -> usize {
        self.block_elems
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        let start_block = self.n_blocks;
        let nb = len_elements.div_ceil(self.block_elems).max(1);
        self.n_blocks += nb;
        // Preallocate: extending with zeros makes every new block decode as
        // all-dummy, exactly like a fresh ExtMem block.
        self.file
            .set_len(byte_offset(self.n_blocks, self.block_bytes()))
            .expect("FileStore: preallocation (ftruncate) failed");
        ArrayHandle::new_raw(start_block, len_elements, self.block_elems)
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.try_load_block(h, i)
            .unwrap_or_else(|e| panic!("FileStore: {e}"))
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.try_store_block(h, i, blk)
            .unwrap_or_else(|e| panic!("FileStore: {e}"))
    }

    fn io_stats(&self) -> IoStats {
        self.stats
    }

    fn recycle(&mut self, blk: Block) {
        self.arena.put(blk.into_buffer());
    }

    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        let addr = h.global_block(i);
        let blk = self.read_raw(addr)?;
        self.record(AccessOp::Read, addr);
        Ok(blk)
    }

    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        let addr = h.global_block(i);
        self.write_raw(addr, &blk)?;
        self.arena.put(blk.into_buffer());
        self.record(AccessOp::Write, addr);
        Ok(())
    }
}

impl BackingStore for FileStore {
    fn enable_trace(&mut self) {
        FileStore::enable_trace(self)
    }

    fn take_trace(&mut self) -> Option<AccessTrace> {
        FileStore::take_trace(self)
    }

    fn reset_stats(&mut self) {
        FileStore::reset_stats(self)
    }

    fn allocated_blocks(&self) -> usize {
        FileStore::allocated_blocks(self)
    }

    fn snapshot_cells(&self, h: &ArrayHandle) -> Vec<Cell> {
        FileStore::snapshot_cells(self, h)
    }
}

/// Background reader over the same file: positioned reads share the
/// [`Arc<File>`] (no seek cursor is involved), and decoded blocks draw from
/// the same shared [`BlockArena`] as the foreground.
#[derive(Debug)]
pub struct FileReader {
    file: Arc<File>,
    block_elems: usize,
    arena: Arc<BlockArena>,
    scratch: Vec<u8>,
}

impl PrefetchRead for FileReader {
    fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
        let bytes = self.block_elems * CELL_BYTES;
        self.scratch.resize(bytes, 0);
        self.file
            .read_exact_at(&mut self.scratch, byte_offset(addr, bytes))
            .map_err(|e| map_io_err(addr, &e))?;
        decode_block(&self.scratch, self.block_elems, &self.arena, addr)
    }

    fn fetch_run(&mut self, start: usize, count: usize) -> Vec<Result<Block, StoreError>> {
        let bytes = self.block_elems * CELL_BYTES;
        self.scratch.resize(bytes * count, 0);
        if self
            .file
            .read_exact_at(&mut self.scratch, byte_offset(start, bytes))
            .is_err()
        {
            // The span read can cross damage a per-block read would dodge
            // (e.g. a truncation inside the run); fall back block by block
            // so errors land on the exact address that caused them.
            return (start..start + count).map(|a| self.fetch(a)).collect();
        }
        (0..count)
            .map(|k| {
                decode_block(
                    &self.scratch[k * bytes..(k + 1) * bytes],
                    self.block_elems,
                    &self.arena,
                    start + k,
                )
            })
            .collect()
    }
}

impl Prefetchable for FileStore {
    type Reader = FileReader;

    fn reader(&self) -> FileReader {
        FileReader {
            file: Arc::clone(&self.file),
            block_elems: self.block_elems,
            arena: Arc::clone(&self.arena),
            scratch: Vec::new(),
        }
    }

    fn supports_store_runs(&self) -> bool {
        true
    }

    fn store_run(&mut self, start: usize, blks: Vec<Block>) -> Result<(), StoreError> {
        // Crash injection counts individual block writes, so a run must
        // still decrement the fuse once per block — route through the
        // per-block path whenever a crash is armed.
        if self.crash_after.is_some() {
            for (k, blk) in blks.into_iter().enumerate() {
                self.write_raw(start + k, &blk)?;
                self.arena.put(blk.into_buffer());
            }
            return Ok(());
        }
        let bytes = self.block_bytes();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for blk in &blks {
            assert_eq!(blk.len(), self.block_elems, "block size mismatch");
            encode_block(blk, &mut scratch);
        }
        let res = self
            .file
            .write_all_at(&scratch, byte_offset(start, bytes))
            .map_err(|e| map_io_err(start, &e));
        self.scratch = scratch;
        if res.is_err() {
            // Localize the failure: retry block by block so the error names
            // the exact address — and if the retries all land, the run is
            // durable after all.
            for (k, blk) in blks.iter().enumerate() {
                self.write_raw(start + k, blk)?;
            }
        }
        for blk in blks {
            self.arena.put(blk.into_buffer());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: u64) -> Element {
        Element::new(k, k.wrapping_mul(7))
    }

    #[test]
    fn byte_offsets_widen_before_multiplying() {
        // A block address just past the 4 GiB line: in 32-bit `usize`
        // arithmetic `addr * bytes` wraps (the pre-fix code computed the
        // product in `usize` and only then widened), so pin the exact u64
        // the widened form must produce.
        let addr = (1usize << 28) + 3; // with 24-byte cells: > 6 GiB offset
        assert_eq!(byte_offset(addr, CELL_BYTES), (addr as u64) * 24);
        assert_eq!(
            byte_offset(1 << 31, CELL_BYTES),
            (1u64 << 31) * CELL_BYTES as u64
        );
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn byte_offset_panics_on_true_u64_overflow() {
        let _ = byte_offset(usize::MAX, usize::MAX);
    }

    #[test]
    fn roundtrip_through_the_file() {
        let mut fs = FileStore::temp(4).unwrap();
        let h = fs.alloc_array(12);
        let cells: Vec<Cell> = (0..12).map(|k| Some(e(k))).collect();
        fs.store_span(&h, 0, &cells);
        assert_eq!(fs.load_span(&h, 0, 12), cells);
        assert_eq!(fs.snapshot_cells(&h), cells);
    }

    #[test]
    fn fresh_blocks_decode_as_dummies() {
        let mut fs = FileStore::temp(4).unwrap();
        let h = fs.alloc_array(8);
        assert!(fs.load_block(&h, 1).is_all_dummy());
    }

    #[test]
    fn full_64bit_payloads_are_representable() {
        let mut fs = FileStore::temp(2).unwrap();
        let h = fs.alloc_array(2);
        let wide = Element::new(u64::MAX, u64::MAX);
        let mut blk = Block::empty(2);
        blk.set(1, Some(wide));
        fs.store_block(&h, 0, blk);
        assert_eq!(fs.load_block(&h, 0).get(1), Some(wide));
    }

    #[test]
    fn stats_and_trace_match_extmem_semantics() {
        let mut fs = FileStore::temp(2).unwrap();
        fs.enable_trace();
        let a = fs.alloc_array(4); // blocks 0..2
        let b = fs.alloc_array(4); // blocks 2..4
        let _ = fs.load_block(&a, 1);
        fs.store_block(&b, 0, Block::empty(2));
        assert_eq!(
            fs.stats(),
            IoStats {
                reads: 1,
                writes: 1
            }
        );
        assert_eq!(
            fs.take_trace().unwrap(),
            vec![
                AccessEvent {
                    op: AccessOp::Read,
                    addr: 1
                },
                AccessEvent {
                    op: AccessOp::Write,
                    addr: 2
                },
            ]
        );
    }

    #[test]
    fn persistence_across_reopen() {
        let mut fs = FileStore::temp(4).unwrap();
        let path = fs.path().to_path_buf();
        fs.delete_on_drop = false;
        let h = fs.alloc_array_from_elements(&(0..10).map(e).collect::<Vec<_>>());
        drop(fs);
        let reopened = FileStore::open(&path, 4).unwrap();
        assert_eq!(reopened.allocated_blocks(), 3);
        assert_eq!(
            reopened.snapshot_elements(&h),
            (0..10).map(e).collect::<Vec<_>>()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbled_occupancy_word_is_a_typed_corruption() {
        let mut fs = FileStore::temp(2).unwrap();
        let h = fs.alloc_array(2);
        fs.store_block(&h, 0, Block::empty(2));
        // Flip the occupancy word of slot 0 to an invalid value, bypassing
        // the store (the adversary writes the file directly).
        fs.file.write_all_at(&77u64.to_le_bytes(), 0).unwrap();
        let err = fs.try_load_block(&h, 0).unwrap_err();
        assert_eq!(err, StoreError::Corrupted { addr: 0 });
    }

    #[test]
    fn truncated_file_reads_are_corruption_not_panics() {
        let mut fs = FileStore::temp(2).unwrap();
        let h = fs.alloc_array(8); // 4 blocks
        fs.file.set_len(CELL_BYTES as u64).unwrap(); // tear the file
        let err = fs.try_load_block(&h, 3).unwrap_err();
        assert!(matches!(err, StoreError::Corrupted { .. }), "got {err:?}");
    }

    #[test]
    fn crash_hook_fires_after_the_armed_write_budget() {
        let mut fs = FileStore::temp(2).unwrap();
        let h = fs.alloc_array(8);
        fs.crash_after_writes(2);
        fs.store_block(&h, 0, Block::empty(2));
        fs.store_block(&h, 1, Block::empty(2));
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fs.store_block(&h, 2, Block::empty(2));
        }))
        .unwrap_err();
        assert!(crash.downcast_ref::<InjectedCrash>().is_some());
        // The torn write was never performed.
        assert_eq!(fs.stats().writes, 2);
    }

    #[test]
    fn temp_files_are_deleted_on_drop() {
        let fs = FileStore::temp(2).unwrap();
        let path = fs.path().to_path_buf();
        assert!(path.exists());
        drop(fs);
        assert!(!path.exists());
    }
}
