//! Bounded retry with backoff over a fallible store, and the bridge that
//! lets the infallible algorithms run fallibly.
//!
//! The sort/compaction/selection passes are written against the infallible
//! [`BlockStore`] operations — their obliviousness proofs are about a fixed
//! sequence of block addresses, and threading `Result` through every
//! comparator exchange would buy nothing. [`RetryingStore`] adapts a fallible
//! server back to that infallible interface:
//!
//! * **Transient** failures are retried up to [`RetryPolicy::max_retries`]
//!   times with capped exponential backoff. In the I/O model "backoff" is
//!   bookkeeping, not wall-clock sleeping: the schedule is charged to
//!   [`RetryStats::backoff_units`]. Crucially, whether an operation is
//!   retried depends only on what the *server* did (the injected fault
//!   schedule), never on the data — retried addresses are re-issued
//!   verbatim, so traces stay data-independent (the fault battery asserts
//!   this byte for byte).
//! * **Permanent** failures (corruption, rollback, exhausted retries) abort
//!   the enclosing pass immediately by unwinding with a typed
//!   [`StoreAbort`] payload. [`run_fallible`] catches exactly that payload
//!   and returns it as `Err(StoreError)`; any other panic (a genuine logic
//!   error) is propagated unchanged. Aborting at the first fatal error is
//!   the only sound option: tampered data could otherwise flow into the
//!   algorithm's internal invariants and either trip an assertion or —
//!   worse — produce a silently wrong answer.
//!
//! After an aborted pass the *contents* of the arrays touched by the
//! algorithm are unspecified (the pass stopped mid-routing); the store
//! itself remains usable and its I/O accounting reflects every operation
//! actually issued.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::block::Block;
use crate::error::StoreError;
use crate::mem::{ArrayHandle, IoStats};
use crate::prefetch::{PrefetchRead, Prefetchable};
use crate::store::BlockStore;

/// How many times to retry transient faults, and how the (model) backoff
/// schedule grows. The schedule is a function of the attempt number only —
/// never of the data being stored — so retries cannot leak plaintext.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries per operation (0 = fail on first transient).
    pub max_retries: u32,
    /// Backoff charged for the first retry, in abstract time units.
    pub backoff_base_units: u64,
    /// Cap on the per-retry backoff; the exponential schedule saturates here.
    pub backoff_cap_units: u64,
}

impl Default for RetryPolicy {
    /// Eight retries with a 1-unit base doubling up to 64 units — enough to
    /// ride out fault rates well past anything a usable server would show.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            backoff_base_units: 1,
            backoff_cap_units: 64,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: the first transient fault is fatal.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base_units: 0,
            backoff_cap_units: 0,
        }
    }

    /// Backoff charged for retry number `attempt` (1-based): capped
    /// exponential, `min(base << (attempt-1), cap)`.
    fn backoff_for(&self, attempt: u32) -> u64 {
        let shifted = self
            .backoff_base_units
            .checked_shl(attempt.saturating_sub(1))
            .unwrap_or(u64::MAX);
        shifted.min(self.backoff_cap_units)
    }
}

/// Counters describing what the retry layer had to do during a pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Operations re-issued after a transient fault.
    pub retries: u64,
    /// Total backoff charged across all retries, in abstract time units.
    pub backoff_units: u64,
    /// Fatal errors swallowed because the thread was already unwinding
    /// (e.g. a cache flush racing an abort); always 0 on a clean run.
    pub suppressed_errors: u64,
}

/// The typed unwind payload [`RetryingStore`] aborts with on a fatal
/// [`StoreError`]. Only [`run_fallible`] should catch this; it is public so
/// the catch works across crate boundaries.
#[derive(Debug)]
pub struct StoreAbort(pub StoreError);

/// Adapts a fallible [`BlockStore`] back to the infallible interface the
/// oblivious algorithms are written against: transient faults are retried
/// per the [`RetryPolicy`], fatal faults abort the pass (see the module
/// docs). Use via [`run_fallible`].
#[derive(Debug)]
pub struct RetryingStore<'a, S: BlockStore> {
    inner: &'a mut S,
    policy: RetryPolicy,
    stats: RetryStats,
}

impl<'a, S: BlockStore> RetryingStore<'a, S> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: &'a mut S, policy: RetryPolicy) -> Self {
        RetryingStore {
            inner,
            policy,
            stats: RetryStats::default(),
        }
    }

    /// Retry counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Handles a fatal error: aborts the pass by unwinding with
    /// [`StoreAbort`] — unless the thread is already unwinding (a write-back
    /// racing an abort), in which case the error is counted and swallowed to
    /// avoid a double panic.
    fn fatal(&mut self, err: StoreError) -> bool {
        if std::thread::panicking() {
            self.stats.suppressed_errors += 1;
            return false;
        }
        std::panic::panic_any(StoreAbort(err));
    }

    fn note_retry(&mut self, attempt: u32) {
        self.stats.retries += 1;
        self.stats.backoff_units += self.policy.backoff_for(attempt);
    }
}

impl<S: BlockStore> BlockStore for RetryingStore<'_, S> {
    fn block_elems(&self) -> usize {
        self.inner.block_elems()
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        self.inner.alloc_array(len_elements)
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        let mut attempt = 0u32;
        loop {
            match self.inner.try_load_block(h, i) {
                Ok(blk) => return blk,
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.note_retry(attempt);
                }
                Err(e) => {
                    self.fatal(e);
                    // Unwinding-suppressed fatal read: serve dummies; the
                    // pass is already aborting, nothing consumes them.
                    return Block::empty(self.inner.block_elems());
                }
            }
        }
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        let mut attempt = 0u32;
        loop {
            match self.inner.try_store_block(h, i, blk.clone()) {
                Ok(()) => return,
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.note_retry(attempt);
                }
                Err(e) => {
                    self.fatal(e);
                    return;
                }
            }
        }
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn hint_blocks(&mut self, h: &ArrayHandle, blocks: &[usize]) {
        self.inner.hint_blocks(h, blocks);
    }

    fn recycle(&mut self, blk: Block) {
        self.inner.recycle(blk);
    }
}

/// Background reader over a retrying store: transient fetch failures are
/// re-issued up to the policy's retry cap, exactly like the foreground —
/// the retry count is a function of the (seeded) fault schedule only, never
/// of the data, so worker-side retries keep traces data-independent.
/// Reader retries are not counted in the foreground [`RetryStats`] (readers
/// share no state with the store); fatal errors are returned as values, not
/// unwound — the prefetch protocol parks them for the foreground to surface.
#[derive(Debug)]
pub struct RetryingReader<R: PrefetchRead> {
    inner: R,
    policy: RetryPolicy,
}

impl<R: PrefetchRead> RetryingReader<R> {
    fn retry(
        &mut self,
        addr: usize,
        first: Result<Block, StoreError>,
    ) -> Result<Block, StoreError> {
        let mut res = first;
        let mut attempt = 0u32;
        loop {
            match res {
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    res = self.inner.fetch(addr);
                }
                other => return other,
            }
        }
    }
}

impl<R: PrefetchRead> PrefetchRead for RetryingReader<R> {
    fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
        let first = self.inner.fetch(addr);
        self.retry(addr, first)
    }

    fn fetch_run(&mut self, start: usize, count: usize) -> Vec<Result<Block, StoreError>> {
        // One span fetch, then per-block retries of whatever came back
        // transient — the run shape stays data-independent because which
        // entries are transient is decided by the server, not the data.
        self.inner
            .fetch_run(start, count)
            .into_iter()
            .enumerate()
            .map(|(k, res)| self.retry(start + k, res))
            .collect()
    }
}

impl<S: BlockStore + Prefetchable> Prefetchable for RetryingStore<'_, S> {
    type Reader = RetryingReader<S::Reader>;

    fn reader(&self) -> Self::Reader {
        RetryingReader {
            inner: self.inner.reader(),
            policy: self.policy,
        }
    }

    fn supports_store_runs(&self) -> bool {
        self.inner.supports_store_runs()
    }

    /// Retries the *whole run* on a transient failure — runs are re-issued
    /// verbatim (same addresses, same contents), so the retry schedule stays
    /// data-independent. Unlike the infallible foreground ops this returns
    /// fatal errors as values rather than unwinding: the span path is driven
    /// by the prefetch adapter's write-behind flush, which handles `Result`s.
    fn store_run(&mut self, start: usize, mut blks: Vec<Block>) -> Result<(), StoreError> {
        let mut attempt = 0u32;
        loop {
            let last = attempt >= self.policy.max_retries;
            let batch = if last {
                std::mem::take(&mut blks)
            } else {
                blks.clone()
            };
            match self.inner.store_run(start, batch) {
                Ok(()) => {
                    // The clones were consumed; recycle the originals kept
                    // around for potential retries.
                    for blk in blks {
                        self.inner.recycle(blk);
                    }
                    return Ok(());
                }
                Err(e) if e.is_transient() && !last => {
                    attempt += 1;
                    self.note_retry(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Runs `f` — any algorithm written against the infallible [`BlockStore`]
/// interface — over a fallible store, retrying transients per `policy` and
/// converting the first fatal [`StoreError`] into an `Err` instead of a
/// panic.
///
/// On `Err`, the contents of the arrays the algorithm touched are
/// unspecified (the pass aborted mid-routing); the store itself remains
/// usable. Panics that are not store aborts (logic errors, bad arguments)
/// propagate unchanged.
pub fn run_fallible<S: BlockStore, R>(
    store: &mut S,
    policy: RetryPolicy,
    f: impl FnOnce(&mut RetryingStore<'_, S>) -> R,
) -> Result<(R, RetryStats), StoreError> {
    let mut retrying = RetryingStore::new(store, policy);
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut retrying)));
    let stats = retrying.stats();
    match outcome {
        Ok(r) => Ok((r, stats)),
        Err(payload) => match payload.downcast::<StoreAbort>() {
            Ok(abort) => Err(abort.0),
            Err(other) => resume_unwind(other),
        },
    }
}

/// Replaces the panic hook with one that stays silent for [`StoreAbort`]
/// unwinds (they are control flow, caught by [`run_fallible`]) and for
/// [`InjectedCrash`](crate::file::InjectedCrash) unwinds (deliberate
/// simulated power-cuts, caught by the crash-consistency tests), deferring
/// to the previous hook for everything else. Call once at binary start-up;
/// tests don't need it because the harness captures panic output.
pub fn install_quiet_abort_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        if payload.downcast_ref::<StoreAbort>().is_none()
            && payload
                .downcast_ref::<crate::file::InjectedCrash>()
                .is_none()
        {
            previous(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Cell, Element};
    use crate::mem::ExtMem;
    use std::collections::{HashMap, VecDeque};
    use std::sync::{Arc, Mutex};

    /// A scripted flaky store: pops one error per fallible op from a queue;
    /// an empty queue means success.
    struct Scripted {
        mem: ExtMem,
        read_errs: VecDeque<Option<StoreError>>,
        write_errs: VecDeque<Option<StoreError>>,
        /// One scripted outcome per `store_run` attempt.
        run_errs: VecDeque<Option<StoreError>>,
        /// Blocks landed via `store_run`, visible to scripted readers.
        spans: Arc<Mutex<HashMap<usize, Block>>>,
        /// One scripted outcome per reader fetch.
        fetch_errs: Arc<Mutex<VecDeque<Option<StoreError>>>>,
    }

    impl Scripted {
        fn new(b: usize) -> Self {
            Scripted {
                mem: ExtMem::new(b),
                read_errs: VecDeque::new(),
                write_errs: VecDeque::new(),
                run_errs: VecDeque::new(),
                spans: Arc::new(Mutex::new(HashMap::new())),
                fetch_errs: Arc::new(Mutex::new(VecDeque::new())),
            }
        }
    }

    struct ScriptedReader {
        spans: Arc<Mutex<HashMap<usize, Block>>>,
        fetch_errs: Arc<Mutex<VecDeque<Option<StoreError>>>>,
        b: usize,
    }

    impl PrefetchRead for ScriptedReader {
        fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
            if let Some(e) = self.fetch_errs.lock().unwrap().pop_front().flatten() {
                return Err(e);
            }
            Ok(self
                .spans
                .lock()
                .unwrap()
                .get(&addr)
                .cloned()
                .unwrap_or_else(|| Block::empty(self.b)))
        }
    }

    impl Prefetchable for Scripted {
        type Reader = ScriptedReader;
        fn reader(&self) -> ScriptedReader {
            ScriptedReader {
                spans: Arc::clone(&self.spans),
                fetch_errs: Arc::clone(&self.fetch_errs),
                b: self.mem.block_elems(),
            }
        }
        fn supports_store_runs(&self) -> bool {
            true
        }
        fn store_run(&mut self, start: usize, blks: Vec<Block>) -> Result<(), StoreError> {
            if let Some(e) = self.run_errs.pop_front().flatten() {
                return Err(e);
            }
            let mut spans = self.spans.lock().unwrap();
            for (k, blk) in blks.into_iter().enumerate() {
                spans.insert(start + k, blk);
            }
            Ok(())
        }
    }

    impl BlockStore for Scripted {
        fn block_elems(&self) -> usize {
            self.mem.block_elems()
        }
        fn alloc_array(&mut self, len: usize) -> ArrayHandle {
            self.mem.alloc_array(len)
        }
        fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
            self.mem.read_block(h, i)
        }
        fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
            self.mem.write_block(h, i, blk);
        }
        fn io_stats(&self) -> IoStats {
            self.mem.stats()
        }
        fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
            let blk = self.load_block(h, i);
            match self.read_errs.pop_front().flatten() {
                Some(e) => Err(e),
                None => Ok(blk),
            }
        }
        fn try_store_block(
            &mut self,
            h: &ArrayHandle,
            i: usize,
            blk: Block,
        ) -> Result<(), StoreError> {
            match self.write_errs.pop_front().flatten() {
                Some(e) => Err(e),
                None => {
                    self.store_block(h, i, blk);
                    Ok(())
                }
            }
        }
    }

    fn cells(n: u64) -> Vec<Cell> {
        (0..n).map(|k| Some(Element::new(k, k))).collect()
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 4);
        s.store_span(&h, 0, &cells(4));
        // Two transient failures, then success.
        s.read_errs
            .push_back(Some(StoreError::Transient { addr: 0 }));
        s.read_errs
            .push_back(Some(StoreError::Transient { addr: 0 }));
        let (got, stats) =
            run_fallible(&mut s, RetryPolicy::default(), |rs| rs.load_span(&h, 0, 4)).unwrap();
        assert_eq!(got, cells(4));
        assert_eq!(stats.retries, 2);
        // Exponential backoff: 1 + 2 units.
        assert_eq!(stats.backoff_units, 3);
        assert_eq!(stats.suppressed_errors, 0);
        // Each attempt was a real server access (charged).
        assert_eq!(s.io_stats().reads, 3);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 4);
        for _ in 0..10 {
            s.read_errs
                .push_back(Some(StoreError::Transient { addr: 7 }));
        }
        let policy = RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        };
        let err = run_fallible(&mut s, policy, |rs| rs.load_block(&h, 0)).unwrap_err();
        assert_eq!(err, StoreError::Transient { addr: 7 });
        // 1 initial attempt + 3 retries, all charged.
        assert_eq!(s.io_stats().reads, 4);
    }

    #[test]
    fn fatal_errors_abort_immediately_without_retries() {
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 4);
        s.read_errs
            .push_back(Some(StoreError::Corrupted { addr: 2 }));
        let err = run_fallible(&mut s, RetryPolicy::default(), |rs| {
            rs.load_block(&h, 0);
            unreachable!("the pass must abort at the corrupted read");
        })
        .unwrap_err();
        assert_eq!(err, StoreError::Corrupted { addr: 2 });
        assert_eq!(s.io_stats().reads, 1, "no retry of a fatal error");
    }

    #[test]
    fn write_retries_reissue_the_same_block() {
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 4);
        s.write_errs
            .push_back(Some(StoreError::Transient { addr: 0 }));
        let ((), stats) = run_fallible(&mut s, RetryPolicy::default(), |rs| {
            rs.store_span(&h, 0, &cells(4));
        })
        .unwrap();
        assert_eq!(stats.retries, 1);
        assert_eq!(s.load_span(&h, 0, 4), cells(4));
    }

    #[test]
    #[should_panic(expected = "a genuine logic error")]
    fn non_abort_panics_propagate_unchanged() {
        let mut s = Scripted::new(4);
        let _ = run_fallible(&mut s, RetryPolicy::default(), |_| {
            panic!("a genuine logic error");
        });
    }

    #[test]
    fn backoff_schedule_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            backoff_base_units: 2,
            backoff_cap_units: 16,
        };
        let units: Vec<u64> = (1..=6).map(|a| p.backoff_for(a)).collect();
        assert_eq!(units, vec![2, 4, 8, 16, 16, 16]);
    }

    #[test]
    fn span_writes_are_retried_whole_and_reissued_verbatim() {
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 8);
        let start = h.global_block(0);
        // Two transient failures, then the run lands.
        s.run_errs
            .push_back(Some(StoreError::Transient { addr: start }));
        s.run_errs
            .push_back(Some(StoreError::Transient { addr: start }));
        let blks: Vec<Block> = cells(8).chunks(4).map(Block::from_cells).collect();
        let mut rs = RetryingStore::new(&mut s, RetryPolicy::default());
        rs.store_run(start, blks.clone()).unwrap();
        assert_eq!(rs.stats().retries, 2);
        // The whole run was re-issued verbatim: every block landed intact.
        let mut reader = rs.reader();
        for (k, blk) in blks.iter().enumerate() {
            assert_eq!(&reader.fetch(start + k).unwrap(), blk);
        }
    }

    #[test]
    fn fatal_span_write_errors_are_typed_values_not_unwinds() {
        // Unlike the infallible foreground ops, the span path must hand the
        // error back to the write-behind flusher instead of panicking.
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 4);
        let start = h.global_block(0);
        s.run_errs
            .push_back(Some(StoreError::Corrupted { addr: start }));
        let blks: Vec<Block> = cells(4).chunks(4).map(Block::from_cells).collect();
        let mut rs = RetryingStore::new(&mut s, RetryPolicy::default());
        let err = rs.store_run(start, blks).unwrap_err();
        assert_eq!(err, StoreError::Corrupted { addr: start });
        assert_eq!(rs.stats().retries, 0, "fatal errors are never retried");
    }

    #[test]
    fn reader_retries_transient_fetches_up_to_the_policy_cap() {
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 4);
        let start = h.global_block(0);
        let blks: Vec<Block> = cells(4).chunks(4).map(Block::from_cells).collect();
        let mut rs = RetryingStore::new(&mut s, RetryPolicy::default());
        rs.store_run(start, blks.clone()).unwrap();
        // Two transients, then the fetch succeeds.
        rs.inner.fetch_errs.lock().unwrap().extend([
            Some(StoreError::Transient { addr: start }),
            Some(StoreError::Transient { addr: start }),
        ]);
        let mut reader = rs.reader();
        assert_eq!(reader.fetch(start).unwrap(), blks[0]);
        // A no-retries policy surfaces the first transient instead.
        let strict = RetryingStore::new(rs.inner, RetryPolicy::no_retries());
        strict
            .inner
            .fetch_errs
            .lock()
            .unwrap()
            .push_back(Some(StoreError::Transient { addr: start }));
        let mut reader = strict.reader();
        assert!(reader.fetch(start).unwrap_err().is_transient());
    }

    #[test]
    fn no_retries_policy_fails_on_first_transient() {
        let mut s = Scripted::new(4);
        let h = BlockStore::alloc_array(&mut s, 4);
        s.read_errs
            .push_back(Some(StoreError::Transient { addr: 0 }));
        let err =
            run_fallible(&mut s, RetryPolicy::no_retries(), |rs| rs.load_block(&h, 0)).unwrap_err();
        assert!(err.is_transient());
    }
}
