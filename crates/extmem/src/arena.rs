//! A thread-safe pool of block buffers: allocate once, recycle forever.
//!
//! Every block that moves between the client and the server is `B` cells
//! wide, so the allocation pattern of the whole workspace is millions of
//! identically-sized `Vec<Cell>`s that live for one block round-trip and are
//! dropped. [`BlockArena`] keeps those buffers alive instead: a store takes a
//! buffer when it materialises a block ([`BlockArena::take`]) and returns the
//! buffer of every block it replaces or discards ([`BlockArena::put`]), so
//! steady-state operation performs no heap allocation at all on the block
//! path. This is the safe-Rust analogue of LevelDB's bump-pointer `Arena`:
//! the crate is `#![forbid(unsafe_code)]`, so instead of handing out raw
//! pointers into slabs we recycle whole owned buffers through a mutex-guarded
//! free list, which keeps the same "allocation cost amortises to a pointer
//! bump" property without any lifetime hazards.
//!
//! The arena is shared: [`ExtMem`](crate::mem::ExtMem) and
//! [`FileStore`](crate::file::FileStore) each own one behind an [`Arc`], and
//! the [`PrefetchingStore`](crate::prefetch::PrefetchingStore) worker threads
//! clone that `Arc` so blocks decoded on background threads draw from — and
//! return to — the same pool as the foreground. All methods take `&self`;
//! the internal mutex is held only for a push/pop, never across I/O.
//!
//! # Lifetime rules
//!
//! * A buffer obtained from [`BlockArena::take`] is exclusively owned by the
//!   caller; the arena keeps no reference to it.
//! * Returning a buffer via [`BlockArena::put`] is always optional — dropping
//!   a block normally is safe, it merely forfeits the reuse.
//! * The pool holds at most `max_pooled` buffers; beyond that, returned
//!   buffers are dropped (bounding the arena's memory at
//!   `max_pooled · B · sizeof(Cell)`).

use std::sync::{Arc, Mutex};

use crate::element::Cell;

/// Default cap on pooled buffers (per arena, not per thread).
const DEFAULT_MAX_POOLED: usize = 1024;

/// Cumulative counters describing how well the pool is doing its job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out that had to be freshly allocated (pool was empty
    /// or held only buffers of insufficient capacity).
    pub allocated: u64,
    /// Buffers handed out from the pool without touching the allocator.
    pub reused: u64,
    /// Buffers returned to the pool.
    pub recycled: u64,
    /// Buffers returned while the pool was full and therefore dropped.
    pub dropped: u64,
}

impl ArenaStats {
    /// Fraction of `take` calls served without allocating, in `[0, 1]`.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.allocated + self.reused;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Pool {
    buffers: Vec<Vec<Cell>>,
    stats: ArenaStats,
}

/// A shared, thread-safe pool of `Vec<Cell>` block buffers. See the module
/// docs for the lifetime rules.
#[derive(Debug)]
pub struct BlockArena {
    pool: Mutex<Pool>,
    max_pooled: usize,
}

impl Default for BlockArena {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_MAX_POOLED)
    }
}

impl BlockArena {
    /// Creates an arena that pools at most [`DEFAULT_MAX_POOLED`] buffers,
    /// ready to be shared behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Creates an arena with an explicit pool cap.
    pub fn with_capacity(max_pooled: usize) -> Self {
        BlockArena {
            pool: Mutex::new(Pool::default()),
            max_pooled,
        }
    }

    /// Takes a cleared buffer of exactly `b` dummy cells, reusing a pooled
    /// buffer when one with sufficient capacity is available.
    pub fn take(&self, b: usize) -> Vec<Cell> {
        let mut pool = self.pool.lock().expect("block arena poisoned");
        while let Some(mut buf) = pool.buffers.pop() {
            if buf.capacity() >= b {
                pool.stats.reused += 1;
                drop(pool);
                buf.clear();
                buf.resize(b, None);
                return buf;
            }
            // Undersized stragglers (from a store with a smaller B) are
            // dropped rather than pooled forever.
            pool.stats.dropped += 1;
        }
        pool.stats.allocated += 1;
        drop(pool);
        vec![None; b]
    }

    /// Returns a buffer to the pool (dropping it if the pool is full).
    pub fn put(&self, buf: Vec<Cell>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut pool = self.pool.lock().expect("block arena poisoned");
        if pool.buffers.len() < self.max_pooled {
            pool.stats.recycled += 1;
            pool.buffers.push(buf);
        } else {
            pool.stats.dropped += 1;
        }
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool
            .lock()
            .expect("block arena poisoned")
            .buffers
            .len()
    }

    /// Snapshot of the reuse counters.
    pub fn stats(&self) -> ArenaStats {
        self.pool.lock().expect("block arena poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_cleared_buffers_of_the_requested_size() {
        let arena = BlockArena::with_capacity(4);
        let mut buf = arena.take(8);
        assert_eq!(buf.len(), 8);
        assert!(buf.iter().all(|c| c.is_none()));
        buf[3] = Some(crate::element::Element::new(1, 2));
        arena.put(buf);
        let again = arena.take(8);
        assert_eq!(again.len(), 8);
        assert!(
            again.iter().all(|c| c.is_none()),
            "recycled buffers are cleared"
        );
    }

    #[test]
    fn buffers_are_reused_not_reallocated() {
        let arena = BlockArena::with_capacity(4);
        let buf = arena.take(16);
        arena.put(buf);
        let _ = arena.take(16);
        let stats = arena.stats();
        assert_eq!(stats.allocated, 1);
        assert_eq!(stats.reused, 1);
        assert_eq!(stats.recycled, 1);
        assert!(stats.reuse_rate() > 0.49);
    }

    #[test]
    fn pool_cap_bounds_memory() {
        let arena = BlockArena::with_capacity(2);
        for _ in 0..5 {
            arena.put(vec![None; 8]);
        }
        assert_eq!(arena.pooled(), 2);
        assert_eq!(arena.stats().dropped, 3);
    }

    #[test]
    fn undersized_pooled_buffers_are_not_served() {
        let arena = BlockArena::with_capacity(4);
        arena.put(vec![None; 2]);
        let buf = arena.take(64);
        assert_eq!(buf.len(), 64);
        assert_eq!(arena.stats().allocated, 1);
    }

    #[test]
    fn arena_is_usable_from_many_threads() {
        let arena = BlockArena::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&arena);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let buf = a.take(32);
                    assert_eq!(buf.len(), 32);
                    a.put(buf);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = arena.stats();
        assert_eq!(stats.allocated + stats.reused, 800);
    }
}
