//! Typed failures of the untrusted/unreliable server.
//!
//! The paper's setting is an *untrusted* server: Bob stores Alice's encrypted
//! blocks, and nothing stops him (or the network between them) from losing a
//! write, flipping ciphertext bits, or replaying yesterday's version of a
//! block. The original `BlockStore` API modelled a perfectly honest,
//! perfectly reliable server — every operation infallible — which made those
//! failure modes *silent data corruption* by construction.
//!
//! [`StoreError`] is the typed vocabulary of everything that can go wrong at
//! the block interface:
//!
//! * [`StoreError::Transient`] — the server (or the channel) failed this one
//!   operation; retrying may succeed. Injected by
//!   [`FaultyStore`](crate::fault::FaultyStore) and absorbed by
//!   [`RetryingStore`](crate::retry::RetryingStore).
//! * [`StoreError::Corrupted`] — the returned block fails authentication:
//!   its MAC does not verify against any version the client ever wrote.
//!   Raised by [`AuthenticatedStore`](crate::auth::AuthenticatedStore);
//!   **never** surfaced as wrong data.
//! * [`StoreError::Stale`] — the returned block is an *authentic but old*
//!   version: the MAC verifies for a version older than the client's version
//!   table expects (a rollback/replay attack).
//! * [`StoreError::BudgetExceeded`] — client-side authentication state would
//!   exceed the private-memory budget ([`CacheBudget::try_acquire`]).
//! * [`StoreError::PayloadTooWide`] — the payload does not fit the encrypted
//!   encoding's 63-bit payload field (see
//!   [`EncryptedStore`](crate::crypto::EncryptedStore)).
//!
//! [`CacheBudget::try_acquire`]: crate::budget::CacheBudget::try_acquire

use std::fmt;

/// A typed failure of a block-store operation against an untrusted or
/// unreliable server. See the module documentation for the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A transient I/O failure: the operation did not complete, the server's
    /// state is unchanged, and a retry may succeed.
    Transient {
        /// Global block address of the failed operation.
        addr: usize,
    },
    /// The block failed authentication: its contents do not match any MAC the
    /// client ever produced for this address (bit flips, fabricated data, or
    /// an inconsistent partial rollback).
    Corrupted {
        /// Global block address of the tampered block.
        addr: usize,
    },
    /// The block is an authentic but *old* version — the server rolled back
    /// or replayed a previous state (freshness violation).
    Stale {
        /// Global block address of the replayed block.
        addr: usize,
        /// The version the client's version table expects.
        expected: u64,
        /// The (older) version the server actually served.
        got: u64,
    },
    /// Client-side state (version table, MAC cache) would exceed the private
    /// cache budget.
    BudgetExceeded {
        /// Slots the failed acquisition requested.
        requested: usize,
        /// Slots already in use.
        in_use: usize,
        /// The budget's capacity.
        capacity: usize,
    },
    /// The payload does not fit the encrypted encoding's 63-bit payload
    /// field.
    PayloadTooWide {
        /// Global block address of the rejected write.
        addr: usize,
        /// The offending payload value.
        payload: u64,
    },
    /// A real operating-system I/O failure from a file-backed store
    /// ([`FileStore`](crate::file::FileStore)). Retryable kinds
    /// (`Interrupted`, `TimedOut`, `WouldBlock`) are mapped to
    /// [`StoreError::Transient`] at the store, and truncated/garbled reads
    /// to [`StoreError::Corrupted`], so an `Io` error is a *permanent*
    /// environmental failure (permissions, disk full, bad descriptor, …).
    Io {
        /// Global block address of the failed operation.
        addr: usize,
        /// The underlying [`std::io::ErrorKind`].
        kind: std::io::ErrorKind,
    },
    /// A store was constructed or configured with arguments that don't
    /// describe a usable stack — e.g. wrapping a non-empty backend in
    /// [`EncryptedStore::try_with_backing`]. Purely client-side: no I/O was
    /// performed and the offending store was never built. The workspace
    /// error type maps this to `OdoError::InvalidArgument`, whose `Display`
    /// prints `reason` verbatim (it doubles as the panic message of the
    /// infallible constructors).
    ///
    /// [`EncryptedStore::try_with_backing`]: crate::crypto::EncryptedStore::try_with_backing
    InvalidArgument {
        /// Human-readable validation failure.
        reason: &'static str,
    },
}

impl StoreError {
    /// Whether the error is transient, i.e. worth retrying. Corruption,
    /// staleness, budget and encoding errors are permanent: retrying cannot
    /// fix tampered data.
    #[inline]
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Transient { .. })
    }

    /// Whether the error indicates server-side tampering (corruption or a
    /// rollback), as opposed to a transient fault or a client-side error.
    #[inline]
    pub fn is_tampering(&self) -> bool {
        matches!(
            self,
            StoreError::Corrupted { .. } | StoreError::Stale { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Transient { addr } => {
                write!(f, "transient I/O failure at block {addr}")
            }
            StoreError::Corrupted { addr } => {
                write!(f, "block {addr} failed authentication (corrupted)")
            }
            StoreError::Stale {
                addr,
                expected,
                got,
            } => write!(
                f,
                "block {addr} is stale: server served version {got}, client expects {expected} \
                 (rollback/replay detected)"
            ),
            StoreError::BudgetExceeded {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "private cache budget exceeded: requested {requested} with {in_use} in use, \
                 capacity {capacity}"
            ),
            StoreError::PayloadTooWide { addr, payload } => write!(
                f,
                "payload {payload:#x} at block {addr} exceeds the 63-bit limit of the \
                 encrypted encoding"
            ),
            StoreError::Io { addr, kind } => {
                write!(f, "file I/O error ({kind:?}) at block {addr}")
            }
            StoreError::InvalidArgument { reason } => write!(f, "{reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_is_the_only_retryable_kind() {
        assert!(StoreError::Transient { addr: 3 }.is_transient());
        assert!(!StoreError::Corrupted { addr: 3 }.is_transient());
        assert!(!StoreError::Stale {
            addr: 3,
            expected: 2,
            got: 1
        }
        .is_transient());
        assert!(!StoreError::BudgetExceeded {
            requested: 1,
            in_use: 0,
            capacity: 0
        }
        .is_transient());
        assert!(!StoreError::PayloadTooWide {
            addr: 0,
            payload: 0
        }
        .is_transient());
        // Retryable io::ErrorKinds are mapped to Transient *at the store*,
        // so an Io that reaches callers is permanent by construction.
        assert!(!StoreError::Io {
            addr: 0,
            kind: std::io::ErrorKind::PermissionDenied
        }
        .is_transient());
    }

    #[test]
    fn tampering_covers_corruption_and_rollback_only() {
        assert!(StoreError::Corrupted { addr: 0 }.is_tampering());
        assert!(StoreError::Stale {
            addr: 0,
            expected: 5,
            got: 4
        }
        .is_tampering());
        assert!(!StoreError::Transient { addr: 0 }.is_tampering());
    }

    #[test]
    fn display_names_the_address_and_versions() {
        let msg = StoreError::Stale {
            addr: 7,
            expected: 9,
            got: 4,
        }
        .to_string();
        assert!(msg.contains("block 7"));
        assert!(msg.contains("version 4"));
        assert!(msg.contains("expects 9"));
        let msg = StoreError::PayloadTooWide {
            addr: 1,
            payload: u64::MAX,
        }
        .to_string();
        assert!(msg.contains("63-bit"));
    }

    #[test]
    fn invalid_argument_displays_its_reason_verbatim() {
        // The infallible constructors panic with `Display` of this variant,
        // so it must be exactly the validation message.
        let e = StoreError::InvalidArgument {
            reason: "EncryptedStore must own its backend from the start",
        };
        assert_eq!(
            e.to_string(),
            "EncryptedStore must own its backend from the start"
        );
        assert!(!e.is_transient());
        assert!(!e.is_tampering());
    }
}
