//! The external block store: Bob's disk, with I/O accounting and the
//! adversary's view.
//!
//! [`ExtMem`] is an arena of blocks out of which algorithms allocate named
//! arrays ([`ArrayHandle`]). Each block read or write costs exactly one I/O
//! and (optionally) appends an [`AccessEvent`] to the [`AccessTrace`], which
//! is precisely what the honest-but-curious server observes: the *operation*
//! and the *global block address*, never the contents.
//!
//! Data-obliviousness of an algorithm is checked by running it on different
//! inputs of the same shape (and, for randomized algorithms, the same
//! random-number-generator seed) and asserting that the captured traces are
//! identical — see the [`crate::trace`] module.

use std::sync::Arc;

use crate::arena::BlockArena;
use crate::block::Block;
use crate::element::{Cell, Element};

/// The kind of a block access, as visible to the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessOp {
    /// A block read.
    Read,
    /// A block write.
    Write,
}

/// One entry of the adversary's view: an operation on a global block address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AccessEvent {
    /// Whether the block was read or written.
    pub op: AccessOp,
    /// The global block address.
    pub addr: usize,
}

/// The full adversary view: the ordered sequence of block accesses.
pub type AccessTrace = Vec<AccessEvent>;

/// Cumulative I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of block reads performed.
    pub reads: u64,
    /// Number of block writes performed.
    pub writes: u64,
}

impl IoStats {
    /// Total I/Os (reads + writes).
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Sub for IoStats {
    type Output = IoStats;
    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - rhs.reads,
            writes: self.writes - rhs.writes,
        }
    }
}

/// A handle to an array allocated inside an [`ExtMem`] arena.
///
/// The handle records where the array starts (global block index), how many
/// element slots it spans and the block size, so algorithms can address its
/// blocks by a local index `0..handle.n_blocks()`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayHandle {
    start_block: usize,
    len_elements: usize,
    block_elems: usize,
}

impl ArrayHandle {
    /// Number of element slots the array spans.
    #[inline]
    pub fn len(&self) -> usize {
        self.len_elements
    }

    /// Whether the array has zero element slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len_elements == 0
    }

    /// Block size `B` of the arena this handle belongs to.
    #[inline]
    pub fn block_elems(&self) -> usize {
        self.block_elems
    }

    /// Number of blocks the array spans (`⌈len/B⌉`).
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.len_elements.div_ceil(self.block_elems).max(1)
    }

    /// Global block address of local block `i`.
    #[inline]
    pub fn global_block(&self, i: usize) -> usize {
        debug_assert!(i < self.n_blocks(), "block index out of range");
        self.start_block + i
    }

    /// Crate-internal constructor used by the other [`crate::store::BlockStore`]
    /// implementations ([`crate::file::FileStore`]); handles must address
    /// blocks identically across backends so traces stay comparable.
    pub(crate) fn new_raw(start_block: usize, len_elements: usize, block_elems: usize) -> Self {
        ArrayHandle {
            start_block,
            len_elements,
            block_elems,
        }
    }
}

/// Bob's block store, with per-operation I/O accounting and trace capture.
#[derive(Debug)]
pub struct ExtMem {
    block_elems: usize,
    blocks: Vec<Block>,
    stats: IoStats,
    trace: Option<AccessTrace>,
    /// Recycles the `Vec<Cell>` of every block this store clones out or
    /// replaces, so the block path stops churning the allocator.
    arena: Arc<BlockArena>,
}

impl ExtMem {
    /// Creates an empty arena with block size `block_elems`.
    pub fn new(block_elems: usize) -> Self {
        assert!(block_elems >= 1, "block size must be at least 1");
        ExtMem {
            block_elems,
            blocks: Vec::new(),
            stats: IoStats::default(),
            trace: None,
            arena: BlockArena::new(),
        }
    }

    /// The buffer pool this store draws block buffers from.
    pub fn arena(&self) -> &Arc<BlockArena> {
        &self.arena
    }

    /// Creates an arena and enables trace capture from the start.
    pub fn with_trace(block_elems: usize) -> Self {
        let mut m = Self::new(block_elems);
        m.enable_trace();
        m
    }

    /// Block size `B`.
    #[inline]
    pub fn block_elems(&self) -> usize {
        self.block_elems
    }

    /// Total number of blocks currently allocated in the arena.
    #[inline]
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Cumulative I/O statistics.
    #[inline]
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O counters (does not clear the trace).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Starts recording the access trace (clearing any previous recording).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stops recording and returns the captured trace, if any.
    pub fn take_trace(&mut self) -> Option<AccessTrace> {
        self.trace.take()
    }

    /// Read-only view of the trace captured so far.
    pub fn trace(&self) -> Option<&AccessTrace> {
        self.trace.as_ref()
    }

    /// Allocates a new array of `len_elements` slots, all initially dummies.
    pub fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        let start_block = self.blocks.len();
        let nb = len_elements.div_ceil(self.block_elems).max(1);
        self.blocks
            .extend((0..nb).map(|_| Block::empty(self.block_elems)));
        ArrayHandle {
            start_block,
            len_elements,
            block_elems: self.block_elems,
        }
    }

    /// Allocates an array and fills it from a slice of cells.
    ///
    /// The initial population is *not* charged as I/Os (it models the data
    /// already residing on the server before the algorithm starts), matching
    /// how the paper counts only the algorithm's own accesses.
    pub fn alloc_array_from_cells(&mut self, cells: &[Cell]) -> ArrayHandle {
        let h = self.alloc_array(cells.len().max(1));
        for (i, chunk) in cells.chunks(self.block_elems).enumerate() {
            let mut blk = Block::empty(self.block_elems);
            for (j, c) in chunk.iter().enumerate() {
                blk.set(j, *c);
            }
            self.blocks[h.start_block + i] = blk;
        }
        h
    }

    /// Allocates an array and fills it from a slice of elements (all occupied).
    pub fn alloc_array_from_elements(&mut self, items: &[Element]) -> ArrayHandle {
        let cells: Vec<Cell> = items.iter().map(|e| Some(*e)).collect();
        self.alloc_array_from_cells(&cells)
    }

    fn record(&mut self, op: AccessOp, addr: usize) {
        match op {
            AccessOp::Read => self.stats.reads += 1,
            AccessOp::Write => self.stats.writes += 1,
        }
        if let Some(t) = &mut self.trace {
            t.push(AccessEvent { op, addr });
        }
    }

    /// Reads local block `i` of array `h` (costs one I/O). The returned
    /// block's buffer comes from the shared [`BlockArena`], not a fresh
    /// allocation.
    pub fn read_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        let addr = h.global_block(i);
        self.record(AccessOp::Read, addr);
        let mut buf = self.arena.take(self.block_elems);
        buf.copy_from_slice(self.blocks[addr].slots());
        Block::from_buffer(buf)
    }

    /// Writes local block `i` of array `h` (costs one I/O). The replaced
    /// block's buffer is recycled through the [`BlockArena`].
    pub fn write_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        assert_eq!(blk.len(), self.block_elems, "block size mismatch");
        let addr = h.global_block(i);
        self.record(AccessOp::Write, addr);
        let old = std::mem::replace(&mut self.blocks[addr], blk);
        self.arena.put(old.into_buffer());
    }

    /// Reads the cell at element index `idx` of array `h` by reading its
    /// containing block (costs one I/O).
    pub fn read_cell(&mut self, h: &ArrayHandle, idx: usize) -> Cell {
        assert!(idx < h.len(), "element index out of range");
        let blk = self.read_block(h, idx / self.block_elems);
        blk.get(idx % self.block_elems)
    }

    /// Writes the cell at element index `idx` of array `h` via a
    /// read-modify-write of its containing block (costs two I/Os).
    pub fn write_cell(&mut self, h: &ArrayHandle, idx: usize, cell: Cell) {
        assert!(idx < h.len(), "element index out of range");
        let bi = idx / self.block_elems;
        let mut blk = self.read_block(h, bi);
        blk.set(idx % self.block_elems, cell);
        self.write_block(h, bi, blk);
    }

    /// Fused read-modify-write of the block pair `(i, j)`: both blocks are
    /// read, `f` is applied once to the pair, and both blocks are written
    /// back (4 I/Os total, in the fixed order read `i`, read `j`, write `i`,
    /// write `j`).
    ///
    /// This is the whole-block fast path used by the external oblivious
    /// sort's stride-batched compare-exchange passes: one call per block pair
    /// per pass, instead of `B` cell-level round trips. Writes are
    /// unconditional, keeping the trace data-independent.
    pub fn modify_block_pair(
        &mut self,
        h: &ArrayHandle,
        i: usize,
        j: usize,
        f: impl FnOnce(&mut Block, &mut Block),
    ) {
        assert_ne!(i, j, "block pair must be two distinct blocks");
        let mut a = self.read_block(h, i);
        let mut b = self.read_block(h, j);
        f(&mut a, &mut b);
        self.write_block(h, i, a);
        self.write_block(h, j, b);
    }

    /// Reads the element span `[elem_lo, elem_hi)` of array `h` into a flat
    /// cell vector, charging one read I/O per spanned block.
    ///
    /// This is the load half of *in-cache finishing*: an algorithm pulls a
    /// whole sub-problem into the private cache with one pass of block reads,
    /// works on it CPU-side for free, and stores it back with
    /// [`ExtMem::write_span`].
    pub fn read_span(&mut self, h: &ArrayHandle, elem_lo: usize, elem_hi: usize) -> Vec<Cell> {
        assert!(
            elem_lo <= elem_hi && elem_hi <= h.len(),
            "span out of range"
        );
        if elem_lo == elem_hi {
            return Vec::new();
        }
        let b = self.block_elems;
        let blk_lo = elem_lo / b;
        let blk_hi = (elem_hi - 1) / b;
        let mut out = Vec::with_capacity(elem_hi - elem_lo);
        for bi in blk_lo..=blk_hi {
            let blk = self.read_block(h, bi);
            let lo = elem_lo.max(bi * b) - bi * b;
            let hi = elem_hi.min((bi + 1) * b) - bi * b;
            out.extend_from_slice(&blk.slots()[lo..hi]);
        }
        out
    }

    /// Writes `cells` back to the element span starting at `elem_lo`,
    /// charging one write I/O per spanned block (plus one read I/O for each
    /// boundary block the span only partially covers, which must be
    /// read-modify-written).
    pub fn write_span(&mut self, h: &ArrayHandle, elem_lo: usize, cells: &[Cell]) {
        let elem_hi = elem_lo + cells.len();
        assert!(elem_hi <= h.len(), "span out of range");
        if cells.is_empty() {
            return;
        }
        let b = self.block_elems;
        let blk_lo = elem_lo / b;
        let blk_hi = (elem_hi - 1) / b;
        for bi in blk_lo..=blk_hi {
            let lo = elem_lo.max(bi * b);
            let hi = elem_hi.min((bi + 1) * b);
            let full = lo == bi * b && hi == (bi + 1) * b;
            let mut blk = if full {
                Block::empty(b)
            } else {
                self.read_block(h, bi)
            };
            for (slot, cell) in (lo - bi * b..hi - bi * b).zip(&cells[lo - elem_lo..hi - elem_lo]) {
                blk.set(slot, *cell);
            }
            self.write_block(h, bi, blk);
        }
    }

    /// Non-oblivious convenience used by tests and oracles: loads the whole
    /// array as a flat vector of cells **without** charging I/Os or touching
    /// the trace. Never use this inside an algorithm under test.
    pub fn snapshot_cells(&self, h: &ArrayHandle) -> Vec<Cell> {
        let mut out = Vec::with_capacity(h.len());
        for i in 0..h.n_blocks() {
            let blk = &self.blocks[h.global_block(i)];
            for j in 0..self.block_elems {
                if out.len() < h.len() {
                    out.push(blk.get(j));
                }
            }
        }
        out
    }

    /// Non-oblivious convenience used by tests and oracles: the occupied
    /// elements of the array in slot order, free of charge.
    pub fn snapshot_elements(&self, h: &ArrayHandle) -> Vec<Element> {
        self.snapshot_cells(h).into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(k: u64) -> Element {
        Element::new(k, 0)
    }

    #[test]
    fn alloc_array_rounds_up_to_blocks() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array(10);
        assert_eq!(h.len(), 10);
        assert_eq!(h.n_blocks(), 3);
        assert_eq!(mem.allocated_blocks(), 3);
    }

    #[test]
    fn initial_population_is_free_but_accesses_are_charged() {
        let mut mem = ExtMem::new(4);
        let items: Vec<Element> = (0..10).map(e).collect();
        let h = mem.alloc_array_from_elements(&items);
        assert_eq!(mem.stats().total(), 0);
        let b0 = mem.read_block(&h, 0);
        assert_eq!(b0.occupied(), items[..4].to_vec());
        assert_eq!(mem.stats().reads, 1);
        mem.write_block(&h, 0, Block::empty(4));
        assert_eq!(mem.stats().writes, 1);
    }

    #[test]
    fn cell_level_access_charges_block_ios() {
        let mut mem = ExtMem::new(4);
        let items: Vec<Element> = (0..8).map(e).collect();
        let h = mem.alloc_array_from_elements(&items);
        assert_eq!(mem.read_cell(&h, 5), Some(e(5)));
        assert_eq!(mem.stats().reads, 1);
        mem.write_cell(&h, 5, Some(e(99)));
        assert_eq!(
            mem.stats(),
            IoStats {
                reads: 2,
                writes: 1
            }
        );
        assert_eq!(mem.read_cell(&h, 5), Some(e(99)));
    }

    #[test]
    fn trace_records_global_addresses_in_order() {
        let mut mem = ExtMem::with_trace(2);
        let a = mem.alloc_array(4); // blocks 0..2
        let b = mem.alloc_array(4); // blocks 2..4
        let _ = mem.read_block(&a, 1);
        mem.write_block(&b, 0, Block::empty(2));
        let t = mem.take_trace().unwrap();
        assert_eq!(
            t,
            vec![
                AccessEvent {
                    op: AccessOp::Read,
                    addr: 1
                },
                AccessEvent {
                    op: AccessOp::Write,
                    addr: 2
                },
            ]
        );
    }

    #[test]
    fn snapshot_matches_contents_and_is_free() {
        let mut mem = ExtMem::new(4);
        let items: Vec<Element> = (0..6).map(e).collect();
        let h = mem.alloc_array_from_elements(&items);
        assert_eq!(mem.snapshot_elements(&h), items);
        assert_eq!(mem.stats().total(), 0);
    }

    #[test]
    fn stats_subtraction_gives_deltas() {
        let a = IoStats {
            reads: 10,
            writes: 4,
        };
        let b = IoStats {
            reads: 3,
            writes: 1,
        };
        assert_eq!(
            a - b,
            IoStats {
                reads: 7,
                writes: 3
            }
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_block_index_panics() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array(4);
        let _ = mem.read_block(&h, 1);
    }

    #[test]
    fn modify_block_pair_costs_two_reads_and_two_writes() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..16).map(e).collect::<Vec<_>>());
        mem.modify_block_pair(&h, 0, 2, |a, b| {
            for i in 0..4 {
                let (x, y) = (a.get(i), b.get(i));
                a.set(i, y);
                b.set(i, x);
            }
        });
        assert_eq!(
            mem.stats(),
            IoStats {
                reads: 2,
                writes: 2
            }
        );
        let cells = mem.snapshot_cells(&h);
        assert_eq!(cells[0], Some(e(8)));
        assert_eq!(cells[8], Some(e(0)));
    }

    #[test]
    fn modify_block_pair_writes_back_unconditionally() {
        // Even an identity modification costs the full 4 I/Os — the access
        // pattern must never depend on whether the data changed.
        let mut mem = ExtMem::with_trace(4);
        let h = mem.alloc_array(8);
        mem.modify_block_pair(&h, 0, 1, |_, _| {});
        assert_eq!(
            mem.stats(),
            IoStats {
                reads: 2,
                writes: 2
            }
        );
        let t = mem.take_trace().unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn read_span_charges_one_read_per_spanned_block() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..16).map(e).collect::<Vec<_>>());
        let cells = mem.read_span(&h, 2, 11);
        assert_eq!(cells.len(), 9);
        assert_eq!(cells[0], Some(e(2)));
        assert_eq!(cells[8], Some(e(10)));
        assert_eq!(mem.stats().reads, 3); // blocks 0, 1, 2
    }

    #[test]
    fn write_span_full_blocks_are_pure_writes() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array(16);
        let cells: Vec<Cell> = (0..8).map(|k| Some(e(k))).collect();
        mem.write_span(&h, 4, &cells); // blocks 1 and 2, fully covered
        assert_eq!(
            mem.stats(),
            IoStats {
                reads: 0,
                writes: 2
            }
        );
        assert_eq!(mem.snapshot_cells(&h)[4], Some(e(0)));
        assert_eq!(mem.snapshot_cells(&h)[11], Some(e(7)));
    }

    #[test]
    fn write_span_preserves_cells_outside_partial_blocks() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..8).map(e).collect::<Vec<_>>());
        mem.write_span(&h, 3, &[Some(e(100)), Some(e(101))]);
        let cells = mem.snapshot_cells(&h);
        assert_eq!(cells[2], Some(e(2)));
        assert_eq!(cells[3], Some(e(100)));
        assert_eq!(cells[4], Some(e(101)));
        assert_eq!(cells[5], Some(e(5)));
        // Both touched blocks are partial: RMW each.
        assert_eq!(
            mem.stats(),
            IoStats {
                reads: 2,
                writes: 2
            }
        );
    }

    #[test]
    fn span_roundtrip() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&(0..12).map(e).collect::<Vec<_>>());
        let mut cells = mem.read_span(&h, 0, 12);
        cells.reverse();
        mem.write_span(&h, 0, &cells);
        let got = mem.snapshot_elements(&h);
        let expected: Vec<Element> = (0..12).rev().map(e).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn multiple_arrays_do_not_overlap() {
        let mut mem = ExtMem::new(4);
        let a = mem.alloc_array_from_elements(&(0..8).map(e).collect::<Vec<_>>());
        let b = mem.alloc_array_from_elements(&(100..108).map(e).collect::<Vec<_>>());
        mem.write_cell(&a, 0, Some(e(55)));
        assert_eq!(mem.snapshot_elements(&b)[0], e(100));
    }
}
