//! Deterministic fault injection: the adversarial/unreliable server.
//!
//! [`FaultyStore`] wraps any [`BlockStore`] and misbehaves on a seeded,
//! reproducible schedule. Four fault lanes, each with an independent per-op
//! rate in parts per million:
//!
//! * **transient read** — the operation fails with
//!   [`StoreError::Transient`]; the server's state is untouched and a retry
//!   (a fresh op) draws fresh fault coins.
//! * **corrupt read** — the served block is tampered with: a flipped key
//!   bit, a toggled occupancy flag, or a fabricated element. The wrapper
//!   sits *above* the encryption layer, so a plaintext-image flip here is
//!   exactly what a ciphertext bit flip under a stream cipher produces.
//! * **stale read** — the server replays the previous version of the block
//!   (a rollback attack). If there is no *materially* older version — the
//!   block was never rewritten, or was rewritten with identical content —
//!   the fault is vacuous and nothing is recorded.
//! * **drop write** — the server claims success but keeps its old content
//!   (the write is lost). The I/O is still charged: the client paid for a
//!   round trip it cannot distinguish from a real write. Dropping a write
//!   that would not have changed the content is unobservable and is not
//!   recorded.
//!
//! **Determinism.** Whether lane `L` fires on operation `t` is
//! `bucket_of(hash64(t, seed ⊕ salt_L), 10^6) < rate_L` — a function of the
//! seed and the *operation index only*, never of addresses or data. Two runs
//! with the same seed and the same operation count therefore see byte-for-byte
//! identical fault schedules; and because oblivious algorithms issue the same
//! number of operations for any same-shape input, injected faults (and the
//! retries they trigger) cannot make traces data-dependent. The fault battery
//! asserts both properties.
//!
//! Every access — including a faulted one — first performs the underlying
//! I/O, so accounting and the adversary-visible trace stay faithful to what
//! a real client would observe.
//!
//! **The span path.** [`Prefetchable::store_run`] decomposes a run into one
//! fault decision per block, consuming op indices in address order — the
//! exact schedule the block-at-a-time path consumes, so a decomposed run
//! injects bit-identical faults (asserted by a test). Background
//! [`FaultyReader`]s instead key their faults on the *address* (a
//! "persistently bad sector" model): worker threads race, so an op counter
//! would make the schedule depend on the interleaving, which is exactly the
//! nondeterminism this module exists to exclude. Reader faults cover the
//! transient and corrupt lanes only (stale/drop need the foreground's
//! version history) and are not recorded in the store's fault log.

use std::collections::HashMap;

use crate::block::Block;
use crate::element::Element;
use crate::error::StoreError;
use crate::mem::{ArrayHandle, IoStats};
use crate::prefetch::{PrefetchRead, Prefetchable};
use crate::store::BlockStore;
use crate::util::{bucket_of, hash64};

/// How many past versions of each block the simulated adversary remembers
/// for stale replays.
const HISTORY_CAP: usize = 4;

const PPM: usize = 1_000_000;

const LANE_TRANSIENT: u64 = 0x7452_414E_5349_454E; // "TRANSIEN"
const LANE_CORRUPT: u64 = 0x434F_5252_5550_5421; // "CORRUPT!"
const LANE_STALE: u64 = 0x5354_414C_4552_4550; // "STALEREP"
const LANE_DROP: u64 = 0x4452_4F50_5752_4954; // "DROPWRIT"
const LANE_MUTATE: u64 = 0x4D55_5441_5445_2121; // slot/bit choice for corruption
const LANE_FETCH: u64 = 0x4645_5443_4852_4541; // "FETCHREA": background-reader faults

/// Per-lane fault rates in parts per million of operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Rate at which reads fail with [`StoreError::Transient`].
    pub transient_read_ppm: u32,
    /// Rate at which served blocks are corrupted.
    pub corrupt_read_ppm: u32,
    /// Rate at which reads replay the previous block version.
    pub stale_read_ppm: u32,
    /// Rate at which writes are silently dropped.
    pub drop_write_ppm: u32,
}

impl FaultSpec {
    /// A spec that injects nothing: the wrapper becomes a transparent
    /// pass-through (used to populate or verify without interference).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// Whether every lane is disabled.
    pub fn is_none(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// Which fault fired, for the schedule log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A read failed transiently.
    TransientRead,
    /// A served block was corrupted.
    CorruptRead,
    /// A read replayed an earlier version.
    StaleRead,
    /// A write was dropped.
    DropWrite,
}

/// Counts of injected faults by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads failed transiently.
    pub transient_reads: u64,
    /// Blocks served corrupted.
    pub corrupt_reads: u64,
    /// Reads served stale.
    pub stale_reads: u64,
    /// Writes dropped.
    pub dropped_writes: u64,
}

impl FaultStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.transient_reads + self.corrupt_reads + self.stale_reads + self.dropped_writes
    }

    /// Faults that tamper with data (everything except transients); if this
    /// is nonzero, an authenticated client must have returned an error.
    pub fn tampering(&self) -> u64 {
        self.corrupt_reads + self.stale_reads + self.dropped_writes
    }
}

/// Tampers with one slot of `blk`, all choices drawn from `coin` (never from
/// the data) — shared by the foreground op-indexed corruption lane and the
/// address-keyed [`FaultyReader`] lane.
fn corrupt_with(coin: u64, blk: &mut Block) {
    let slot = bucket_of(coin, blk.len().max(1));
    match blk.get(slot) {
        Some(e) if coin & 1 == 0 => {
            // Flip one key bit (a ciphertext bit flip in the key word).
            let bit = (coin >> 8) % 64;
            blk.set(slot, Some(Element::new(e.key ^ (1 << bit), e.payload)));
        }
        Some(_) => {
            // Toggle the occupancy flag: the element vanishes.
            blk.set(slot, None);
        }
        None => {
            // Fabricate an element out of keystream garbage (payload kept
            // to 63 bits so re-encryption of the tampered image is
            // representable).
            blk.set(slot, Some(Element::new(coin, coin >> 1)));
        }
    }
}

/// A seeded, deterministic fault-injection wrapper over any [`BlockStore`].
/// See the module docs for the fault model and the determinism argument.
#[derive(Debug)]
pub struct FaultyStore<S: BlockStore> {
    inner: S,
    seed: u64,
    spec: FaultSpec,
    op_counter: u64,
    stats: FaultStats,
    /// Recent versions of each block (by global address) as they passed
    /// through this layer — the adversary's replay material.
    history: HashMap<usize, Vec<Block>>,
    /// `(op index, kind)` for every injected fault, in order.
    log: Vec<(u64, FaultKind)>,
}

impl<S: BlockStore> FaultyStore<S> {
    /// Wraps `inner`; faults fire on the schedule derived from `seed` at the
    /// rates in `spec`.
    pub fn new(inner: S, seed: u64, spec: FaultSpec) -> Self {
        FaultyStore {
            inner,
            seed,
            spec,
            op_counter: 0,
            stats: FaultStats::default(),
            history: HashMap::new(),
            log: Vec::new(),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store (e.g. to reach trace capture on
    /// the encryption layer below).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Replaces the fault rates (the op counter and seed are untouched, so
    /// the schedule stays aligned with the operation index).
    pub fn set_spec(&mut self, spec: FaultSpec) {
        self.spec = spec;
    }

    /// The active fault rates.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The full fault schedule so far: `(op index, kind)` per injected fault.
    pub fn fault_log(&self) -> &[(u64, FaultKind)] {
        &self.log
    }

    /// Operations (reads + writes) issued through this wrapper so far.
    pub fn ops_issued(&self) -> u64 {
        self.op_counter
    }

    fn fires(&self, op: u64, lane: u64, ppm: u32) -> bool {
        ppm > 0 && bucket_of(hash64(op, self.seed ^ lane), PPM) < ppm as usize
    }

    fn record(&mut self, op: u64, kind: FaultKind) {
        match kind {
            FaultKind::TransientRead => self.stats.transient_reads += 1,
            FaultKind::CorruptRead => self.stats.corrupt_reads += 1,
            FaultKind::StaleRead => self.stats.stale_reads += 1,
            FaultKind::DropWrite => self.stats.dropped_writes += 1,
        }
        self.log.push((op, kind));
    }

    /// Tampers with one slot of `blk`, choosing the slot and mutation from
    /// the op index (never from the data).
    fn corrupt(&self, op: u64, blk: &mut Block) {
        corrupt_with(hash64(op, self.seed ^ LANE_MUTATE), blk);
    }

    fn current_content(&self, addr: usize) -> Option<Block> {
        self.history.get(&addr).and_then(|v| v.last().cloned())
    }

    fn push_history(&mut self, addr: usize, blk: Block) {
        let versions = self.history.entry(addr).or_default();
        if versions.len() == HISTORY_CAP {
            versions.remove(0);
        }
        versions.push(blk);
    }
}

impl<S: BlockStore> BlockStore for FaultyStore<S> {
    fn block_elems(&self) -> usize {
        self.inner.block_elems()
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        self.inner.alloc_array(len_elements)
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.try_load_block(h, i).unwrap_or_else(|e| {
            panic!("FaultyStore: {e} (use the fallible API or RetryingStore to handle faults)")
        })
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.try_store_block(h, i, blk).unwrap_or_else(|e| {
            panic!("FaultyStore: {e} (use the fallible API or RetryingStore to handle faults)")
        })
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }

    fn hint_blocks(&mut self, h: &ArrayHandle, blocks: &[usize]) {
        self.inner.hint_blocks(h, blocks);
    }

    fn recycle(&mut self, blk: Block) {
        self.inner.recycle(blk);
    }

    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        let addr = h.global_block(i);
        let op = self.op_counter;
        self.op_counter += 1;
        // The round trip happens (and is charged) before any fault is
        // decided, exactly as a real failing server would behave.
        let honest = self.inner.try_load_block(h, i)?;
        if self.fires(op, LANE_TRANSIENT, self.spec.transient_read_ppm) {
            self.record(op, FaultKind::TransientRead);
            return Err(StoreError::Transient { addr });
        }
        let mut served = honest;
        if self.fires(op, LANE_STALE, self.spec.stale_read_ppm) {
            if let Some(versions) = self.history.get(&addr) {
                // Replaying a version whose content equals the current one is
                // unobservable (oblivious algorithms rewrite unchanged blocks
                // all the time) and harmless, so only a *materially* older
                // version counts as an injected fault.
                if versions.len() >= 2
                    && versions[versions.len() - 2] != versions[versions.len() - 1]
                {
                    served = versions[versions.len() - 2].clone();
                    self.record(op, FaultKind::StaleRead);
                }
            }
        }
        if self.fires(op, LANE_CORRUPT, self.spec.corrupt_read_ppm) {
            let mut tampered = served.clone();
            self.corrupt(op, &mut tampered);
            served = tampered;
            self.record(op, FaultKind::CorruptRead);
        }
        Ok(served)
    }

    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        let addr = h.global_block(i);
        let op = self.op_counter;
        self.op_counter += 1;
        if self.fires(op, LANE_DROP, self.spec.drop_write_ppm) {
            let current = self
                .current_content(addr)
                .unwrap_or_else(|| Block::empty(self.inner.block_elems()));
            // Dropping a write that would not have changed the content is
            // unobservable, so it does not count as an injected fault — only
            // a *material* drop does. Either way the server acknowledges,
            // the I/O is charged, and the logical content stays `current`.
            if blk != current {
                self.inner.try_store_block(h, i, current)?;
                self.record(op, FaultKind::DropWrite);
                return Ok(());
            }
        }
        self.inner.try_store_block(h, i, blk.clone())?;
        self.push_history(addr, blk);
        Ok(())
    }
}

/// Background reader over a faulty store, modelling *persistently bad
/// sectors*: whether an address misbehaves is
/// `hash64(addr, seed ⊕ LANE_FETCH)` — a function of the address and seed
/// only, so the schedule is deterministic no matter how worker threads
/// interleave. Covers the transient and corrupt lanes; stale replays and
/// dropped writes need the foreground's version history and only exist
/// there. Reader-injected faults are not recorded in the foreground fault
/// log (readers share no state with the store).
#[derive(Debug)]
pub struct FaultyReader<R: PrefetchRead> {
    inner: R,
    seed: u64,
    spec: FaultSpec,
}

impl<R: PrefetchRead> FaultyReader<R> {
    fn apply(&self, addr: usize, res: Result<Block, StoreError>) -> Result<Block, StoreError> {
        let mut blk = res?;
        let sector = hash64(addr as u64, self.seed ^ LANE_FETCH);
        if self.spec.transient_read_ppm > 0
            && bucket_of(hash64(sector, self.seed ^ LANE_TRANSIENT), PPM)
                < self.spec.transient_read_ppm as usize
        {
            return Err(StoreError::Transient { addr });
        }
        if self.spec.corrupt_read_ppm > 0
            && bucket_of(hash64(sector, self.seed ^ LANE_CORRUPT), PPM)
                < self.spec.corrupt_read_ppm as usize
        {
            corrupt_with(hash64(sector, self.seed ^ LANE_MUTATE), &mut blk);
        }
        Ok(blk)
    }
}

impl<R: PrefetchRead> PrefetchRead for FaultyReader<R> {
    fn fetch(&mut self, addr: usize) -> Result<Block, StoreError> {
        let res = self.inner.fetch(addr);
        self.apply(addr, res)
    }

    fn fetch_run(&mut self, start: usize, count: usize) -> Vec<Result<Block, StoreError>> {
        self.inner
            .fetch_run(start, count)
            .into_iter()
            .enumerate()
            .map(|(k, res)| self.apply(start + k, res))
            .collect()
    }
}

impl<S: BlockStore + Prefetchable> Prefetchable for FaultyStore<S> {
    type Reader = FaultyReader<S::Reader>;

    fn reader(&self) -> Self::Reader {
        FaultyReader {
            inner: self.inner.reader(),
            seed: self.seed,
            spec: self.spec,
        }
    }

    fn supports_store_runs(&self) -> bool {
        self.inner.supports_store_runs()
    }

    /// Decomposes the run into one fault decision per block, consuming op
    /// indices in address order — exactly the schedule the block-at-a-time
    /// path consumes, so the injected faults (and the resulting server
    /// content) are bit-identical to issuing the same writes one by one.
    fn store_run(&mut self, start: usize, blks: Vec<Block>) -> Result<(), StoreError> {
        let mut resolved = Vec::with_capacity(blks.len());
        // History pushes are deferred until the span write succeeds, matching
        // the block path's push-after-store ordering.
        let mut to_push: Vec<(usize, Block)> = Vec::new();
        for (k, blk) in blks.into_iter().enumerate() {
            let addr = start + k;
            let op = self.op_counter;
            self.op_counter += 1;
            if self.fires(op, LANE_DROP, self.spec.drop_write_ppm) {
                let current = self
                    .current_content(addr)
                    .unwrap_or_else(|| Block::empty(self.inner.block_elems()));
                // Same rule as the block path: only a material drop counts,
                // and the old content is still (re)written and charged.
                if blk != current {
                    self.record(op, FaultKind::DropWrite);
                    resolved.push(current);
                    continue;
                }
            }
            to_push.push((addr, blk.clone()));
            resolved.push(blk);
        }
        self.inner.store_run(start, resolved)?;
        for (addr, blk) in to_push {
            self.push_history(addr, blk);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Cell;
    use crate::mem::ExtMem;

    fn cells(n: u64) -> Vec<Cell> {
        (0..n).map(|k| Some(Element::new(k, k))).collect()
    }

    fn all_faults() -> FaultSpec {
        FaultSpec {
            transient_read_ppm: 120_000,
            corrupt_read_ppm: 90_000,
            stale_read_ppm: 80_000,
            drop_write_ppm: 70_000,
        }
    }

    /// Drives a fixed workload and returns (log, stats, every served cell).
    fn run_workload(seed: u64) -> (Vec<(u64, FaultKind)>, FaultStats, Vec<Cell>) {
        let mut s = FaultyStore::new(ExtMem::new(4), seed, FaultSpec::none());
        let h = BlockStore::alloc_array(&mut s, 32);
        s.store_span(&h, 0, &cells(32));
        s.set_spec(all_faults());
        let mut served = Vec::new();
        for round in 0..20u64 {
            for i in 0..8 {
                if let Ok(blk) = s.try_load_block(&h, i) {
                    served.extend_from_slice(blk.slots());
                }
                let mut blk = Block::empty(4);
                blk.set(0, Some(Element::new(round, i as u64)));
                let _ = s.try_store_block(&h, i, blk);
            }
        }
        (s.fault_log().to_vec(), s.fault_stats(), served)
    }

    #[test]
    fn same_seed_gives_byte_identical_fault_schedules() {
        let (log1, stats1, served1) = run_workload(0xFEED);
        let (log2, stats2, served2) = run_workload(0xFEED);
        assert_eq!(log1, log2);
        assert_eq!(stats1, stats2);
        assert_eq!(served1, served2);
        assert!(stats1.total() > 0, "the rates are high enough to fire");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let (log1, ..) = run_workload(0xFEED);
        let (log2, ..) = run_workload(0xBEEF);
        assert_ne!(log1, log2);
    }

    #[test]
    fn none_spec_is_a_transparent_passthrough() {
        let mut s = FaultyStore::new(ExtMem::new(4), 1, FaultSpec::none());
        let h = BlockStore::alloc_array(&mut s, 16);
        s.store_span(&h, 0, &cells(16));
        assert_eq!(s.load_span(&h, 0, 16), cells(16));
        assert_eq!(s.fault_stats().total(), 0);
        assert!(s.fault_log().is_empty());
    }

    #[test]
    fn dropped_write_keeps_old_content_but_charges_io() {
        // Fire the drop lane on every write.
        let spec = FaultSpec {
            drop_write_ppm: PPM as u32,
            ..FaultSpec::none()
        };
        let mut s = FaultyStore::new(ExtMem::new(4), 7, FaultSpec::none());
        let h = BlockStore::alloc_array(&mut s, 4);
        let mut v1 = Block::empty(4);
        v1.set(0, Some(Element::new(11, 0)));
        s.try_store_block(&h, 0, v1.clone()).unwrap();
        let writes_before = s.io_stats().writes;
        s.set_spec(spec);
        let mut v2 = Block::empty(4);
        v2.set(0, Some(Element::new(22, 0)));
        s.try_store_block(&h, 0, v2).unwrap();
        assert_eq!(s.fault_stats().dropped_writes, 1);
        assert_eq!(
            s.io_stats().writes,
            writes_before + 1,
            "the lost write still cost a round trip"
        );
        s.set_spec(FaultSpec::none());
        assert_eq!(s.try_load_block(&h, 0).unwrap(), v1, "content unchanged");
    }

    #[test]
    fn stale_read_replays_the_previous_version() {
        let mut s = FaultyStore::new(ExtMem::new(4), 3, FaultSpec::none());
        let h = BlockStore::alloc_array(&mut s, 4);
        let mut v1 = Block::empty(4);
        v1.set(0, Some(Element::new(1, 0)));
        let mut v2 = Block::empty(4);
        v2.set(0, Some(Element::new(2, 0)));
        s.try_store_block(&h, 0, v1.clone()).unwrap();
        s.try_store_block(&h, 0, v2.clone()).unwrap();
        s.set_spec(FaultSpec {
            stale_read_ppm: PPM as u32,
            ..FaultSpec::none()
        });
        assert_eq!(s.try_load_block(&h, 0).unwrap(), v1, "v1 replayed");
        assert_eq!(s.fault_stats().stale_reads, 1);
        s.set_spec(FaultSpec::none());
        assert_eq!(s.try_load_block(&h, 0).unwrap(), v2, "server still at v2");
    }

    #[test]
    fn stale_read_is_vacuous_without_an_older_version() {
        let mut s = FaultyStore::new(
            ExtMem::new(4),
            3,
            FaultSpec {
                stale_read_ppm: PPM as u32,
                ..FaultSpec::none()
            },
        );
        let h = BlockStore::alloc_array(&mut s, 4);
        let blk = s.try_load_block(&h, 0).unwrap();
        assert!(blk.is_all_dummy());
        assert_eq!(s.fault_stats().stale_reads, 0, "nothing to replay");
    }

    #[test]
    fn corrupt_read_tampers_with_the_served_block_only() {
        let mut s = FaultyStore::new(ExtMem::new(4), 9, FaultSpec::none());
        let h = BlockStore::alloc_array(&mut s, 4);
        s.store_span(&h, 0, &cells(4));
        s.set_spec(FaultSpec {
            corrupt_read_ppm: PPM as u32,
            ..FaultSpec::none()
        });
        let tampered = s.try_load_block(&h, 0).unwrap();
        assert_ne!(tampered.slots(), s.inner().snapshot_cells(&h).as_slice());
        assert_eq!(s.fault_stats().corrupt_reads, 1);
        s.set_spec(FaultSpec::none());
        assert_eq!(
            s.load_span(&h, 0, 4),
            cells(4),
            "the stored data itself was never modified"
        );
    }

    #[test]
    fn transient_read_fails_but_charges_the_io() {
        let mut s = FaultyStore::new(
            ExtMem::new(4),
            5,
            FaultSpec {
                transient_read_ppm: PPM as u32,
                ..FaultSpec::none()
            },
        );
        let h = BlockStore::alloc_array(&mut s, 4);
        let before = s.io_stats().reads;
        let err = s.try_load_block(&h, 0).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(s.io_stats().reads, before + 1);
    }

    #[test]
    fn infallible_path_panics_on_injected_fault() {
        let mut s = FaultyStore::new(
            ExtMem::new(4),
            5,
            FaultSpec {
                transient_read_ppm: PPM as u32,
                ..FaultSpec::none()
            },
        );
        let h = BlockStore::alloc_array(&mut s, 4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.load_block(&h, 0)));
        assert!(r.is_err());
    }

    // --- the span path ---

    use crate::crypto::EncryptedStore;
    use crate::file::FileStore;

    fn faulty_file(seed: u64, spec: FaultSpec) -> FaultyStore<EncryptedStore<FileStore>> {
        let enc = EncryptedStore::with_backing(FileStore::temp(4).unwrap(), 0xA11CE);
        FaultyStore::new(enc, seed, spec)
    }

    #[test]
    fn span_writes_inject_the_identical_fault_schedule() {
        // Same seed, same spec, same writes — once block at a time, once as
        // spans. The decomposed run must consume the same op indices and
        // inject bit-identical faults, leaving identical server content.
        let spec = FaultSpec {
            drop_write_ppm: 400_000,
            ..FaultSpec::none()
        };
        let n_cells = 64u64;
        let b = 4;

        let mut one = faulty_file(0xD15C, spec);
        let h1 = one.alloc_array(n_cells as usize);
        for (i, chunk) in cells(n_cells).chunks(b).enumerate() {
            one.try_store_block(&h1, i, Block::from_cells(chunk))
                .unwrap();
        }

        let mut run = faulty_file(0xD15C, spec);
        let h2 = run.alloc_array(n_cells as usize);
        let blks: Vec<Block> = cells(n_cells).chunks(b).map(Block::from_cells).collect();
        run.store_run(h2.global_block(0), blks).unwrap();

        assert_eq!(one.ops_issued(), run.ops_issued());
        assert_eq!(one.fault_log(), run.fault_log());
        assert!(
            !run.fault_log().is_empty(),
            "the schedule must actually fire at this rate"
        );
        // Server content identical: read back fault-free.
        one.set_spec(FaultSpec::none());
        run.set_spec(FaultSpec::none());
        for i in 0..h1.n_blocks() {
            assert_eq!(
                one.try_load_block(&h1, i).unwrap(),
                run.try_load_block(&h2, i).unwrap(),
                "block {i} diverged between the span and block paths"
            );
        }
    }

    #[test]
    fn reader_faults_are_keyed_by_address_not_arrival_order() {
        let spec = FaultSpec {
            transient_read_ppm: 200_000,
            corrupt_read_ppm: 200_000,
            ..FaultSpec::none()
        };
        let mut faulty = faulty_file(0xBAD5EC, FaultSpec::none());
        let h = faulty.alloc_array(64);
        faulty.try_store_span(&h, 0, &cells(64)).unwrap();
        faulty.set_spec(spec);

        // Two readers fetching the same addresses in opposite orders must
        // observe identical per-address outcomes.
        let addrs: Vec<usize> = (0..h.n_blocks()).map(|i| h.global_block(i)).collect();
        let mut fwd = faulty.reader();
        let mut rev = faulty.reader();
        let fwd_results: Vec<_> = addrs.iter().map(|&a| fwd.fetch(a)).collect();
        let mut rev_results: Vec<_> = addrs.iter().rev().map(|&a| rev.fetch(a)).collect();
        rev_results.reverse();
        assert_eq!(fwd_results, rev_results);
        // And a run fetch sees the same faults as single fetches.
        let mut run_reader = faulty.reader();
        let run_results = run_reader.fetch_run(addrs[0], addrs.len());
        assert_eq!(fwd_results, run_results);
        // The schedule fires both lanes at this rate.
        assert!(fwd_results.iter().any(|r| r.is_err()));
        assert!(fwd_results.iter().any(|r| r.is_ok()));
        // Reader faults never touch the foreground log.
        assert!(faulty.fault_log().is_empty());
        // With a clean spec the reader serves honest data.
        faulty.set_spec(FaultSpec::none());
        let mut clean = faulty.reader();
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(
                clean.fetch(a).unwrap(),
                faulty.try_load_block(&h, i).unwrap()
            );
        }
    }
}
