//! # odo-extmem — the external-memory model substrate
//!
//! This crate implements the machine model of Goodrich's SPAA 2011 paper
//! *"Data-Oblivious External-Memory Algorithms for the Compaction, Selection,
//! and Sorting of Outsourced Data"*:
//!
//! * a client (**Alice**) owning a small private cache of `M` words,
//! * a storage server (**Bob**) holding the bulk of the data as an array of
//!   blocks of `B` words each,
//! * an honest-but-curious adversary who observes the **sequence of block
//!   addresses** Alice reads and writes (but not the encrypted contents).
//!
//! Everything the algorithm crates need from the model lives here:
//!
//! * [`Element`] — the machine-word record (key, payload) the paper's arrays
//!   hold; cells may be empty (dummy).
//! * [`Block`] — a block of `B` element slots.
//! * [`ExtMem`] — the block store: allocation of arrays, block reads/writes,
//!   per-operation I/O accounting ([`IoStats`]) and access-trace capture
//!   ([`AccessTrace`]), which is exactly the adversary's view.
//! * [`Config`] — the `(N, B, M)` parameters plus the paper's *wide-block*
//!   (`B ≥ log(N/B)`) and *tall-cache* (`M ≥ B^{1+ε}`) assumption checks.
//! * [`CacheBudget`] — a debug-level accounting helper used by algorithms to
//!   assert that their private working set never exceeds `M` words.
//! * [`BlockStore`] — the backend trait both [`ExtMem`] and
//!   [`EncryptedStore`](crypto::EncryptedStore) implement, so algorithms
//!   written against it (the external butterfly compaction in `odo-core`)
//!   run unchanged, with identical traces and I/O counts, over plaintext or
//!   re-encrypted storage.
//! * [`EncryptedStore`](crypto::EncryptedStore) — a masking layer that models
//!   semantically secure re-encryption of every block write (each write
//!   produces a fresh ciphertext even for identical plaintexts).
//! * [`trace`] — utilities for comparing access traces, the basis of the
//!   obliviousness test-suite used across the workspace.
//!
//! ## The untrusted/unreliable server
//!
//! The paper's server is not merely curious — it is *untrusted*. The fault
//! model (see the repo-root `DESIGN.md`) extends the substrate accordingly:
//!
//! * [`StoreError`](error::StoreError) — the typed failure vocabulary, and
//!   the `try_*` fallible operations every [`BlockStore`] carries.
//! * [`FaultyStore`](fault::FaultyStore) — a seeded, deterministic fault
//!   injector: transient read failures, ciphertext corruption, stale
//!   replays, dropped writes, at configurable per-op rates.
//! * [`AuthenticatedStore`](auth::AuthenticatedStore) — per-block MACs plus
//!   a client-side version table: corruption and rollback surface as
//!   `Err(Corrupted | Stale)`, never as wrong data.
//! * [`RetryingStore`](retry::RetryingStore) / [`run_fallible`](retry::run_fallible)
//!   — bounded retry with backoff for transient faults, and the bridge that
//!   runs the infallible oblivious algorithms over a fallible server.
//!
//! ## Cost model
//!
//! Every [`ExtMem::read_block`] / [`ExtMem::write_block`] costs exactly one
//! I/O, mirroring the paper's cost model (I/Os are counted at block
//! granularity; CPU time inside the client cache is free). Algorithms that
//! claim `O(N/B)` I/Os can therefore be validated by reading
//! [`ExtMem::stats`] after a run, which is what the `odo-bench` experiment
//! harness does.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod auth;
pub mod block;
pub mod budget;
pub mod cache;
pub mod config;
pub mod crypto;
pub mod element;
pub mod error;
pub mod fault;
pub mod file;
pub mod mem;
pub mod prefetch;
pub mod retry;
pub mod store;
pub mod trace;
pub mod util;

pub use arena::{ArenaStats, BlockArena};
pub use auth::{AuthClientState, AuthenticatedReader, AuthenticatedStore};
pub use block::Block;
pub use budget::CacheBudget;
pub use cache::BlockCache;
pub use config::{Config, ConfigError};
pub use crypto::{EncryptedReader, EncryptedStore};
pub use element::{Cell, Element};
pub use error::StoreError;
pub use fault::{FaultKind, FaultSpec, FaultStats, FaultyReader, FaultyStore};
pub use file::{FileReader, FileStore, InjectedCrash};
pub use mem::{AccessEvent, AccessOp, AccessTrace, ArrayHandle, ExtMem, IoStats};
pub use prefetch::{PrefetchConfig, PrefetchRead, PrefetchStats, Prefetchable, PrefetchingStore};
pub use retry::{
    install_quiet_abort_hook, run_fallible, RetryPolicy, RetryStats, RetryingReader, RetryingStore,
};
pub use store::{BackingStore, BlockStore};
