//! Access-trace analysis: the machinery behind the obliviousness tests.
//!
//! The paper defines an access sequence to be data-oblivious when its
//! distribution depends only on the problem, `N`, `M`, `B` and the sequence
//! length — never on the data values. For the algorithms in this workspace
//! this has a sharp, testable consequence:
//!
//! * deterministic algorithms must produce **identical** traces on any two
//!   inputs of the same shape;
//! * randomized algorithms must produce identical traces on any two inputs of
//!   the same shape **once the random seed is fixed** (the trace is a function
//!   of shape and coins only).
//!
//! [`assert_oblivious`] and [`traces_equal`] implement those checks, and
//! [`TraceSummary`] offers aggregate statistics (length, read/write mix,
//! address histogram) that the experiment harness reports alongside I/O
//! counts.

use crate::mem::{AccessEvent, AccessOp, AccessTrace};
use std::collections::BTreeMap;

/// Returns `true` when the two traces are exactly equal (same length, same
/// operations, same addresses, same order).
pub fn traces_equal(a: &AccessTrace, b: &AccessTrace) -> bool {
    a == b
}

/// Returns the index of the first position where the traces differ, or `None`
/// if one is a prefix of the other of equal length (i.e. they are equal).
pub fn first_divergence(a: &AccessTrace, b: &AccessTrace) -> Option<usize> {
    let common = a.len().min(b.len());
    for i in 0..common {
        if a[i] != b[i] {
            return Some(i);
        }
    }
    if a.len() != b.len() {
        Some(common)
    } else {
        None
    }
}

/// Panics with a descriptive message if the traces differ; used by tests.
pub fn assert_oblivious(a: &AccessTrace, b: &AccessTrace, context: &str) {
    if let Some(i) = first_divergence(a, b) {
        let ea = a.get(i);
        let eb = b.get(i);
        panic!(
            "obliviousness violation in {context}: traces diverge at step {i} \
             ({ea:?} vs {eb:?}); lengths {} vs {}",
            a.len(),
            b.len()
        );
    }
}

/// Aggregate statistics of a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total number of accesses.
    pub len: usize,
    /// Number of reads.
    pub reads: usize,
    /// Number of writes.
    pub writes: usize,
    /// Number of distinct block addresses touched.
    pub distinct_addrs: usize,
    /// Maximum number of accesses to any single address.
    pub max_addr_frequency: usize,
}

impl TraceSummary {
    /// Computes the summary of a trace.
    pub fn of(trace: &AccessTrace) -> Self {
        let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
        let mut reads = 0;
        let mut writes = 0;
        for ev in trace {
            *hist.entry(ev.addr).or_insert(0) += 1;
            match ev.op {
                AccessOp::Read => reads += 1,
                AccessOp::Write => writes += 1,
            }
        }
        TraceSummary {
            len: trace.len(),
            reads,
            writes,
            distinct_addrs: hist.len(),
            max_addr_frequency: hist.values().copied().max().unwrap_or(0),
        }
    }
}

/// Per-address access histogram (address → number of accesses), useful for
/// eyeballing hot spots in the experiment harness output.
pub fn address_histogram(trace: &AccessTrace) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for ev in trace {
        *hist.entry(ev.addr).or_insert(0) += 1;
    }
    hist
}

/// Convenience constructor for tests in other crates.
pub fn event(op: AccessOp, addr: usize) -> AccessEvent {
    AccessEvent { op, addr }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(addr: usize) -> AccessEvent {
        event(AccessOp::Read, addr)
    }
    fn w(addr: usize) -> AccessEvent {
        event(AccessOp::Write, addr)
    }

    #[test]
    fn equal_traces_have_no_divergence() {
        let t = vec![r(0), w(1), r(2)];
        assert!(traces_equal(&t, &t.clone()));
        assert_eq!(first_divergence(&t, &t.clone()), None);
    }

    #[test]
    fn divergence_index_points_at_first_difference() {
        let a = vec![r(0), w(1), r(2)];
        let b = vec![r(0), w(5), r(2)];
        assert_eq!(first_divergence(&a, &b), Some(1));
    }

    #[test]
    fn length_mismatch_diverges_at_common_length() {
        let a = vec![r(0), w(1)];
        let b = vec![r(0), w(1), r(2)];
        assert_eq!(first_divergence(&a, &b), Some(2));
        assert!(!traces_equal(&a, &b));
    }

    #[test]
    #[should_panic(expected = "obliviousness violation")]
    fn assert_oblivious_panics_on_divergence() {
        let a = vec![r(0)];
        let b = vec![w(0)];
        assert_oblivious(&a, &b, "unit test");
    }

    #[test]
    fn summary_counts_ops_and_addresses() {
        let t = vec![r(0), w(0), r(1), r(0)];
        let s = TraceSummary::of(&t);
        assert_eq!(s.len, 4);
        assert_eq!(s.reads, 3);
        assert_eq!(s.writes, 1);
        assert_eq!(s.distinct_addrs, 2);
        assert_eq!(s.max_addr_frequency, 3);
    }

    #[test]
    fn histogram_counts_per_address() {
        let t = vec![r(3), w(3), r(7)];
        let h = address_histogram(&t);
        assert_eq!(h[&3], 2);
        assert_eq!(h[&7], 1);
        assert_eq!(h.len(), 2);
    }
}
