//! The [`BlockStore`] abstraction: anything that serves block reads and
//! writes with I/O accounting.
//!
//! PR 1's algorithms were written directly against [`ExtMem`]. The paper,
//! however, is explicit that the algorithms never depend on *how* blocks are
//! stored — only on the block interface and the fact that the adversary sees
//! addresses, not contents. [`BlockStore`] captures exactly that interface,
//! and is implemented by both the plaintext arena ([`ExtMem`]) and the
//! re-encrypting masking layer ([`EncryptedStore`](crate::crypto::EncryptedStore)).
//! An algorithm written against the trait — like `odo-core`'s external
//! butterfly compaction — therefore runs unchanged over an encrypted
//! outsourced store, with an identical address trace and identical I/O count
//! (the encryption layer adds zero I/Os; the bench harness verifies this).
//!
//! The provided combinators ([`BlockStore::modify_pair`],
//! [`BlockStore::load_span`], [`BlockStore::store_span`]) mirror the span/pair
//! fast paths [`ExtMem`] grew for the external sort, but are expressed purely
//! in terms of [`BlockStore::load_block`] / [`BlockStore::store_block`], so
//! every implementor gets them — and their fixed access order — for free.

use crate::block::Block;
use crate::element::Cell;
use crate::error::StoreError;
use crate::mem::{AccessTrace, ArrayHandle, ExtMem, IoStats};

/// A server that stores arrays of blocks and charges one I/O per block read
/// or write. The access *order* of the provided methods is fixed and
/// documented, which is what the obliviousness arguments rely on.
pub trait BlockStore {
    /// Block size `B` in element slots.
    fn block_elems(&self) -> usize;

    /// Allocates a new array of `len_elements` slots, all initially dummies.
    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle;

    /// Reads local block `i` of array `h` (one I/O).
    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block;

    /// Writes local block `i` of array `h` (one I/O).
    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block);

    /// Cumulative I/O counters of the underlying server.
    fn io_stats(&self) -> IoStats;

    /// Announces that the local blocks `blocks` of array `h` are about to be
    /// read, in order. Purely advisory: the default is a no-op, and a store
    /// that honors hints (like
    /// [`PrefetchingStore`](crate::prefetch::PrefetchingStore)) must neither
    /// charge I/Os for them nor change the visible access trace — the hint
    /// schedule is derived from the input *shape* alone (the pass structure
    /// of the oblivious algorithms), so issuing it early leaks nothing the
    /// trace itself would not.
    fn hint_blocks(&mut self, _h: &ArrayHandle, _blocks: &[usize]) {}

    /// Offers a no-longer-needed block's buffer back to the store's pool
    /// ([`BlockArena`](crate::arena::BlockArena)). Advisory; the default
    /// drops the block.
    fn recycle(&mut self, _blk: Block) {}

    /// Fallible read of local block `i` of array `h` (one I/O).
    ///
    /// The default delegates to the infallible [`BlockStore::load_block`], so
    /// reliable honest servers ([`ExtMem`],
    /// [`EncryptedStore`](crate::crypto::EncryptedStore)) never fail. Untrusted
    /// or unreliable wrappers ([`FaultyStore`](crate::fault::FaultyStore),
    /// [`AuthenticatedStore`](crate::auth::AuthenticatedStore)) override this
    /// to surface [`StoreError`]s instead of wrong data.
    fn try_load_block(&mut self, h: &ArrayHandle, i: usize) -> Result<Block, StoreError> {
        Ok(self.load_block(h, i))
    }

    /// Fallible write of local block `i` of array `h` (one I/O). Default
    /// delegates to the infallible [`BlockStore::store_block`].
    fn try_store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) -> Result<(), StoreError> {
        self.store_block(h, i, blk);
        Ok(())
    }

    /// Fallible fused read-modify-write of the distinct block pair `(i, j)`,
    /// in the same fixed order as [`BlockStore::modify_pair`]: read `i`, read
    /// `j`, write `i`, write `j` (4 I/Os). Stops at the first failing I/O.
    fn try_modify_pair(
        &mut self,
        h: &ArrayHandle,
        i: usize,
        j: usize,
        f: impl FnOnce(&mut Block, &mut Block),
    ) -> Result<(), StoreError> {
        assert_ne!(i, j, "block pair must be two distinct blocks");
        let mut a = self.try_load_block(h, i)?;
        let mut b = self.try_load_block(h, j)?;
        f(&mut a, &mut b);
        self.try_store_block(h, i, a)?;
        self.try_store_block(h, j, b)
    }

    /// Fallible variant of [`BlockStore::load_span`]: same blocks, same
    /// ascending order, stops at the first failing read.
    fn try_load_span(
        &mut self,
        h: &ArrayHandle,
        elem_lo: usize,
        elem_hi: usize,
    ) -> Result<Vec<Cell>, StoreError> {
        assert!(
            elem_lo <= elem_hi && elem_hi <= h.len(),
            "span out of range"
        );
        if elem_lo == elem_hi {
            return Ok(Vec::new());
        }
        let b = self.block_elems();
        let blk_lo = elem_lo / b;
        let blk_hi = (elem_hi - 1) / b;
        if blk_hi > blk_lo {
            let schedule: Vec<usize> = (blk_lo..=blk_hi).collect();
            self.hint_blocks(h, &schedule);
        }
        let mut out = Vec::with_capacity(elem_hi - elem_lo);
        for bi in blk_lo..=blk_hi {
            let blk = self.try_load_block(h, bi)?;
            let lo = elem_lo.max(bi * b) - bi * b;
            let hi = elem_hi.min((bi + 1) * b) - bi * b;
            out.extend_from_slice(&blk.slots()[lo..hi]);
            self.recycle(blk);
        }
        Ok(out)
    }

    /// Fallible variant of [`BlockStore::store_span`]: same blocks, same
    /// ascending order, stops at the first failing I/O.
    fn try_store_span(
        &mut self,
        h: &ArrayHandle,
        elem_lo: usize,
        cells: &[Cell],
    ) -> Result<(), StoreError> {
        let elem_hi = elem_lo + cells.len();
        assert!(elem_hi <= h.len(), "span out of range");
        if cells.is_empty() {
            return Ok(());
        }
        let b = self.block_elems();
        let blk_lo = elem_lo / b;
        let blk_hi = (elem_hi - 1) / b;
        for bi in blk_lo..=blk_hi {
            let lo = elem_lo.max(bi * b);
            let hi = elem_hi.min((bi + 1) * b);
            let full = lo == bi * b && hi == (bi + 1) * b;
            let mut blk = if full {
                Block::empty(b)
            } else {
                self.try_load_block(h, bi)?
            };
            for (slot, cell) in (lo - bi * b..hi - bi * b).zip(&cells[lo - elem_lo..hi - elem_lo]) {
                blk.set(slot, *cell);
            }
            self.try_store_block(h, bi, blk)?;
        }
        Ok(())
    }

    /// Fused read-modify-write of the distinct block pair `(i, j)` in the
    /// fixed order: read `i`, read `j`, write `i`, write `j` (4 I/Os).
    ///
    /// Writes are unconditional — even an identity modification performs both
    /// writes — so the server-visible trace never depends on whether the data
    /// changed.
    fn modify_pair(
        &mut self,
        h: &ArrayHandle,
        i: usize,
        j: usize,
        f: impl FnOnce(&mut Block, &mut Block),
    ) {
        assert_ne!(i, j, "block pair must be two distinct blocks");
        let mut a = self.load_block(h, i);
        let mut b = self.load_block(h, j);
        f(&mut a, &mut b);
        self.store_block(h, i, a);
        self.store_block(h, j, b);
    }

    /// Reads the element span `[elem_lo, elem_hi)` into a flat cell vector,
    /// one read I/O per spanned block, blocks in ascending order.
    fn load_span(&mut self, h: &ArrayHandle, elem_lo: usize, elem_hi: usize) -> Vec<Cell> {
        assert!(
            elem_lo <= elem_hi && elem_hi <= h.len(),
            "span out of range"
        );
        if elem_lo == elem_hi {
            return Vec::new();
        }
        let b = self.block_elems();
        let blk_lo = elem_lo / b;
        let blk_hi = (elem_hi - 1) / b;
        if blk_hi > blk_lo {
            let schedule: Vec<usize> = (blk_lo..=blk_hi).collect();
            self.hint_blocks(h, &schedule);
        }
        let mut out = Vec::with_capacity(elem_hi - elem_lo);
        for bi in blk_lo..=blk_hi {
            let blk = self.load_block(h, bi);
            let lo = elem_lo.max(bi * b) - bi * b;
            let hi = elem_hi.min((bi + 1) * b) - bi * b;
            out.extend_from_slice(&blk.slots()[lo..hi]);
            self.recycle(blk);
        }
        out
    }

    /// Writes `cells` back to the element span starting at `elem_lo`, one
    /// write I/O per spanned block (plus one read I/O for each boundary block
    /// the span only partially covers), blocks in ascending order.
    fn store_span(&mut self, h: &ArrayHandle, elem_lo: usize, cells: &[Cell]) {
        let elem_hi = elem_lo + cells.len();
        assert!(elem_hi <= h.len(), "span out of range");
        if cells.is_empty() {
            return;
        }
        let b = self.block_elems();
        let blk_lo = elem_lo / b;
        let blk_hi = (elem_hi - 1) / b;
        for bi in blk_lo..=blk_hi {
            let lo = elem_lo.max(bi * b);
            let hi = elem_hi.min((bi + 1) * b);
            let full = lo == bi * b && hi == (bi + 1) * b;
            let mut blk = if full {
                Block::empty(b)
            } else {
                self.load_block(h, bi)
            };
            for (slot, cell) in (lo - bi * b..hi - bi * b).zip(&cells[lo - elem_lo..hi - elem_lo]) {
                blk.set(slot, *cell);
            }
            self.store_block(h, bi, blk);
        }
    }
}

/// The extra surface a *bottom-level* server backend exposes beyond
/// [`BlockStore`]: trace capture, stats reset, global allocation state and a
/// free (unmetered) snapshot. The wrappers that need a concrete backend
/// underneath them — [`EncryptedStore`](crate::crypto::EncryptedStore) in
/// particular — are generic over this trait, so the same masking layer runs
/// over the in-memory arena ([`ExtMem`]) or the on-disk
/// [`FileStore`](crate::file::FileStore) without caring which.
pub trait BackingStore: BlockStore {
    /// Starts recording the access trace (clearing any previous recording).
    fn enable_trace(&mut self);

    /// Stops recording and returns the captured trace, if any.
    fn take_trace(&mut self) -> Option<AccessTrace>;

    /// Resets the I/O counters (does not clear the trace).
    fn reset_stats(&mut self);

    /// Total number of blocks currently allocated in the backend.
    fn allocated_blocks(&self) -> usize;

    /// Non-oblivious convenience used by tests and oracles: the whole array
    /// as a flat vector of cells, **without** charging I/Os or touching the
    /// trace. Never use this inside an algorithm under test.
    fn snapshot_cells(&self, h: &ArrayHandle) -> Vec<Cell>;
}

impl BlockStore for ExtMem {
    fn block_elems(&self) -> usize {
        ExtMem::block_elems(self)
    }

    fn alloc_array(&mut self, len_elements: usize) -> ArrayHandle {
        ExtMem::alloc_array(self, len_elements)
    }

    fn load_block(&mut self, h: &ArrayHandle, i: usize) -> Block {
        self.read_block(h, i)
    }

    fn store_block(&mut self, h: &ArrayHandle, i: usize, blk: Block) {
        self.write_block(h, i, blk);
    }

    fn io_stats(&self) -> IoStats {
        self.stats()
    }

    fn recycle(&mut self, blk: Block) {
        self.arena().put(blk.into_buffer());
    }
}

impl BackingStore for ExtMem {
    fn enable_trace(&mut self) {
        ExtMem::enable_trace(self)
    }

    fn take_trace(&mut self) -> Option<AccessTrace> {
        ExtMem::take_trace(self)
    }

    fn reset_stats(&mut self) {
        ExtMem::reset_stats(self)
    }

    fn allocated_blocks(&self) -> usize {
        ExtMem::allocated_blocks(self)
    }

    fn snapshot_cells(&self, h: &ArrayHandle) -> Vec<Cell> {
        ExtMem::snapshot_cells(self, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;

    fn e(k: u64) -> Element {
        Element::new(k, 0)
    }

    // Exercise the provided combinators through the trait so every
    // implementor inherits tested behavior.
    fn store_roundtrip<S: BlockStore>(store: &mut S) {
        let h = store.alloc_array(12);
        let cells: Vec<Cell> = (0..12).map(|k| Some(e(k))).collect();
        store.store_span(&h, 0, &cells);
        let back = store.load_span(&h, 0, 12);
        assert_eq!(back, cells);
        store.modify_pair(&h, 0, 2, |a, b| {
            let (x, y) = (a.get(0), b.get(0));
            a.set(0, y);
            b.set(0, x);
        });
        let after = store.load_span(&h, 0, 12);
        assert_eq!(after[0], Some(e(8)));
        assert_eq!(after[8], Some(e(0)));
    }

    #[test]
    fn extmem_implements_the_trait_combinators() {
        let mut mem = ExtMem::new(4);
        store_roundtrip(&mut mem);
    }

    #[test]
    fn try_defaults_delegate_to_the_infallible_ops() {
        // On an honest reliable store the fallible path always succeeds and
        // is operationally identical to the infallible one.
        let mut mem = ExtMem::new(4);
        let h = BlockStore::alloc_array(&mut mem, 12);
        let cells: Vec<Cell> = (0..12).map(|k| Some(e(k))).collect();
        mem.try_store_span(&h, 0, &cells).unwrap();
        assert_eq!(mem.try_load_span(&h, 0, 12).unwrap(), cells);
        mem.try_modify_pair(&h, 0, 2, |a, b| {
            let (x, y) = (a.get(0), b.get(0));
            a.set(0, y);
            b.set(0, x);
        })
        .unwrap();
        let after = mem.try_load_span(&h, 0, 12).unwrap();
        assert_eq!(after[0], Some(e(8)));
        assert_eq!(after[8], Some(e(0)));
    }

    #[test]
    fn try_pair_trace_matches_infallible_pair_trace() {
        // The fallible pair op must leave the identical server-visible trace
        // as the infallible one: read i, read j, write i, write j.
        let mut mem = ExtMem::with_trace(4);
        let h = BlockStore::alloc_array(&mut mem, 8);
        mem.try_modify_pair(&h, 0, 1, |_, _| {}).unwrap();
        let t1 = mem.take_trace().unwrap();
        let mut mem2 = ExtMem::with_trace(4);
        let h2 = BlockStore::alloc_array(&mut mem2, 8);
        BlockStore::modify_pair(&mut mem2, &h2, 0, 1, |_, _| {});
        let t2 = mem2.take_trace().unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn trait_pair_order_matches_inherent_fast_path() {
        // The provided modify_pair must leave the same trace as
        // ExtMem::modify_block_pair: read i, read j, write i, write j.
        let mut mem = ExtMem::with_trace(4);
        let h = BlockStore::alloc_array(&mut mem, 8);
        BlockStore::modify_pair(&mut mem, &h, 0, 1, |_, _| {});
        let t1 = mem.take_trace().unwrap();
        let mut mem2 = ExtMem::with_trace(4);
        let h2 = mem2.alloc_array(8);
        mem2.modify_block_pair(&h2, 0, 1, |_, _| {});
        let t2 = mem2.take_trace().unwrap();
        assert_eq!(t1, t2);
    }
}
