//! # odo-core — the workspace's algorithm façade
//!
//! Re-exports the public API of the data-oblivious external-memory workspace
//! in one place, so downstream users (the root `odo` crate, the examples,
//! the benchmark harness) depend on a single crate:
//!
//! * [`extmem`] — the machine model: [`ExtMem`], [`Config`], blocks, I/O
//!   accounting, access traces and the obliviousness test utilities.
//! * [`obliv_net`] — the sorting and routing networks, headlined by
//!   [`external_oblivious_sort`], the paper's Lemma 2 deterministic external
//!   oblivious sort.
//! * [`compact`] — the paper's §3 tight order-preserving compaction (and its
//!   reverse, expansion) executed I/O-efficiently over any [`BlockStore`] in
//!   `O((N/B)(1 + log(N/M)))` I/Os.
//! * [`select`] — the paper's §4 data-oblivious selection and quantiles:
//!   [`select::select_kth`] prunes candidates with weighted splitters and §3
//!   compaction, then finishes with the external sort, in
//!   `O((N/B)(1 + log(N/M)))` I/Os whose trace hides the data *and* the rank.
//! * [`sorter`] — the [`OblivSorter`] strategy layer: every embedded sort
//!   (the façades, selection's sample/finishing sorts, the quantile pass)
//!   can swap the deterministic Lemma 2 engine for the randomized bucket
//!   oblivious sort ([`obliv_net::bucket_sort`]), trading the squared log
//!   for `O((N/B)·log_{M/B}(N/B))` I/Os once `N ≫ M`.
//!
//! With selection landed, the three headline primitives of the paper's title
//! — compaction, selection, and sorting — all run end to end over plaintext
//! and re-encrypting outsourced stores.
//!
//! The server is *untrusted*, not merely curious, so every primitive also
//! has a fallible form for unreliable/tampering servers: [`try_sort`],
//! [`compact::try_compact`] and [`select::try_select_kth`] retry transient
//! faults per an [`extmem::RetryPolicy`] and propagate a typed [`OdoError`]
//! — over an [`extmem::AuthenticatedStore`], corruption and rollback surface
//! as `Err(Corrupted | Stale)`, never as silently wrong output. See the
//! repo-root `DESIGN.md` for the fault model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use extmem;
pub use obliv_net;

pub mod compact;
pub mod error;
pub mod select;
pub mod sorter;

pub use compact::{compact_order_preserving, expand, try_compact, try_expand, CompactReport};
pub use error::OdoError;
pub use extmem::{
    AccessEvent, AccessOp, AccessTrace, ArenaStats, ArrayHandle, AuthClientState,
    AuthenticatedStore, BackingStore, Block, BlockArena, BlockCache, BlockStore, CacheBudget, Cell,
    Config, ConfigError, Element, EncryptedStore, ExtMem, FaultKind, FaultSpec, FaultStats,
    FaultyStore, FileStore, InjectedCrash, IoStats, PrefetchConfig, PrefetchStats,
    PrefetchingStore, RetryPolicy, RetryStats, StoreError,
};
pub use obliv_net::{
    bitonic_sort_pow2, bucket_oblivious_sort, external_oblivious_sort, external_oblivious_sort_by,
    odd_even_merge_sort, randomized_shellsort, try_bucket_oblivious_sort,
    try_external_oblivious_sort, BucketSortConfig, BucketSortError, BucketSortReport, Comparator,
    Network, SortOrder, SortReport,
};
pub use select::{
    quantiles, quantiles_with, select_kth, select_kth_with, try_select_kth, SelectReport,
    SAMPLES_PER_CHUNK,
};
pub use sorter::{OblivSorter, SortEngine, SorterReport};

/// Everything a typical caller needs, importable with one `use`.
pub mod prelude {
    pub use crate::compact::{
        compact, compact_order_preserving, expand, try_compact, try_expand, CompactReport,
    };
    pub use crate::error::OdoError;
    pub use crate::select::{
        quantiles, quantiles_with, select_kth, select_kth_with, try_select_kth, SelectReport,
    };
    pub use crate::sorter::{OblivSorter, SortEngine, SorterReport};
    pub use crate::{sort_with, try_sort};
    pub use extmem::{
        install_quiet_abort_hook, AuthenticatedStore, BlockStore, Cell, Config, Element,
        EncryptedStore, ExtMem, FaultSpec, FaultyStore, FileStore, IoStats, PrefetchingStore,
        RetryPolicy, RetryStats, StoreError,
    };
    pub use obliv_net::BucketSortConfig;
    pub use obliv_net::{
        external_oblivious_sort, try_external_oblivious_sort, SortOrder, SortReport,
    };
}

/// Fallible variant of [`obliv_net::external_oblivious_sort`] returning the
/// workspace-level [`OdoError`]: transient faults retried per `policy`,
/// tampering detected by an [`AuthenticatedStore`] propagated as
/// `Err(OdoError::Store(Corrupted | Stale))` instead of a wrong answer. See
/// [`obliv_net::try_external_oblivious_sort`] for the store-level contract.
pub fn try_sort<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
    policy: RetryPolicy,
) -> Result<(SortReport, RetryStats), OdoError> {
    try_external_oblivious_sort(store, h, cache_elems, order, policy).map_err(OdoError::from)
}

/// Sorts array `h` with an explicit [`OblivSorter`] strategy — the
/// engine-switchable front door to the external oblivious sorts.
/// `&OblivSorter::Bitonic` (the default) is the deterministic Lemma 2 sort;
/// `OblivSorter::bucket(seed)` swaps in the randomized
/// `O((N/B)·log_{M/B}(N/B))` bucket sort. See [`sorter::OblivSorter::sort`]
/// for the contract and panics.
pub fn sort_with<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
    sorter: &OblivSorter,
) -> SorterReport {
    sorter.sort(store, h, cache_elems, order)
}

/// Sorts `items` on an outsourced store configured by `cfg` and returns the
/// sorted elements together with the exact I/O cost — the one-call form of
/// the paper's headline sorting result.
///
/// # Panics
/// Panics if `cfg` fails basic validation (`N ≥ 1`, `B ≥ 1`, `M ≥ 2B`) or
/// if `items.len()` disagrees with `cfg.n_elements` — the validated model
/// point must describe the data actually sorted.
pub fn sort_outsourced(
    cfg: &Config,
    items: &[Element],
    order: SortOrder,
) -> (Vec<Element>, SortReport) {
    cfg.validate().expect("invalid (N, B, M) configuration");
    assert_eq!(
        items.len(),
        cfg.n_elements,
        "items.len() must equal the configured N"
    );
    let mut mem = ExtMem::new(cfg.block_elems);
    let h = mem.alloc_array_from_elements(items);
    let report = external_oblivious_sort(&mut mem, &h, cfg.cache_elems, order);
    (mem.snapshot_elements(&h), report)
}

/// Compacts `cells` (occupied cells to the front, order preserved, dummies
/// after) on an outsourced store configured by `cfg` and returns the routed
/// array together with the exact I/O cost — the one-call form of the paper's
/// §3 tight order-preserving compaction.
///
/// # Panics
/// Panics if `cfg` fails basic validation, if `cells.len()` disagrees with
/// `cfg.n_elements`, or on the [`compact::compact`] cache requirements
/// (`M ≥ 8B`; power-of-two `B` when the array exceeds the cache).
pub fn compact_outsourced(cfg: &Config, cells: &[Cell]) -> (Vec<Cell>, CompactReport) {
    cfg.validate().expect("invalid (N, B, M) configuration");
    assert_eq!(
        cells.len(),
        cfg.n_elements,
        "cells.len() must equal the configured N"
    );
    let mut mem = ExtMem::new(cfg.block_elems);
    let h = mem.alloc_array_from_cells(cells);
    let report = compact::compact(&mut mem, &h, cfg.cache_elems);
    (mem.snapshot_cells(&h), report)
}

/// Selects the `k`-th smallest of `items` (0-based rank by key, ties broken
/// by original position) on an outsourced store configured by `cfg`, and
/// returns the element together with the exact I/O cost — the one-call form
/// of the paper's §4 selection result. The server-visible trace depends only
/// on the shape `(N, B, M)`, never on the data or on `k`.
///
/// # Panics
/// Panics if `cfg` fails basic validation, if `items.len()` disagrees with
/// `cfg.n_elements`, if `k ≥ items.len()`, or on the [`select::select_kth`]
/// external-path cache requirements (`M ≥ max(8B, 32)`; power-of-two `B` when
/// the array exceeds the cache).
pub fn select_outsourced(cfg: &Config, items: &[Element], k: usize) -> (Element, SelectReport) {
    cfg.validate().expect("invalid (N, B, M) configuration");
    assert_eq!(
        items.len(),
        cfg.n_elements,
        "items.len() must equal the configured N"
    );
    let mut mem = ExtMem::new(cfg.block_elems);
    let h = mem.alloc_array_from_elements(items);
    select_kth(&mut mem, &h, cfg.cache_elems, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_outsourced_sorts_and_reports_io() {
        let cfg = Config::new(200, 8, 64);
        let items: Vec<Element> = (0..200)
            .map(|i| Element::keyed(199 - i as u64, i))
            .collect();
        let (sorted, report) = sort_outsourced(&cfg, &items, SortOrder::Ascending);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(sorted.len(), 200);
        assert!(report.io.total() > 0);
        assert!(report.padded, "200 is not a power of two");
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_config_is_rejected() {
        let cfg = Config::new(10, 8, 8); // cache holds only one block
        sort_outsourced(&cfg, &[Element::new(1, 0)], SortOrder::Ascending);
    }

    #[test]
    fn compact_outsourced_compacts_and_reports_io() {
        let cfg = Config::new(300, 8, 64);
        let cells: Vec<Cell> = (0..300)
            .map(|i| {
                if i % 4 == 0 {
                    Some(Element::keyed(i as u64, i))
                } else {
                    None
                }
            })
            .collect();
        let (out, report) = compact_outsourced(&cfg, &cells);
        let expected: Vec<Element> = cells.iter().flatten().copied().collect();
        let prefix: Vec<Element> = out.iter().take(75).map(|c| c.unwrap()).collect();
        assert_eq!(prefix, expected);
        assert!(out[75..].iter().all(|c| c.is_none()));
        assert_eq!(report.occupied, 75);
        assert!(report.io.total() > 0);
    }

    #[test]
    fn select_outsourced_selects_and_reports_io() {
        // Duplicate-heavy keys so the façade exercises the tie-breaking
        // contract: rank k, ties by original position.
        let cfg = Config::new(600, 8, 64);
        let items: Vec<Element> = (0..600)
            .map(|i| Element::keyed((i as u64 * 7) % 50, i))
            .collect();
        let mut expected: Vec<(u64, usize)> =
            items.iter().map(|e| (e.key, e.payload as usize)).collect();
        expected.sort_unstable();
        for k in [0usize, 1, 300, 599] {
            let (got, report) = select_outsourced(&cfg, &items, k);
            assert_eq!((got.key, got.payload as usize), expected[k], "k={k}");
            assert_eq!(report.rank, k);
            assert!(report.io.total() > 0);
            assert!(!report.in_cache, "600 > 64 takes the external path");
        }
    }

    #[test]
    #[should_panic(expected = "rank k out of range")]
    fn select_outsourced_rejects_overlarge_rank() {
        let cfg = Config::new(100, 8, 512);
        let items: Vec<Element> = (0..100).map(|i| Element::keyed(i as u64, i)).collect();
        select_outsourced(&cfg, &items, 100);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn select_outsourced_rejects_invalid_config() {
        let cfg = Config::new(10, 8, 8);
        select_outsourced(&cfg, &[Element::new(1, 0); 10], 0);
    }
}
