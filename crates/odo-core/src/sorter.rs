//! The sorter strategy layer: one switch for every external oblivious sort
//! in the workspace.
//!
//! Two engines implement the same contract — sort the cells of a
//! [`BlockStore`] array with dummies last, behind a trace the server cannot
//! correlate with the data:
//!
//! * [`OblivSorter::Bitonic`] — the paper's Lemma 2 deterministic external
//!   bitonic sort, `O((N/B)(1 + log²(N/M)))` I/Os, trace a fixed function of
//!   the shape `(N, B, M)` alone. The default, and the oracle in every
//!   differential test.
//! * [`OblivSorter::Bucket`] — the randomized bucket oblivious sort
//!   ([`obliv_net::bucket_sort`]), `O((N/B)·log_{M/B}(N/B))` I/Os, trace a
//!   fixed function of `(shape, seed)` plus the random bin assignment. The
//!   engine of choice once `N ≫ M`, where the squared log dominates.
//!
//! Callers that embed a sort — [`crate::select::select_kth_with`]'s sample
//! and finishing sorts, [`crate::sort_outsourced_with`] — take the strategy
//! as a parameter; the un-suffixed entry points keep the deterministic
//! default. See the repo-root `DESIGN.md` for when to pick which.

use crate::error::OdoError;
use extmem::element::Cell;
use extmem::{ArrayHandle, BlockStore, IoStats, RetryPolicy, RetryStats};
use obliv_net::bucket_sort::BucketSortConfig;
use obliv_net::SortOrder;
use std::cmp::Ordering;

/// Which engine a [`SorterReport`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortEngine {
    /// The Lemma 2 deterministic external bitonic sort.
    Bitonic,
    /// The randomized bucket oblivious sort.
    Bucket,
}

/// The engine-agnostic slice of a sort's outcome. Engine-specific detail
/// (bucket capacity, butterfly depth, merge passes, …) stays on the engines'
/// own report types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SorterReport {
    /// I/Os charged to this sort (reads + writes deltas).
    pub io: IoStats,
    /// The engine that ran.
    pub engine: SortEngine,
}

/// Strategy switch for the external oblivious sorts. `Default` is
/// [`OblivSorter::Bitonic`] — deterministic, shape-only trace, no overflow
/// probability — so existing callers keep their exact behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OblivSorter {
    /// Lemma 2: deterministic external bitonic sort,
    /// `O((N/B)(1 + log²(N/M)))` I/Os.
    #[default]
    Bitonic,
    /// Randomized bucket oblivious sort, `O((N/B)·log_{M/B}(N/B))` I/Os;
    /// see [`BucketSortConfig`] for the seed and the bucket-capacity knob.
    Bucket(BucketSortConfig),
}

impl OblivSorter {
    /// The bucket engine with the given seed and automatic bucket capacity.
    pub fn bucket(seed: u64) -> Self {
        OblivSorter::Bucket(BucketSortConfig::seeded(seed))
    }

    /// Which engine this strategy selects.
    pub fn engine(&self) -> SortEngine {
        match self {
            OblivSorter::Bitonic => SortEngine::Bitonic,
            OblivSorter::Bucket(_) => SortEngine::Bucket,
        }
    }

    /// Sorts array `h` in the given order (dummies last) with the selected
    /// engine.
    ///
    /// # Panics
    /// Panics on the engine's argument requirements (see
    /// [`obliv_net::external_oblivious_sort`] and
    /// [`obliv_net::bucket_oblivious_sort`]) and, for the bucket engine, on
    /// a bucket overflow — retry with a fresh seed via [`Self::try_sort`]
    /// instead of panicking where that matters.
    pub fn sort<S: BlockStore>(
        &self,
        store: &mut S,
        h: &ArrayHandle,
        cache_elems: usize,
        order: SortOrder,
    ) -> SorterReport {
        match self {
            OblivSorter::Bitonic => {
                let r = obliv_net::external_oblivious_sort(store, h, cache_elems, order);
                SorterReport {
                    io: r.io,
                    engine: SortEngine::Bitonic,
                }
            }
            OblivSorter::Bucket(cfg) => {
                let r = obliv_net::bucket_oblivious_sort(store, h, cache_elems, order, cfg)
                    .unwrap_or_else(|e| panic!("{e}"));
                SorterReport {
                    io: r.io,
                    engine: SortEngine::Bucket,
                }
            }
        }
    }

    /// Sorts array `h` by an arbitrary cell comparator with the selected
    /// engine. The comparator must order dummies last (e.g.
    /// [`extmem::element::cell_cmp_none_last`]); the bucket engine enforces
    /// that itself and only consults `cmp` on occupied cells.
    ///
    /// # Panics
    /// Same conditions as [`Self::sort`].
    pub fn sort_by<S, F>(
        &self,
        store: &mut S,
        h: &ArrayHandle,
        cache_elems: usize,
        cmp: &F,
    ) -> SorterReport
    where
        S: BlockStore,
        F: Fn(&Cell, &Cell) -> Ordering,
    {
        match self {
            OblivSorter::Bitonic => {
                let r = obliv_net::external_oblivious_sort_by(store, h, cache_elems, cmp);
                SorterReport {
                    io: r.io,
                    engine: SortEngine::Bitonic,
                }
            }
            OblivSorter::Bucket(cfg) => {
                let r = obliv_net::bucket_oblivious_sort_by(store, h, cache_elems, cfg, cmp)
                    .unwrap_or_else(|e| panic!("{e}"));
                SorterReport {
                    io: r.io,
                    engine: SortEngine::Bucket,
                }
            }
        }
    }

    /// Fallible variant of [`Self::sort`] for untrusted/unreliable servers:
    /// transient faults retry per `policy`, tampering and argument failures
    /// surface as a typed [`OdoError`], and a bucket overflow returns
    /// [`OdoError::BucketOverflow`] (retry with a fresh seed) instead of
    /// panicking.
    pub fn try_sort<S: BlockStore>(
        &self,
        store: &mut S,
        h: &ArrayHandle,
        cache_elems: usize,
        order: SortOrder,
        policy: RetryPolicy,
    ) -> Result<(SorterReport, RetryStats), OdoError> {
        match self {
            OblivSorter::Bitonic => {
                let (r, retries) =
                    obliv_net::try_external_oblivious_sort(store, h, cache_elems, order, policy)
                        .map_err(OdoError::from)?;
                Ok((
                    SorterReport {
                        io: r.io,
                        engine: SortEngine::Bitonic,
                    },
                    retries,
                ))
            }
            OblivSorter::Bucket(cfg) => {
                let (r, retries) =
                    obliv_net::try_bucket_oblivious_sort(store, h, cache_elems, order, cfg, policy)
                        .map_err(OdoError::from)?;
                Ok((
                    SorterReport {
                        io: r.io,
                        engine: SortEngine::Bucket,
                    },
                    retries,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::{Element, ExtMem};

    fn scrambled(n: usize) -> Vec<Element> {
        (0..n)
            .map(|i| Element::keyed(extmem::util::hash64(i as u64, 0xCAFE) % 997, i))
            .collect()
    }

    fn sort_with(
        sorter: OblivSorter,
        n: usize,
        b: usize,
        m: usize,
    ) -> (Vec<Element>, SorterReport) {
        let mut mem = ExtMem::new(b);
        let items = scrambled(n);
        let h = mem.alloc_array_from_elements(&items);
        let report = sorter.sort(&mut mem, &h, m, SortOrder::Ascending);
        (mem.snapshot_elements(&h), report)
    }

    #[test]
    fn both_engines_agree_with_each_other() {
        let (bitonic, rb) = sort_with(OblivSorter::Bitonic, 2048, 16, 256);
        let (bucket, rk) = sort_with(OblivSorter::bucket(42), 2048, 16, 256);
        assert_eq!(bitonic, bucket);
        assert_eq!(rb.engine, SortEngine::Bitonic);
        assert_eq!(rk.engine, SortEngine::Bucket);
        assert!(bitonic.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn bucket_engine_beats_bitonic_when_n_dwarfs_m() {
        let (_, rb) = sort_with(OblivSorter::Bitonic, 1 << 13, 16, 256);
        let (_, rk) = sort_with(OblivSorter::bucket(7), 1 << 13, 16, 256);
        assert!(
            rk.io.total() < rb.io.total(),
            "bucket {} >= bitonic {}",
            rk.io.total(),
            rb.io.total()
        );
    }

    #[test]
    fn default_is_the_deterministic_oracle() {
        assert_eq!(OblivSorter::default(), OblivSorter::Bitonic);
        assert_eq!(OblivSorter::default().engine(), SortEngine::Bitonic);
    }

    #[test]
    fn try_sort_runs_both_engines() {
        for sorter in [OblivSorter::Bitonic, OblivSorter::bucket(5)] {
            let mut mem = ExtMem::new(8);
            let items = scrambled(1024);
            let h = mem.alloc_array_from_elements(&items);
            let (report, _) = sorter
                .try_sort(
                    &mut mem,
                    &h,
                    128,
                    SortOrder::Ascending,
                    RetryPolicy::default(),
                )
                .unwrap();
            assert_eq!(report.engine, sorter.engine());
            let got = mem.snapshot_elements(&h);
            assert!(got.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
