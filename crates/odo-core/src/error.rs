//! The workspace-level error type for the fallible (`try_`) primitives.
//!
//! The three `try_` entry points — `try_sort`, [`try_compact`] and
//! [`try_select_kth`] — run the paper's algorithms against an untrusted or
//! unreliable server and propagate a typed [`OdoError`] instead of
//! panicking mid-pass: transient faults are retried by the policy, while
//! tampering detected by
//! [`AuthenticatedStore`](extmem::auth::AuthenticatedStore) surfaces as
//! `OdoError::Store(Corrupted | Stale)` — never as a wrong answer.
//!
//! [`try_compact`]: crate::compact::try_compact
//! [`try_select_kth`]: crate::select::try_select_kth

use std::fmt;

use extmem::{ConfigError, StoreError};
use obliv_net::bucket_sort::BucketSortError;

/// Everything a fallible algorithm run can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OdoError {
    /// The block store failed: a transient fault survived every retry, the
    /// server tampered with data (corruption/rollback), the client-side
    /// budget ran out, or a payload did not fit the encrypted encoding.
    Store(StoreError),
    /// The `(N, B, M)` model configuration is invalid.
    Config(ConfigError),
    /// The caller's arguments don't describe a runnable pass (bad targets,
    /// cache too small, non-power-of-two blocks, …). On the infallible
    /// entry points the same validation panics with `reason` as the message,
    /// so `Display` prints `reason` verbatim.
    InvalidArgument {
        /// Human-readable validation failure.
        reason: &'static str,
    },
    /// Routed cells and routing labels disagree — the symptom of garbage
    /// served by a corrupted (but unauthenticated) store reaching a routing
    /// pass. Classified as tampering: wrap the store in
    /// [`AuthenticatedStore`](extmem::auth::AuthenticatedStore) to catch it
    /// at the block level instead.
    CorruptedRouting {
        /// What disagreed.
        reason: &'static str,
        /// The cell index where the disagreement was detected.
        cell: usize,
    },
    /// A stateful client object (the ORAM) was used after a fatal error
    /// left it mid-operation. Hierarchical state (cache, level occupancy,
    /// epoch salts) may be inconsistent with the server image, so further
    /// accesses could silently return stale data — the client refuses
    /// instead. Rebuild the client from scratch to recover.
    InvalidState {
        /// What the client was in the middle of when it failed.
        reason: &'static str,
    },
    /// A randomized bucket-sort pass overflowed a bucket; retry with a
    /// fresh seed (probability `≈ exp(−Z/6)` per bucket-level).
    BucketOverflow {
        /// Global index of the bucket that overflowed.
        bucket: usize,
        /// How many items wanted the bucket.
        size: usize,
        /// The configured bucket capacity `Z`.
        capacity: usize,
    },
}

impl OdoError {
    /// Whether the underlying failure indicates server-side tampering.
    pub fn is_tampering(&self) -> bool {
        matches!(self, OdoError::Store(e) if e.is_tampering())
            || matches!(self, OdoError::CorruptedRouting { .. })
    }
}

impl fmt::Display for OdoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdoError::Store(e) => write!(f, "store error: {e}"),
            OdoError::Config(e) => write!(f, "configuration error: {e}"),
            OdoError::InvalidArgument { reason } => write!(f, "{reason}"),
            OdoError::InvalidState { reason } => {
                write!(
                    f,
                    "client state is poisoned by an earlier failure: {reason}"
                )
            }
            OdoError::CorruptedRouting { reason, cell } => {
                write!(f, "corrupted routing state at cell {cell}: {reason}")
            }
            OdoError::BucketOverflow {
                bucket,
                size,
                capacity,
            } => write!(
                f,
                "bucket overflow: {size} items routed to bucket {bucket} of capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for OdoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OdoError::Store(e) => Some(e),
            OdoError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BucketSortError> for OdoError {
    fn from(e: BucketSortError) -> Self {
        match e {
            BucketSortError::Overflow {
                bucket,
                size,
                capacity,
                ..
            } => OdoError::BucketOverflow {
                bucket,
                size,
                capacity,
            },
            BucketSortError::InvalidArgument { reason } => OdoError::InvalidArgument { reason },
            BucketSortError::Store(e) => OdoError::Store(e),
        }
    }
}

impl From<StoreError> for OdoError {
    fn from(e: StoreError) -> Self {
        match e {
            // A store-level validation failure is the same class of error as
            // a workspace-level one — surface it under the variant whose
            // `Display` prints the reason verbatim.
            StoreError::InvalidArgument { reason } => OdoError::InvalidArgument { reason },
            other => OdoError::Store(other),
        }
    }
}

impl From<ConfigError> for OdoError {
    fn from(e: ConfigError) -> Self {
        OdoError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_errors_convert_and_classify() {
        let e: OdoError = StoreError::Stale {
            addr: 4,
            expected: 3,
            got: 1,
        }
        .into();
        assert!(e.is_tampering());
        assert!(e.to_string().contains("rollback"));
        let t: OdoError = StoreError::Transient { addr: 0 }.into();
        assert!(!t.is_tampering());
        // Store-level validation failures convert to the workspace-level
        // InvalidArgument variant, not to Store(..).
        let v: OdoError = StoreError::InvalidArgument { reason: "nope" }.into();
        assert_eq!(v, OdoError::InvalidArgument { reason: "nope" });
        assert_eq!(v.to_string(), "nope");
    }

    #[test]
    fn invalid_argument_displays_its_reason_verbatim() {
        // The infallible façades panic with `Display` of this variant, so it
        // must be exactly the legacy assert message.
        let e = OdoError::InvalidArgument {
            reason: "expansion targets must be strictly increasing",
        };
        assert_eq!(
            e.to_string(),
            "expansion targets must be strictly increasing"
        );
        assert!(!e.is_tampering());
    }

    #[test]
    fn corrupted_routing_classifies_as_tampering() {
        let e = OdoError::CorruptedRouting {
            reason: "labels and occupancy must agree",
            cell: 7,
        };
        assert!(e.is_tampering());
        assert!(e.to_string().contains("cell 7"));
    }

    #[test]
    fn bucket_sort_errors_convert() {
        let e: OdoError = BucketSortError::Overflow {
            superlevel: 1,
            level: 2,
            bucket: 9,
            size: 130,
            capacity: 128,
        }
        .into();
        assert!(matches!(e, OdoError::BucketOverflow { bucket: 9, .. }));
        let e: OdoError = BucketSortError::InvalidArgument { reason: "nope" }.into();
        assert_eq!(e.to_string(), "nope");
    }
}
