//! The workspace-level error type for the fallible (`try_`) primitives.
//!
//! The three `try_` entry points — `try_sort`, [`try_compact`] and
//! [`try_select_kth`] — run the paper's algorithms against an untrusted or
//! unreliable server and propagate a typed [`OdoError`] instead of
//! panicking mid-pass: transient faults are retried by the policy, while
//! tampering detected by
//! [`AuthenticatedStore`](extmem::auth::AuthenticatedStore) surfaces as
//! `OdoError::Store(Corrupted | Stale)` — never as a wrong answer.
//!
//! [`try_compact`]: crate::compact::try_compact
//! [`try_select_kth`]: crate::select::try_select_kth

use std::fmt;

use extmem::{ConfigError, StoreError};

/// Everything a fallible algorithm run can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OdoError {
    /// The block store failed: a transient fault survived every retry, the
    /// server tampered with data (corruption/rollback), the client-side
    /// budget ran out, or a payload did not fit the encrypted encoding.
    Store(StoreError),
    /// The `(N, B, M)` model configuration is invalid.
    Config(ConfigError),
}

impl OdoError {
    /// Whether the underlying failure indicates server-side tampering.
    pub fn is_tampering(&self) -> bool {
        matches!(self, OdoError::Store(e) if e.is_tampering())
    }
}

impl fmt::Display for OdoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdoError::Store(e) => write!(f, "store error: {e}"),
            OdoError::Config(e) => write!(f, "configuration error: {e}"),
        }
    }
}

impl std::error::Error for OdoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OdoError::Store(e) => Some(e),
            OdoError::Config(e) => Some(e),
        }
    }
}

impl From<StoreError> for OdoError {
    fn from(e: StoreError) -> Self {
        OdoError::Store(e)
    }
}

impl From<ConfigError> for OdoError {
    fn from(e: ConfigError) -> Self {
        OdoError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_errors_convert_and_classify() {
        let e: OdoError = StoreError::Stale {
            addr: 4,
            expected: 3,
            got: 1,
        }
        .into();
        assert!(e.is_tampering());
        assert!(e.to_string().contains("rollback"));
        let t: OdoError = StoreError::Transient { addr: 0 }.into();
        assert!(!t.is_tampering());
    }
}
