//! I/O-efficient external-memory **tight order-preserving compaction** — the
//! paper's Section 3 butterfly network (Figure 1, Lemma 5) executed over an
//! outsourced block store.
//!
//! # Problem
//!
//! An array of `N` cells, some occupied and some empty, must be rearranged so
//! the occupied cells form a prefix, preserving their relative order, without
//! the storage server learning *which* cells were occupied. The in-memory
//! circuit form of the routing network lives in [`obliv_net::butterfly`];
//! this module is its external-memory execution, written against the
//! [`BlockStore`] trait so the identical algorithm (identical trace,
//! identical I/O count) runs over a plaintext [`extmem::ExtMem`] arena or an
//! [`extmem::EncryptedStore`].
//!
//! # Algorithm
//!
//! Occupied cell `j` with rank `ρ(j)` (occupied cells strictly before it)
//! must travel `d_j = j − ρ(j)` cells to the left. The butterfly network
//! routes it there over `⌈log₂ N⌉` levels: on level `i` the item hops from
//! `j` to `j − 2^i` exactly when bit `i` of its remaining distance is set
//! (Lemma 5: such labels never collide). Run naively, every level is a full
//! pass over the array — `Θ((N/B) log N)` I/Os, which is what the `baseline`
//! crate does. Three I/O optimizations collapse this to
//! `O((N/B)(1 + log(N/M)))`:
//!
//! 1. **Oblivious prefix-rank label pass.** One streaming sweep reads each
//!    data block, carries the running rank in a private-cache register, and
//!    writes the distance label of every occupied cell to a parallel scratch
//!    array — `2·⌈N/B⌉` I/Os, addresses a fixed function of the shape.
//! 2. **In-cache head window.** All levels with stride `2^i < W` (where
//!    `W = Θ(M)` is the largest power-of-two window fitting the private
//!    cache) compose into a single move by `d mod W` cells. A sliding-window
//!    sweep executes *all* of them in one read pass plus one write pass over
//!    data and labels: items whose composed hop crosses a window boundary are
//!    carried in cache into the adjacent window (they travel less than `W`
//!    cells, so one window of carry suffices). When the whole array fits in
//!    cache this sweep is the entire algorithm — one read and one write pass.
//! 3. **Block-pair stride batching.** Each remaining level has stride
//!    `2^i ≥ W ≥ B`, so every wire pair `(j, j − 2^i)` connects equal slot
//!    offsets of the block pair `(β, β + 2^i/B)`. All `B` wires of a pair are
//!    fused into two read-modify-write round trips (labels, then data) via
//!    [`BlockStore::modify_pair`] — `8` I/Os per block pair, `O(N/B)` per
//!    level, never one round trip per element.
//!
//! With `⌈log₂ N⌉ − log₂ W ≤ log₂(N/M) + 3` external levels the total is
//! `O((N/B)(1 + log(N/M)))` I/Os, matching the paper's compaction bound; the
//! `odo-bench` harness checks the explicit-constant form
//! `32·⌈N/B⌉·(1 + ⌈log₂⌈N/M⌉⌉)` at every grid point and `BENCH_compact.json`
//! records the measurements.
//!
//! The reverse direction ([`expand`]) routes a compact prefix back out to a
//! strictly increasing target set — the paper's observation that the network
//! can be used "in reverse" — with the same passes mirrored.
//!
//! # Obliviousness
//!
//! Every block address touched is a fixed function of `(N, B, M)`: the label
//! sweep visits blocks `0..⌈N/B⌉` in order, the window sweep visits each
//! window's blocks in a fixed order, and each external level visits its
//! block pairs in a fixed order with unconditional writes (a pair is
//! rewritten even if nothing moved). Which cells are occupied, where items
//! route, and the expansion targets influence only block *contents* — never
//! addresses. The `compact_oblivious` integration test asserts byte-identical
//! traces across dozens of occupancy patterns at fixed shape.
//!
//! # Restrictions
//!
//! Compaction requires `M ≥ 8B` (the window sweep holds two spans plus two
//! directions of carried items; the external levels hold a label block pair
//! plus a data block pair), and the external path (arrays larger than the
//! cache) additionally requires a power-of-two block size `B`. Arrays that
//! fit in cache accept any `B ≥ 1`.

use crate::error::OdoError;
use extmem::element::Cell;
use extmem::{
    run_fallible, ArrayHandle, Block, BlockStore, CacheBudget, Element, IoStats, RetryPolicy,
    RetryStats,
};
use obliv_net::butterfly;

/// Which way items travel through the butterfly: `Left` compacts occupied
/// cells toward index 0, `Right` expands a compact prefix toward its targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Left,
    Right,
}

/// What an external compaction (or expansion) did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactReport {
    /// I/Os charged to this operation (reads + writes deltas).
    pub io: IoStats,
    /// Total butterfly levels for this array length (`⌈log₂ N⌉`).
    pub levels: usize,
    /// Levels executed inside the private cache by the window sweep.
    pub in_cache_levels: usize,
    /// Levels executed as external block-pair passes.
    pub external_levels: usize,
    /// The sliding-window size `W` in elements (a power of two `≤ M/6`), or
    /// the array length when the whole array fit in cache.
    pub window_elems: usize,
    /// Number of occupied cells (the compacted prefix length). For
    /// [`expand`] this is the number of routed items, `targets.len()`.
    pub occupied: usize,
}

/// Stable tight compaction of array `h` on `store`: occupied cells move to
/// the front of the array, preserving their relative order; empty cells fill
/// the tail. Uses at most `cache_elems` words of private memory and
/// `O((N/B)(1 + log(N/M)))` I/Os whose addresses depend only on the shape
/// `(N, B, M)` — see the module documentation.
///
/// # Panics
/// Panics if `cache_elems < 8·B`, or if the array does not fit in cache and
/// `B` is not a power of two. The fallible path ([`try_compact`]) reports
/// the same conditions as [`OdoError::InvalidArgument`] instead.
pub fn compact<S: BlockStore>(store: &mut S, h: &ArrayHandle, cache_elems: usize) -> CompactReport {
    run(store, h, cache_elems, None).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`compact`] for untrusted/unreliable servers:
/// transient faults are retried per `policy` (the retry schedule depends
/// only on the server's fault schedule, never on the data), and the first
/// permanent [`StoreError`](extmem::StoreError) — a corrupted block, a
/// rollback, exhausted retries — aborts the pass and is returned as a typed
/// [`OdoError`] instead of panicking or compacting tampered data. Argument
/// validation (cache too small, non-power-of-two blocks) also returns
/// [`OdoError::InvalidArgument`] here, where the infallible [`compact`]
/// panics; routing state that disagrees with itself — the symptom of a
/// corrupted but unauthenticated store — surfaces as
/// [`OdoError::CorruptedRouting`].
///
/// On `Err` the contents of `h` (and of the internal scratch arrays) are
/// unspecified; the store itself remains usable.
pub fn try_compact<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    policy: RetryPolicy,
) -> Result<(CompactReport, RetryStats), OdoError> {
    let (inner, retries) =
        run_fallible(store, policy, |s| run(s, h, cache_elems, None)).map_err(OdoError::from)?;
    Ok((inner?, retries))
}

/// Alias of [`compact`] emphasizing the §3 guarantee: compaction through the
/// butterfly network with stable distance labels is always
/// *order-preserving* — the occupied cells appear in the prefix in their
/// original relative order. The two entry points are interchangeable.
pub fn compact_order_preserving<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
) -> CompactReport {
    compact(store, h, cache_elems)
}

/// The reverse operation: array `h` holds `targets.len()` occupied cells as a
/// prefix (dummies after), and item `i` of the prefix is routed right to cell
/// `targets[i]`. `targets` must be strictly increasing with every target
/// `< h.len()`. Running [`expand`] after [`compact`] with the original
/// occupied positions restores the original array.
///
/// The access trace depends only on the shape `(N, B, M)` — the targets
/// steer item movement strictly inside the private cache.
///
/// # Panics
/// Panics on malformed targets, on a prefix/occupancy mismatch, if
/// `cache_elems < 8·B`, or if the array does not fit in cache and `B` is not
/// a power of two. The fallible path ([`try_expand`]) reports the same
/// conditions as [`OdoError::InvalidArgument`] instead.
pub fn expand<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    targets: &[usize],
    cache_elems: usize,
) -> CompactReport {
    run(store, h, cache_elems, Some(targets)).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`expand`], mirroring [`try_compact`]: transient
/// faults retry per `policy`, tampering surfaces as a typed
/// [`OdoError`], and every condition that makes [`expand`] panic —
/// non-monotone or out-of-range targets, a prefix/occupancy mismatch, a
/// too-small cache, a non-power-of-two block size on the external path —
/// returns [`OdoError::InvalidArgument`] instead.
///
/// On `Err` the contents of `h` (and of the internal scratch arrays) are
/// unspecified; the store itself remains usable.
pub fn try_expand<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    targets: &[usize],
    cache_elems: usize,
    policy: RetryPolicy,
) -> Result<(CompactReport, RetryStats), OdoError> {
    let (inner, retries) = run_fallible(store, policy, |s| run(s, h, cache_elems, Some(targets)))
        .map_err(OdoError::from)?;
    Ok((inner?, retries))
}

/// Shared driver: `targets == None` compacts leftward, `Some` expands
/// rightward. All validation returns [`OdoError::InvalidArgument`] and every
/// self-inconsistent routing state returns [`OdoError::CorruptedRouting`];
/// the infallible façades panic with the error's `Display`, which preserves
/// the historical assert messages.
fn run<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    targets: Option<&[usize]>,
) -> Result<CompactReport, OdoError> {
    if let Some(t) = targets {
        for w in t.windows(2) {
            if w[0] >= w[1] {
                return Err(OdoError::InvalidArgument {
                    reason: "expansion targets must be strictly increasing",
                });
            }
        }
        if let Some(&last) = t.last() {
            if last >= h.len() {
                return Err(OdoError::InvalidArgument {
                    reason: "expansion target out of range",
                });
            }
        }
    }
    let b = h.block_elems();
    if cache_elems < 8 * b {
        return Err(OdoError::InvalidArgument {
            reason: "butterfly compaction needs a private cache of at least eight blocks (M >= 8B)",
        });
    }
    let start = store.io_stats();
    let n = h.len();
    let lv = butterfly::levels(n);
    let dir = if targets.is_some() {
        Direction::Right
    } else {
        Direction::Left
    };
    let mut budget = CacheBudget::new(cache_elems);

    // Whole array fits in the private cache: one read pass, route CPU-side,
    // one write pass — the fully collapsed form of the window sweep.
    if n <= cache_elems {
        let occupied = budget.with(n.max(1), |_| -> Result<usize, OdoError> {
            let mut cells = store.load_span(h, 0, n);
            let occupied = match targets {
                None => pack_prefix_in_place(&mut cells),
                Some(t) => route_to_targets_in_place(&mut cells, t)?,
            };
            store.store_span(h, 0, &cells);
            Ok(occupied)
        })?;
        return Ok(CompactReport {
            io: store.io_stats() - start,
            levels: lv,
            in_cache_levels: lv,
            external_levels: 0,
            window_elems: n.max(1),
            occupied,
        });
    }

    if !b.is_power_of_two() {
        return Err(OdoError::InvalidArgument {
            reason: "external butterfly compaction requires a power-of-two block size",
        });
    }

    // Phase 1 — oblivious prefix-rank label pass into a parallel scratch
    // array: occupied cell j gets distance label j - rank(j) (or, expanding,
    // targets[j] - j), empty cells get a dummy.
    let dist = store.alloc_array(n);
    let occupied = write_labels(store, h, &dist, &mut budget, targets)?;

    // Phases 2 and 3 — the window sweep composes every level with stride
    // < W into a single move by (d mod W); the levels with stride 2^i ≥ W
    // (each ≥ B) run as external block-pair passes. Compaction executes the
    // circuit forward (small strides first, then external levels ascending);
    // expansion is the same circuit run backwards in time (external levels
    // descending first, then the window sweep) — the forward order collides
    // on legitimate expansion labels, see `obliv_net::butterfly::expand`.
    let w = window_elems(cache_elems);
    let t = (w.trailing_zeros() as usize).min(lv);
    let mut external = 0;
    match dir {
        Direction::Left => {
            if t > 0 {
                window_pass(store, h, &dist, &mut budget, w, dir)?;
            }
            for i in t..lv {
                external_level(store, h, &dist, &mut budget, 1usize << i, dir)?;
                external += 1;
            }
        }
        Direction::Right => {
            for i in (t..lv).rev() {
                external_level(store, h, &dist, &mut budget, 1usize << i, dir)?;
                external += 1;
            }
            if t > 0 {
                window_pass(store, h, &dist, &mut budget, w, dir)?;
            }
        }
    }

    Ok(CompactReport {
        io: store.io_stats() - start,
        levels: lv,
        in_cache_levels: t.min(lv),
        external_levels: external,
        window_elems: w,
        occupied,
    })
}

/// Largest power-of-two window `W` such that the sweep's worst-case working
/// set — data span + label span (`2W`) plus incoming and outgoing carried
/// items (`2W` each) — of `6·W` slots fits in the cache. `≥ B` whenever `B`
/// is a power of two and `M ≥ 8B` (in fact `M ≥ 6B` suffices).
fn window_elems(cache_elems: usize) -> usize {
    let mut w = 1;
    while 6 * (w * 2) <= cache_elems {
        w *= 2;
    }
    w
}

/// In-place stable compaction of a cell slice; returns the occupied count.
/// CPU-side work inside the private cache — free in the I/O model.
fn pack_prefix_in_place(cells: &mut [Cell]) -> usize {
    let mut w = 0;
    for r in 0..cells.len() {
        if let Some(item) = cells[r].take() {
            cells[w] = Some(item);
            w += 1;
        }
    }
    w
}

/// In-place expansion of a compact prefix to `targets`; returns the routed
/// count. Walks backwards so a target never overwrites an unmoved source.
fn route_to_targets_in_place(cells: &mut [Cell], targets: &[usize]) -> Result<usize, OdoError> {
    let r = targets.len();
    for (i, c) in cells.iter().enumerate() {
        if i < r && c.is_none() {
            return Err(OdoError::InvalidArgument {
                reason: "expand expects an occupied prefix of length targets.len()",
            });
        }
        if i >= r && c.is_some() {
            return Err(OdoError::InvalidArgument {
                reason: "expand expects dummies after the occupied prefix",
            });
        }
    }
    for i in (0..r).rev() {
        let item = cells[i].take().expect("prefix was validated above");
        debug_assert!(cells[targets[i]].is_none(), "targets are distinct and >= i");
        cells[targets[i]] = Some(item);
    }
    Ok(r)
}

/// Phase 1: streams the data array block by block, writing the distance
/// label of each occupied cell to the parallel `dist` array. For compaction
/// the label of occupied cell `j` is `j − rank(j)` (an oblivious prefix-rank
/// computed in a private register); for expansion it is `targets[j] − j`.
/// Returns the occupied count. Exactly `⌈N/B⌉` reads + `⌈N/B⌉` writes, in a
/// fixed interleaved order.
fn write_labels<S: BlockStore>(
    store: &mut S,
    data: &ArrayHandle,
    dist: &ArrayHandle,
    budget: &mut CacheBudget,
    targets: Option<&[usize]>,
) -> Result<usize, OdoError> {
    let b = data.block_elems();
    let n = data.len();
    let mut rank = 0usize;
    // One fixed forward sweep over the data blocks: advertise it all.
    let schedule: Vec<usize> = (0..data.n_blocks()).collect();
    store.hint_blocks(data, &schedule);
    for beta in 0..data.n_blocks() {
        budget.with(2 * b, |_| -> Result<(), OdoError> {
            let blk = store.load_block(data, beta);
            let mut lab = Block::empty(b);
            for r in 0..b {
                let j = beta * b + r;
                if j >= n {
                    break;
                }
                match targets {
                    None => {
                        if blk.get(r).is_some() {
                            lab.set(r, Some(Element::new((j - rank) as u64, 0)));
                            rank += 1;
                        }
                    }
                    Some(t) => {
                        if j < t.len() {
                            if blk.get(r).is_none() {
                                return Err(OdoError::InvalidArgument {
                                    reason:
                                        "expand expects an occupied prefix of length targets.len()",
                                });
                            }
                            // Strictly increasing targets imply t[j] >= j.
                            lab.set(r, Some(Element::new((t[j] - j) as u64, 0)));
                            rank += 1;
                        } else if blk.get(r).is_some() {
                            return Err(OdoError::InvalidArgument {
                                reason: "expand expects dummies after the occupied prefix",
                            });
                        }
                    }
                }
            }
            store.store_block(dist, beta, lab);
            Ok(())
        })?;
    }
    Ok(rank)
}

/// Phase 2: the sliding-window sweep. Executes every level with stride
/// `< W` at once: each item moves by `δ = d mod W` toward `dir`, items whose
/// composed hop leaves the window are carried in cache into the adjacent
/// window (they travel `< W` cells, so carry depth is exactly one window).
/// Windows are visited away from the travel direction — rightmost first when
/// compacting left, leftmost first when expanding right — so the carry is
/// always deposited into the *next* window processed. One read pass plus one
/// write pass over both arrays, block order fixed by the shape.
fn window_pass<S: BlockStore>(
    store: &mut S,
    data: &ArrayHandle,
    dist: &ArrayHandle,
    budget: &mut CacheBudget,
    w: usize,
    dir: Direction,
) -> Result<(), OdoError> {
    let n = data.len();
    let regions = n.div_ceil(w);
    // Items in flight between windows: (global target, item, remaining dist).
    let mut carry: Vec<(usize, Element, u64)> = Vec::new();
    let order: Box<dyn Iterator<Item = usize>> = match dir {
        Direction::Left => Box::new((0..regions).rev()),
        Direction::Right => Box::new(0..regions),
    };
    for g in order {
        let lo = g * w;
        let hi = ((g + 1) * w).min(n);
        let len = hi - lo;
        // Working set: the two spans plus up to a window's worth of carried
        // items in each direction (2 slots per in-flight item).
        budget.acquire(2 * len + 4 * w);
        let mut cells = store.load_span(data, lo, hi);
        let mut dists = store.load_span(dist, lo, hi);
        let scan: Box<dyn Iterator<Item = usize>> = match dir {
            Direction::Left => Box::new(0..len),
            Direction::Right => Box::new((0..len).rev()),
        };
        let mut outgoing: Vec<(usize, Element, u64)> = Vec::new();
        for r in scan {
            if let Some(item) = cells[r] {
                let d = dists[r]
                    .ok_or(OdoError::CorruptedRouting {
                        reason: "occupied cells carry a distance label",
                        cell: lo + r,
                    })?
                    .key;
                let delta = (d as usize) % w;
                if delta == 0 {
                    continue;
                }
                let target = match dir {
                    Direction::Left => {
                        (lo + r)
                            .checked_sub(delta)
                            .ok_or(OdoError::CorruptedRouting {
                                reason: "a distance label may not route an item before cell 0",
                                cell: lo + r,
                            })?
                    }
                    Direction::Right => lo + r + delta,
                };
                let nd = d - delta as u64;
                cells[r] = None;
                dists[r] = None;
                if (lo..hi).contains(&target) {
                    // The target slot was already scanned (the scan runs
                    // opposite to the travel direction), so its final
                    // occupant — if any — is already in place: a collision
                    // here means the labels were invalid (Lemma 5).
                    place(&mut cells, &mut dists, target - lo, lo, item, nd)?;
                } else {
                    outgoing.push((target, item, nd));
                }
            }
        }
        for (target, item, nd) in carry.drain(..) {
            debug_assert!(
                (lo..hi).contains(&target),
                "carried items travel exactly one window"
            );
            place(&mut cells, &mut dists, target - lo, lo, item, nd)?;
        }
        carry = outgoing;
        store.store_span(data, lo, &cells);
        store.store_span(dist, lo, &dists);
        budget.release(2 * len + 4 * w);
    }
    if let Some(&(target, _, _)) = carry.first() {
        return Err(OdoError::CorruptedRouting {
            reason: "no item may be routed out of the array",
            cell: target,
        });
    }
    Ok(())
}

fn place(
    cells: &mut [Cell],
    dists: &mut [Cell],
    idx: usize,
    base: usize,
    item: Element,
    nd: u64,
) -> Result<(), OdoError> {
    if cells[idx].is_some() {
        return Err(OdoError::CorruptedRouting {
            reason: "butterfly routing collision: two items at one cell (invalid distance labels)",
            cell: base + idx,
        });
    }
    cells[idx] = Some(item);
    dists[idx] = Some(Element::new(nd, 0));
    Ok(())
}

/// Phase 3: one external level of stride `s` (`B | s`). Every wire pair
/// `(j, j ± s)` connects equal slot offsets of the block pair
/// `(β, β + s/B)`, so the level is a sweep of fused read-modify-write round
/// trips: the label pair decides which offsets hop (bit `s` of the remaining
/// distance), then the data pair applies the same moves. Pairs are visited
/// so a block's incoming items arrive only after its outgoing items left —
/// ascending `β` when items travel left, descending when they travel right.
/// Both pairs are rewritten unconditionally: the trace never reveals whether
/// anything moved.
fn external_level<S: BlockStore>(
    store: &mut S,
    data: &ArrayHandle,
    dist: &ArrayHandle,
    budget: &mut CacheBudget,
    s: usize,
    dir: Direction,
) -> Result<(), OdoError> {
    let b = data.block_elems();
    let nb = data.n_blocks();
    debug_assert!(s.is_multiple_of(b), "external strides are block-aligned");
    let k = s / b;
    if k >= nb {
        return Ok(()); // no wire of this stride fits the array (shape-determined)
    }
    let betas: Vec<usize> = match dir {
        Direction::Left => (0..nb - k).collect(),
        Direction::Right => (0..nb - k).rev().collect(),
    };
    // Stay one block pair ahead of the sweep. Hinting the whole level up
    // front would prefetch blocks the current pair is about to rewrite;
    // one-pair lookahead keeps the read-ahead useful without churn.
    if let Some(&first) = betas.first() {
        store.hint_blocks(dist, &[first, first + k]);
    }
    for (idx, &beta) in betas.iter().enumerate() {
        if let Some(&nxt) = betas.get(idx + 1) {
            store.hint_blocks(dist, &[nxt, nxt + k]);
            store.hint_blocks(data, &[nxt, nxt + k]);
        }
        // Offsets hopping across this pair; B bits of private scratch. The
        // collision check runs inside the `modify_pair` closure, so a
        // conflict is recorded here and surfaced after the round trip.
        let mut mask = vec![false; b];
        let mut collision: Option<usize> = None;
        budget.with(2 * b, |_| {
            store.modify_pair(dist, beta, beta + k, |lo_blk, hi_blk| {
                for (r, hop) in mask.iter_mut().enumerate() {
                    let (src, dst) = match dir {
                        Direction::Left => (hi_blk.get(r), lo_blk.get(r)),
                        Direction::Right => (lo_blk.get(r), hi_blk.get(r)),
                    };
                    if let Some(d_el) = src {
                        if d_el.key & s as u64 != 0 {
                            if dst.is_some() {
                                let dst_beta = match dir {
                                    Direction::Left => beta,
                                    Direction::Right => beta + k,
                                };
                                collision.get_or_insert(dst_beta * b + r);
                                continue;
                            }
                            *hop = true;
                            let nd = Some(Element::new(d_el.key - s as u64, 0));
                            match dir {
                                Direction::Left => {
                                    lo_blk.set(r, nd);
                                    hi_blk.set(r, None);
                                }
                                Direction::Right => {
                                    hi_blk.set(r, nd);
                                    lo_blk.set(r, None);
                                }
                            }
                        }
                    }
                }
            });
        });
        if let Some(cell) = collision {
            return Err(OdoError::CorruptedRouting {
                reason: "butterfly routing collision at an external level",
                cell,
            });
        }
        budget.with(2 * b, |_| {
            store.modify_pair(data, beta, beta + k, |lo_blk, hi_blk| {
                for (r, hop) in mask.iter().enumerate() {
                    if *hop {
                        match dir {
                            Direction::Left => {
                                debug_assert!(lo_blk.get(r).is_none());
                                lo_blk.set(r, hi_blk.get(r));
                                hi_blk.set(r, None);
                            }
                            Direction::Right => {
                                debug_assert!(hi_blk.get(r).is_none());
                                hi_blk.set(r, lo_blk.get(r));
                                lo_blk.set(r, None);
                            }
                        }
                    }
                }
            });
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::ExtMem;

    fn e(k: u64) -> Element {
        Element::new(k, 0)
    }

    /// Pseudo-random occupancy: cell i occupied iff hash(i, salt) % den < num.
    fn occupancy(n: usize, salt: u64, num: u64, den: u64) -> Vec<Cell> {
        (0..n)
            .map(|i| {
                if extmem::util::hash64(i as u64, salt) % den < num {
                    Some(Element::keyed(i as u64, i))
                } else {
                    None
                }
            })
            .collect()
    }

    fn reference_compact(cells: &[Cell]) -> Vec<Cell> {
        let mut out: Vec<Cell> = cells.iter().filter(|c| c.is_some()).copied().collect();
        out.resize(cells.len(), None);
        out
    }

    fn run_compact(cells: &[Cell], b: usize, m: usize) -> (Vec<Cell>, CompactReport) {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(cells);
        let report = compact(&mut mem, &h, m);
        (mem.snapshot_cells(&h), report)
    }

    #[test]
    fn compacts_across_shapes_and_occupancies() {
        for (n, b, m) in [
            (64usize, 4usize, 32usize),
            (256, 8, 64),
            (256, 8, 512), // fully in cache
            (1024, 16, 128),
            (100, 4, 32),  // n not a power of two
            (1000, 8, 64), // n not a power of two, external
        ] {
            for (salt, num) in [(1u64, 1u64), (2, 2), (3, 5)] {
                let cells = occupancy(n, salt, num, 6);
                let (got, report) = run_compact(&cells, b, m);
                assert_eq!(
                    got,
                    reference_compact(&cells),
                    "N={n} B={b} M={m} salt={salt}"
                );
                assert_eq!(
                    report.occupied,
                    cells.iter().filter(|c| c.is_some()).count()
                );
                assert_eq!(report.levels, butterfly::levels(n));
                assert_eq!(
                    report.in_cache_levels + report.external_levels,
                    report.levels
                );
            }
        }
    }

    #[test]
    fn all_empty_all_full_and_singleton_are_fixed_points() {
        let empty: Vec<Cell> = vec![None; 64];
        assert_eq!(run_compact(&empty, 4, 32).0, empty);
        let full: Vec<Cell> = (0..64).map(|i| Some(e(i))).collect();
        assert_eq!(run_compact(&full, 4, 32).0, full);
        let one: Vec<Cell> = vec![Some(e(7))];
        let (got, report) = run_compact(&one, 4, 32);
        assert_eq!(got, one);
        assert_eq!(report.levels, 0);
    }

    #[test]
    fn matches_in_memory_butterfly_circuit() {
        for salt in 0..4u64 {
            let cells = occupancy(512, salt, 1, 2);
            let (got, _) = run_compact(&cells, 8, 64);
            assert_eq!(got, butterfly::compact(&cells));
        }
    }

    #[test]
    fn order_preservation_is_stable() {
        // Keys deliberately unsorted: order must follow positions, not keys.
        let cells: Vec<Cell> = (0..128)
            .map(|i| {
                if i % 3 == 0 {
                    Some(Element::keyed(1000 - i as u64, i))
                } else {
                    None
                }
            })
            .collect();
        let (got, _) = run_compact(&cells, 8, 64);
        let prefix: Vec<Element> = got.iter().flatten().copied().collect();
        let expected: Vec<Element> = cells.iter().flatten().copied().collect();
        assert_eq!(prefix, expected);
    }

    #[test]
    fn expand_is_inverse_of_compact() {
        for (n, b, m) in [(256usize, 8usize, 64usize), (100, 4, 32), (64, 4, 256)] {
            let cells = occupancy(n, 9, 1, 3);
            let targets: Vec<usize> = cells
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(j, _)| j)
                .collect();
            let mut mem = ExtMem::new(b);
            let h = mem.alloc_array_from_cells(&cells);
            compact(&mut mem, &h, m);
            let report = expand(&mut mem, &h, &targets, m);
            assert_eq!(mem.snapshot_cells(&h), cells, "N={n} B={b} M={m}");
            assert_eq!(report.occupied, targets.len());
        }
    }

    #[test]
    fn expand_matches_in_memory_circuit() {
        let compacted: Vec<Cell> = (0..6)
            .map(|i| Some(e(i)))
            .chain(std::iter::repeat_n(None, 58))
            .collect();
        let targets = [3usize, 10, 11, 40, 41, 63];
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_cells(&compacted);
        expand(&mut mem, &h, &targets, 32);
        assert_eq!(
            mem.snapshot_cells(&h),
            butterfly::expand(&compacted, &targets)
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn expand_rejects_non_monotone_targets() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array(16);
        expand(&mut mem, &h, &[2, 1], 16);
    }

    #[test]
    #[should_panic(expected = "at least eight blocks")]
    fn tiny_cache_is_rejected() {
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array(64);
        compact(&mut mem, &h, 32);
    }

    #[test]
    #[should_panic(expected = "power-of-two block size")]
    fn external_path_rejects_odd_block_size() {
        let mut mem = ExtMem::new(6);
        let h = mem.alloc_array(600);
        compact(&mut mem, &h, 48);
    }

    #[test]
    fn odd_block_size_is_fine_in_cache() {
        let cells = occupancy(60, 5, 1, 2);
        let (got, report) = run_compact(&cells, 6, 64);
        assert_eq!(got, reference_compact(&cells));
        assert_eq!(report.external_levels, 0);
    }

    #[test]
    fn in_cache_path_costs_two_passes() {
        let cells = occupancy(256, 1, 1, 2);
        let (_, report) = run_compact(&cells, 8, 256);
        // 32 block reads + 32 block writes, nothing else.
        assert_eq!(report.io.reads, 32);
        assert_eq!(report.io.writes, 32);
        assert_eq!(report.external_levels, 0);
    }

    #[test]
    fn report_structure_matches_the_level_split() {
        // N = 1024, B = 8, M = 64: W = 8 -> 3 in-cache levels, levels = 10,
        // external = 7.
        let cells = occupancy(1024, 2, 1, 2);
        let (_, report) = run_compact(&cells, 8, 64);
        assert_eq!(report.levels, 10);
        assert_eq!(report.window_elems, 8);
        assert_eq!(report.in_cache_levels, 3);
        assert_eq!(report.external_levels, 7);
    }

    #[test]
    fn try_compact_reports_argument_failures_as_errors() {
        // A cache below 8 blocks: the infallible path panics, the fallible
        // path must return a typed error with the same message.
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array(64);
        let err = try_compact(&mut mem, &h, 32, RetryPolicy::default()).unwrap_err();
        assert!(matches!(err, OdoError::InvalidArgument { .. }));
        assert!(err.to_string().contains("at least eight blocks"));
        assert!(!err.is_tampering());

        // Non-power-of-two blocks on the external path.
        let mut mem = ExtMem::new(6);
        let h = mem.alloc_array(600);
        let err = try_compact(&mut mem, &h, 48, RetryPolicy::default()).unwrap_err();
        assert!(matches!(err, OdoError::InvalidArgument { .. }));
        assert!(err.to_string().contains("power-of-two block size"));
    }

    #[test]
    fn try_expand_reports_each_former_panic_as_an_error() {
        // Non-monotone targets.
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array(16);
        let err = try_expand(&mut mem, &h, &[2, 1], 16, RetryPolicy::default()).unwrap_err();
        assert!(matches!(err, OdoError::InvalidArgument { .. }));
        assert!(err.to_string().contains("strictly increasing"));

        // A target beyond the end of the array.
        let err = try_expand(&mut mem, &h, &[15, 16], 16, RetryPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("out of range"));

        // Tiny cache.
        let err = try_expand(&mut mem, &h, &[0, 1], 8, RetryPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("at least eight blocks"));

        // A dummy inside the claimed prefix, in-cache path.
        let cells: Vec<Cell> = vec![Some(e(1)), None, Some(e(2)), None];
        let mut mem = ExtMem::new(2);
        let h = mem.alloc_array_from_cells(&cells);
        let err = try_expand(&mut mem, &h, &[1, 2, 3], 64, RetryPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("occupied prefix of length"));

        // An occupied cell after the prefix, in-cache path.
        let err = try_expand(&mut mem, &h, &[3], 64, RetryPolicy::default()).unwrap_err();
        assert!(err
            .to_string()
            .contains("dummies after the occupied prefix"));

        // The same two mismatches through the external label pass.
        let mut cells: Vec<Cell> = vec![None; 512];
        cells[0] = Some(e(0));
        cells[300] = Some(e(1));
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        let err = try_expand(&mut mem, &h, &[5, 9, 200], 64, RetryPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("occupied prefix of length"));
        let err = try_expand(&mut mem, &h, &[5], 64, RetryPolicy::default()).unwrap_err();
        assert!(err
            .to_string()
            .contains("dummies after the occupied prefix"));
    }

    #[test]
    fn try_expand_round_trips_like_expand() {
        let cells = occupancy(256, 9, 1, 3);
        let targets: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(j, _)| j)
            .collect();
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        let (report, _) = try_compact(&mut mem, &h, 64, RetryPolicy::default()).unwrap();
        assert_eq!(report.occupied, targets.len());
        let (report, _) = try_expand(&mut mem, &h, &targets, 64, RetryPolicy::default()).unwrap();
        assert_eq!(mem.snapshot_cells(&h), cells);
        assert_eq!(report.occupied, targets.len());
    }

    #[test]
    fn io_count_is_a_function_of_shape_only() {
        let a = run_compact(&occupancy(512, 1, 1, 2), 8, 64).1;
        let b = run_compact(&occupancy(512, 77, 1, 7), 8, 64).1;
        let c = run_compact(&vec![None; 512], 8, 64).1;
        assert_eq!(a.io, b.io);
        assert_eq!(a.io, c.io);
    }
}
