//! I/O-efficient external-memory **data-oblivious selection** — the paper's
//! Section 4 k-th order statistic, executed over an outsourced block store in
//! `O((N/B)(1 + log(N/M)))` I/Os.
//!
//! # Problem
//!
//! An array of `N` cells (some possibly empty) holds `L` occupied elements;
//! [`select_kth`] must return the element of rank `k` among them — the
//! element at position `k` of the occupied cells stably sorted by key — with
//! a server-visible access sequence that is a fixed function of the *shape*
//! `(N, B, M)` alone. Neither the data values **nor the rank `k` itself** may
//! leak through the trace: a hospital selecting the median of outsourced
//! billing records reveals to the server that *some* order statistic was
//! computed, never which one.
//!
//! # Algorithm
//!
//! Selection composes the two primitives the workspace already ships, in
//! exactly the layering the paper describes: candidate pruning via §3
//! order-preserving compaction ([`crate::compact::compact`]) and a final
//! in-cache finish via the Lemma 2 external sort
//! ([`obliv_net::external_oblivious_sort_by`]). One streaming pass first
//! replaces each occupied cell by a *working item* `(key, original index)` —
//! a strict total order even under heavy key duplication, which is what makes
//! the pruning window provably shrink. Then, while the candidate window of
//! `r` slots exceeds the cache:
//!
//! 1. **Weighted splitter extraction.** The window is cut into `C = ⌈r/g⌉`
//!    chunks of `g = Θ(M)` slots. Each chunk is pulled into the cache, sorted
//!    CPU-side (free), and its `s` evenly spaced order statistics — local
//!    ranks `(i+1)·g/s − 1` — are appended to a sample array of `C·s` cells.
//!    Each sample carries implicit weight `g/s`. One read pass plus `O(r·s/g)`
//!    sample writes.
//! 2. **Oblivious approximate-quantile reduction.** The sample array is
//!    sorted with the external oblivious sort, and one streaming pass
//!    captures — in private registers, never by rank-addressed reads — the
//!    two splitters `lo = σ(q_lo)` and `hi = σ(q_hi)` with
//!    `q_lo = ⌊k′·s/g⌋ − C` and `q_hi = ⌈(k′+1)·s/g⌉` (clamped to ±∞). The
//!    classic weighted-sample rank bounds
//!    `q·(g/s) ≤ rank(σ(q)) ≤ (q + C)·(g/s)` guarantee `lo ≤ target < hi`.
//! 3. **Mark-and-compact pruning.** One read-modify-write pass blanks every
//!    candidate outside `[lo, hi)` (counting, in a private register, those
//!    pruned *below*, which shifts the residual rank `k′`); §3 compaction then
//!    routes the survivors to a prefix. The same rank bounds cap the survivor
//!    count by the shape-only quantity `r′ = (2C + 4)·(g/s)` — with `s = 8`
//!    samples per chunk, `r′ < ⅝·r`, so the window shrinks geometrically —
//!    and the prefix of `r′` slots is copied into the next round's window.
//!
//! When the window fits in cache, it is sorted with the external oblivious
//! sort and a final streaming pass captures the `k′`-th cell in a register.
//! One last pass over the *untouched* input array recovers the full original
//! element from the winning index — again by streaming every block, so the
//! winning position stays hidden. (Unlike the in-place sort and compaction,
//! selection never modifies the input array.)
//!
//! # I/O count
//!
//! Every round costs three streaming passes plus one compaction over `r_t`
//! slots, and `Σ r_t` is geometric from `N`, so the total is dominated by
//! `O((N/B)(1 + log(N/M)))` — one log factor, the paper's selection advantage
//! over sorting. The `odo-bench` harness checks the explicit-constant form
//! `64·⌈N/B⌉·(1 + ⌈log₂⌈N/M⌉⌉)` at every grid point and records the
//! measurements in `BENCH_select.json`.
//!
//! # Obliviousness
//!
//! Window sizes `r_t`, chunk counts, sample-array lengths, the round count
//! and every block address are fixed functions of `(N, B, M)`. The rank `k`,
//! the splitters, the pruned-below counters and the winning index live only
//! in private registers and steer block *contents*, never addresses. The
//! `select_oblivious` integration test asserts byte-identical traces across
//! dozens of datasets, across every `k` at a fixed shape, and across the
//! plaintext/encrypted backends.
//!
//! # Restrictions
//!
//! Arrays larger than the cache require `M ≥ 8B` and a power-of-two `B`
//! (inherited from §3 compaction) plus `M ≥ 4·s = 32` so that every chunk
//! holds at least two full sample strides; in-cache arrays accept any
//! `B ≥ 1`.

use crate::error::OdoError;
use crate::sorter::OblivSorter;
use extmem::element::{cell_cmp_none_last, Cell};
use extmem::{
    run_fallible, ArrayHandle, Block, BlockStore, CacheBudget, Element, IoStats, RetryPolicy,
    RetryStats,
};

/// Number of weighted samples each chunk contributes per pruning round.
///
/// Larger values shrink the candidate window faster per round but lengthen
/// the sample array; `8` keeps the guaranteed shrink factor at `8/5` per
/// round (and ~4 in the early rounds, where `r ≫ M`).
pub const SAMPLES_PER_CHUNK: usize = 8;

/// What an external selection did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectReport {
    /// I/Os charged to this selection (reads + writes deltas).
    pub io: IoStats,
    /// Pruning rounds executed (0 when the array fit in cache). A fixed
    /// function of the shape `(N, B, M)`, never of the data or of `k`.
    pub rounds: usize,
    /// The chunk size `g` in elements (a power of two `≤ M/2`), or the array
    /// length when the whole array fit in cache.
    pub chunk_elems: usize,
    /// Weighted samples taken per chunk (`s`); 0 on the in-cache path.
    pub samples_per_chunk: usize,
    /// Size of the final candidate window handed to the finishing sort (the
    /// array length itself on the in-cache path).
    pub final_window: usize,
    /// The rank `k` that was requested.
    pub rank: usize,
    /// Original array index of the selected element.
    pub index: usize,
    /// Whether the pure in-cache path (`N ≤ M`) was taken.
    pub in_cache: bool,
}

/// Selects the element of rank `k` (0-based) among the occupied cells of
/// array `h`: the element at position `k` of the occupied cells stably sorted
/// by key (ties broken by original array position). Uses at most
/// `cache_elems` words of private memory and `O((N/B)(1 + log(N/M)))` I/Os
/// whose addresses depend only on the shape `(N, B, M)` — neither the data
/// nor `k` influence the trace. The input array is left unmodified.
///
/// # Panics
/// Panics if `k` is not smaller than the number of occupied cells, and — when
/// the array does not fit in cache — if `cache_elems < max(8·B, 32)` or `B`
/// is not a power of two (the §3 compaction requirements plus two full sample
/// strides per chunk).
pub fn select_kth<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    k: usize,
) -> (Element, SelectReport) {
    select_kth_with(store, h, cache_elems, k, &OblivSorter::Bitonic)
}

/// [`select_kth`] with an explicit [`OblivSorter`] strategy: the sample sort
/// of every pruning round and the finishing sort of the final window run on
/// the selected engine. `&OblivSorter::Bitonic` reproduces [`select_kth`]
/// exactly; `OblivSorter::bucket(seed)` swaps in the randomized
/// `O((N/B)·log_{M/B}(N/B))` engine (note its trace then depends on the seed
/// and the random bin assignment — see `DESIGN.md` on when that is
/// acceptable).
///
/// # Panics
/// Same conditions as [`select_kth`], plus — on the bucket engine — a bucket
/// overflow (probability `≈ exp(−Z/6)` per bucket-level; retry with a fresh
/// seed).
pub fn select_kth_with<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    k: usize,
    sorter: &OblivSorter,
) -> (Element, SelectReport) {
    let start = store.io_stats();
    let n = h.len();
    let mut budget = CacheBudget::new(cache_elems);

    // Whole array fits in the private cache: one read pass, select CPU-side.
    if n <= cache_elems {
        let (winner, idx) = budget.with(n.max(1), |_| {
            let cells = store.load_span(h, 0, n);
            let mut live: Vec<(usize, Element)> = cells
                .iter()
                .enumerate()
                .filter_map(|(j, c)| c.map(|e| (j, e)))
                .collect();
            assert!(
                k < live.len(),
                "rank k out of range: k={k} >= {} occupied",
                live.len()
            );
            live.sort_by_key(|&(j, e)| (e.key, j));
            (live[k].1, live[k].0)
        });
        return (
            winner,
            SelectReport {
                io: store.io_stats() - start,
                rounds: 0,
                chunk_elems: n.max(1),
                samples_per_chunk: 0,
                final_window: n.max(1),
                rank: k,
                index: idx,
                in_cache: true,
            },
        );
    }

    let b = h.block_elems();
    let s = SAMPLES_PER_CHUNK;
    assert!(
        cache_elems >= 8 * b,
        "external selection needs a private cache of at least eight blocks (M >= 8B)"
    );
    assert!(
        cache_elems >= 4 * s,
        "external selection needs a private cache of at least {} elements",
        4 * s
    );
    assert!(
        b.is_power_of_two(),
        "external selection requires a power-of-two block size"
    );
    // Chunk size: the largest power of two with 2g ≤ M, so a chunk (plus its
    // samples) always fits in cache. g ≥ 2s by the cache floor above.
    let g = largest_pow2_at_most(cache_elems / 2);
    debug_assert!(g >= 2 * s);

    let (mut cur, live) = build_working_copy(store, h, &mut budget);
    assert!(k < live, "rank k out of range: k={k} >= {live} occupied");

    // `kp` is the residual rank of the target inside the current window;
    // it shrinks as candidates are pruned below the window. Private state.
    let mut kp = k;
    let mut r = n;
    let mut rounds = 0usize;

    while r > cache_elems {
        rounds += 1;
        let c = r.div_ceil(g);
        let s_len = c * s;

        // 1. Weighted splitter extraction: sort each chunk in cache, emit its
        // s evenly spaced order statistics. Short tail chunks are implicitly
        // padded with dummies (+∞), which the rank bounds absorb.
        let samples = store.alloc_array(s_len);
        for ci in 0..c {
            let lo_e = ci * g;
            let hi_e = ((ci + 1) * g).min(r);
            budget.with(hi_e - lo_e + s, |_| {
                let mut cells = store.load_span(&cur, lo_e, hi_e);
                cells.sort_by(cell_cmp_none_last);
                let picks: Vec<Cell> = (0..s)
                    .map(|i| cells.get((i + 1) * (g / s) - 1).copied().flatten())
                    .collect();
                store.store_span(&samples, ci * s, &picks);
            });
        }

        // 2. Oblivious approximate-quantile reduction: sort the samples, then
        // stream them once, latching the two bracket splitters in registers —
        // never reading a rank-dependent address.
        sorter.sort_by(store, &samples, cache_elems, &cell_cmp_none_last);
        let q_lo = (kp * s / g).checked_sub(c).filter(|&q| q < s_len);
        let q_hi = Some((kp + 1).div_ceil(g / s)).filter(|&q| q < s_len);
        let (lo, hi) = scan_splitters(store, &samples, &mut budget, q_lo, q_hi);
        // lo = None means −∞ (no lower pruning); hi = None means +∞ (a
        // clamped or dummy splitter — every candidate is below it).
        debug_assert!(
            q_lo.is_none() || lo.is_some(),
            "a lo splitter is never a dummy"
        );

        // 3. Mark-and-compact pruning: blank candidates outside [lo, hi),
        // counting those pruned below in a private register, then route the
        // survivors to a prefix with §3 compaction and shrink the window to
        // the shape-determined bound r'.
        let mut below = 0usize;
        hint_sweep(store, &cur);
        for beta in 0..cur.n_blocks() {
            budget.with(2 * b, |_| {
                let mut blk = store.load_block(&cur, beta);
                for t in 0..b {
                    if let Some(e) = blk.get(t) {
                        if lo.is_some_and(|l| e < l) {
                            below += 1;
                            blk.set(t, None);
                        } else if hi.is_some_and(|hh| e >= hh) {
                            blk.set(t, None);
                        }
                    }
                }
                store.store_block(&cur, beta, blk);
            });
        }
        kp -= below;
        let survivors = crate::compact::compact(store, &cur, cache_elems).occupied;
        assert!(kp < survivors, "the bracket always contains the target");

        let r_next = (2 * c + 4) * (g / s);
        assert!(r_next < r, "the window shrinks every round");
        assert!(
            survivors <= r_next,
            "weighted-sample rank bounds cap the survivors: {survivors} > {r_next}"
        );
        let next = store.alloc_array(r_next);
        let prefix: Vec<usize> = (0..next.n_blocks()).collect();
        store.hint_blocks(&cur, &prefix);
        for beta in 0..next.n_blocks() {
            budget.with(b, |_| {
                let blk = store.load_block(&cur, beta);
                store.store_block(&next, beta, blk);
            });
        }
        cur = next;
        r = r_next;
    }

    // Finish: sort the final window with the selected engine (it now fits in
    // cache: one read plus one write pass), then stream it to latch the
    // kp-th cell — the working item (key, original index) of the target.
    sorter.sort_by(store, &cur, cache_elems, &cell_cmp_none_last);
    let winner = budget.with(r, |_| {
        let cells = store.load_span(&cur, 0, r);
        cells[kp].expect("the target survived every pruning round")
    });
    let idx = winner.payload as usize;

    // Recovery: one streaming pass over the untouched input resurrects the
    // full original element at the winning index — every block is read, the
    // match is latched CPU-side, so the index never shapes the trace.
    let mut found: Cell = None;
    hint_sweep(store, h);
    for beta in 0..h.n_blocks() {
        budget.with(b, |_| {
            let blk = store.load_block(h, beta);
            for t in 0..b {
                let j = beta * b + t;
                if j < n && j == idx {
                    found = blk.get(t);
                }
            }
        });
    }
    let elem = found.expect("the selected index holds an occupied cell");
    debug_assert_eq!(elem.key, winner.key);

    (
        elem,
        SelectReport {
            io: store.io_stats() - start,
            rounds,
            chunk_elems: g,
            samples_per_chunk: s,
            final_window: r,
            rank: k,
            index: idx,
            in_cache: false,
        },
    )
}

/// Fallible variant of [`select_kth`] for untrusted/unreliable servers:
/// transient faults are retried per `policy` (the retry schedule depends
/// only on the server's fault schedule, never on the data or the rank), and
/// the first permanent [`StoreError`](extmem::StoreError) — a corrupted
/// block, a rollback, exhausted retries — aborts the pass and is returned
/// as a typed [`OdoError`] instead of panicking or selecting from tampered
/// data.
///
/// The input array is left unmodified even on `Err` (selection works on
/// internal scratch copies); the store remains usable.
pub fn try_select_kth<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    k: usize,
    policy: RetryPolicy,
) -> Result<(Element, SelectReport, RetryStats), OdoError> {
    run_fallible(store, policy, |s| select_kth(s, h, cache_elems, k))
        .map(|((elem, report), retry)| (elem, report, retry))
        .map_err(OdoError::from)
}

/// Computes the elements at every rank in `ranks` (each 0-based among the
/// occupied cells, stably sorted by key) in a single sort of a working copy:
/// `O((N/B)(1 + log²(N/M)))` I/Os for any number of quantiles, versus one
/// selection each. The trace depends only on the shape `(N, B, M)` — the
/// requested ranks steer private registers only — and the input array is left
/// unmodified. Returns the elements in the order of `ranks`.
///
/// # Panics
/// Panics if any rank is out of range, if `ranks.len() > cache_elems / 4`
/// (the latched quantiles must fit in private memory), or on the
/// [`obliv_net::external_oblivious_sort`] cache requirement
/// (`cache_elems ≥ 2B`).
pub fn quantiles<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    ranks: &[usize],
) -> (Vec<Element>, IoStats) {
    quantiles_with(store, h, cache_elems, ranks, &OblivSorter::Bitonic)
}

/// [`quantiles`] with an explicit [`OblivSorter`] strategy for the one big
/// sort of the working copy. With `OblivSorter::bucket(seed)` the quantile
/// pass drops from `O((N/B)·log²(N/M))` to `O((N/B)·log_{M/B}(N/B))` I/Os —
/// on this entry point the engine swap pays off the most, because the sort
/// *is* the algorithm.
///
/// # Panics
/// Same conditions as [`quantiles`], plus the engine's own requirements (see
/// [`crate::sorter::OblivSorter::sort_by`]).
pub fn quantiles_with<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    ranks: &[usize],
    sorter: &OblivSorter,
) -> (Vec<Element>, IoStats) {
    let start = store.io_stats();
    let b = h.block_elems();
    assert!(
        ranks.len() <= cache_elems / 4,
        "the requested quantiles must fit in the private cache"
    );
    let mut budget = CacheBudget::new(cache_elems);

    let (wrk, live) = build_working_copy(store, h, &mut budget);
    for &rk in ranks {
        assert!(rk < live, "rank {rk} out of range: {live} occupied");
    }

    // One oblivious sort; occupied working items now sit at their ranks.
    sorter.sort_by(store, &wrk, cache_elems, &cell_cmp_none_last);

    // Stream the sorted copy, latching each requested rank in a register.
    let mut picks: Vec<Cell> = vec![None; ranks.len()];
    hint_sweep(store, &wrk);
    for beta in 0..wrk.n_blocks() {
        budget.with(b + 2 * ranks.len(), |_| {
            let blk = store.load_block(&wrk, beta);
            for t in 0..b {
                let p = beta * b + t;
                for (slot, &rk) in ranks.iter().enumerate() {
                    if p == rk {
                        picks[slot] = blk.get(t);
                    }
                }
            }
        });
    }

    // Recovery pass over the untouched input: resurrect every winner's full
    // element by its original index, all in one stream.
    let mut out: Vec<Cell> = vec![None; ranks.len()];
    hint_sweep(store, h);
    for beta in 0..h.n_blocks() {
        budget.with(b + 2 * ranks.len(), |_| {
            let blk = store.load_block(h, beta);
            for t in 0..b {
                let j = beta * b + t;
                for (slot, pick) in picks.iter().enumerate() {
                    if pick.is_some_and(|w| w.payload as usize == j) {
                        out[slot] = blk.get(t);
                    }
                }
            }
        });
    }
    let elems = out
        .into_iter()
        .map(|c| c.expect("every requested rank resolves to an occupied cell"))
        .collect();
    (elems, store.io_stats() - start)
}

/// Advertises a full forward block sweep over `h` to the store. Every
/// streaming pass in this module reads blocks `0..n_blocks` in order, a
/// schedule fixed by the array shape alone, so hinting it leaks nothing.
fn hint_sweep<S: BlockStore>(store: &mut S, h: &ArrayHandle) {
    let schedule: Vec<usize> = (0..h.n_blocks()).collect();
    store.hint_blocks(h, &schedule);
}

/// The shared working pass of [`select_kth`] and [`quantiles`]: streams the
/// input once, replacing occupied cell `j` by the working item `(key, j)` in
/// a freshly allocated parallel array — a strict total order even under
/// duplicate keys, which is what lets the sampling bounds prune duplicates
/// apart. Dummies stay dummies (they sort after every working item and are
/// never sampled into a `lo` splitter). Returns the working array and the
/// occupied count.
fn build_working_copy<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    budget: &mut CacheBudget,
) -> (ArrayHandle, usize) {
    let b = h.block_elems();
    let n = h.len();
    let wrk = store.alloc_array(n);
    let mut live = 0usize;
    hint_sweep(store, h);
    for beta in 0..h.n_blocks() {
        budget.with(2 * b, |_| {
            let blk = store.load_block(h, beta);
            let mut out = Block::empty(b);
            for t in 0..b {
                let j = beta * b + t;
                if j >= n {
                    break;
                }
                if let Some(e) = blk.get(t) {
                    out.set(t, Some(Element::new(e.key, j as u64)));
                    live += 1;
                }
            }
            store.store_block(&wrk, beta, out);
        });
    }
    (wrk, live)
}

/// Largest power of two `≤ x` (`x ≥ 1`).
fn largest_pow2_at_most(x: usize) -> usize {
    debug_assert!(x >= 1);
    let mut p = 1;
    while p * 2 <= x {
        p *= 2;
    }
    p
}

/// Streams the sorted sample array once, returning the cells at ranks
/// `q_lo` / `q_hi` (when requested) without ever issuing a rank-dependent
/// read: every block is read, the two positions are latched in registers.
fn scan_splitters<S: BlockStore>(
    store: &mut S,
    samples: &ArrayHandle,
    budget: &mut CacheBudget,
    q_lo: Option<usize>,
    q_hi: Option<usize>,
) -> (Cell, Cell) {
    let b = samples.block_elems();
    let len = samples.len();
    let mut lo: Cell = None;
    let mut hi: Cell = None;
    hint_sweep(store, samples);
    for beta in 0..samples.n_blocks() {
        budget.with(b, |_| {
            let blk = store.load_block(samples, beta);
            for t in 0..b {
                let q = beta * b + t;
                if q >= len {
                    break;
                }
                if q_lo == Some(q) {
                    lo = blk.get(t);
                }
                if q_hi == Some(q) {
                    hi = blk.get(t);
                }
            }
        });
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::ExtMem;

    /// Pseudo-random keyed input with a bounded key range (lots of ties).
    fn keyed_input(n: usize, salt: u64, key_range: u64) -> Vec<Element> {
        (0..n)
            .map(|i| {
                Element::new(
                    extmem::util::hash64(i as u64, salt) % key_range,
                    extmem::util::hash64(i as u64, salt ^ 0xFF) % 1000,
                )
            })
            .collect()
    }

    /// The contract's reference: position `k` of the occupied cells stably
    /// sorted by key.
    fn oracle(cells: &[Cell], k: usize) -> Element {
        let mut live: Vec<(usize, Element)> = cells
            .iter()
            .enumerate()
            .filter_map(|(j, c)| c.map(|e| (j, e)))
            .collect();
        live.sort_by_key(|&(j, e)| (e.key, j));
        live[k].1
    }

    fn run_select(cells: &[Cell], b: usize, m: usize, k: usize) -> (Element, SelectReport) {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(cells);
        select_kth(&mut mem, &h, m, k)
    }

    #[test]
    fn selects_across_shapes_ranks_and_tie_densities() {
        for (n, b, m) in [
            (1024usize, 8usize, 128usize),
            (2048, 16, 256),
            (1000, 8, 128), // non-power-of-two N
            (512, 8, 1024), // pure in-cache path
        ] {
            for key_range in [4u64, 64, u64::MAX] {
                let cells: Vec<Cell> = keyed_input(n, 7, key_range).into_iter().map(Some).collect();
                for k in [0, 1, n / 3, n / 2, n - 2, n - 1] {
                    let (got, report) = run_select(&cells, b, m, k);
                    assert_eq!(
                        got,
                        oracle(&cells, k),
                        "N={n} B={b} M={m} range={key_range} k={k}"
                    );
                    assert_eq!(report.rank, k);
                    assert_eq!(cells[report.index], Some(got));
                }
            }
        }
    }

    #[test]
    fn input_array_is_left_unmodified() {
        let cells: Vec<Cell> = keyed_input(512, 3, 100).into_iter().map(Some).collect();
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        select_kth(&mut mem, &h, 64, 200);
        assert_eq!(mem.snapshot_cells(&h), cells);
    }

    #[test]
    fn dummy_cells_are_skipped() {
        let cells: Vec<Cell> = (0..600)
            .map(|i| (i % 3 != 1).then(|| Element::keyed(1000 - i as u64, i)))
            .collect();
        let live = cells.iter().filter(|c| c.is_some()).count();
        for k in [0, live / 2, live - 1] {
            let (got, _) = run_select(&cells, 8, 64, k);
            assert_eq!(got, oracle(&cells, k), "k={k}");
        }
    }

    #[test]
    fn all_equal_keys_break_ties_by_position() {
        let cells: Vec<Cell> = (0..500).map(|i| Some(Element::keyed(42, i))).collect();
        for k in [0, 250, 499] {
            let (got, report) = run_select(&cells, 8, 64, k);
            assert_eq!(got, Element::keyed(42, k), "k={k}");
            assert_eq!(report.index, k);
        }
    }

    #[test]
    #[should_panic(expected = "rank k out of range")]
    fn overlarge_rank_is_rejected() {
        let cells: Vec<Cell> = (0..100)
            .map(|i| Some(Element::keyed(i as u64, i)))
            .collect();
        run_select(&cells, 8, 512, 100);
    }

    #[test]
    #[should_panic(expected = "rank k out of range")]
    fn rank_counts_occupied_not_slots() {
        let mut cells: Vec<Cell> = vec![None; 600];
        cells[5] = Some(Element::keyed(1, 5));
        run_select(&cells, 8, 64, 1); // only one occupied cell
    }

    #[test]
    fn in_cache_path_is_one_read_pass() {
        let cells: Vec<Cell> = keyed_input(256, 1, 50).into_iter().map(Some).collect();
        let (got, report) = run_select(&cells, 8, 256, 17);
        assert_eq!(got, oracle(&cells, 17));
        assert!(report.in_cache);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.io.reads, 32);
        assert_eq!(report.io.writes, 0);
    }

    #[test]
    fn io_count_is_a_function_of_shape_only() {
        let a = run_select(
            &keyed_input(512, 1, 8)
                .into_iter()
                .map(Some)
                .collect::<Vec<_>>(),
            8,
            64,
            0,
        )
        .1;
        let b = run_select(
            &keyed_input(512, 9, u64::MAX)
                .into_iter()
                .map(Some)
                .collect::<Vec<_>>(),
            8,
            64,
            511,
        )
        .1;
        assert_eq!(a.io, b.io);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.final_window, b.final_window);
    }

    #[test]
    #[should_panic(expected = "eight blocks")]
    fn tiny_cache_is_rejected_on_the_external_path() {
        let cells: Vec<Cell> = (0..4096)
            .map(|i| Some(Element::keyed(i as u64, i)))
            .collect();
        run_select(&cells, 64, 256, 5);
    }

    #[test]
    fn quantiles_match_repeated_selection() {
        let cells: Vec<Cell> = keyed_input(700, 5, 30).into_iter().map(Some).collect();
        let ranks = [0usize, 175, 350, 525, 699];
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        let (got, io) = quantiles(&mut mem, &h, 64, &ranks);
        assert!(io.total() > 0);
        for (i, &rk) in ranks.iter().enumerate() {
            assert_eq!(got[i], oracle(&cells, rk), "rank {rk}");
        }
        // The input survives, as with selection.
        assert_eq!(mem.snapshot_cells(&h), cells);
    }

    #[test]
    fn bucket_engine_selects_identically_to_the_default() {
        let cells: Vec<Cell> = keyed_input(2048, 11, 64).into_iter().map(Some).collect();
        for k in [0usize, 777, 2047] {
            let mut mem = ExtMem::new(16);
            let h = mem.alloc_array_from_cells(&cells);
            let (got, report) = select_kth_with(&mut mem, &h, 256, k, &OblivSorter::bucket(13));
            assert_eq!(got, oracle(&cells, k), "k={k}");
            assert_eq!(report.rank, k);
            assert_eq!(cells[report.index], Some(got));
        }
    }

    #[test]
    fn quantiles_with_bucket_engine_matches_and_costs_less() {
        let n = 1usize << 13;
        let cells: Vec<Cell> = keyed_input(n, 3, 100).into_iter().map(Some).collect();
        let ranks = [0usize, 2000, n - 1];
        let mut mem = ExtMem::new(16);
        let h = mem.alloc_array_from_cells(&cells);
        let (bit, io_bit) = quantiles(&mut mem, &h, 256, &ranks);
        let mut mem = ExtMem::new(16);
        let h = mem.alloc_array_from_cells(&cells);
        let (bkt, io_bkt) = quantiles_with(&mut mem, &h, 256, &ranks, &OblivSorter::bucket(4));
        assert_eq!(bit, bkt);
        assert!(
            io_bkt.total() < io_bit.total(),
            "bucket {} >= bitonic {} at N/M = 32",
            io_bkt.total(),
            io_bit.total()
        );
    }

    #[test]
    fn quantiles_trace_is_rank_independent() {
        let cells: Vec<Cell> = keyed_input(512, 2, 40).into_iter().map(Some).collect();
        let trace_of = |ranks: &[usize]| {
            let mut mem = ExtMem::with_trace(8);
            let h = mem.alloc_array_from_cells(&cells);
            quantiles(&mut mem, &h, 64, ranks);
            mem.take_trace().unwrap()
        };
        let a = trace_of(&[0, 256, 511]);
        let b = trace_of(&[17, 100, 400]);
        extmem::trace::assert_oblivious(&a, &b, "quantiles rank sets");
    }
}
