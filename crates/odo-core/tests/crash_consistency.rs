//! Crash-consistency battery: a client is killed mid-sort, restarts from its
//! checkpointed [`AuthClientState`], reopens the server file — and the
//! authenticated layer must classify the torn on-disk state as tampering
//! (`Corrupted` | `Stale`), never serve it as valid data.
//!
//! The scenario mirrors the paper's trust model: the server file survives
//! the crash verbatim (the server is durable but untrusted), while the
//! client loses everything except the state it explicitly checkpointed
//! *before* the sort started. Blocks the sort rewrote between checkpoint
//! and crash are newer than the checkpointed version table says, so their
//! MACs cannot verify against it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use extmem::install_quiet_abort_hook;
use extmem::util::hash64;
use odo_core::{
    ArrayHandle, AuthenticatedStore, BlockStore, Cell, Element, FileStore, InjectedCrash,
    OblivSorter, SortOrder, StoreError,
};

const N: usize = 512;
const B: usize = 8;
const M: usize = 128;
const KEY: u64 = 0x4D41_4353;

fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("odo-crash-{}-{tag}.blocks", std::process::id()))
}

fn input(seed: u64) -> Vec<Cell> {
    (0..N)
        .map(|i| Some(Element::new(hash64(i as u64, seed) >> 16, i as u64)))
        .collect()
}

/// Populates an authenticated file store, checkpoints the client state,
/// arms a crash `budget` writes into the sort, and lets it die. Returns the
/// array handle and the pre-crash checkpoint.
fn populate_and_crash(
    path: &PathBuf,
    seed: u64,
    budget: u64,
) -> (ArrayHandle, odo_core::AuthClientState) {
    let fs = FileStore::create(path, B).expect("create store file");
    let mut auth = AuthenticatedStore::new(fs, KEY);
    let h = BlockStore::alloc_array(&mut auth, N);
    auth.try_store_span(&h, 0, &input(seed)).unwrap();
    auth.flush_macs().unwrap();
    let state = auth.client_state();

    auth.inner_mut().crash_after_writes(budget);
    let died = catch_unwind(AssertUnwindSafe(|| {
        OblivSorter::Bitonic.sort(&mut auth, &h, M, SortOrder::Ascending);
    }));
    let payload = died.expect_err("the armed store must kill the sort");
    assert!(
        payload.downcast_ref::<InjectedCrash>().is_some(),
        "the sort must die on the injected crash, not an unrelated panic"
    );
    // `auth` is dropped here: the client's in-memory MAC cache and version
    // table vanish, exactly as in a process kill. The file survives.
    (h, state)
}

#[test]
fn torn_sort_state_is_detected_after_resume() {
    install_quiet_abort_hook();
    // Vary how deep into the sort the crash lands: right after the first
    // region write-back, mid-pass, and late. Every depth must be detected.
    for (tag, budget) in [("early", 8u64), ("mid", 24), ("late", 48)] {
        let path = scratch_path(tag);
        let (h, state) = populate_and_crash(&path, 0xC0FFEE ^ budget, budget);

        let reopened = FileStore::open(&path, B).expect("reopen store file");
        assert!(
            reopened.allocated_blocks() > h.n_blocks(),
            "{tag}: the reopened file holds the data array plus MAC arrays"
        );
        let mut auth = AuthenticatedStore::resume(reopened, state);

        let mut tampering = 0usize;
        let mut valid = 0usize;
        for beta in 0..h.n_blocks() {
            match auth.try_load_block(&h, beta) {
                Ok(_) => valid += 1,
                Err(e) => {
                    assert!(
                        e.is_tampering(),
                        "{tag}: block {beta} must fail as tampering, got {e:?}"
                    );
                    tampering += 1;
                }
            }
        }
        assert!(
            tampering > 0,
            "{tag}: a crash {budget} writes into the sort must leave \
             detectably torn blocks"
        );
        assert!(
            valid > 0,
            "{tag}: blocks the sort never reached must still verify \
             ({tampering} torn of {})",
            h.n_blocks()
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn a_whole_run_without_a_crash_still_verifies_after_resume() {
    // Control case: checkpoint *after* a completed sort + MAC flush, reopen,
    // resume — every block must verify and the data must be sorted.
    install_quiet_abort_hook();
    let path = scratch_path("control");
    let fs = FileStore::create(&path, B).expect("create store file");
    let mut auth = AuthenticatedStore::new(fs, KEY);
    let h = BlockStore::alloc_array(&mut auth, N);
    auth.try_store_span(&h, 0, &input(7)).unwrap();
    OblivSorter::Bitonic.sort(&mut auth, &h, M, SortOrder::Ascending);
    auth.flush_macs().unwrap();
    let state = auth.client_state();
    drop(auth);

    let reopened = FileStore::open(&path, B).expect("reopen store file");
    let mut auth = AuthenticatedStore::resume(reopened, state);
    let cells = auth.try_load_span(&h, 0, N).expect("clean state verifies");
    assert!(cells
        .windows(2)
        .all(|w| w[0].unwrap().key <= w[1].unwrap().key));
    std::fs::remove_file(&path).ok();
}

#[test]
fn out_of_band_disk_corruption_is_detected_after_resume() {
    // A crash plus a corrupted sector: garble one cell of block 0 directly
    // in the file (bypassing every store layer), resume, and read.
    install_quiet_abort_hook();
    let path = scratch_path("sector");
    let fs = FileStore::create(&path, B).expect("create store file");
    let mut auth = AuthenticatedStore::new(fs, KEY);
    let h = BlockStore::alloc_array(&mut auth, N);
    auth.try_store_span(&h, 0, &input(3)).unwrap();
    auth.flush_macs().unwrap();
    let state = auth.client_state();
    drop(auth);

    // Flip the key word of the first cell on disk (offset 8 within the
    // 24-byte cell encoding).
    {
        use std::io::{Read, Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let mut word = [0u8; 8];
        f.seek(SeekFrom::Start(8)).unwrap();
        f.read_exact(&mut word).unwrap();
        word[0] ^= 0xFF;
        f.seek(SeekFrom::Start(8)).unwrap();
        f.write_all(&word).unwrap();
    }

    let reopened = FileStore::open(&path, B).expect("reopen store file");
    let mut auth = AuthenticatedStore::resume(reopened, state);
    let err = auth
        .try_load_block(&h, 0)
        .expect_err("corruption must surface");
    assert!(
        matches!(err, StoreError::Corrupted { addr: 0 }),
        "got {err:?}"
    );
    std::fs::remove_file(&path).ok();
}
