//! Obliviousness test-suite for the external selection: at a fixed shape
//! `(N, B, M)` the server-visible block access sequence must be
//! *byte-identical* no matter what the data values are **and no matter which
//! rank `k` is requested** — selection leaks neither the keys nor which order
//! statistic the client was after. The battery covers the external
//! prune-and-compact path, the pure in-cache path, the quantiles entry point
//! and the plaintext/encrypted backend pair.

use odo_core::extmem::element::Cell;
use odo_core::extmem::trace::{assert_oblivious, TraceSummary};
use odo_core::extmem::{AccessTrace, Element, EncryptedStore, ExtMem};
use odo_core::select::{quantiles, select_kth};

/// Pseudo-random dataset: keys in `[0, key_range)`, payloads arbitrary.
fn dataset(n: usize, salt: u64, key_range: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            Some(Element::new(
                odo_core::extmem::util::hash64(i as u64, salt) % key_range,
                odo_core::extmem::util::hash64(i as u64, salt ^ 0xABC) % 500,
            ))
        })
        .collect()
}

fn select_trace(cells: &[Cell], b: usize, m: usize, k: usize) -> AccessTrace {
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(cells);
    mem.enable_trace();
    select_kth(&mut mem, &h, m, k);
    mem.take_trace().expect("trace was enabled")
}

#[test]
fn select_trace_is_identical_across_20_datasets() {
    // The acceptance criterion: ≥ 20 datasets at a fixed (N, B, M, k)
    // produce byte-identical traces. N > M so the full external path
    // (working pass + sampling + sample sort + mark + compact + shrink +
    // finishing sort + recovery) is exercised.
    for (n, b, m) in [(512usize, 8usize, 64usize), (1000, 16, 128)] {
        let k = n / 2;
        let reference = select_trace(&dataset(n, 0, 1000), b, m, k);
        assert!(!reference.is_empty());
        for salt in 1..=20u64 {
            // Vary both the key distribution and the duplication density.
            let key_range = [2u64, 7, 100, u64::MAX][salt as usize % 4];
            let t = select_trace(&dataset(n, salt, key_range), b, m, k);
            assert_oblivious(
                &reference,
                &t,
                &format!("selection N={n} B={b} M={m} k={k} salt={salt}"),
            );
        }
    }
}

#[test]
fn select_trace_is_independent_of_k() {
    // k must not leak: every rank at a fixed shape produces the identical
    // trace, including the extremes.
    let (n, b, m) = (512usize, 8usize, 64usize);
    let cells = dataset(n, 5, 300);
    let reference = select_trace(&cells, b, m, 0);
    for k in [1usize, 2, 17, n / 4, n / 2, n - 2, n - 1] {
        assert_oblivious(
            &reference,
            &select_trace(&cells, b, m, k),
            &format!("selection rank k={k} vs k=0"),
        );
    }
}

#[test]
fn select_trace_ignores_occupancy_and_extreme_datasets() {
    // Same shape, different occupancy patterns and degenerate values: the
    // dummies' positions and all-equal keys shape only block contents.
    let (n, b, m) = (512usize, 8usize, 64usize);
    let dense = dataset(n, 1, 100);
    let sparse: Vec<Cell> = (0..n)
        .map(|i| (i % 3 != 1).then(|| Element::keyed(i as u64, i)))
        .collect();
    let constant: Vec<Cell> = (0..n).map(|i| Some(Element::keyed(42, i))).collect();
    let reference = select_trace(&dense, b, m, 100);
    assert_oblivious(
        &reference,
        &select_trace(&sparse, b, m, 100),
        "dense vs sparse",
    );
    assert_oblivious(
        &reference,
        &select_trace(&constant, b, m, 100),
        "dense vs all-equal keys",
    );
}

#[test]
fn encrypted_store_shares_the_exact_trace() {
    // The identical selection over the re-encrypting store: the adversary's
    // view (addresses AND I/O count) is the same, only the bytes differ.
    let (n, b, m) = (512usize, 8usize, 64usize);
    let cells = dataset(n, 7, 50);
    let k = 123;
    let plain = select_trace(&cells, b, m, k);

    let mut enc = EncryptedStore::new(b, 0x5EC);
    let h = enc.alloc_array_from_cells(&cells);
    enc.enable_trace();
    let (_, report) = select_kth(&mut enc, &h, m, k);
    let etrace = enc.take_trace().expect("trace was enabled");
    assert_oblivious(&plain, &etrace, "plaintext vs encrypted store");
    assert_eq!(etrace.len() as u64, report.io.total());
}

#[test]
fn in_cache_path_is_oblivious_too() {
    // N ≤ M: the collapsed one-pass path still may not leak values or k.
    let (n, b, m) = (128usize, 8usize, 256usize);
    let reference = select_trace(&dataset(n, 1, 10), b, m, 0);
    for (salt, k) in [(2u64, 127usize), (3, 64), (4, 1)] {
        let t = select_trace(&dataset(n, salt, 1 << salt), b, m, k);
        assert_oblivious(&reference, &t, &format!("in-cache path salt={salt} k={k}"));
    }
}

#[test]
fn select_trace_length_matches_reported_io() {
    let (n, b, m) = (700usize, 16usize, 128usize);
    let cells = dataset(n, 11, 90);
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(&cells);
    mem.enable_trace();
    let (_, report) = select_kth(&mut mem, &h, m, 350);
    let trace = mem.take_trace().unwrap();
    let summary = TraceSummary::of(&trace);
    assert_eq!(summary.len as u64, report.io.total());
    assert_eq!(summary.reads as u64, report.io.reads);
    assert_eq!(summary.writes as u64, report.io.writes);
}

#[test]
fn quantiles_trace_is_independent_of_data_and_ranks() {
    let (n, b, m) = (512usize, 8usize, 64usize);
    let trace_of = |cells: &[Cell], ranks: &[usize]| -> AccessTrace {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(cells);
        mem.enable_trace();
        quantiles(&mut mem, &h, m, ranks);
        mem.take_trace().expect("trace was enabled")
    };
    let reference = trace_of(&dataset(n, 1, 64), &[0, 128, 256, 384, 511]);
    for salt in 2..=6u64 {
        let t = trace_of(&dataset(n, salt, 9), &[3, 50, 200, 410, 500]);
        assert_oblivious(&reference, &t, &format!("quantiles salt={salt}"));
    }
}
