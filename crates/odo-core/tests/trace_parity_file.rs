//! Backend trace-parity battery for the file-backed store stack.
//!
//! `FileStore` mirrors `ExtMem`'s global block addressing exactly (arrays are
//! laid out back to back, block `i` of a handle is global block
//! `start_block + i`), so every primitive must produce a *byte-identical*
//! server-visible access trace over `ExtMem`, `FileStore`, and
//! `PrefetchingStore<FileStore>` — the prefetching wrapper records its
//! logical trace in foreground request order, so read-ahead must be
//! invisible in the trace by construction. Each case also checks that the
//! final array contents agree across backends.

use odo_core::compact::{compact, expand};
use odo_core::extmem::element::Cell;
use odo_core::extmem::trace::assert_oblivious;
use odo_core::extmem::util::hash64;
use odo_core::{
    select_kth, AccessTrace, ArrayHandle, BlockStore, Element, EncryptedStore, ExtMem, FileStore,
    OblivSorter, PrefetchConfig, PrefetchingStore, SortOrder,
};

const SEED: u64 = 0x0B0C;

#[derive(Clone, Copy)]
enum Prim {
    SortBitonic,
    SortBucket,
    Compact,
    Expand,
    Select,
}

struct Case {
    name: &'static str,
    prim: Prim,
    cells: Vec<Cell>,
    b: usize,
    m: usize,
    targets: Vec<usize>,
    k: usize,
}

fn occupancy(n: usize, salt: u64, num: u64, den: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            (hash64(i as u64, salt) % den < num)
                .then(|| Element::keyed(hash64(i as u64, salt.wrapping_add(99)), i))
        })
        .collect()
}

fn cases() -> Vec<Case> {
    let expand_r = 64usize;
    let expand_cells: Vec<Cell> = (0..256)
        .map(|i| (i < expand_r).then(|| Element::keyed(i as u64, i)))
        .collect();
    vec![
        Case {
            name: "sort/bitonic",
            prim: Prim::SortBitonic,
            cells: occupancy(512, 3, 2, 3),
            b: 8,
            m: 64,
            targets: Vec::new(),
            k: 0,
        },
        Case {
            name: "sort/bucket",
            prim: Prim::SortBucket,
            cells: occupancy(1024, 5, 1, 2),
            b: 8,
            m: 512,
            targets: Vec::new(),
            k: 0,
        },
        Case {
            name: "compact",
            prim: Prim::Compact,
            cells: occupancy(512, 7, 1, 3),
            b: 8,
            m: 64,
            targets: Vec::new(),
            k: 0,
        },
        Case {
            name: "expand",
            prim: Prim::Expand,
            cells: expand_cells,
            b: 8,
            m: 64,
            targets: (0..expand_r).map(|i| i * 3).collect(),
            k: 0,
        },
        Case {
            name: "select",
            prim: Prim::Select,
            cells: occupancy(512, 11, 3, 4),
            b: 8,
            m: 64,
            targets: Vec::new(),
            k: 0, // patched below to occupied / 2
        },
    ]
}

fn run_prim<S: BlockStore>(store: &mut S, h: &ArrayHandle, case: &Case) {
    match case.prim {
        Prim::SortBitonic => {
            OblivSorter::Bitonic.sort(store, h, case.m, SortOrder::Ascending);
        }
        Prim::SortBucket => {
            OblivSorter::bucket(SEED).sort(store, h, case.m, SortOrder::Ascending);
        }
        Prim::Compact => {
            compact(store, h, case.m);
        }
        Prim::Expand => {
            expand(store, h, &case.targets, case.m);
        }
        Prim::Select => {
            select_kth(store, h, case.m, case.k);
        }
    }
}

fn patched(mut case: Case) -> Case {
    if matches!(case.prim, Prim::Select) {
        case.k = case.cells.iter().filter(|c| c.is_some()).count() / 2;
    }
    case
}

fn run_extmem(case: &Case) -> (AccessTrace, Vec<Cell>) {
    let mut mem = ExtMem::new(case.b);
    let h = mem.alloc_array_from_cells(&case.cells);
    mem.enable_trace();
    run_prim(&mut mem, &h, case);
    (mem.take_trace().expect("trace"), mem.snapshot_cells(&h))
}

fn run_file(case: &Case) -> (AccessTrace, Vec<Cell>) {
    let mut fs = FileStore::temp(case.b).expect("temp file store");
    let h = fs.alloc_array_from_cells(&case.cells);
    fs.enable_trace();
    run_prim(&mut fs, &h, case);
    (fs.take_trace().expect("trace"), fs.snapshot_cells(&h))
}

fn run_prefetch(case: &Case, cfg: PrefetchConfig) -> (AccessTrace, Vec<Cell>) {
    let mut fs = FileStore::temp(case.b).expect("temp file store");
    let h = fs.alloc_array_from_cells(&case.cells);
    let mut ps = PrefetchingStore::with_config(fs, cfg);
    ps.enable_trace();
    run_prim(&mut ps, &h, case);
    let trace = ps.take_trace().expect("trace");
    // inner_mut flushes the write-behind buffer before the snapshot.
    let cells = ps.inner_mut().snapshot_cells(&h);
    (trace, cells)
}

#[test]
fn file_store_traces_are_byte_identical_to_extmem() {
    for case in cases().into_iter().map(patched) {
        let (reference, ref_cells) = run_extmem(&case);
        assert!(
            !reference.is_empty(),
            "{}: empty reference trace",
            case.name
        );
        let (ft, f_cells) = run_file(&case);
        assert_oblivious(
            &reference,
            &ft,
            &format!("{}: ExtMem vs FileStore", case.name),
        );
        assert_eq!(ref_cells, f_cells, "{}: results diverged", case.name);
    }
}

#[test]
fn prefetching_file_store_traces_are_byte_identical_to_extmem() {
    for case in cases().into_iter().map(patched) {
        let (reference, ref_cells) = run_extmem(&case);
        let (pt, p_cells) = run_prefetch(&case, PrefetchConfig::default());
        assert_oblivious(
            &reference,
            &pt,
            &format!("{}: ExtMem vs PrefetchingStore<FileStore>", case.name),
        );
        assert_eq!(ref_cells, p_cells, "{}: results diverged", case.name);
    }
}

#[test]
fn prefetch_parity_holds_with_a_starved_pool() {
    // A single worker and a tiny ready-set maximize steals and waits; the
    // logical trace must not notice.
    let cfg = PrefetchConfig {
        workers: 1,
        max_ready: 2,
        write_buffer: 2,
    };
    for case in cases().into_iter().map(patched) {
        let (reference, _) = run_extmem(&case);
        let (pt, _) = run_prefetch(&case, cfg);
        assert_oblivious(
            &reference,
            &pt,
            &format!("{}: starved prefetch pool", case.name),
        );
    }
}

#[test]
fn encrypted_file_store_shares_the_exact_trace() {
    // Encrypted(FileStore) vs plaintext ExtMem: the adversary's view
    // (addresses and I/O count) is unchanged; only the bytes at rest differ.
    let case = patched(Case {
        name: "compact/encrypted-file",
        prim: Prim::Compact,
        cells: occupancy(512, 13, 1, 2),
        b: 8,
        m: 64,
        targets: Vec::new(),
        k: 0,
    });
    let (reference, ref_cells) = run_extmem(&case);

    let fs = FileStore::temp(case.b).expect("temp file store");
    let mut enc = EncryptedStore::with_backing(fs, 0xB0B);
    let h = enc.alloc_array_from_cells(&case.cells);
    enc.enable_trace();
    run_prim(&mut enc, &h, &case);
    let etrace = enc.take_trace().expect("trace");
    assert_oblivious(&reference, &etrace, "ExtMem vs Encrypted(FileStore)");
    assert_eq!(ref_cells, enc.snapshot_cells(&h), "results diverged");
}
