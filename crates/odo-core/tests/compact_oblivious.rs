//! Obliviousness test-suite for the external butterfly compaction: at a
//! fixed shape `(N, B, M)` the server-visible block access sequence must be
//! *byte-identical* no matter which cells are occupied, what the items are,
//! or (for expansion) where they are routed — the address trace, not the
//! encrypted data, is all the honest-but-curious server sees (Goodrich &
//! Mitzenmacher's ORAM simulation argument, and the premise this paper's
//! compaction inherits).

use odo_core::compact::{compact, expand};
use odo_core::extmem::element::Cell;
use odo_core::extmem::trace::{assert_oblivious, TraceSummary};
use odo_core::extmem::{AccessTrace, Element, EncryptedStore, ExtMem};

fn occupancy(n: usize, salt: u64, num: u64, den: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            if odo_core::extmem::util::hash64(i as u64, salt) % den < num {
                Some(Element::keyed(i as u64, i))
            } else {
                None
            }
        })
        .collect()
}

fn compact_trace(cells: &[Cell], b: usize, m: usize) -> AccessTrace {
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(cells);
    mem.enable_trace();
    compact(&mut mem, &h, m);
    mem.take_trace().expect("trace was enabled")
}

#[test]
fn compact_trace_is_identical_across_20_random_occupancies() {
    // The acceptance criterion: ≥ 20 random inputs/occupancies at a fixed
    // (N, B, M) produce byte-identical traces. N > M so the external path
    // (label pass + window sweep + block-pair levels) is exercised.
    for (n, b, m) in [(512usize, 8usize, 64usize), (300, 16, 128)] {
        let reference = compact_trace(&occupancy(n, 0, 1, 2), b, m);
        assert!(!reference.is_empty());
        for salt in 1..=20u64 {
            // Vary both the occupancy density and the pattern.
            let cells = occupancy(n, salt, 1 + salt % 5, 6);
            let t = compact_trace(&cells, b, m);
            assert_oblivious(
                &reference,
                &t,
                &format!("compaction N={n} B={b} M={m} salt={salt}"),
            );
        }
    }
}

#[test]
fn compact_trace_ignores_extreme_occupancies() {
    let (n, b, m) = (512usize, 8usize, 64usize);
    let reference = compact_trace(&occupancy(n, 3, 1, 2), b, m);
    let empty = compact_trace(&vec![None; n], b, m);
    let full = compact_trace(
        &(0..n)
            .map(|i| Some(Element::keyed(0, i)))
            .collect::<Vec<_>>(),
        b,
        m,
    );
    assert_oblivious(&reference, &empty, "random vs all-empty");
    assert_oblivious(&reference, &full, "random vs all-full");
}

#[test]
fn expand_trace_is_independent_of_targets() {
    // Same shape, same prefix length irrelevant too: traces must agree even
    // across different prefix lengths and target sets, because the target
    // data only steers in-cache moves.
    let (n, b, m) = (256usize, 8usize, 64usize);
    let trace_of = |r: usize, spread: usize| -> AccessTrace {
        let cells: Vec<Cell> = (0..n)
            .map(|i| (i < r).then(|| Element::keyed(i as u64, i)))
            .collect();
        let targets: Vec<usize> = (0..r).map(|i| i * spread).collect();
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(&cells);
        mem.enable_trace();
        expand(&mut mem, &h, &targets, m);
        mem.take_trace().expect("trace was enabled")
    };
    let reference = trace_of(64, 4);
    for (r, spread) in [(64usize, 2usize), (32, 8), (85, 3), (0, 1), (256, 1)] {
        assert_oblivious(
            &reference,
            &trace_of(r, spread),
            &format!("expansion N={n} r={r} spread={spread}"),
        );
    }
}

#[test]
fn encrypted_store_shares_the_exact_trace() {
    // The identical algorithm over the re-encrypting store: the adversary's
    // view (addresses AND I/O count) is the same, only the bytes differ.
    let (n, b, m) = (512usize, 8usize, 64usize);
    let cells = occupancy(n, 7, 1, 3);
    let plain = compact_trace(&cells, b, m);

    let mut enc = EncryptedStore::new(b, 0xB0B);
    let h = enc.alloc_array_from_cells(&cells);
    enc.enable_trace();
    compact(&mut enc, &h, m);
    let etrace = enc.take_trace().expect("trace was enabled");
    assert_oblivious(&plain, &etrace, "plaintext vs encrypted store");
}

#[test]
fn compact_trace_length_matches_reported_io() {
    let (n, b, m) = (500usize, 16usize, 128usize);
    let cells = occupancy(n, 11, 2, 5);
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(&cells);
    mem.enable_trace();
    let report = compact(&mut mem, &h, m);
    let trace = mem.take_trace().unwrap();
    let summary = TraceSummary::of(&trace);
    assert_eq!(summary.len as u64, report.io.total());
    assert_eq!(summary.reads as u64, report.io.reads);
    assert_eq!(summary.writes as u64, report.io.writes);
}

#[test]
fn in_cache_path_is_oblivious_too() {
    // N <= M: the collapsed one-sweep path still may not leak occupancy.
    let (n, b, m) = (128usize, 8usize, 256usize);
    let reference = compact_trace(&occupancy(n, 1, 1, 2), b, m);
    for salt in 2..=6u64 {
        let t = compact_trace(&occupancy(n, salt, salt % 4, 4), b, m);
        assert_oblivious(&reference, &t, &format!("in-cache path salt={salt}"));
    }
}
