//! The untrusted-server fault battery: sort, compact and select over an
//! authenticated, fault-injected, encrypted store.
//!
//! The safety claim under test is the paper-setting one: the server is
//! *untrusted*, and with [`AuthenticatedStore`] in the stack a tampering
//! server (bit flips, rollbacks, dropped writes — injected deterministically
//! by [`FaultyStore`]) can cause a typed `Err(Corrupted | Stale)` but
//! **never a silently wrong answer**; a merely *unreliable* server
//! (transient faults) is ridden out by the retry policy to the exact correct
//! result. The battery also asserts the obliviousness side-condition:
//! injected faults and the retries they trigger leave the server-visible
//! trace data-independent.

use extmem::util::hash64;
use odo_core::prelude::*;
use odo_core::ArrayHandle;

type Stack = AuthenticatedStore<FaultyStore<EncryptedStore>>;

const N: usize = 1024;
const B: usize = 8;
const M: usize = 128;

fn stack(seed: u64) -> Stack {
    let enc = EncryptedStore::new(B, 0xA11CE ^ seed);
    let faulty = FaultyStore::new(enc, seed, FaultSpec::none());
    AuthenticatedStore::new(faulty, 0x4D41_4353 ^ seed)
}

/// Allocates and populates an array through the authenticated layer with
/// faults disabled, then flushes the MAC state to the server so the run
/// starts from a consistent, fully-verifiable state.
fn populate(auth: &mut Stack, cells: &[Cell]) -> ArrayHandle {
    assert!(auth.inner().spec().is_none(), "populate with faults off");
    let h = BlockStore::alloc_array(auth, cells.len());
    auth.try_store_span(&h, 0, cells).unwrap();
    auth.flush_macs().unwrap();
    h
}

fn sort_input(seed: u64) -> Vec<Cell> {
    (0..N)
        .map(|i| Some(Element::new(hash64(i as u64, seed) >> 16, i as u64)))
        .collect()
}

fn compact_input(seed: u64) -> Vec<Cell> {
    (0..N)
        .map(|i| {
            (!hash64(i as u64, seed ^ 0xC0).is_multiple_of(3))
                .then(|| Element::new(i as u64, i as u64))
        })
        .collect()
}

fn select_input(seed: u64) -> Vec<Cell> {
    // Duplicate-heavy keys; payload = original position (the tie-breaker).
    (0..N)
        .map(|i| Some(Element::new(hash64(i as u64, seed ^ 0x5E) % 97, i as u64)))
        .collect()
}

#[derive(Clone, Copy, Debug)]
enum Prim {
    Sort,
    Compact,
    Select,
}

/// Runs one primitive over the fault-injected authenticated stack and
/// classifies the outcome. Returns `(tampering_faults_injected, outcome)`.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    /// The run (or the verified read-back) surfaced tampering as an error.
    Detected,
    /// Everything verified and the output is exactly correct.
    Correct,
    /// The forbidden case: a completed run with wrong output.
    SilentWrong,
}

fn run_case(prim: Prim, seed: u64, spec: FaultSpec) -> (u64, Outcome) {
    let mut auth = stack(seed);
    let input = match prim {
        Prim::Sort => sort_input(seed),
        Prim::Compact => compact_input(seed),
        Prim::Select => select_input(seed),
    };
    let h = populate(&mut auth, &input);
    auth.inner_mut().set_spec(spec);
    let policy = RetryPolicy::default();
    let k = N / 3;

    // Run the primitive; erase the per-primitive payload down to
    // "selected element, if any" + the error.
    let run_result: Result<Option<Element>, OdoError> = match prim {
        Prim::Sort => try_sort(&mut auth, &h, M, SortOrder::Ascending, policy).map(|_| None),
        Prim::Compact => try_compact(&mut auth, &h, M, policy).map(|_| None),
        Prim::Select => try_select_kth(&mut auth, &h, M, k, policy).map(|(elem, _, _)| Some(elem)),
    };

    // Faults off for the verified read-back: any error now reflects
    // tampering that *persisted* on the server (e.g. a dropped write),
    // caught by authentication rather than served.
    auth.inner_mut().set_spec(FaultSpec::none());
    let tampering = auth.inner().fault_stats().tampering();
    let readback = auth.try_load_span(&h, 0, N);

    let outcome = match (run_result, readback) {
        (Err(e), _) => {
            assert!(
                e.is_tampering(),
                "{prim:?} seed {seed}: with no transient lane enabled, every \
                 run error must be Corrupted|Stale, got {e:?}"
            );
            Outcome::Detected
        }
        (Ok(_), Err(e)) => {
            assert!(
                matches!(e, StoreError::Corrupted { .. } | StoreError::Stale { .. }),
                "{prim:?} seed {seed}: read-back error must be tampering, got {e:?}"
            );
            Outcome::Detected
        }
        (Ok(selected), Ok(cells)) => {
            let correct = match prim {
                Prim::Sort => {
                    let keys_sorted = cells
                        .windows(2)
                        .all(|w| w[0].unwrap().key <= w[1].unwrap().key);
                    let mut got: Vec<Element> = cells.iter().map(|c| c.unwrap()).collect();
                    let mut want: Vec<Element> = input.iter().map(|c| c.unwrap()).collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    keys_sorted && got == want
                }
                Prim::Compact => {
                    let survivors: Vec<Element> = input.iter().flatten().copied().collect();
                    let prefix: Vec<Element> = cells
                        .iter()
                        .take(survivors.len())
                        .map(|c| c.unwrap())
                        .collect();
                    prefix == survivors && cells[survivors.len()..].iter().all(|c| c.is_none())
                }
                Prim::Select => {
                    let mut want: Vec<(u64, u64)> = input
                        .iter()
                        .map(|c| {
                            let e = c.unwrap();
                            (e.key, e.payload)
                        })
                        .collect();
                    want.sort_unstable();
                    let e = selected.unwrap();
                    // The input array itself must be untouched as well.
                    (e.key, e.payload) == want[k] && cells == input
                }
            };
            if correct {
                Outcome::Correct
            } else {
                Outcome::SilentWrong
            }
        }
    };
    (tampering, outcome)
}

const TAMPER_LANES: [(&str, FaultSpec); 4] = [
    (
        "corrupt",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 1500,
            stale_read_ppm: 0,
            drop_write_ppm: 0,
        },
    ),
    (
        // Stale replays are only *material* on blocks that were rewritten
        // with new content since populate, so this lane runs at a higher
        // rate than the others to fire reliably across the seed grid.
        "stale",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 0,
            stale_read_ppm: 6000,
            drop_write_ppm: 0,
        },
    ),
    (
        "drop",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 0,
            stale_read_ppm: 0,
            drop_write_ppm: 1500,
        },
    ),
    (
        "mixed",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 700,
            stale_read_ppm: 700,
            drop_write_ppm: 700,
        },
    ),
];

/// The headline acceptance gate: across every primitive × tamper lane ×
/// seed, zero silent wrong answers — tampering is either detected as a
/// typed error or provably did not affect the (exactly correct) output —
/// and detection actually fires throughout the grid.
#[test]
fn tampered_runs_are_detected_never_silently_wrong() {
    let mut tampered_runs = 0u64;
    let mut detected_runs = 0u64;
    for prim in [Prim::Sort, Prim::Compact, Prim::Select] {
        for (lane, spec) in TAMPER_LANES {
            let mut lane_tampered = 0u64;
            let mut lane_detected = 0u64;
            for seed in 1..=6u64 {
                let (tampering, outcome) = run_case(prim, seed, spec);
                assert_ne!(
                    outcome,
                    Outcome::SilentWrong,
                    "{prim:?}/{lane} seed {seed}: SILENT WRONG ANSWER with \
                     {tampering} tampering faults injected"
                );
                if outcome == Outcome::Detected {
                    assert!(
                        tampering > 0,
                        "{prim:?}/{lane} seed {seed}: detection without injection"
                    );
                }
                if tampering > 0 {
                    lane_tampered += 1;
                    tampered_runs += 1;
                    if outcome == Outcome::Detected {
                        lane_detected += 1;
                        detected_runs += 1;
                    }
                }
            }
            assert!(
                lane_tampered >= 4,
                "{prim:?}/{lane}: the rates are meant to fire in most runs, \
                 got {lane_tampered}/6"
            );
            assert!(
                lane_detected >= 1,
                "{prim:?}/{lane}: detection never fired across the lane"
            );
        }
    }
    // Detection is the overwhelmingly common outcome; the rare remainder is
    // tampering that provably never reached the output (e.g. a dropped
    // write to scratch that was never read again) and was verified correct.
    assert!(
        detected_runs * 10 >= tampered_runs * 8,
        "only {detected_runs}/{tampered_runs} tampered runs were detected"
    );
}

/// A merely unreliable server: transient faults at ~3% per op are retried
/// to the exact correct result, with the retry counters showing real work.
#[test]
fn transient_only_faults_retry_to_the_correct_result() {
    let spec = FaultSpec {
        transient_read_ppm: 30_000,
        corrupt_read_ppm: 0,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    };
    let mut total_retries = 0u64;
    for seed in 1..=4u64 {
        let (tampering, outcome) = run_case(Prim::Sort, seed, spec);
        assert_eq!(tampering, 0, "transients are not tampering");
        assert_eq!(outcome, Outcome::Correct, "seed {seed}");
        let (_, outcome) = run_case(Prim::Compact, seed, spec);
        assert_eq!(outcome, Outcome::Correct, "seed {seed}");
        let (_, outcome) = run_case(Prim::Select, seed, spec);
        assert_eq!(outcome, Outcome::Correct, "seed {seed}");

        // Measure the retry work explicitly on one primitive.
        let mut auth = stack(seed);
        let h = populate(&mut auth, &sort_input(seed));
        auth.inner_mut().set_spec(spec);
        let (_, retry) = try_sort(
            &mut auth,
            &h,
            M,
            SortOrder::Ascending,
            RetryPolicy::default(),
        )
        .unwrap();
        assert!(retry.retries > 0, "3% transients must cause retries");
        assert!(retry.backoff_units >= retry.retries);
        assert_eq!(retry.suppressed_errors, 0);
        total_retries += retry.retries;
    }
    assert!(total_retries > 20, "got only {total_retries} retries");
}

/// The obliviousness side-condition of the fault model: the fault schedule
/// is a function of the operation index only, so two same-shape datasets see
/// identical injected faults, identical retries, and a byte-identical
/// server-visible trace — through the full Auth∘Faulty∘Encrypted stack.
#[test]
fn injected_fault_retries_leave_the_encrypted_trace_data_independent() {
    let spec = FaultSpec {
        transient_read_ppm: 40_000,
        corrupt_read_ppm: 0,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    };
    let run = |dataset_salt: u64| {
        let mut auth = stack(9); // same stack seed: same fault schedule
        let cells: Vec<Cell> = (0..N)
            .map(|i| Some(Element::new(hash64(i as u64, dataset_salt) >> 16, i as u64)))
            .collect();
        let h = populate(&mut auth, &cells);
        auth.inner_mut().inner_mut().enable_trace();
        auth.inner_mut().set_spec(spec);
        let (_, retry) = try_sort(
            &mut auth,
            &h,
            M,
            SortOrder::Ascending,
            RetryPolicy::default(),
        )
        .unwrap();
        let trace = auth.inner_mut().inner_mut().take_trace().unwrap();
        let log = auth.inner().fault_log().to_vec();
        (trace, retry, log)
    };
    let (trace_a, retry_a, log_a) = run(0xDA7A_0001);
    let (trace_b, retry_b, log_b) = run(0xDA7A_0002);
    assert!(!trace_a.is_empty());
    assert_eq!(retry_a, retry_b, "retry schedule must be data-independent");
    assert_eq!(log_a, log_b, "fault schedule must be data-independent");
    assert_eq!(
        trace_a, trace_b,
        "the encrypted server-visible trace must be byte-identical across \
         same-shape datasets even under injected faults and retries"
    );
    assert!(retry_a.retries > 0, "the comparison must exercise retries");
}

/// Same property on the plaintext substrate: FaultyStore directly over a
/// traced ExtMem arena, no encryption/authentication in the stack.
#[test]
fn injected_fault_retries_leave_the_plaintext_trace_data_independent() {
    let spec = FaultSpec {
        transient_read_ppm: 40_000,
        corrupt_read_ppm: 0,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    };
    let run = |dataset_salt: u64| {
        let mem = ExtMem::with_trace(B);
        let mut faulty = FaultyStore::new(mem, 17, FaultSpec::none());
        let h = BlockStore::alloc_array(&mut faulty, N);
        let cells: Vec<Cell> = (0..N)
            .map(|i| Some(Element::new(hash64(i as u64, dataset_salt), i as u64)))
            .collect();
        faulty.try_store_span(&h, 0, &cells).unwrap();
        faulty.set_spec(spec);
        let (_, retry) = try_external_oblivious_sort(
            &mut faulty,
            &h,
            M,
            SortOrder::Ascending,
            RetryPolicy::default(),
        )
        .unwrap();
        let trace = faulty.inner_mut().take_trace().unwrap();
        (trace, retry)
    };
    let (trace_a, retry_a) = run(0x1111);
    let (trace_b, retry_b) = run(0x2222);
    assert_eq!(retry_a, retry_b);
    assert_eq!(trace_a, trace_b);
    assert!(retry_a.retries > 0);
}

/// Seeded determinism end to end: the same stack seed and workload yield
/// byte-identical fault schedules, retry counters, I/O totals and outcomes
/// across two completely fresh runs.
#[test]
fn same_seed_same_workload_is_byte_identical_across_runs() {
    let spec = FaultSpec {
        transient_read_ppm: 25_000,
        corrupt_read_ppm: 400,
        stale_read_ppm: 400,
        drop_write_ppm: 400,
    };
    let run = || {
        let mut auth = stack(23);
        let h = populate(&mut auth, &sort_input(23));
        auth.inner_mut().set_spec(spec);
        let result = try_sort(
            &mut auth,
            &h,
            M,
            SortOrder::Ascending,
            RetryPolicy::default(),
        );
        let classified = match &result {
            Ok((report, retry)) => format!("ok io={} retries={}", report.io.total(), retry.retries),
            Err(e) => format!("err {e}"),
        };
        (
            classified,
            auth.inner().fault_log().to_vec(),
            auth.inner().fault_stats(),
            auth.io_stats(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    assert!(a.2.total() > 0, "the mixed spec must actually inject");
}

/// The façade propagates the typed error shape the quickstart demonstrates:
/// `Err(OdoError::Store(StoreError::Corrupted { .. }))` on a corrupting
/// server, instead of silent wrong output.
#[test]
fn facade_error_shape_matches_the_documented_contract() {
    let mut auth = stack(31);
    let h = populate(&mut auth, &sort_input(31));
    auth.inner_mut().set_spec(FaultSpec {
        transient_read_ppm: 0,
        corrupt_read_ppm: 1_000_000,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    });
    let err = try_sort(
        &mut auth,
        &h,
        M,
        SortOrder::Ascending,
        RetryPolicy::default(),
    )
    .unwrap_err();
    assert!(
        matches!(err, OdoError::Store(StoreError::Corrupted { .. })),
        "got {err:?}"
    );
}

/// Satellite pin for the butterfly-routing bugfix: when a *corrupting* but
/// unauthenticated server feeds garbage into an external routing pass, the
/// fallible façade must surface a typed, tampering-classified
/// [`OdoError::CorruptedRouting`] — the pre-fix code panicked on an
/// `unwrap()` of the routed cells instead. (Without authentication a
/// silently wrong answer also remains possible — the documented trade-off
/// pinned by the `plain_corrupt_silent` bench lane — but a panic never is.)
#[test]
fn unauthenticated_corruption_in_routing_is_a_typed_error_not_a_panic() {
    let mut corrupted_routing = 0u64;
    for seed in 1..=12u64 {
        let enc = EncryptedStore::new(B, 0xBAD_C0DE ^ seed);
        let mut faulty = FaultyStore::new(enc, seed, FaultSpec::none());
        let input = compact_input(seed);
        let h = BlockStore::alloc_array(&mut faulty, input.len());
        faulty.store_span(&h, 0, &input);
        faulty.set_spec(FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 120_000,
            stale_read_ppm: 0,
            drop_write_ppm: 0,
        });
        match try_compact(&mut faulty, &h, M, RetryPolicy::default()) {
            // Corruption can miss the label-critical reads entirely; only
            // the *shape* of the failure is pinned, not that it must fire
            // on every seed.
            Ok(_) => {}
            Err(e @ OdoError::CorruptedRouting { .. }) => {
                assert!(e.is_tampering());
                corrupted_routing += 1;
            }
            Err(e) => panic!("seed {seed}: expected CorruptedRouting, got {e:?}"),
        }
    }
    assert!(
        corrupted_routing > 0,
        "the corrupt lane never reached the routing validator"
    );
}
