//! Property tests pinning `select_kth` (and `quantiles`) against a
//! sorted-reference oracle across the edge cases selection is notorious for:
//! heavy duplication, extreme ranks, dummy-riddled arrays, non-power-of-two
//! lengths and the pure in-cache regime.

use odo_core::extmem::element::Cell;
use odo_core::extmem::{Element, EncryptedStore, ExtMem};
use odo_core::select::{quantiles, select_kth};

/// The contract's reference: position `k` of the occupied cells stably
/// sorted by key — i.e. rank by key, ties broken by original position.
fn oracle(cells: &[Cell], k: usize) -> Element {
    let mut live: Vec<(usize, Element)> = cells
        .iter()
        .enumerate()
        .filter_map(|(j, c)| c.map(|e| (j, e)))
        .collect();
    live.sort_by_key(|&(j, e)| (e.key, j));
    live[k].1
}

fn check(cells: &[Cell], b: usize, m: usize, k: usize, label: &str) {
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(cells);
    let (got, report) = select_kth(&mut mem, &h, m, k);
    assert_eq!(got, oracle(cells, k), "{label}: wrong element");
    assert_eq!(report.rank, k, "{label}: report rank");
    assert_eq!(
        cells[report.index],
        Some(got),
        "{label}: report index does not point at the returned element"
    );
    // Selection must never disturb the input array.
    assert_eq!(mem.snapshot_cells(&h), cells, "{label}: input modified");
}

fn full(n: usize, salt: u64, key_range: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            Some(Element::new(
                odo_core::extmem::util::hash64(i as u64, salt) % key_range,
                odo_core::extmem::util::hash64(i as u64, salt ^ 1) % 100,
            ))
        })
        .collect()
}

#[test]
fn matches_oracle_across_shapes_and_seeds() {
    for (n, b, m) in [
        (512usize, 8usize, 64usize),
        (1024, 16, 128),
        (2048, 32, 256),
        (768, 8, 64),
    ] {
        for salt in 0..4u64 {
            let cells = full(n, salt, 1 << 20);
            for k in [0, n / 2, n - 1] {
                check(
                    &cells,
                    b,
                    m,
                    k,
                    &format!("N={n} B={b} M={m} salt={salt} k={k}"),
                );
            }
        }
    }
}

#[test]
fn extreme_ranks_k0_and_k_n_minus_1() {
    // k = 0 (minimum) and k = N−1 (maximum) drive the bracket clamps: the
    // lower splitter degenerates to −∞ and the upper to +∞ respectively.
    let n = 1024;
    let cells = full(n, 9, 1 << 30);
    check(&cells, 8, 64, 0, "k=0");
    check(&cells, 8, 64, 1, "k=1");
    check(&cells, 8, 64, n - 2, "k=N-2");
    check(&cells, 8, 64, n - 1, "k=N-1");
}

#[test]
fn all_equal_keys() {
    // Every key identical: only the (key, original index) working order keeps
    // the pruning window shrinking; the answer is the element at position k.
    let n = 900;
    let cells: Vec<Cell> = (0..n)
        .map(|i| Some(Element::new(7, i as u64 * 3)))
        .collect();
    for k in [0, 1, n / 2, n - 1] {
        check(&cells, 8, 64, k, &format!("all-equal k={k}"));
    }
}

#[test]
fn heavy_duplicates() {
    // Key ranges far smaller than N: every pruning bracket lands inside a
    // run of duplicates.
    let n = 1000;
    for key_range in [2u64, 3, 5, 16] {
        let cells = full(n, 13, key_range);
        for k in [0, n / 4, n / 2, 3 * n / 4, n - 1] {
            check(&cells, 8, 128, k, &format!("range={key_range} k={k}"));
        }
    }
}

#[test]
fn non_power_of_two_lengths() {
    for n in [3usize, 100, 500, 999, 1025] {
        let cells = full(n, 21, 64);
        let m = 64;
        for k in [0, n / 2, n - 1] {
            check(&cells, 8, m, k, &format!("N={n} k={k}"));
        }
    }
}

#[test]
fn pure_in_cache_path() {
    // N ≤ M: one read pass, no pruning rounds, no writes.
    for (n, b, m) in [(64usize, 8usize, 64usize), (200, 8, 256), (1, 4, 32)] {
        let cells = full(n, 2, 10);
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(&cells);
        let (got, report) = select_kth(&mut mem, &h, m, n / 2);
        assert_eq!(got, oracle(&cells, n / 2), "N={n}");
        assert!(report.in_cache);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.io.writes, 0, "the in-cache path never writes");
    }
}

#[test]
fn dummy_riddled_arrays() {
    // Ranks are over occupied cells only; dummy placement is irrelevant.
    let n = 800;
    for density in [1usize, 2, 5] {
        let cells: Vec<Cell> = (0..n)
            .map(|i| {
                (odo_core::extmem::util::hash64(i as u64, 31) as usize % 6 >= density)
                    .then(|| Element::keyed((i as u64 * 37) % 97, i))
            })
            .collect();
        let live = cells.iter().filter(|c| c.is_some()).count();
        for k in [0, live / 2, live - 1] {
            check(&cells, 8, 64, k, &format!("density={density} k={k}"));
        }
    }
}

#[test]
fn selection_agrees_between_plain_and_encrypted_stores() {
    let cells = full(600, 4, 50);
    for k in [0usize, 300, 599] {
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        let (plain, preport) = select_kth(&mut mem, &h, 64, k);

        let mut enc = EncryptedStore::new(8, 0xE);
        let eh = enc.alloc_array_from_cells(&cells);
        let (encd, ereport) = select_kth(&mut enc, &eh, 64, k);

        assert_eq!(plain, encd, "k={k}");
        assert_eq!(preport.io, ereport.io, "k={k}: encryption added I/Os");
    }
}

#[test]
fn quantiles_match_the_oracle_at_every_requested_rank() {
    let n = 1100;
    for key_range in [4u64, 1 << 16] {
        let cells = full(n, 8, key_range);
        let ranks = [0usize, 1, n / 4, n / 2, 3 * n / 4, n - 2, n - 1];
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        let (got, io) = quantiles(&mut mem, &h, 128, &ranks);
        assert!(io.total() > 0);
        for (i, &rk) in ranks.iter().enumerate() {
            assert_eq!(got[i], oracle(&cells, rk), "range={key_range} rank={rk}");
        }
        assert_eq!(mem.snapshot_cells(&h), cells, "input modified");
    }
}

#[test]
fn quantiles_and_select_kth_agree() {
    let cells = full(512, 77, 9);
    let ranks = [0usize, 100, 255, 256, 511];
    let mut mem = ExtMem::new(8);
    let h = mem.alloc_array_from_cells(&cells);
    let (qs, _) = quantiles(&mut mem, &h, 64, &ranks);
    for (i, &rk) in ranks.iter().enumerate() {
        let mut mem2 = ExtMem::new(8);
        let h2 = mem2.alloc_array_from_cells(&cells);
        let (sel, _) = select_kth(&mut mem2, &h2, 64, rk);
        assert_eq!(qs[i], sel, "rank {rk}");
    }
}
