//! The untrusted-server fault battery with a *real file* at the bottom of
//! the stack: `Auth ∘ Faulty ∘ Encrypted ∘ FileStore` over a tempdir-backed
//! block file.
//!
//! Same safety claim as `fault_battery.rs` — tampering yields a typed
//! `Err(Corrupted | Stale)`, never a silently wrong answer; transients are
//! retried to the exact result — now verified with durable storage actually
//! doing the I/O, plus the file-specific lane: genuine disk-level damage
//! (truncation, garbled bytes) surfaces as a typed [`StoreError`], not a
//! panic or silent garbage.

use extmem::util::hash64;
use odo_core::prelude::*;
use odo_core::{ArrayHandle, FileStore};

type Stack = AuthenticatedStore<FaultyStore<EncryptedStore<FileStore>>>;

const N: usize = 1024;
const B: usize = 8;
const M: usize = 128;

fn stack(seed: u64) -> Stack {
    let file = FileStore::temp(B).expect("tempdir-backed block file");
    let enc = EncryptedStore::with_backing(file, 0xA11CE ^ seed);
    let faulty = FaultyStore::new(enc, seed, FaultSpec::none());
    AuthenticatedStore::new(faulty, 0x4D41_4353 ^ seed)
}

fn populate(auth: &mut Stack, cells: &[Cell]) -> ArrayHandle {
    let h = BlockStore::alloc_array(auth, cells.len());
    auth.try_store_span(&h, 0, cells).unwrap();
    auth.flush_macs().unwrap();
    h
}

fn sort_input(seed: u64) -> Vec<Cell> {
    (0..N)
        .map(|i| Some(Element::new(hash64(i as u64, seed) >> 16, i as u64)))
        .collect()
}

#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Detected,
    Correct,
    SilentWrong,
}

fn run_sort_case(seed: u64, spec: FaultSpec) -> (u64, Outcome) {
    let mut auth = stack(seed);
    let input = sort_input(seed);
    let h = populate(&mut auth, &input);
    auth.inner_mut().set_spec(spec);
    let run = try_sort(
        &mut auth,
        &h,
        M,
        SortOrder::Ascending,
        RetryPolicy::default(),
    );
    auth.inner_mut().set_spec(FaultSpec::none());
    let tampering = auth.inner().fault_stats().tampering();
    let readback = auth.try_load_span(&h, 0, N);

    let outcome = match (run, readback) {
        (Err(e), _) => {
            assert!(e.is_tampering(), "seed {seed}: got {e:?}");
            Outcome::Detected
        }
        (Ok(_), Err(e)) => {
            assert!(
                matches!(e, StoreError::Corrupted { .. } | StoreError::Stale { .. }),
                "seed {seed}: read-back error must be tampering, got {e:?}"
            );
            Outcome::Detected
        }
        (Ok(_), Ok(cells)) => {
            let keys_sorted = cells
                .windows(2)
                .all(|w| w[0].unwrap().key <= w[1].unwrap().key);
            let mut got: Vec<Element> = cells.iter().map(|c| c.unwrap()).collect();
            let mut want: Vec<Element> = input.iter().map(|c| c.unwrap()).collect();
            got.sort_unstable();
            want.sort_unstable();
            if keys_sorted && got == want {
                Outcome::Correct
            } else {
                Outcome::SilentWrong
            }
        }
    };
    (tampering, outcome)
}

const TAMPER_LANES: [(&str, FaultSpec); 4] = [
    (
        "corrupt",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 1500,
            stale_read_ppm: 0,
            drop_write_ppm: 0,
        },
    ),
    (
        "stale",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 0,
            stale_read_ppm: 6000,
            drop_write_ppm: 0,
        },
    ),
    (
        "drop",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 0,
            stale_read_ppm: 0,
            drop_write_ppm: 1500,
        },
    ),
    (
        "mixed",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 700,
            stale_read_ppm: 700,
            drop_write_ppm: 700,
        },
    ),
];

#[test]
fn tampered_file_backed_runs_are_detected_never_silently_wrong() {
    let mut tampered_runs = 0u64;
    let mut detected_runs = 0u64;
    for (lane, spec) in TAMPER_LANES {
        let mut lane_tampered = 0u64;
        for seed in 1..=6u64 {
            let (tampering, outcome) = run_sort_case(seed, spec);
            assert_ne!(
                outcome,
                Outcome::SilentWrong,
                "{lane} seed {seed}: SILENT WRONG ANSWER over the file store \
                 with {tampering} tampering faults injected"
            );
            if tampering > 0 {
                lane_tampered += 1;
                tampered_runs += 1;
                if outcome == Outcome::Detected {
                    detected_runs += 1;
                }
            }
        }
        assert!(
            lane_tampered >= 4,
            "{lane}: the rates are meant to fire in most runs, got {lane_tampered}/6"
        );
    }
    assert!(
        detected_runs > 0,
        "detection never fired ({detected_runs}/{tampered_runs})"
    );
}

#[test]
fn transient_faults_over_the_file_store_retry_to_the_correct_result() {
    let spec = FaultSpec {
        transient_read_ppm: 30_000,
        corrupt_read_ppm: 0,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    };
    for seed in 1..=3u64 {
        let (tampering, outcome) = run_sort_case(seed, spec);
        assert_eq!(tampering, 0, "transients are not tampering");
        assert_eq!(outcome, Outcome::Correct, "seed {seed}");
    }
}

/// Disk-level damage below every software fault layer: garble bytes in the
/// backing file out of band, then read through the full stack.
#[test]
fn out_of_band_file_damage_surfaces_as_a_typed_error() {
    let mut auth = stack(99);
    let h = populate(&mut auth, &sort_input(99));
    let path = auth.inner().inner().backing().path().to_path_buf();

    // Garble the occupancy word of the first cell: FileStore decodes
    // occupancy strictly (0 | 1), so this is disk corruption it must
    // classify itself, before authentication even sees a block.
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(&u64::MAX.to_le_bytes()).unwrap();
    }

    let err = auth
        .try_load_block(&h, 0)
        .expect_err("damaged block must not load");
    assert!(
        matches!(err, StoreError::Corrupted { addr: 0 }),
        "got {err:?}"
    );

    // Blocks on undamaged sectors still verify.
    assert!(auth.try_load_block(&h, 1).is_ok());
}

/// Truncating the file under a live stack turns reads past the cut into
/// typed corruption errors — never a panic, never fabricated data.
#[test]
fn truncation_under_a_live_stack_is_a_typed_error() {
    let mut auth = stack(101);
    let h = populate(&mut auth, &sort_input(101));
    let path = auth.inner().inner().backing().path().to_path_buf();
    let keep = 4 * B as u64 * 24; // first 4 data blocks survive the cut
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(keep)
        .unwrap();

    // The MAC arrays live *after* the data region, so the cut removes them
    // too: every authenticated read — even of a surviving data block — must
    // now fail with a typed error, never panic or fabricate cells.
    for beta in [0usize, 8, h.n_blocks() - 1] {
        let err = auth
            .try_load_block(&h, beta)
            .expect_err("reads from a truncated file must fail");
        assert!(
            matches!(err, StoreError::Corrupted { .. } | StoreError::Io { .. }),
            "block {beta}: got {err:?}"
        );
    }
}
