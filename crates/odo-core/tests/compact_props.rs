//! Property tests for the external butterfly compaction: across seeded
//! random inputs and shapes, the external-memory execution must agree with
//! the in-memory circuit (`obliv_net::butterfly`) and with a plain
//! `Vec`-retain reference — stability, tightness and order preservation
//! included — and expansion must invert compaction.

use odo_core::compact::{compact, compact_order_preserving, expand};
use odo_core::extmem::element::Cell;
use odo_core::extmem::{Element, EncryptedStore, ExtMem};
use odo_core::obliv_net::butterfly;

fn occupancy(n: usize, salt: u64, num: u64, den: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            if odo_core::extmem::util::hash64(i as u64, salt) % den < num {
                Some(Element::keyed(
                    odo_core::extmem::util::hash64(i as u64, !salt),
                    i,
                ))
            } else {
                None
            }
        })
        .collect()
}

/// The plain reference: `Vec::retain` of the occupied cells, dummy-padded.
fn retain_reference(cells: &[Cell]) -> Vec<Cell> {
    let mut kept: Vec<Cell> = cells.to_vec();
    kept.retain(|c| c.is_some());
    kept.resize(cells.len(), None);
    kept
}

fn external_compact(cells: &[Cell], b: usize, m: usize) -> Vec<Cell> {
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(cells);
    compact(&mut mem, &h, m);
    mem.snapshot_cells(&h)
}

#[test]
fn external_equals_circuit_equals_retain_across_seeds_and_shapes() {
    for salt in 0..8u64 {
        for &(n, b, m) in &[
            (129usize, 8usize, 64usize), // n not a power of two
            (256, 8, 64),
            (500, 16, 128),
            (1024, 32, 256),
            (64, 8, 512),  // fully in cache
            (100, 4, 512), // fully in cache, n not a power of two
        ] {
            let cells = occupancy(n, salt, 1 + salt % 4, 5);
            let external = external_compact(&cells, b, m);
            assert_eq!(
                external,
                butterfly::compact(&cells),
                "external vs circuit at n={n} b={b} m={m} salt={salt}"
            );
            assert_eq!(
                external,
                retain_reference(&cells),
                "external vs retain at n={n} b={b} m={m} salt={salt}"
            );
        }
    }
}

#[test]
fn edge_occupancies_are_preserved_exactly() {
    for &(n, b, m) in &[(256usize, 8usize, 64usize), (100, 4, 32), (1usize, 4, 32)] {
        let all_empty: Vec<Cell> = vec![None; n];
        assert_eq!(external_compact(&all_empty, b, m), all_empty);

        let all_full: Vec<Cell> = (0..n).map(|i| Some(Element::keyed(9, i))).collect();
        assert_eq!(external_compact(&all_full, b, m), all_full);

        let mut single: Vec<Cell> = vec![None; n];
        single[n - 1] = Some(Element::keyed(42, n - 1));
        let compacted = external_compact(&single, b, m);
        assert_eq!(compacted[0], Some(Element::keyed(42, n - 1)));
        assert!(compacted[1..].iter().all(|c| c.is_none()));
    }
}

#[test]
fn stability_keeps_equal_keys_in_position_order() {
    // Every occupied cell has the same key; the payload records the original
    // position, so any instability would be visible.
    let cells: Vec<Cell> = (0..400)
        .map(|i| (i % 7 < 3).then(|| Element::new(5, i as u64)))
        .collect();
    let compacted = external_compact(&cells, 16, 128);
    let payloads: Vec<u64> = compacted.iter().flatten().map(|e| e.payload).collect();
    let mut sorted = payloads.clone();
    sorted.sort_unstable();
    assert_eq!(payloads, sorted, "compaction reordered equal-keyed items");
}

#[test]
fn order_preserving_alias_is_the_same_operation() {
    let cells = occupancy(300, 3, 1, 2);
    let mut a = ExtMem::new(8);
    let ha = a.alloc_array_from_cells(&cells);
    let ra = compact(&mut a, &ha, 64);
    let mut b = ExtMem::new(8);
    let hb = b.alloc_array_from_cells(&cells);
    let rb = compact_order_preserving(&mut b, &hb, 64);
    assert_eq!(a.snapshot_cells(&ha), b.snapshot_cells(&hb));
    assert_eq!(ra, rb);
}

#[test]
fn expand_inverts_compact_across_seeds() {
    for salt in 0..6u64 {
        for &(n, b, m) in &[(256usize, 8usize, 64usize), (129, 8, 64), (64, 4, 512)] {
            let cells = occupancy(n, salt, 2, 5);
            let targets: Vec<usize> = cells
                .iter()
                .enumerate()
                .filter(|(_, c)| c.is_some())
                .map(|(j, _)| j)
                .collect();
            let mut mem = ExtMem::new(b);
            let h = mem.alloc_array_from_cells(&cells);
            compact(&mut mem, &h, m);
            expand(&mut mem, &h, &targets, m);
            assert_eq!(
                mem.snapshot_cells(&h),
                cells,
                "round trip at n={n} b={b} m={m} salt={salt}"
            );
        }
    }
}

#[test]
fn external_expand_matches_circuit_expand() {
    for salt in 0..4u64 {
        let n = 256;
        let cells = occupancy(n, salt, 1, 4);
        let r = cells.iter().filter(|c| c.is_some()).count();
        let prefix: Vec<Cell> = cells
            .iter()
            .filter(|c| c.is_some())
            .copied()
            .chain(std::iter::repeat(None))
            .take(n)
            .collect();
        let targets: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(j, _)| j)
            .collect();
        assert_eq!(targets.len(), r);
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&prefix);
        expand(&mut mem, &h, &targets, 64);
        assert_eq!(
            mem.snapshot_cells(&h),
            butterfly::expand(&prefix, &targets),
            "salt={salt}"
        );
    }
}

#[test]
fn encrypted_store_computes_the_same_compaction_with_equal_io() {
    let cells = occupancy(500, 13, 1, 2);
    let mut mem = ExtMem::new(16);
    let h = mem.alloc_array_from_cells(&cells);
    let plain = compact(&mut mem, &h, 128);

    let mut enc = EncryptedStore::new(16, 0x5EC_2E7);
    let eh = enc.alloc_array_from_cells(&cells);
    let encrypted = compact(&mut enc, &eh, 128);

    assert_eq!(enc.snapshot_cells(&eh), mem.snapshot_cells(&h));
    assert_eq!(encrypted.io, plain.io, "re-encryption must add zero I/Os");
    assert_eq!(encrypted.occupied, plain.occupied);
}
