//! # odo-iblt — invertible Bloom lookup tables (placeholder)
//!
//! The paper's randomized compaction algorithms use IBLT-style summaries;
//! this crate hosts them when the compaction PRs land. For now it only
//! pins the workspace member and its dependency on the machine model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Re-exported so the dependency is exercised and the crate graph stays
// honest until the real implementation lands.
pub use extmem::util::hash64;
