//! # odo-baseline — naive reference algorithms for the benchmark harness
//!
//! The algorithms here are *correct and data-oblivious but deliberately
//! unoptimized*: they realise the paper's constructions the way a first,
//! direct translation would, so `odo-bench` can quantify exactly how much
//! each I/O optimization in the main crates buys.
//!
//! Currently: [`naive_external_bitonic_sort`], the full-depth external
//! bitonic sort. It executes every one of the `Θ(log² N)` compare-exchange
//! levels of the bitonic network as its own external pass over the array —
//! no in-cache finishing of small sub-problems, no fusing of levels — so it
//! costs `Θ((N/B) log² N)` I/Os, versus the optimized sorter's
//! `O((N/B)(1 + log²(N/M)))`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use extmem::element::Cell;
use extmem::{ArrayHandle, BlockCache, ExtMem, IoStats};
use obliv_net::compare::exchange_dir_by;
use obliv_net::external_sort::SortOrder;
use std::cmp::Ordering;

/// What the naive sort did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NaiveSortReport {
    /// I/Os charged to this sort.
    pub io: IoStats,
    /// Number of compare-exchange levels executed, each as one full external
    /// pass (`Σ_{k} log2(k) = log p (log p + 1)/2` for padded length `p`).
    pub levels: usize,
    /// Whether the input was padded to a power of two via a scratch array.
    pub padded: bool,
}

/// Sorts array `h` by key (dummies last) with the full-depth external
/// bitonic sort: every level of the network is one pass over the blocks.
///
/// Data-oblivious like the optimized sorter — every cell is rewritten
/// unconditionally, so the trace is a function of the shape only — just
/// expensive. `cache_elems` bounds the LRU block cache used per pass.
pub fn naive_external_bitonic_sort(
    mem: &mut ExtMem,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
) -> NaiveSortReport {
    use extmem::element::{cell_cmp_none_last, cell_cmp_none_last_desc};
    match order {
        SortOrder::Ascending => {
            naive_external_bitonic_sort_by(mem, h, cache_elems, &cell_cmp_none_last)
        }
        SortOrder::Descending => {
            naive_external_bitonic_sort_by(mem, h, cache_elems, &cell_cmp_none_last_desc)
        }
    }
}

/// [`naive_external_bitonic_sort`] with a custom total order on cells. For
/// non-power-of-two lengths `cmp` must order dummies after occupied cells
/// (the sort pads through a dummy-filled scratch array).
pub fn naive_external_bitonic_sort_by<F>(
    mem: &mut ExtMem,
    h: &ArrayHandle,
    cache_elems: usize,
    cmp: &F,
) -> NaiveSortReport
where
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = h.block_elems();
    assert!(
        cache_elems >= 2 * b,
        "external sort needs a private cache of at least two blocks (M >= 2B)"
    );
    let start = mem.stats();
    let n = h.len();
    if n <= 1 {
        return NaiveSortReport {
            io: mem.stats() - start,
            levels: 0,
            padded: false,
        };
    }
    let p = n.next_power_of_two();
    let mut report = if p == n {
        sort_pow2(mem, h, cache_elems, cmp)
    } else {
        let scratch = mem.alloc_array(p);
        for i in 0..h.n_blocks() {
            let blk = mem.read_block(h, i);
            mem.write_block(&scratch, i, blk);
        }
        let mut r = sort_pow2(mem, &scratch, cache_elems, cmp);
        for i in 0..h.n_blocks() {
            let blk = mem.read_block(&scratch, i);
            mem.write_block(h, i, blk);
        }
        r.padded = true;
        r
    };
    report.io = mem.stats() - start;
    report
}

fn sort_pow2<F>(mem: &mut ExtMem, a: &ArrayHandle, cache_elems: usize, cmp: &F) -> NaiveSortReport
where
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = a.block_elems();
    let p = a.len();
    let m_blocks = (cache_elems / b).max(2);
    let mut levels = 0;
    let mut k = 2;
    while k <= p {
        let mut s = k / 2;
        while s >= 1 {
            // One full external pass per level, at element granularity
            // through the block cache. Unconditional writes keep every
            // touched block dirty and the trace shape-determined.
            let mut cache = BlockCache::new(mem, *a, m_blocks);
            for i in 0..p {
                if i & s == 0 {
                    let l = i | s;
                    let asc = i & k == 0;
                    let (u, v) = (cache.read(i), cache.read(l));
                    let (lo, hi) = exchange_dir_by(u, v, asc, cmp);
                    cache.write(i, lo);
                    cache.write(l, hi);
                }
            }
            cache.flush();
            levels += 1;
            s /= 2;
        }
        k *= 2;
    }
    NaiveSortReport {
        io: IoStats::default(),
        levels,
        padded: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::Element;

    fn keyed_input(n: usize, salt: u64) -> Vec<Element> {
        (0..n)
            .map(|i| Element::keyed(extmem::util::hash64(i as u64, salt) % 997, i))
            .collect()
    }

    #[test]
    fn sorts_correctly() {
        for (n, b, m) in [(64usize, 4usize, 16usize), (256, 8, 64), (100, 8, 32)] {
            let mut mem = ExtMem::new(b);
            let input = keyed_input(n, 1);
            let h = mem.alloc_array_from_elements(&input);
            naive_external_bitonic_sort(&mut mem, &h, m, SortOrder::Ascending);
            let mut expected = input;
            expected.sort_unstable();
            assert_eq!(mem.snapshot_elements(&h), expected);
        }
    }

    #[test]
    fn executes_full_depth_levels() {
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_elements(&keyed_input(256, 2));
        let report = naive_external_bitonic_sort(&mut mem, &h, 32, SortOrder::Ascending);
        // log p = 8 → 8·9/2 = 36 levels, each one read+write pass over 32
        // blocks.
        assert_eq!(report.levels, 36);
        assert_eq!(report.io.total(), 36 * 2 * 32);
    }

    #[test]
    fn descending_works() {
        let mut mem = ExtMem::new(4);
        let input = keyed_input(32, 9);
        let h = mem.alloc_array_from_elements(&input);
        naive_external_bitonic_sort(&mut mem, &h, 16, SortOrder::Descending);
        let mut expected = input;
        expected.sort_unstable();
        expected.reverse();
        assert_eq!(mem.snapshot_elements(&h), expected);
    }
}
