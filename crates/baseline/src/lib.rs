//! # odo-baseline — naive reference algorithms for the benchmark harness
//!
//! The algorithms here are *correct and data-oblivious but deliberately
//! unoptimized*: they realise the paper's constructions the way a first,
//! direct translation would, so `odo-bench` can quantify exactly how much
//! each I/O optimization in the main crates buys.
//!
//! Currently:
//!
//! * [`naive_external_bitonic_sort`] — the full-depth external bitonic sort.
//!   It executes every one of the `Θ(log² N)` compare-exchange levels of the
//!   bitonic network as its own external pass over the array — no in-cache
//!   finishing of small sub-problems, no fusing of levels — so it costs
//!   `Θ((N/B) log² N)` I/Os, versus the optimized sorter's
//!   `O((N/B)(1 + log²(N/M)))`.
//! * [`naive_external_butterfly_compact`] — the full-depth external butterfly
//!   compaction (paper §3). It computes the distance labels with the same
//!   streaming rank pass the optimized algorithm uses, but then executes
//!   every one of the `⌈log₂ N⌉` routing levels as its own external
//!   block-pair pass — no composition of the small-stride levels inside the
//!   private cache — so it costs `Θ((N/B) log N)` I/Os, versus
//!   `odo-core::compact`'s `O((N/B)(1 + log(N/M)))`.
//! * [`naive_select_kth`] — sort-then-index selection (paper §4's strawman):
//!   full-depth bitonic sort of a working copy, then a streaming pass that
//!   latches the `k`-th cell and one more that recovers the original element
//!   — `Θ((N/B) log² N)` I/Os, versus `odo-core::select`'s iterated
//!   prune-and-compact `O((N/B)(1 + log(N/M)))`. Same contract as the
//!   optimized algorithm: rank by key, ties broken by original position,
//!   trace independent of data and of `k`, input left unmodified.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use extmem::element::Cell;
use extmem::{ArrayHandle, Block, BlockCache, Element, ExtMem, IoStats};
use obliv_net::butterfly;
use obliv_net::compare::exchange_dir_by;
use obliv_net::external_sort::SortOrder;
use std::cmp::Ordering;

/// What the naive sort did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NaiveSortReport {
    /// I/Os charged to this sort.
    pub io: IoStats,
    /// Number of compare-exchange levels executed, each as one full external
    /// pass (`Σ_{k} log2(k) = log p (log p + 1)/2` for padded length `p`).
    pub levels: usize,
    /// Whether the input was padded to a power of two via a scratch array.
    pub padded: bool,
}

/// Sorts array `h` by key (dummies last) with the full-depth external
/// bitonic sort: every level of the network is one pass over the blocks.
///
/// Data-oblivious like the optimized sorter — every cell is rewritten
/// unconditionally, so the trace is a function of the shape only — just
/// expensive. `cache_elems` bounds the LRU block cache used per pass.
pub fn naive_external_bitonic_sort(
    mem: &mut ExtMem,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
) -> NaiveSortReport {
    use extmem::element::{cell_cmp_none_last, cell_cmp_none_last_desc};
    match order {
        SortOrder::Ascending => {
            naive_external_bitonic_sort_by(mem, h, cache_elems, &cell_cmp_none_last)
        }
        SortOrder::Descending => {
            naive_external_bitonic_sort_by(mem, h, cache_elems, &cell_cmp_none_last_desc)
        }
    }
}

/// [`naive_external_bitonic_sort`] with a custom total order on cells. For
/// non-power-of-two lengths `cmp` must order dummies after occupied cells
/// (the sort pads through a dummy-filled scratch array).
pub fn naive_external_bitonic_sort_by<F>(
    mem: &mut ExtMem,
    h: &ArrayHandle,
    cache_elems: usize,
    cmp: &F,
) -> NaiveSortReport
where
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = h.block_elems();
    assert!(
        cache_elems >= 2 * b,
        "external sort needs a private cache of at least two blocks (M >= 2B)"
    );
    let start = mem.stats();
    let n = h.len();
    if n <= 1 {
        return NaiveSortReport {
            io: mem.stats() - start,
            levels: 0,
            padded: false,
        };
    }
    let p = n.next_power_of_two();
    let mut report = if p == n {
        sort_pow2(mem, h, cache_elems, cmp)
    } else {
        let scratch = mem.alloc_array(p);
        for i in 0..h.n_blocks() {
            let blk = mem.read_block(h, i);
            mem.write_block(&scratch, i, blk);
        }
        let mut r = sort_pow2(mem, &scratch, cache_elems, cmp);
        for i in 0..h.n_blocks() {
            let blk = mem.read_block(&scratch, i);
            mem.write_block(h, i, blk);
        }
        r.padded = true;
        r
    };
    report.io = mem.stats() - start;
    report
}

fn sort_pow2<F>(mem: &mut ExtMem, a: &ArrayHandle, cache_elems: usize, cmp: &F) -> NaiveSortReport
where
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = a.block_elems();
    let p = a.len();
    let m_blocks = (cache_elems / b).max(2);
    let mut levels = 0;
    let mut k = 2;
    while k <= p {
        let mut s = k / 2;
        while s >= 1 {
            // One full external pass per level, at element granularity
            // through the block cache. Unconditional writes keep every
            // touched block dirty and the trace shape-determined.
            let mut cache = BlockCache::new(mem, *a, m_blocks);
            for i in 0..p {
                if i & s == 0 {
                    let l = i | s;
                    let asc = i & k == 0;
                    let (u, v) = (cache.read(i), cache.read(l));
                    let (lo, hi) = exchange_dir_by(u, v, asc, cmp);
                    cache.write(i, lo);
                    cache.write(l, hi);
                }
            }
            cache.flush();
            levels += 1;
            s /= 2;
        }
        k *= 2;
    }
    NaiveSortReport {
        io: IoStats::default(),
        levels,
        padded: false,
    }
}

/// What the naive compaction did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NaiveCompactReport {
    /// I/Os charged to this compaction.
    pub io: IoStats,
    /// Number of butterfly levels executed, each as one full external pass.
    pub levels: usize,
    /// Number of occupied cells (the compacted prefix length).
    pub occupied: usize,
}

/// Full-depth external butterfly compaction: occupied cells move to the
/// front of `h` preserving their relative order, with every routing level of
/// the §3 network run as its own external block-pair pass.
///
/// Data-oblivious like the optimized compaction — the pair sweep and the
/// unconditional rewrites make the trace a function of the shape only — just
/// expensive: `Θ((N/B) log N)` I/Os with no in-cache level composition.
///
/// # Panics
/// Panics if `cache_elems < 4·B` or if `B` is not a power of two (the same
/// block-alignment restriction as the optimized external path).
pub fn naive_external_butterfly_compact(
    mem: &mut ExtMem,
    h: &ArrayHandle,
    cache_elems: usize,
) -> NaiveCompactReport {
    let b = h.block_elems();
    assert!(
        cache_elems >= 4 * b,
        "naive compaction needs a private cache of at least four blocks (M >= 4B)"
    );
    assert!(
        b.is_power_of_two(),
        "external butterfly compaction requires a power-of-two block size"
    );
    let start = mem.stats();
    let n = h.len();
    let lv = butterfly::levels(n);
    if lv == 0 {
        let occupied = mem.read_block(h, 0).occupancy().min(n);
        return NaiveCompactReport {
            io: mem.stats() - start,
            levels: 0,
            occupied,
        };
    }

    // Distance-label pass (identical to the optimized algorithm's): occupied
    // cell j gets label j - rank(j) in a parallel scratch array.
    let dist = mem.alloc_array(n);
    let mut rank = 0usize;
    for beta in 0..h.n_blocks() {
        let blk = mem.read_block(h, beta);
        let mut lab = Block::empty(b);
        for r in 0..b {
            let j = beta * b + r;
            if j >= n {
                break;
            }
            if blk.get(r).is_some() {
                lab.set(r, Some(Element::new((j - rank) as u64, 0)));
                rank += 1;
            }
        }
        mem.write_block(&dist, beta, lab);
    }

    // Every level is one external pass. Wires of stride s < B live inside a
    // window of two consecutive blocks; wires of stride s ≥ B connect equal
    // offsets of blocks (β, β + s/B). Either way: label pair first (decides
    // and clears), then data pair, all writes unconditional.
    for i in 0..lv {
        let s = 1usize << i;
        let nb = h.n_blocks();
        let k = (s / b).max(1);
        if s >= b && k >= nb {
            continue; // no wire of this stride fits the array
        }
        for beta in 0..nb.saturating_sub(k) {
            let mut mask = vec![false; 2 * b]; // source offsets within the pair
            mem.modify_block_pair(&dist, beta, beta + k, |lo_blk, hi_blk| {
                for r in 0..b {
                    // Destination j = beta*b + r; source j + s sits at pair
                    // offset r + s (s < B keeps it inside the two blocks;
                    // s >= B aligns it to offset r of the high block).
                    let off = if s < b { r + s } else { r + b };
                    let src = if off < b {
                        lo_blk.get(off)
                    } else {
                        hi_blk.get(off - b)
                    };
                    if let Some(d_el) = src {
                        if d_el.key & s as u64 != 0 {
                            let dst = lo_blk.get(r);
                            assert!(dst.is_none(), "butterfly routing collision");
                            mask[off] = true;
                            lo_blk.set(r, Some(Element::new(d_el.key - s as u64, 0)));
                            if off < b {
                                lo_blk.set(off, None);
                            } else {
                                hi_blk.set(off - b, None);
                            }
                        }
                    }
                }
            });
            mem.modify_block_pair(h, beta, beta + k, |lo_blk, hi_blk| {
                for r in 0..b {
                    let off = if s < b { r + s } else { r + b };
                    if mask[off] {
                        let src = if off < b {
                            lo_blk.get(off)
                        } else {
                            hi_blk.get(off - b)
                        };
                        lo_blk.set(r, src);
                        if off < b {
                            lo_blk.set(off, None);
                        } else {
                            hi_blk.set(off - b, None);
                        }
                    }
                }
            });
        }
        // Wires whose destination lies in the last k blocks have no pair
        // partner; for s < B their intra-block hops still need one
        // read-modify-write of the final block.
        if s < b {
            let beta = nb - 1;
            let mut mask = vec![false; b];
            let mut lab = mem.read_block(&dist, beta);
            for r in 0..b.saturating_sub(s) {
                if let Some(d_el) = lab.get(r + s) {
                    if d_el.key & s as u64 != 0 {
                        assert!(lab.get(r).is_none(), "butterfly routing collision");
                        mask[r + s] = true;
                        lab.set(r, Some(Element::new(d_el.key - s as u64, 0)));
                        lab.set(r + s, None);
                    }
                }
            }
            mem.write_block(&dist, beta, lab);
            let mut blk = mem.read_block(h, beta);
            for r in 0..b.saturating_sub(s) {
                if mask[r + s] {
                    blk.set(r, blk.get(r + s));
                    blk.set(r + s, None);
                }
            }
            mem.write_block(h, beta, blk);
        }
    }

    NaiveCompactReport {
        io: mem.stats() - start,
        levels: lv,
        occupied: rank,
    }
}

/// What the naive selection did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NaiveSelectReport {
    /// I/Os charged to this selection.
    pub io: IoStats,
    /// Compare-exchange levels the underlying full-depth sort executed.
    pub levels: usize,
    /// Original array index of the selected element.
    pub index: usize,
}

/// Naive sort-then-index selection: builds a working copy of
/// `(key, original index)` items, sorts it with the full-depth external
/// bitonic sort, and streams the result to latch the `k`-th cell — then
/// streams the untouched input once more to recover the full element, so the
/// winning position never shapes the trace. Data- and rank-oblivious like
/// `odo-core::select`, just expensive: `Θ((N/B) log² N)` I/Os.
///
/// # Panics
/// Panics if `k` is not smaller than the number of occupied cells, or if
/// `cache_elems < 2·B`.
pub fn naive_select_kth(
    mem: &mut ExtMem,
    h: &ArrayHandle,
    cache_elems: usize,
    k: usize,
) -> (Element, NaiveSelectReport) {
    use extmem::element::cell_cmp_none_last;
    let start = mem.stats();
    let b = h.block_elems();
    let n = h.len();

    // Working copy (key, original index): a strict total order under
    // duplicate keys, matching the optimized algorithm's contract.
    let wrk = mem.alloc_array(n);
    let mut live = 0usize;
    for beta in 0..h.n_blocks() {
        let blk = mem.read_block(h, beta);
        let mut out = Block::empty(b);
        for t in 0..b {
            let j = beta * b + t;
            if j >= n {
                break;
            }
            if let Some(e) = blk.get(t) {
                out.set(t, Some(Element::new(e.key, j as u64)));
                live += 1;
            }
        }
        mem.write_block(&wrk, beta, out);
    }
    assert!(k < live, "rank k out of range: k={k} >= {live} occupied");

    let sort = naive_external_bitonic_sort_by(mem, &wrk, cache_elems, &cell_cmp_none_last);

    // Latch the k-th cell of the sorted copy in a register (never a
    // rank-addressed read).
    let mut winner: Cell = None;
    for beta in 0..wrk.n_blocks() {
        let blk = mem.read_block(&wrk, beta);
        for t in 0..b {
            if beta * b + t == k {
                winner = blk.get(t);
            }
        }
    }
    let idx = winner
        .expect("rank k is within the occupied prefix")
        .payload as usize;

    // Recover the full original element by streaming the untouched input.
    let mut found: Cell = None;
    for beta in 0..h.n_blocks() {
        let blk = mem.read_block(h, beta);
        for t in 0..b {
            if beta * b + t == idx {
                found = blk.get(t);
            }
        }
    }
    (
        found.expect("the selected index holds an occupied cell"),
        NaiveSelectReport {
            io: mem.stats() - start,
            levels: sort.levels,
            index: idx,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed_input(n: usize, salt: u64) -> Vec<Element> {
        (0..n)
            .map(|i| Element::keyed(extmem::util::hash64(i as u64, salt) % 997, i))
            .collect()
    }

    #[test]
    fn sorts_correctly() {
        for (n, b, m) in [(64usize, 4usize, 16usize), (256, 8, 64), (100, 8, 32)] {
            let mut mem = ExtMem::new(b);
            let input = keyed_input(n, 1);
            let h = mem.alloc_array_from_elements(&input);
            naive_external_bitonic_sort(&mut mem, &h, m, SortOrder::Ascending);
            let mut expected = input;
            expected.sort_unstable();
            assert_eq!(mem.snapshot_elements(&h), expected);
        }
    }

    #[test]
    fn executes_full_depth_levels() {
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_elements(&keyed_input(256, 2));
        let report = naive_external_bitonic_sort(&mut mem, &h, 32, SortOrder::Ascending);
        // log p = 8 → 8·9/2 = 36 levels, each one read+write pass over 32
        // blocks.
        assert_eq!(report.levels, 36);
        assert_eq!(report.io.total(), 36 * 2 * 32);
    }

    #[test]
    fn descending_works() {
        let mut mem = ExtMem::new(4);
        let input = keyed_input(32, 9);
        let h = mem.alloc_array_from_elements(&input);
        naive_external_bitonic_sort(&mut mem, &h, 16, SortOrder::Descending);
        let mut expected = input;
        expected.sort_unstable();
        expected.reverse();
        assert_eq!(mem.snapshot_elements(&h), expected);
    }

    fn sparse_cells(n: usize, salt: u64) -> Vec<Cell> {
        (0..n)
            .map(|i| {
                if extmem::util::hash64(i as u64, salt).is_multiple_of(3) {
                    Some(Element::keyed(i as u64, i))
                } else {
                    None
                }
            })
            .collect()
    }

    #[test]
    fn naive_compact_matches_reference() {
        for (n, b, m) in [
            (64usize, 4usize, 16usize),
            (256, 8, 64),
            (100, 4, 16),
            (7, 8, 32), // single block
        ] {
            for salt in [1u64, 2, 3] {
                let cells = sparse_cells(n, salt);
                let mut mem = ExtMem::new(b);
                let h = mem.alloc_array_from_cells(&cells);
                let report = naive_external_butterfly_compact(&mut mem, &h, m);
                let mut expected: Vec<Cell> =
                    cells.iter().filter(|c| c.is_some()).copied().collect();
                expected.resize(n, None);
                assert_eq!(mem.snapshot_cells(&h), expected, "N={n} B={b} M={m}");
                assert_eq!(report.levels, butterfly::levels(n));
                assert_eq!(
                    report.occupied,
                    cells.iter().filter(|c| c.is_some()).count()
                );
            }
        }
    }

    #[test]
    fn naive_select_matches_stable_sort_reference() {
        for (n, b, m) in [(256usize, 8usize, 32usize), (500, 16, 64)] {
            let input: Vec<Element> = (0..n)
                .map(|i| Element::keyed(extmem::util::hash64(i as u64, 3) % 40, i * 2))
                .collect();
            let mut reference: Vec<(u64, usize)> =
                input.iter().enumerate().map(|(j, e)| (e.key, j)).collect();
            reference.sort_unstable();
            for k in [0, n / 2, n - 1] {
                let mut mem = ExtMem::new(b);
                let h = mem.alloc_array_from_elements(&input);
                let (got, report) = naive_select_kth(&mut mem, &h, m, k);
                let (key, j) = reference[k];
                assert_eq!(got, input[j], "N={n} k={k}");
                assert_eq!(got.key, key);
                assert_eq!(report.index, j);
                assert!(report.io.total() > 0);
                // Selection must not disturb the input.
                assert_eq!(mem.snapshot_elements(&h), input);
            }
        }
    }

    #[test]
    fn naive_select_trace_is_independent_of_k_and_data() {
        let trace_of = |salt: u64, k: usize| {
            let input = keyed_input(128, salt);
            let mut mem = ExtMem::with_trace(8);
            let h = mem.alloc_array_from_elements(&input);
            naive_select_kth(&mut mem, &h, 32, k);
            mem.take_trace().unwrap()
        };
        let reference = trace_of(1, 0);
        for (salt, k) in [(1u64, 127usize), (2, 64), (9, 3)] {
            assert_eq!(reference, trace_of(salt, k), "salt={salt} k={k}");
        }
    }

    #[test]
    fn naive_compact_executes_full_depth() {
        // Every level is an external pass: the I/O count scales with log N,
        // not log(N/M), no matter how large the cache is.
        let cells = sparse_cells(256, 5);
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        let report = naive_external_butterfly_compact(&mut mem, &h, 1 << 16);
        assert_eq!(report.levels, 8);
        // Label pass: 32 reads + 32 writes. Each of the 8 levels rewrites
        // label and data pairs across the whole array.
        assert!(report.io.total() > 8 * 2 * 32);
    }
}
