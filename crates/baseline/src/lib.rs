//! placeholder
