//! # odo-bench — the I/O-count benchmark harness
//!
//! Runs the workspace's algorithms on an [`ExtMem`] simulator across a grid
//! of `(N, B, M)` model parameters, reads back the exact I/O counters, and
//! checks them against the paper's stated bounds. Results are emitted as
//! `BENCH_sort.json` so every PR's perf trajectory is recorded from PR 1
//! onwards.
//!
//! For the external oblivious sort the bound checked is Lemma 2's
//!
//! ```text
//! total I/Os  ≤  C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)
//! ```
//!
//! with the explicit constant `C =` [`BOUND_CONSTANT`]. Alongside the
//! optimized sorter the harness runs the `baseline` crate's full-depth
//! bitonic sort, so the speedup delivered by in-cache finishing and stride
//! batching is measured, not assumed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baseline::naive_external_bitonic_sort;
use extmem::{Element, ExtMem, IoStats};
use obliv_net::external_sort::{external_oblivious_sort, SortOrder, SortReport};
use std::fmt::Write as _;

/// The explicit constant `C` of the checked I/O bound.
pub const BOUND_CONSTANT: u64 = 4;

/// One `(N, B, M)` parameter point of the benchmark grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridPoint {
    /// Number of elements `N`.
    pub n: usize,
    /// Block size `B` in elements.
    pub b: usize,
    /// Private cache size `M` in elements.
    pub m: usize,
}

/// Measured result of one grid point.
#[derive(Clone, Debug)]
pub struct SortBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// I/O statistics of the optimized external oblivious sort.
    pub optimized: IoStats,
    /// Structural report of the optimized sort.
    pub report: SortReport,
    /// I/O statistics of the naive full-depth baseline, if it was run.
    pub naive: Option<IoStats>,
    /// Levels the naive baseline executed, if it was run.
    pub naive_levels: Option<usize>,
    /// The bound `C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)`.
    pub bound_total: u64,
    /// Whether the optimized sort's total I/Os satisfy the bound.
    pub within_bound: bool,
}

impl SortBenchResult {
    /// Naive-over-optimized I/O ratio (the headline speedup), if the naive
    /// baseline was run.
    pub fn speedup(&self) -> Option<f64> {
        self.naive
            .map(|n| n.total() as f64 / self.optimized.total().max(1) as f64)
    }
}

/// The Lemma 2 bound with the explicit constant [`BOUND_CONSTANT`]:
/// `C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)`.
pub fn sort_io_bound(n: usize, b: usize, m: usize) -> u64 {
    let n_blocks = n.div_ceil(b) as u64;
    let ratio = n.div_ceil(m);
    let lg = if ratio <= 1 {
        0u64
    } else {
        u64::from(usize::BITS - (ratio - 1).leading_zeros())
    };
    BOUND_CONSTANT * n_blocks * (1 + lg * lg)
}

/// Deterministic pseudo-random input used by every benchmark run, so results
/// are reproducible across machines and PRs.
pub fn bench_input(n: usize, salt: u64) -> Vec<Element> {
    (0..n)
        .map(|i| Element::keyed(extmem::util::hash64(i as u64, salt), i))
        .collect()
}

/// Measures one grid point. Runs the optimized sorter always and the naive
/// baseline when `run_naive` is set (it costs `Θ((N/B) log² N)` simulated
/// I/Os, which is cheap to simulate but noisy to read). Panics if either
/// sorter fails to actually sort — a benchmark of a wrong algorithm is
/// meaningless.
pub fn run_sort_point(point: GridPoint, run_naive: bool) -> SortBenchResult {
    let GridPoint { n, b, m } = point;
    let input = bench_input(n, 0xB0B);
    let mut expected = input.clone();
    expected.sort_unstable();

    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_elements(&input);
    let report = external_oblivious_sort(&mut mem, &h, m, SortOrder::Ascending);
    assert_eq!(
        mem.snapshot_elements(&h),
        expected,
        "optimized sort failed at N={n} B={b} M={m}"
    );
    let optimized = report.io;

    let (naive, naive_levels) = if run_naive {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_elements(&input);
        let nrep = naive_external_bitonic_sort(&mut mem, &h, m, SortOrder::Ascending);
        assert_eq!(
            mem.snapshot_elements(&h),
            expected,
            "naive sort failed at N={n} B={b} M={m}"
        );
        (Some(nrep.io), Some(nrep.levels))
    } else {
        (None, None)
    };

    let bound_total = sort_io_bound(n, b, m);
    SortBenchResult {
        point,
        optimized,
        report,
        naive,
        naive_levels,
        bound_total,
        within_bound: optimized.total() <= bound_total,
    }
}

/// The default grid: `B = 64`, `N ∈ {2^14, 2^16, 2^18}`,
/// `M ∈ {2^10, 2^13}` — the 3×2 grid the acceptance criteria call for,
/// including the headline point `(2^18, 64, 2^13)`.
pub fn default_grid() -> Vec<GridPoint> {
    let mut grid = Vec::new();
    for &n in &[1usize << 14, 1 << 16, 1 << 18] {
        for &m in &[1usize << 10, 1 << 13] {
            grid.push(GridPoint { n, b: 64, m });
        }
    }
    grid
}

/// Renders the results as the `BENCH_sort.json` document (hand-rolled JSON;
/// the workspace deliberately has no external dependencies).
pub fn to_json(results: &[SortBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"external_oblivious_sort\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str("  \"bound\": \"C * ceil(N/B) * (1 + ceil(log2(ceil(N/M)))^2)\",\n");
    let _ = writeln!(s, "  \"bound_constant\": {BOUND_CONSTANT},");
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"optimized_reads\": {},", r.optimized.reads);
        let _ = writeln!(s, "      \"optimized_writes\": {},", r.optimized.writes);
        let _ = writeln!(s, "      \"optimized_total\": {},", r.optimized.total());
        let _ = writeln!(s, "      \"region_elems\": {},", r.report.region_elems);
        let _ = writeln!(
            s,
            "      \"external_levels\": {},",
            r.report.external_levels
        );
        let _ = writeln!(s, "      \"finish_passes\": {},", r.report.finish_passes);
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        match (r.naive, r.naive_levels, r.speedup()) {
            (Some(naive), Some(levels), Some(speedup)) => {
                let _ = writeln!(s, "      \"naive_total\": {},", naive.total());
                let _ = writeln!(s, "      \"naive_levels\": {levels},");
                let _ = writeln!(s, "      \"speedup_vs_naive\": {speedup:.2},");
            }
            _ => {
                s.push_str("      \"naive_total\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the results for terminal output.
pub fn to_table(results: &[SortBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>6}",
        "N", "B", "M", "opt I/Os", "naive I/Os", "bound", "speedup", "ok"
    );
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let naive = r
            .naive
            .map(|x| x.total().to_string())
            .unwrap_or_else(|| "-".into());
        let speedup = r
            .speedup()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>6}",
            n,
            b,
            m,
            r.optimized.total(),
            naive,
            r.bound_total,
            speedup,
            if r.within_bound { "yes" } else { "NO" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula_matches_hand_computation() {
        // N = 2^18, B = 64, M = 2^13: 4 * 4096 * (1 + 25) = 425,984.
        assert_eq!(sort_io_bound(1 << 18, 64, 1 << 13), 425_984);
        // N <= M: scan-bound only.
        assert_eq!(sort_io_bound(1 << 10, 64, 1 << 12), 4 * 16);
    }

    #[test]
    fn small_point_is_within_bound_and_beats_naive_3x() {
        // Debug-friendly miniature of the acceptance criterion: the in-cache
        // finishing + stride batching must beat full depth by ≥ 3×.
        let point = GridPoint {
            n: 1 << 12,
            b: 16,
            m: 1 << 8,
        };
        let r = run_sort_point(point, true);
        assert!(r.within_bound, "optimized sort exceeded the bound: {r:?}");
        let speedup = r.speedup().unwrap();
        assert!(speedup >= 3.0, "speedup only {speedup:.2}x");
    }

    #[test]
    fn grid_is_three_by_two() {
        let grid = default_grid();
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|p| p.b == 64));
    }

    #[test]
    fn json_has_all_points_and_fields() {
        let results: Vec<SortBenchResult> = [
            GridPoint {
                n: 256,
                b: 8,
                m: 64,
            },
            GridPoint {
                n: 512,
                b: 8,
                m: 64,
            },
        ]
        .into_iter()
        .map(|p| run_sort_point(p, true))
        .collect();
        let json = to_json(&results);
        assert_eq!(json.matches("\"optimized_total\"").count(), 2);
        assert!(json.contains("\"bound_constant\": 4"));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"within_bound\": true"));
    }

    #[test]
    fn exact_io_counts_at_a_reference_point() {
        // N = 2^12, B = 16, M = 2^8: F = 256, passes = presort(1) +
        // external(1+2+3+4) + finishing(4) = 15, each 2·256 I/Os.
        let r = run_sort_point(
            GridPoint {
                n: 1 << 12,
                b: 16,
                m: 1 << 8,
            },
            false,
        );
        assert_eq!(r.optimized.total(), 15 * 2 * 256);
        assert_eq!(r.report.external_levels, 10);
        assert_eq!(r.report.finish_passes, 4);
    }
}
