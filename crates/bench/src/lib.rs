//! # odo-bench — the I/O-count benchmark harness
//!
//! Runs the workspace's algorithms on an [`ExtMem`] simulator across a grid
//! of `(N, B, M)` model parameters, reads back the exact I/O counters, and
//! checks them against the paper's stated bounds. Results are emitted as
//! `BENCH_sort.json` so every PR's perf trajectory is recorded from PR 1
//! onwards.
//!
//! For the external oblivious sort the bound checked is Lemma 2's
//!
//! ```text
//! total I/Os  ≤  C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)
//! ```
//!
//! with the explicit constant `C =` [`BOUND_CONSTANT`]. Alongside the
//! optimized sorter the harness runs the `baseline` crate's full-depth
//! bitonic sort, so the speedup delivered by in-cache finishing and stride
//! batching is measured, not assumed.
//!
//! Every sort point also runs the randomized **bucket oblivious sort**
//! head-to-head (plaintext *and* encrypted, with byte-identical traces
//! asserted), checked against the optimal-form bound
//!
//! ```text
//! total I/Os  ≤  C_k · ⌈N/B⌉ · max(1, ⌈log_{M/B}(N/B)⌉)
//! ```
//!
//! with `C_k =` [`BUCKET_BOUND_CONSTANT`] — the `log_{M/B}` gate, not the
//! squared binary log. At every grid point with `N/M ≥ 4` the bench further
//! gates that the bucket sort's I/Os are strictly below the Lemma 2 sort's.
//!
//! For the §3 external butterfly compaction (`odo-core::compact`) the bound
//! checked is
//!
//! ```text
//! total I/Os  ≤  C_c · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)
//! ```
//!
//! with `C_c =` [`COMPACT_BOUND_CONSTANT`] — note the *single* log factor,
//! the paper's compaction advantage over sorting. The compaction results are
//! emitted as `BENCH_compact.json`; each point also runs the identical
//! algorithm over an [`extmem::EncryptedStore`] and asserts the
//! re-encryption layer adds **zero** I/Os.
//!
//! For the §4 selection (`odo-core::select`) the bound checked is the same
//! single-log form with `C_s =` [`SELECT_BOUND_CONSTANT`] — selection is
//! iterated prune-and-compact, so it inherits compaction's advantage over
//! sorting. Alongside the bound, each `BENCH_select.json` point runs the
//! naive sort-then-index baseline and replays the identical selection over an
//! [`extmem::EncryptedStore`], asserting not just equal I/O counts but a
//! **byte-identical access trace** (and, separately, that the trace is
//! independent of the requested rank `k`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baseline::{naive_external_bitonic_sort, naive_external_butterfly_compact, naive_select_kth};
use extmem::element::Cell;
use extmem::{Element, EncryptedStore, ExtMem, FaultSpec, FaultStats, IoStats};
use obliv_net::bucket_sort::{bucket_oblivious_sort, BucketSortConfig, BucketSortReport};
use obliv_net::external_sort::{external_oblivious_sort, SortOrder, SortReport};
use odo_core::compact::{compact, CompactReport};
use odo_core::select::{select_kth, SelectReport};
use std::fmt::Write as _;

/// The explicit constant `C` of the checked sort I/O bound.
pub const BOUND_CONSTANT: u64 = 4;

/// The explicit constant `C_k` of the checked bucket-sort I/O bound.
pub const BUCKET_BOUND_CONSTANT: u64 = 12;

/// The fixed seed of every benchmarked bucket sort, so runs are reproducible
/// across machines and PRs (and so a freak bucket overflow would be a
/// deterministic, debuggable event rather than flaky CI).
pub const BUCKET_SORT_SEED: u64 = 0x0B0C_4E75;

/// The explicit constant `C_c` of the checked compaction I/O bound.
pub const COMPACT_BOUND_CONSTANT: u64 = 32;

/// The explicit constant `C_s` of the checked selection I/O bound.
pub const SELECT_BOUND_CONSTANT: u64 = 64;

/// One `(N, B, M)` parameter point of the benchmark grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridPoint {
    /// Number of elements `N`.
    pub n: usize,
    /// Block size `B` in elements.
    pub b: usize,
    /// Private cache size `M` in elements.
    pub m: usize,
}

/// Measured result of one grid point.
#[derive(Clone, Debug)]
pub struct SortBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// I/O statistics of the optimized external oblivious sort.
    pub optimized: IoStats,
    /// Structural report of the optimized sort.
    pub report: SortReport,
    /// I/Os of the identical sort over the re-encrypting store (always equal
    /// to `optimized` — the encryption layer costs zero extra I/Os).
    pub encrypted: IoStats,
    /// I/O statistics of the randomized bucket oblivious sort head-to-head.
    pub bucket: IoStats,
    /// Structural report of the bucket sort.
    pub bucket_report: BucketSortReport,
    /// I/Os of the bucket sort over the re-encrypting store (always equal to
    /// `bucket`; [`run_sort_point`] additionally asserts the plaintext and
    /// encrypted traces are byte-identical).
    pub bucket_encrypted: IoStats,
    /// The bucket bound `C_k · ⌈N/B⌉ · max(1, ⌈log_{M/B}(N/B)⌉)`.
    pub bucket_bound_total: u64,
    /// Whether the bucket sort's total I/Os satisfy its bound.
    pub bucket_within_bound: bool,
    /// I/O statistics of the naive full-depth baseline, if it was run.
    pub naive: Option<IoStats>,
    /// Levels the naive baseline executed, if it was run.
    pub naive_levels: Option<usize>,
    /// The bound `C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)`.
    pub bound_total: u64,
    /// Whether the optimized sort's total I/Os satisfy the bound.
    pub within_bound: bool,
}

impl SortBenchResult {
    /// Naive-over-optimized I/O ratio (the headline speedup), if the naive
    /// baseline was run.
    pub fn speedup(&self) -> Option<f64> {
        self.naive
            .map(|n| n.total() as f64 / self.optimized.total().max(1) as f64)
    }

    /// Lemma-2-over-bucket I/O ratio — how many times fewer I/Os the
    /// randomized engine pays than the deterministic one at this point.
    pub fn bucket_speedup_vs_lemma2(&self) -> f64 {
        self.optimized.total() as f64 / self.bucket.total().max(1) as f64
    }

    /// Whether this point is subject to the "bucket strictly beats Lemma 2"
    /// gate (`N/M ≥ 4`; below that the randomized engine's fixed costs can
    /// legitimately lose to the near-in-cache bitonic sort).
    pub fn bucket_gate_applies(&self) -> bool {
        self.point.n >= 4 * self.point.m
    }
}

/// `⌈log2(⌈N/M⌉)⌉`, the shared "external levels" factor of every bound
/// checked by this harness (0 when the array fits in cache).
fn ceil_log2_ratio(n: usize, m: usize) -> u64 {
    let ratio = n.div_ceil(m);
    if ratio <= 1 {
        0
    } else {
        u64::from(usize::BITS - (ratio - 1).leading_zeros())
    }
}

/// The Lemma 2 bound with the explicit constant [`BOUND_CONSTANT`]:
/// `C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)`.
pub fn sort_io_bound(n: usize, b: usize, m: usize) -> u64 {
    let lg = ceil_log2_ratio(n, m);
    BOUND_CONSTANT * n.div_ceil(b) as u64 * (1 + lg * lg)
}

/// `⌈log_{M/B}(N/B)⌉` computed exactly in integers: the smallest `t ≥ 1`
/// with `(M/B)^t ≥ ⌈N/B⌉`, the base clamped to `≥ 2` so the bound is
/// well-defined even at degenerate cache sizes.
fn ceil_log_base_ratio(n: usize, b: usize, m: usize) -> u64 {
    let nb = n.div_ceil(b) as u64;
    let base = (m / b).max(2) as u64;
    let mut t = 1u64;
    let mut pow = base;
    while pow < nb {
        pow = pow.saturating_mul(base);
        t += 1;
    }
    t
}

/// The bucket-sort bound with the explicit constant
/// [`BUCKET_BOUND_CONSTANT`]: `C_k · ⌈N/B⌉ · max(1, ⌈log_{M/B}(N/B)⌉)` —
/// the `log_{M/B}` gate of the optimal external sorting bound.
pub fn bucket_sort_io_bound(n: usize, b: usize, m: usize) -> u64 {
    BUCKET_BOUND_CONSTANT * n.div_ceil(b) as u64 * ceil_log_base_ratio(n, b, m)
}

/// Deterministic pseudo-random input used by every benchmark run, so results
/// are reproducible across machines and PRs.
pub fn bench_input(n: usize, salt: u64) -> Vec<Element> {
    (0..n)
        .map(|i| Element::keyed(extmem::util::hash64(i as u64, salt), i))
        .collect()
}

/// Measures one grid point. Runs the optimized sorter always and the naive
/// baseline when `run_naive` is set (it costs `Θ((N/B) log² N)` simulated
/// I/Os, which is cheap to simulate but noisy to read). Panics if either
/// sorter fails to actually sort — a benchmark of a wrong algorithm is
/// meaningless.
pub fn run_sort_point(point: GridPoint, run_naive: bool) -> SortBenchResult {
    let GridPoint { n, b, m } = point;
    let input = bench_input(n, 0xB0B);
    let mut expected = input.clone();
    expected.sort_unstable();

    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_elements(&input);
    let report = external_oblivious_sort(&mut mem, &h, m, SortOrder::Ascending);
    assert_eq!(
        mem.snapshot_elements(&h),
        expected,
        "optimized sort failed at N={n} B={b} M={m}"
    );
    let optimized = report.io;

    // The same sort over the re-encrypting store: every block is decrypted on
    // read and re-encrypted (fresh nonce) on write, yet the I/O count is
    // identical — the trait-generic sort closes the ROADMAP's
    // sort-over-EncryptedStore item.
    let mut enc = EncryptedStore::new(b, 0x50F7);
    let ecells: Vec<Cell> = input.iter().copied().map(Some).collect();
    let eh = enc.alloc_array_from_cells(&ecells);
    let ereport = external_oblivious_sort(&mut enc, &eh, m, SortOrder::Ascending);
    assert_eq!(
        enc.snapshot_cells(&eh)
            .into_iter()
            .flatten()
            .collect::<Vec<_>>(),
        expected,
        "encrypted sort failed at N={n} B={b} M={m}"
    );
    assert_eq!(
        ereport.io, optimized,
        "the encryption layer must add zero I/Os to the sort"
    );

    // The randomized bucket oblivious sort head-to-head, plaintext and
    // encrypted, with the access traces captured. Both runs use the same
    // fixed seed, so beyond equal outputs and equal I/O counts the two
    // traces must be *byte-identical* — the encryption layer may not perturb
    // the server-visible access pattern in any way.
    let bcfg = BucketSortConfig::seeded(BUCKET_SORT_SEED);
    let mut bmem = ExtMem::with_trace(b);
    let bh = bmem.alloc_array_from_elements(&input);
    let bucket_report = bucket_oblivious_sort(&mut bmem, &bh, m, SortOrder::Ascending, &bcfg)
        .unwrap_or_else(|e| panic!("bucket sort failed at N={n} B={b} M={m}: {e}"));
    assert_eq!(
        bmem.snapshot_elements(&bh),
        expected,
        "bucket sort mis-sorted at N={n} B={b} M={m}"
    );
    let bucket = bucket_report.io;
    let btrace = bmem.take_trace().expect("tracing was enabled");

    let mut benc = EncryptedStore::new(b, 0x50F8);
    let beh = benc.alloc_array_from_cells(&ecells);
    benc.enable_trace();
    let bereport = bucket_oblivious_sort(&mut benc, &beh, m, SortOrder::Ascending, &bcfg)
        .unwrap_or_else(|e| panic!("encrypted bucket sort failed at N={n} B={b} M={m}: {e}"));
    assert_eq!(
        benc.snapshot_cells(&beh)
            .into_iter()
            .flatten()
            .collect::<Vec<_>>(),
        expected,
        "encrypted bucket sort mis-sorted at N={n} B={b} M={m}"
    );
    assert_eq!(
        bereport.io, bucket,
        "the encryption layer must add zero I/Os to the bucket sort"
    );
    let betrace = benc.take_trace().expect("tracing was enabled");
    assert_eq!(
        btrace, betrace,
        "plaintext and encrypted bucket-sort traces must be byte-identical"
    );

    let (naive, naive_levels) = if run_naive {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_elements(&input);
        let nrep = naive_external_bitonic_sort(&mut mem, &h, m, SortOrder::Ascending);
        assert_eq!(
            mem.snapshot_elements(&h),
            expected,
            "naive sort failed at N={n} B={b} M={m}"
        );
        (Some(nrep.io), Some(nrep.levels))
    } else {
        (None, None)
    };

    let bound_total = sort_io_bound(n, b, m);
    let bucket_bound_total = bucket_sort_io_bound(n, b, m);
    SortBenchResult {
        point,
        optimized,
        report,
        encrypted: ereport.io,
        bucket,
        bucket_report,
        bucket_encrypted: bereport.io,
        bucket_bound_total,
        bucket_within_bound: bucket.total() <= bucket_bound_total,
        naive,
        naive_levels,
        bound_total,
        within_bound: optimized.total() <= bound_total,
    }
}

/// The default grid: `B = 64`, `N ∈ {2^14, 2^16, 2^18}`,
/// `M ∈ {2^10, 2^13}` — the 3×2 grid the acceptance criteria call for,
/// including the headline point `(2^18, 64, 2^13)`.
pub fn default_grid() -> Vec<GridPoint> {
    let mut grid = Vec::new();
    for &n in &[1usize << 14, 1 << 16, 1 << 18] {
        for &m in &[1usize << 10, 1 << 13] {
            grid.push(GridPoint { n, b: 64, m });
        }
    }
    grid
}

/// A small smoke grid (`N = 2^12`) cheap enough to run in CI on every push:
/// exercises the JSON emitters and the bound gates without the full-size
/// simulation.
pub fn smoke_grid() -> Vec<GridPoint> {
    vec![
        GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 9,
        },
        GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 10,
        },
    ]
}

/// The compaction bound `C_c · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)` — one log
/// factor, not two.
pub fn compact_io_bound(n: usize, b: usize, m: usize) -> u64 {
    COMPACT_BOUND_CONSTANT * n.div_ceil(b) as u64 * (1 + ceil_log2_ratio(n, m))
}

/// Deterministic pseudo-random occupancy (roughly half the cells occupied)
/// used by every compaction benchmark run.
pub fn bench_occupancy(n: usize, salt: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            if extmem::util::hash64(i as u64, salt).is_multiple_of(2) {
                Some(Element::keyed(i as u64, i))
            } else {
                None
            }
        })
        .collect()
}

/// Measured result of one compaction grid point.
#[derive(Clone, Debug)]
pub struct CompactBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// I/O statistics of the optimized external butterfly compaction.
    pub optimized: IoStats,
    /// Structural report of the optimized compaction.
    pub report: CompactReport,
    /// I/Os of the identical run over the re-encrypting store (always equal
    /// to `optimized` — the encryption layer costs zero extra I/Os).
    pub encrypted: IoStats,
    /// I/O statistics of the naive full-depth baseline, if it was run.
    pub naive: Option<IoStats>,
    /// Levels the naive baseline executed, if it was run.
    pub naive_levels: Option<usize>,
    /// The bound `C_c · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)`.
    pub bound_total: u64,
    /// Whether the optimized compaction satisfies the bound.
    pub within_bound: bool,
}

impl CompactBenchResult {
    /// Naive-over-optimized I/O ratio, if the naive baseline was run.
    pub fn speedup(&self) -> Option<f64> {
        self.naive
            .map(|n| n.total() as f64 / self.optimized.total().max(1) as f64)
    }
}

/// Measures one compaction grid point: the optimized butterfly compaction on
/// a plain arena, the identical run over an [`EncryptedStore`] (asserting
/// equal I/O counts and equal output), and optionally the naive full-depth
/// baseline. Panics if any of them mis-compacts — a benchmark of a wrong
/// algorithm is meaningless.
pub fn run_compact_point(point: GridPoint, run_naive: bool) -> CompactBenchResult {
    let GridPoint { n, b, m } = point;
    let cells = bench_occupancy(n, 0xC0);
    let mut expected: Vec<Cell> = cells.iter().filter(|c| c.is_some()).copied().collect();
    expected.resize(n, None);

    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(&cells);
    let report = compact(&mut mem, &h, m);
    assert_eq!(
        mem.snapshot_cells(&h),
        expected,
        "optimized compaction failed at N={n} B={b} M={m}"
    );
    let optimized = report.io;

    // The same algorithm over the re-encrypting store: every block is
    // decrypted on read and re-encrypted (fresh nonce) on write, yet the I/O
    // count and the address trace are identical.
    let mut enc = EncryptedStore::new(b, 0x0D0_5EC);
    let eh = enc.alloc_array_from_cells(&cells);
    let ereport = compact(&mut enc, &eh, m);
    assert_eq!(
        enc.snapshot_cells(&eh),
        expected,
        "encrypted compaction failed at N={n} B={b} M={m}"
    );
    assert_eq!(
        ereport.io, optimized,
        "the encryption layer must add zero I/Os"
    );

    let (naive, naive_levels) = if run_naive {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(&cells);
        let nrep = naive_external_butterfly_compact(&mut mem, &h, m);
        assert_eq!(
            mem.snapshot_cells(&h),
            expected,
            "naive compaction failed at N={n} B={b} M={m}"
        );
        (Some(nrep.io), Some(nrep.levels))
    } else {
        (None, None)
    };

    let bound_total = compact_io_bound(n, b, m);
    CompactBenchResult {
        point,
        optimized,
        report,
        encrypted: ereport.io,
        naive,
        naive_levels,
        bound_total,
        within_bound: optimized.total() <= bound_total,
    }
}

/// The selection bound `C_s · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)` — the single-log
/// form selection inherits from prune-and-compact.
pub fn select_io_bound(n: usize, b: usize, m: usize) -> u64 {
    SELECT_BOUND_CONSTANT * n.div_ceil(b) as u64 * (1 + ceil_log2_ratio(n, m))
}

/// Measured result of one selection grid point.
#[derive(Clone, Debug)]
pub struct SelectBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// The rank selected (the median, `k = N/2`).
    pub k: usize,
    /// I/O statistics of the optimized external selection.
    pub optimized: IoStats,
    /// Structural report of the optimized selection.
    pub report: SelectReport,
    /// I/Os of the identical run over the re-encrypting store (always equal
    /// to `optimized` — the encryption layer costs zero extra I/Os, and
    /// [`run_select_point`] asserts the traces are byte-identical too).
    pub encrypted: IoStats,
    /// I/O statistics of the naive sort-then-index baseline, if it was run.
    pub naive: Option<IoStats>,
    /// Levels the naive baseline's full-depth sort executed, if it was run.
    pub naive_levels: Option<usize>,
    /// The bound `C_s · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)`.
    pub bound_total: u64,
    /// Whether the optimized selection satisfies the bound.
    pub within_bound: bool,
}

impl SelectBenchResult {
    /// Naive-over-optimized I/O ratio, if the naive baseline was run.
    pub fn speedup(&self) -> Option<f64> {
        self.naive
            .map(|n| n.total() as f64 / self.optimized.total().max(1) as f64)
    }
}

/// Measures one selection grid point at `k = N/2` (the median): the optimized
/// selection on a plain arena with its trace captured, the identical run over
/// an [`EncryptedStore`] (asserting an equal result, equal I/O counts **and a
/// byte-identical access trace**), and optionally the naive sort-then-index
/// baseline. Panics if any of them mis-selects — a benchmark of a wrong
/// algorithm is meaningless.
pub fn run_select_point(point: GridPoint, run_naive: bool) -> SelectBenchResult {
    let GridPoint { n, b, m } = point;
    let input = bench_input(n, 0x5E1);
    let k = n / 2;
    let mut reference: Vec<(u64, usize)> =
        input.iter().enumerate().map(|(j, e)| (e.key, j)).collect();
    reference.sort_unstable();
    let expected = input[reference[k].1];

    let mut mem = ExtMem::with_trace(b);
    let h = mem.alloc_array_from_elements(&input);
    let (got, report) = select_kth(&mut mem, &h, m, k);
    let trace = mem.take_trace().expect("trace was enabled");
    assert_eq!(
        got, expected,
        "optimized selection failed at N={n} B={b} M={m}"
    );
    let optimized = report.io;

    // The same selection over the re-encrypting store: equal answer, equal
    // I/O count, and the adversary's view — the address trace — is identical
    // byte for byte.
    let ecells: Vec<Cell> = input.iter().copied().map(Some).collect();
    let mut enc = EncryptedStore::new(b, 0x5EC_5E1);
    let eh = enc.alloc_array_from_cells(&ecells);
    enc.enable_trace();
    let (egot, ereport) = select_kth(&mut enc, &eh, m, k);
    let etrace = enc.take_trace().expect("trace was enabled");
    assert_eq!(
        egot, expected,
        "encrypted selection failed at N={n} B={b} M={m}"
    );
    assert_eq!(
        ereport.io, optimized,
        "the encryption layer must add zero I/Os to selection"
    );
    assert_eq!(
        trace, etrace,
        "plaintext and encrypted selection traces must be byte-identical at N={n} B={b} M={m}"
    );

    let (naive, naive_levels) = if run_naive {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_elements(&input);
        let (ngot, nrep) = naive_select_kth(&mut mem, &h, m, k);
        assert_eq!(
            ngot, expected,
            "naive selection failed at N={n} B={b} M={m}"
        );
        (Some(nrep.io), Some(nrep.levels))
    } else {
        (None, None)
    };

    let bound_total = select_io_bound(n, b, m);
    SelectBenchResult {
        point,
        k,
        optimized,
        report,
        encrypted: ereport.io,
        naive,
        naive_levels,
        bound_total,
        within_bound: optimized.total() <= bound_total,
    }
}

/// Renders the selection results as the `BENCH_select.json` document
/// (hand-rolled JSON; the workspace deliberately has no external
/// dependencies).
pub fn select_to_json(results: &[SelectBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"external_oblivious_selection\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str("  \"bound\": \"C * ceil(N/B) * (1 + ceil(log2(ceil(N/M))))\",\n");
    let _ = writeln!(s, "  \"bound_constant\": {SELECT_BOUND_CONSTANT},");
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"k\": {},", r.k);
        let _ = writeln!(s, "      \"optimized_reads\": {},", r.optimized.reads);
        let _ = writeln!(s, "      \"optimized_writes\": {},", r.optimized.writes);
        let _ = writeln!(s, "      \"optimized_total\": {},", r.optimized.total());
        let _ = writeln!(s, "      \"encrypted_total\": {},", r.encrypted.total());
        // run_select_point asserts the byte-identical plaintext/encrypted
        // trace before a result is ever constructed.
        s.push_str("      \"encrypted_trace_identical\": true,\n");
        let _ = writeln!(s, "      \"rounds\": {},", r.report.rounds);
        let _ = writeln!(s, "      \"chunk_elems\": {},", r.report.chunk_elems);
        let _ = writeln!(s, "      \"final_window\": {},", r.report.final_window);
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        match (r.naive, r.naive_levels, r.speedup()) {
            (Some(naive), Some(levels), Some(speedup)) => {
                let _ = writeln!(s, "      \"naive_total\": {},", naive.total());
                let _ = writeln!(s, "      \"naive_levels\": {levels},");
                let _ = writeln!(s, "      \"speedup_vs_naive\": {speedup:.2},");
            }
            _ => {
                s.push_str("      \"naive_total\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the selection results.
pub fn select_to_table(results: &[SelectBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>6}",
        "N", "B", "M", "opt I/Os", "naive I/Os", "bound", "speedup", "ok"
    );
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let naive = r
            .naive
            .map(|x| x.total().to_string())
            .unwrap_or_else(|| "-".into());
        let speedup = r
            .speedup()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>6}",
            n,
            b,
            m,
            r.optimized.total(),
            naive,
            r.bound_total,
            speedup,
            if r.within_bound { "yes" } else { "NO" }
        );
    }
    s
}

/// Renders the results as the `BENCH_sort.json` document (hand-rolled JSON;
/// the workspace deliberately has no external dependencies).
pub fn to_json(results: &[SortBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"external_oblivious_sort\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str("  \"bound\": \"C * ceil(N/B) * (1 + ceil(log2(ceil(N/M)))^2)\",\n");
    let _ = writeln!(s, "  \"bound_constant\": {BOUND_CONSTANT},");
    s.push_str("  \"bucket_bound\": \"C_k * ceil(N/B) * max(1, ceil(log_{M/B}(N/B)))\",\n");
    let _ = writeln!(s, "  \"bucket_bound_constant\": {BUCKET_BOUND_CONSTANT},");
    let _ = writeln!(s, "  \"bucket_seed\": {BUCKET_SORT_SEED},");
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"optimized_reads\": {},", r.optimized.reads);
        let _ = writeln!(s, "      \"optimized_writes\": {},", r.optimized.writes);
        let _ = writeln!(s, "      \"optimized_total\": {},", r.optimized.total());
        let _ = writeln!(s, "      \"encrypted_total\": {},", r.encrypted.total());
        let _ = writeln!(s, "      \"region_elems\": {},", r.report.region_elems);
        let _ = writeln!(
            s,
            "      \"external_levels\": {},",
            r.report.external_levels
        );
        let _ = writeln!(s, "      \"finish_passes\": {},", r.report.finish_passes);
        let _ = writeln!(s, "      \"bucket_reads\": {},", r.bucket.reads);
        let _ = writeln!(s, "      \"bucket_writes\": {},", r.bucket.writes);
        let _ = writeln!(s, "      \"bucket_total\": {},", r.bucket.total());
        let _ = writeln!(
            s,
            "      \"bucket_encrypted_total\": {},",
            r.bucket_encrypted.total()
        );
        let _ = writeln!(s, "      \"bucket_z\": {},", r.bucket_report.z);
        let _ = writeln!(s, "      \"bucket_levels\": {},", r.bucket_report.levels);
        let _ = writeln!(
            s,
            "      \"bucket_superlevels\": {},",
            r.bucket_report.superlevels
        );
        let _ = writeln!(
            s,
            "      \"bucket_merge_passes\": {},",
            r.bucket_report.merge_passes
        );
        let _ = writeln!(s, "      \"bucket_bound_total\": {},", r.bucket_bound_total);
        let _ = writeln!(
            s,
            "      \"bucket_within_bound\": {},",
            r.bucket_within_bound
        );
        let _ = writeln!(
            s,
            "      \"bucket_speedup_vs_lemma2\": {:.2},",
            r.bucket_speedup_vs_lemma2()
        );
        let _ = writeln!(
            s,
            "      \"bucket_gate_applies\": {},",
            r.bucket_gate_applies()
        );
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        match (r.naive, r.naive_levels, r.speedup()) {
            (Some(naive), Some(levels), Some(speedup)) => {
                let _ = writeln!(s, "      \"naive_total\": {},", naive.total());
                let _ = writeln!(s, "      \"naive_levels\": {levels},");
                let _ = writeln!(s, "      \"speedup_vs_naive\": {speedup:.2},");
            }
            _ => {
                s.push_str("      \"naive_total\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the compaction results as the `BENCH_compact.json` document
/// (hand-rolled JSON; the workspace deliberately has no external
/// dependencies).
pub fn compact_to_json(results: &[CompactBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"external_butterfly_compaction\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str("  \"bound\": \"C * ceil(N/B) * (1 + ceil(log2(ceil(N/M))))\",\n");
    let _ = writeln!(s, "  \"bound_constant\": {COMPACT_BOUND_CONSTANT},");
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"optimized_reads\": {},", r.optimized.reads);
        let _ = writeln!(s, "      \"optimized_writes\": {},", r.optimized.writes);
        let _ = writeln!(s, "      \"optimized_total\": {},", r.optimized.total());
        let _ = writeln!(s, "      \"encrypted_total\": {},", r.encrypted.total());
        let _ = writeln!(s, "      \"window_elems\": {},", r.report.window_elems);
        let _ = writeln!(
            s,
            "      \"in_cache_levels\": {},",
            r.report.in_cache_levels
        );
        let _ = writeln!(
            s,
            "      \"external_levels\": {},",
            r.report.external_levels
        );
        let _ = writeln!(s, "      \"occupied\": {},", r.report.occupied);
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        match (r.naive, r.naive_levels, r.speedup()) {
            (Some(naive), Some(levels), Some(speedup)) => {
                let _ = writeln!(s, "      \"naive_total\": {},", naive.total());
                let _ = writeln!(s, "      \"naive_levels\": {levels},");
                let _ = writeln!(s, "      \"speedup_vs_naive\": {speedup:.2},");
            }
            _ => {
                s.push_str("      \"naive_total\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the compaction results.
pub fn compact_to_table(results: &[CompactBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>6}",
        "N", "B", "M", "opt I/Os", "naive I/Os", "bound", "speedup", "ok"
    );
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let naive = r
            .naive
            .map(|x| x.total().to_string())
            .unwrap_or_else(|| "-".into());
        let speedup = r
            .speedup()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>6}",
            n,
            b,
            m,
            r.optimized.total(),
            naive,
            r.bound_total,
            speedup,
            if r.within_bound { "yes" } else { "NO" }
        );
    }
    s
}

/// Renders a human-readable table of the results for terminal output.
pub fn to_table(results: &[SortBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>6}",
        "N", "B", "M", "opt I/Os", "bkt I/Os", "naive I/Os", "bkt bound", "bkt/L2", "speedup", "ok"
    );
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let naive = r
            .naive
            .map(|x| x.total().to_string())
            .unwrap_or_else(|| "-".into());
        let speedup = r
            .speedup()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        let ok = r.within_bound
            && r.bucket_within_bound
            && (!r.bucket_gate_applies() || r.bucket.total() < r.optimized.total());
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>6}",
            n,
            b,
            m,
            r.optimized.total(),
            r.bucket.total(),
            naive,
            r.bucket_bound_total,
            format!("{:.2}x", r.bucket_speedup_vs_lemma2()),
            speedup,
            if ok { "yes" } else { "NO" }
        );
    }
    s
}

// ---------------------------------------------------------------------------
// The untrusted-server fault benchmark (`BENCH_faults.json`)
// ---------------------------------------------------------------------------

/// One scenario of the fault benchmark: a store stack (authenticated or
/// plain) plus a deterministic fault specification injected underneath it.
#[derive(Clone, Copy, Debug)]
pub struct FaultScenario {
    /// Scenario name as emitted into the JSON.
    pub name: &'static str,
    /// Whether an [`AuthenticatedStore`] sits between the client and the
    /// faulty server.
    pub authenticated: bool,
    /// Fault rates injected during the sort (populate and verification run
    /// fault-free).
    pub spec: FaultSpec,
}

/// The fixed scenario list of the fault benchmark. The rates are chosen so
/// every fault lane fires reliably even on the `N = 2^12` smoke grid; the
/// stale lane runs hotter because replays are only *material* on blocks
/// already rewritten with new content.
pub fn fault_scenarios() -> Vec<FaultScenario> {
    let none = FaultSpec::none();
    vec![
        FaultScenario {
            name: "plain_no_faults",
            authenticated: false,
            spec: none,
        },
        FaultScenario {
            name: "auth_no_faults",
            authenticated: true,
            spec: none,
        },
        FaultScenario {
            name: "auth_transient",
            authenticated: true,
            spec: FaultSpec {
                transient_read_ppm: 20_000,
                ..none
            },
        },
        FaultScenario {
            name: "auth_corrupt",
            authenticated: true,
            spec: FaultSpec {
                corrupt_read_ppm: 2_000,
                ..none
            },
        },
        FaultScenario {
            name: "auth_stale",
            authenticated: true,
            spec: FaultSpec {
                stale_read_ppm: 8_000,
                ..none
            },
        },
        FaultScenario {
            name: "auth_drop",
            authenticated: true,
            spec: FaultSpec {
                drop_write_ppm: 2_000,
                ..none
            },
        },
        // The motivation row: the same corrupting server *without* the
        // authentication layer completes the sort and hands back silently
        // wrong data.
        FaultScenario {
            name: "plain_corrupt_silent",
            authenticated: false,
            spec: FaultSpec {
                corrupt_read_ppm: 2_000,
                ..none
            },
        },
    ]
}

/// Measured result of one fault scenario at one grid point.
#[derive(Clone, Debug)]
pub struct FaultBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// The scenario that produced this row.
    pub scenario: FaultScenario,
    /// Bottom-level (server-side) I/Os of the sort window, including MAC
    /// traffic and the final MAC flush when authenticated.
    pub sort_io: IoStats,
    /// Transient retries performed by the retry layer.
    pub retries: u64,
    /// Abstract backoff units slept across those retries.
    pub backoff_units: u64,
    /// Faults actually injected during the sort window.
    pub faults: FaultStats,
    /// The typed error the sort returned, if any (rendered).
    pub run_error: Option<String>,
    /// The typed error the fault-free verified read-back returned, if any.
    pub readback_error: Option<String>,
    /// Whether the read-back matched the expected sorted output (only
    /// meaningful when no error preempted it).
    pub output_correct: Option<bool>,
    /// Bottom-level I/O overhead of this scenario relative to the
    /// `plain_no_faults` baseline at the same point (filled by
    /// [`run_fault_grid`]).
    pub overhead_vs_plain: Option<f64>,
}

impl FaultBenchResult {
    /// Whether tampering surfaced as a typed error (at run time or on the
    /// verified read-back).
    pub fn detected(&self) -> bool {
        self.run_error.is_some() || self.readback_error.is_some()
    }

    /// The row's outcome classification: `"correct"`, `"detected"`, or the
    /// forbidden-under-authentication `"silent_wrong"`.
    pub fn outcome(&self) -> &'static str {
        if self.detected() {
            "detected"
        } else if self.output_correct == Some(true) {
            "correct"
        } else {
            "silent_wrong"
        }
    }
}

/// Measures one fault scenario at one grid point: populate fault-free, sort
/// with the scenario's faults injected, then verify fault-free. The measured
/// I/O window covers the sort plus (when authenticated) the final MAC flush —
/// exactly the traffic a client pays per operation against an untrusted
/// server.
pub fn run_fault_point(point: GridPoint, scenario: FaultScenario) -> FaultBenchResult {
    use extmem::{AuthenticatedStore, BlockStore, FaultyStore, RetryPolicy};
    use odo_core::try_sort;

    let GridPoint { n, b, m } = point;
    let input = bench_input(n, 0xFA17);
    let mut expected = input.clone();
    expected.sort_unstable();
    let cells: Vec<Cell> = input.iter().copied().map(Some).collect();
    let policy = RetryPolicy::default();

    let enc = EncryptedStore::new(b, 0xFA17_0001);
    let faulty = FaultyStore::new(enc, 0xFA17_0002, FaultSpec::none());

    let check = |got: Result<Vec<Cell>, extmem::StoreError>| match got {
        Ok(out) => {
            let flat: Vec<Element> = out.into_iter().flatten().collect();
            (None, Some(flat == expected))
        }
        Err(e) => (Some(e.to_string()), None),
    };

    if scenario.authenticated {
        let mut auth = AuthenticatedStore::new(faulty, 0xFA17_0003);
        let h = BlockStore::alloc_array(&mut auth, n);
        auth.try_store_span(&h, 0, &cells)
            .expect("fault-free populate");
        auth.flush_macs().expect("fault-free flush");

        let before = auth.inner().inner().io_stats();
        auth.inner_mut().set_spec(scenario.spec);
        let faults_before = auth.inner().fault_stats();
        let run = try_sort(&mut auth, &h, m, SortOrder::Ascending, policy);
        auth.inner_mut().set_spec(FaultSpec::none());
        let faults = auth.inner().fault_stats();
        let _ = auth.flush_macs();
        let after = auth.inner().inner().io_stats();

        let (retries, backoff_units, run_error) = match run {
            Ok((_, retry)) => (retry.retries, retry.backoff_units, None),
            Err(e) => (0, 0, Some(e.to_string())),
        };
        let (readback_error, output_correct) = if run_error.is_some() {
            (None, None)
        } else {
            check(auth.try_load_span(&h, 0, n))
        };
        FaultBenchResult {
            point,
            scenario,
            sort_io: IoStats {
                reads: after.reads - before.reads,
                writes: after.writes - before.writes,
            },
            retries,
            backoff_units,
            faults: FaultStats {
                transient_reads: faults.transient_reads - faults_before.transient_reads,
                corrupt_reads: faults.corrupt_reads - faults_before.corrupt_reads,
                stale_reads: faults.stale_reads - faults_before.stale_reads,
                dropped_writes: faults.dropped_writes - faults_before.dropped_writes,
            },
            run_error,
            readback_error,
            output_correct,
            overhead_vs_plain: None,
        }
    } else {
        let mut faulty = faulty;
        let h = BlockStore::alloc_array(&mut faulty, n);
        faulty
            .try_store_span(&h, 0, &cells)
            .expect("fault-free populate");

        let before = faulty.inner().io_stats();
        faulty.set_spec(scenario.spec);
        let run = try_sort(&mut faulty, &h, m, SortOrder::Ascending, policy);
        faulty.set_spec(FaultSpec::none());
        let faults = faulty.fault_stats();
        let after = faulty.inner().io_stats();

        let (retries, backoff_units, run_error) = match run {
            Ok((_, retry)) => (retry.retries, retry.backoff_units, None),
            Err(e) => (0, 0, Some(e.to_string())),
        };
        let (readback_error, output_correct) = if run_error.is_some() {
            (None, None)
        } else {
            check(faulty.try_load_span(&h, 0, n))
        };
        FaultBenchResult {
            point,
            scenario,
            sort_io: IoStats {
                reads: after.reads - before.reads,
                writes: after.writes - before.writes,
            },
            retries,
            backoff_units,
            faults,
            run_error,
            readback_error,
            output_correct,
            overhead_vs_plain: None,
        }
    }
}

/// Runs every [`fault_scenarios`] row at `point` and fills each result's
/// overhead relative to the `plain_no_faults` baseline.
pub fn run_fault_grid(point: GridPoint) -> Vec<FaultBenchResult> {
    let mut results: Vec<FaultBenchResult> = fault_scenarios()
        .into_iter()
        .map(|s| run_fault_point(point, s))
        .collect();
    let baseline = results
        .iter()
        .find(|r| r.scenario.name == "plain_no_faults")
        .map(|r| r.sort_io.total())
        .expect("the scenario list starts with the plain baseline");
    for r in &mut results {
        r.overhead_vs_plain = Some(r.sort_io.total() as f64 / baseline.max(1) as f64 - 1.0);
    }
    results
}

/// Checks the fault-model acceptance gates over one grid point's results.
/// Returns every violated gate as a message; an empty vector means the point
/// passes.
pub fn check_fault_gates(results: &[FaultBenchResult]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut push = |cond: bool, msg: String| {
        if !cond {
            violations.push(msg);
        }
    };
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let at = format!("{} at N={n} B={b} M={m}", r.scenario.name);
        match r.scenario.name {
            "plain_no_faults" => {
                push(
                    r.outcome() == "correct",
                    format!("{at}: baseline must sort correctly"),
                );
            }
            "auth_no_faults" => {
                push(
                    r.outcome() == "correct",
                    format!("{at}: must sort correctly"),
                );
                let overhead = r.overhead_vs_plain.unwrap_or(f64::INFINITY);
                push(
                    overhead <= 0.15,
                    format!(
                        "{at}: authentication overhead {:.1}% > 15% ({} vs baseline I/Os)",
                        overhead * 100.0,
                        r.sort_io.total()
                    ),
                );
            }
            "auth_transient" => {
                push(
                    r.outcome() == "correct",
                    format!(
                        "{at}: transients must retry to the correct result, got {:?}",
                        r.run_error
                    ),
                );
                push(
                    r.retries > 0,
                    format!("{at}: the transient lane never fired"),
                );
                push(
                    r.faults.tampering() == 0,
                    format!("{at}: transients are not tampering"),
                );
            }
            "auth_corrupt" | "auth_stale" | "auth_drop" => {
                push(
                    r.faults.tampering() > 0,
                    format!("{at}: the tamper lane never fired — raise the rate"),
                );
                push(
                    r.outcome() == "detected",
                    format!(
                        "{at}: tampering must surface as a typed error, got {}",
                        r.outcome()
                    ),
                );
            }
            "plain_corrupt_silent" => {
                push(
                    r.faults.tampering() > 0,
                    format!("{at}: the corrupt lane never fired — raise the rate"),
                );
                push(
                    r.outcome() == "silent_wrong",
                    format!(
                        "{at}: without authentication corruption should yield a silently \
                         wrong answer (the motivation row), got {}",
                        r.outcome()
                    ),
                );
            }
            other => push(false, format!("unknown scenario {other:?}")),
        }
    }
    violations
}

/// Renders the fault results as the `BENCH_faults.json` document
/// (hand-rolled JSON; the workspace deliberately has no external
/// dependencies).
pub fn faults_to_json(results: &[FaultBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"untrusted_server_faults\",\n");
    s.push_str(
        "  \"io_model\": \"1 I/O per bottom-level block read or write; sort window incl. MAC traffic\",\n",
    );
    s.push_str("  \"workload\": \"external_oblivious_sort\",\n");
    s.push_str("  \"rows\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"scenario\": \"{}\",", r.scenario.name);
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"authenticated\": {},", r.scenario.authenticated);
        let _ = writeln!(
            s,
            "      \"fault_ppm\": {{\"transient\": {}, \"corrupt\": {}, \"stale\": {}, \"drop\": {}}},",
            r.scenario.spec.transient_read_ppm,
            r.scenario.spec.corrupt_read_ppm,
            r.scenario.spec.stale_read_ppm,
            r.scenario.spec.drop_write_ppm
        );
        let _ = writeln!(s, "      \"sort_reads\": {},", r.sort_io.reads);
        let _ = writeln!(s, "      \"sort_writes\": {},", r.sort_io.writes);
        let _ = writeln!(s, "      \"sort_total\": {},", r.sort_io.total());
        match r.overhead_vs_plain {
            Some(o) => {
                let _ = writeln!(s, "      \"overhead_vs_plain\": {o:.4},");
            }
            None => s.push_str("      \"overhead_vs_plain\": null,\n"),
        }
        let _ = writeln!(s, "      \"retries\": {},", r.retries);
        let _ = writeln!(s, "      \"backoff_units\": {},", r.backoff_units);
        let _ = writeln!(
            s,
            "      \"faults_injected\": {{\"transient\": {}, \"corrupt\": {}, \"stale\": {}, \"drop\": {}}},",
            r.faults.transient_reads,
            r.faults.corrupt_reads,
            r.faults.stale_reads,
            r.faults.dropped_writes
        );
        match &r.run_error {
            Some(e) => {
                let _ = writeln!(s, "      \"run_error\": \"{}\",", e.replace('"', "'"));
            }
            None => s.push_str("      \"run_error\": null,\n"),
        }
        match &r.readback_error {
            Some(e) => {
                let _ = writeln!(s, "      \"readback_error\": \"{}\",", e.replace('"', "'"));
            }
            None => s.push_str("      \"readback_error\": null,\n"),
        }
        let _ = writeln!(s, "      \"outcome\": \"{}\"", r.outcome());
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the fault results.
pub fn faults_to_table(results: &[FaultBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>22} {:>8} {:>12} {:>9} {:>8} {:>8} {:>12}",
        "scenario", "N", "sort I/Os", "overhead", "retries", "faults", "outcome"
    );
    for r in results {
        let overhead = r
            .overhead_vs_plain
            .map(|o| format!("{:+.1}%", o * 100.0))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:>22} {:>8} {:>12} {:>9} {:>8} {:>8} {:>12}",
            r.scenario.name,
            r.point.n,
            r.sort_io.total(),
            overhead,
            r.retries,
            r.faults.total(),
            r.outcome()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula_matches_hand_computation() {
        // N = 2^18, B = 64, M = 2^13: 4 * 4096 * (1 + 25) = 425,984.
        assert_eq!(sort_io_bound(1 << 18, 64, 1 << 13), 425_984);
        // N <= M: scan-bound only.
        assert_eq!(sort_io_bound(1 << 10, 64, 1 << 12), 4 * 16);
    }

    #[test]
    fn small_point_is_within_bound_and_beats_naive_3x() {
        // Debug-friendly miniature of the acceptance criterion: the in-cache
        // finishing + stride batching must beat full depth by ≥ 3×.
        let point = GridPoint {
            n: 1 << 12,
            b: 16,
            m: 1 << 8,
        };
        let r = run_sort_point(point, true);
        assert!(r.within_bound, "optimized sort exceeded the bound: {r:?}");
        let speedup = r.speedup().unwrap();
        assert!(speedup >= 3.0, "speedup only {speedup:.2}x");
    }

    #[test]
    fn bucket_bound_formula_matches_hand_computation() {
        // N = 2^18, B = 64, M = 2^13: base M/B = 128, N/B = 4096 = 128^1.71…,
        // so the ceil log is 2: 12 * 4096 * 2 = 98,304.
        assert_eq!(bucket_sort_io_bound(1 << 18, 64, 1 << 13), 98_304);
        // N = 2^12, B = 64, M = 2^9: base 8, N/B = 64 = 8^2: 12 * 64 * 2.
        assert_eq!(bucket_sort_io_bound(1 << 12, 64, 1 << 9), 12 * 64 * 2);
        // In-cache ratio clamps to the scan term `max(1, …)`.
        assert_eq!(bucket_sort_io_bound(1 << 10, 64, 1 << 12), 12 * 16);
    }

    #[test]
    fn grid_is_three_by_two() {
        let grid = default_grid();
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|p| p.b == 64));
    }

    #[test]
    fn json_has_all_points_and_fields() {
        let results: Vec<SortBenchResult> = [
            GridPoint {
                n: 256,
                b: 8,
                m: 64,
            },
            GridPoint {
                n: 512,
                b: 8,
                m: 64,
            },
        ]
        .into_iter()
        .map(|p| run_sort_point(p, true))
        .collect();
        let json = to_json(&results);
        assert_eq!(json.matches("\"optimized_total\"").count(), 2);
        assert!(json.contains("\"bound_constant\": 4"));
        assert!(json.contains("\"encrypted_total\""));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"within_bound\": true"));
        assert!(json.contains("\"bucket_bound_constant\": 12"));
        assert_eq!(json.matches("\"bucket_total\"").count(), 2);
        assert!(json.contains("\"bucket_encrypted_total\""));
        assert!(json.contains("\"bucket_z\""));
        assert!(json.contains("\"bucket_within_bound\": true"));
        assert!(json.contains("\"bucket_speedup_vs_lemma2\""));
    }

    #[test]
    fn compact_bound_formula_matches_hand_computation() {
        // N = 2^18, B = 64, M = 2^13: 32 * 4096 * (1 + 5) = 786,432.
        assert_eq!(compact_io_bound(1 << 18, 64, 1 << 13), 786_432);
        // N <= M: scan bound only.
        assert_eq!(compact_io_bound(1 << 10, 64, 1 << 12), 32 * 16);
    }

    #[test]
    fn compact_small_point_is_within_bound_and_beats_naive() {
        let point = GridPoint {
            n: 1 << 12,
            b: 16,
            m: 1 << 8,
        };
        let r = run_compact_point(point, true);
        assert!(r.within_bound, "compaction exceeded the bound: {r:?}");
        let speedup = r.speedup().unwrap();
        assert!(speedup > 1.0, "naive baseline not beaten: {speedup:.2}x");
        assert_eq!(r.encrypted, r.optimized);
    }

    #[test]
    fn compact_json_has_all_points_and_fields() {
        let results: Vec<CompactBenchResult> = [
            GridPoint {
                n: 256,
                b: 8,
                m: 64,
            },
            GridPoint {
                n: 512,
                b: 8,
                m: 64,
            },
        ]
        .into_iter()
        .map(|p| run_compact_point(p, true))
        .collect();
        let json = compact_to_json(&results);
        assert_eq!(json.matches("\"optimized_total\"").count(), 2);
        assert!(json.contains("\"bound_constant\": 32"));
        assert!(json.contains("\"encrypted_total\""));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"within_bound\": true"));
    }

    /// The I/O-bound regression gate: if a future refactor pushes the sort
    /// past `C·(N/B)(1 + log²(N/M))`, the compaction past
    /// `C_c·(N/B)(1 + log(N/M))`, or the selection past
    /// `C_s·(N/B)(1 + log(N/M))` at any benchmark grid point, this test
    /// fails — without needing the release-mode bench binary. (The naive
    /// baselines are skipped here, and the `N = 2^18` points are left to the
    /// release-mode bench binary, which gates them on every CI push — debug
    /// builds simulate them too slowly for the unit-test suite.)
    #[test]
    fn io_bound_regression_at_grid_points() {
        let test_sized = default_grid().into_iter().filter(|p| p.n <= 1 << 16);
        for point in smoke_grid().into_iter().chain(test_sized) {
            let s = run_sort_point(point, false);
            assert!(
                s.within_bound,
                "sort exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                s.optimized.total(),
                s.bound_total
            );
            assert_eq!(
                s.encrypted, s.optimized,
                "re-encryption added I/Os to the sort at N={} B={} M={}",
                point.n, point.b, point.m
            );
            assert!(
                s.bucket_within_bound,
                "bucket sort exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                s.bucket.total(),
                s.bucket_bound_total
            );
            assert_eq!(
                s.bucket_encrypted, s.bucket,
                "re-encryption added I/Os to the bucket sort at N={} B={} M={}",
                point.n, point.b, point.m
            );
            if s.bucket_gate_applies() {
                assert!(
                    s.bucket.total() < s.optimized.total(),
                    "bucket sort did not beat Lemma 2 at N={} B={} M={}: {} >= {}",
                    point.n,
                    point.b,
                    point.m,
                    s.bucket.total(),
                    s.optimized.total()
                );
            }
            let c = run_compact_point(point, false);
            assert!(
                c.within_bound,
                "compaction exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                c.optimized.total(),
                c.bound_total
            );
            assert_eq!(
                c.encrypted, c.optimized,
                "re-encryption added I/Os at N={} B={} M={}",
                point.n, point.b, point.m
            );
            let sel = run_select_point(point, false);
            assert!(
                sel.within_bound,
                "selection exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                sel.optimized.total(),
                sel.bound_total
            );
            // run_select_point itself asserts the byte-identical
            // plaintext/encrypted trace; re-check the I/O equality here for a
            // readable failure.
            assert_eq!(
                sel.encrypted, sel.optimized,
                "re-encryption added I/Os to selection at N={} B={} M={}",
                point.n, point.b, point.m
            );
        }
    }

    #[test]
    fn select_small_point_is_within_bound_and_beats_naive() {
        let point = GridPoint {
            n: 1 << 12,
            b: 16,
            m: 1 << 8,
        };
        let r = run_select_point(point, true);
        assert!(r.within_bound, "selection exceeded the bound: {r:?}");
        let speedup = r.speedup().unwrap();
        assert!(speedup > 1.0, "naive baseline not beaten: {speedup:.2}x");
        assert_eq!(r.encrypted, r.optimized);
        assert!(r.report.rounds >= 1, "the external path must iterate");
    }

    #[test]
    fn select_json_has_all_points_and_fields() {
        let results: Vec<SelectBenchResult> = [
            GridPoint {
                n: 512,
                b: 8,
                m: 64,
            },
            GridPoint {
                n: 1024,
                b: 8,
                m: 64,
            },
        ]
        .into_iter()
        .map(|p| run_select_point(p, true))
        .collect();
        let json = select_to_json(&results);
        assert_eq!(json.matches("\"optimized_total\"").count(), 2);
        assert!(json.contains("\"bound_constant\": 64"));
        assert!(json.contains("\"encrypted_trace_identical\": true"));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"within_bound\": true"));
    }

    #[test]
    fn fault_gates_pass_at_the_smoke_point() {
        extmem::install_quiet_abort_hook();
        let results = run_fault_grid(GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 9,
        });
        assert_eq!(results.len(), fault_scenarios().len());
        let violations = check_fault_gates(&results);
        assert!(
            violations.is_empty(),
            "fault gates violated: {violations:#?}"
        );
    }

    /// The seeded-determinism satellite at the benchmark level: two
    /// independent runs of the same grid produce byte-identical JSON — fault
    /// schedules, retry counts and I/O totals included.
    #[test]
    fn faults_json_is_deterministic_across_runs() {
        extmem::install_quiet_abort_hook();
        let point = GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 9,
        };
        let a = faults_to_json(&run_fault_grid(point));
        let b = faults_to_json(&run_fault_grid(point));
        assert_eq!(a, b, "BENCH_faults.json must be reproducible");
        assert_eq!(a.matches("\"scenario\"").count(), fault_scenarios().len());
        assert!(a.contains("\"outcome\": \"detected\""));
        assert!(a.contains("\"outcome\": \"silent_wrong\""));
        assert!(a.contains("\"overhead_vs_plain\""));
    }

    #[test]
    fn exact_io_counts_at_a_reference_point() {
        // N = 2^12, B = 16, M = 2^8: F = 256, passes = presort(1) +
        // external(1+2+3+4) + finishing(4) = 15, each 2·256 I/Os.
        let r = run_sort_point(
            GridPoint {
                n: 1 << 12,
                b: 16,
                m: 1 << 8,
            },
            false,
        );
        assert_eq!(r.optimized.total(), 15 * 2 * 256);
        assert_eq!(r.report.external_levels, 10);
        assert_eq!(r.report.finish_passes, 4);
    }
}
