//! # odo-bench — the I/O-count benchmark harness
//!
//! Runs the workspace's algorithms on an [`ExtMem`] simulator across a grid
//! of `(N, B, M)` model parameters, reads back the exact I/O counters, and
//! checks them against the paper's stated bounds. Results are emitted as
//! `BENCH_sort.json` so every PR's perf trajectory is recorded from PR 1
//! onwards.
//!
//! For the external oblivious sort the bound checked is Lemma 2's
//!
//! ```text
//! total I/Os  ≤  C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)
//! ```
//!
//! with the explicit constant `C =` [`BOUND_CONSTANT`]. Alongside the
//! optimized sorter the harness runs the `baseline` crate's full-depth
//! bitonic sort, so the speedup delivered by in-cache finishing and stride
//! batching is measured, not assumed.
//!
//! Every sort point also runs the randomized **bucket oblivious sort**
//! head-to-head (plaintext *and* encrypted, with byte-identical traces
//! asserted), checked against the optimal-form bound
//!
//! ```text
//! total I/Os  ≤  C_k · ⌈N/B⌉ · max(1, ⌈log_{M/B}(N/B)⌉)
//! ```
//!
//! with `C_k =` [`BUCKET_BOUND_CONSTANT`] — the `log_{M/B}` gate, not the
//! squared binary log. At every grid point with `N/M ≥ 4` the bench further
//! gates that the bucket sort's I/Os are strictly below the Lemma 2 sort's.
//!
//! For the §3 external butterfly compaction (`odo-core::compact`) the bound
//! checked is
//!
//! ```text
//! total I/Os  ≤  C_c · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)
//! ```
//!
//! with `C_c =` [`COMPACT_BOUND_CONSTANT`] — note the *single* log factor,
//! the paper's compaction advantage over sorting. The compaction results are
//! emitted as `BENCH_compact.json`; each point also runs the identical
//! algorithm over an [`extmem::EncryptedStore`] and asserts the
//! re-encryption layer adds **zero** I/Os.
//!
//! For the §4 selection (`odo-core::select`) the bound checked is the same
//! single-log form with `C_s =` [`SELECT_BOUND_CONSTANT`] — selection is
//! iterated prune-and-compact, so it inherits compaction's advantage over
//! sorting. Alongside the bound, each `BENCH_select.json` point runs the
//! naive sort-then-index baseline and replays the identical selection over an
//! [`extmem::EncryptedStore`], asserting not just equal I/O counts but a
//! **byte-identical access trace** (and, separately, that the trace is
//! independent of the requested rank `k`).
//!
//! The hierarchical ORAM (`odo-oram`) is gated as a *composed* bound: one
//! probe read per level per access plus, for every flush, a per-rebuild
//! bound assembled pass by pass from the pipeline's structure and the
//! sort/compaction bounds above ([`oram_io_bound`]). Level `j` is rebuilt
//! every `2^(j+1)` flushes at `O(sort(cap_j))` I/Os, so the composed total
//! telescopes to the paper's `O(log² n)` amortized block I/Os per access.
//! Each `BENCH_oram.json` point reports the measured amortized I/Os and the
//! wall clock of the identical access sequence over `ExtMem`, `FileStore`
//! and `EncryptedStore<FileStore>`, with every file-backed trace asserted
//! byte-identical to the simulator's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use baseline::{naive_external_bitonic_sort, naive_external_butterfly_compact, naive_select_kth};
use extmem::element::Cell;
use extmem::{
    Element, EncryptedStore, ExtMem, FaultSpec, FaultStats, FileStore, IoStats, PrefetchingStore,
};
use obliv_net::bucket_sort::{bucket_oblivious_sort, BucketSortConfig, BucketSortReport};
use obliv_net::external_sort::{external_oblivious_sort, SortOrder, SortReport};
use odo_core::compact::{compact, CompactReport};
use odo_core::select::{select_kth, SelectReport};
use odo_core::SortEngine;
use oram::{LevelGeometry, Oram, OramConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// The explicit constant `C` of the checked sort I/O bound.
pub const BOUND_CONSTANT: u64 = 4;

/// The explicit constant `C_k` of the checked bucket-sort I/O bound.
pub const BUCKET_BOUND_CONSTANT: u64 = 12;

/// The fixed seed of every benchmarked bucket sort, so runs are reproducible
/// across machines and PRs (and so a freak bucket overflow would be a
/// deterministic, debuggable event rather than flaky CI).
pub const BUCKET_SORT_SEED: u64 = 0x0B0C_4E75;

/// The explicit constant `C_c` of the checked compaction I/O bound.
pub const COMPACT_BOUND_CONSTANT: u64 = 32;

/// The explicit constant `C_s` of the checked selection I/O bound.
pub const SELECT_BOUND_CONSTANT: u64 = 64;

/// One `(N, B, M)` parameter point of the benchmark grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridPoint {
    /// Number of elements `N`.
    pub n: usize,
    /// Block size `B` in elements.
    pub b: usize,
    /// Private cache size `M` in elements.
    pub m: usize,
}

/// Wall-clock nanoseconds of one primitive run over each storage backend.
///
/// The I/O *counts* are identical across backends by construction (the
/// harness asserts byte-identical access traces), so this is the one place
/// real time enters the benchmark: the same block schedule paid for in
/// memory moves (`ExtMem`), file system calls (`FileStore`), and decrypt +
/// re-encrypt work over the file (`EncryptedStore<FileStore>`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendNanos {
    /// The in-memory `ExtMem` simulator.
    pub extmem_ns: u64,
    /// The tempdir-backed `FileStore` doing real reads and writes.
    pub file_ns: u64,
    /// `EncryptedStore<FileStore>` — same file, plus the cipher work.
    pub encrypted_file_ns: u64,
}

/// Runs `f` once and returns its result plus the elapsed wall-clock
/// nanoseconds (saturated into `u64`, which holds ~584 years).
fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let start = Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (out, ns)
}

/// Wall-clock timings of one sort grid point (filled only when
/// [`run_sort_point`] is asked to exercise the file-backed backends).
#[derive(Clone, Copy, Debug, Default)]
pub struct SortTimings {
    /// The Lemma 2 engine over each backend.
    pub lemma2: BackendNanos,
    /// The bucket engine over each backend.
    pub bucket: BackendNanos,
    /// The bucket engine over `PrefetchingStore<FileStore>` — the headline
    /// wall-clock comparison: shape-derived read-ahead against the plain
    /// file store's synchronous loads (`bucket.file_ns`).
    pub bucket_prefetch_ns: u64,
    /// The bucket engine over `Prefetching(Encrypted(FileStore))` — the
    /// span-pipeline comparison: decrypt-ahead workers and batched-keystream
    /// span writes against the plain encrypted store's synchronous
    /// decrypt-on-load (`bucket.encrypted_file_ns`), interleaved min-of-N
    /// like the plaintext pair.
    pub encrypted_prefetch_ns: u64,
}

/// Measured result of one grid point.
#[derive(Clone, Debug)]
pub struct SortBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// I/O statistics of the optimized external oblivious sort.
    pub optimized: IoStats,
    /// Structural report of the optimized sort.
    pub report: SortReport,
    /// I/Os of the identical sort over the re-encrypting store (always equal
    /// to `optimized` — the encryption layer costs zero extra I/Os).
    pub encrypted: IoStats,
    /// I/O statistics of the randomized bucket oblivious sort head-to-head.
    pub bucket: IoStats,
    /// Structural report of the bucket sort.
    pub bucket_report: BucketSortReport,
    /// I/Os of the bucket sort over the re-encrypting store (always equal to
    /// `bucket`; [`run_sort_point`] additionally asserts the plaintext and
    /// encrypted traces are byte-identical).
    pub bucket_encrypted: IoStats,
    /// The bucket bound `C_k · ⌈N/B⌉ · max(1, ⌈log_{M/B}(N/B)⌉)`.
    pub bucket_bound_total: u64,
    /// Whether the bucket sort's total I/Os satisfy its bound.
    pub bucket_within_bound: bool,
    /// I/O statistics of the naive full-depth baseline, if it was run.
    pub naive: Option<IoStats>,
    /// Levels the naive baseline executed, if it was run.
    pub naive_levels: Option<usize>,
    /// The bound `C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)`.
    pub bound_total: u64,
    /// Whether the optimized sort's total I/Os satisfy the bound.
    pub within_bound: bool,
    /// Wall-clock timings over `ExtMem`, `FileStore` and
    /// `Encrypted(FileStore)` — `None` when the point was run I/O-count-only
    /// (`backends = false`). Every file-backed run's access trace is
    /// asserted byte-identical to the `ExtMem` reference before a timing is
    /// recorded.
    pub timings: Option<SortTimings>,
}

impl SortBenchResult {
    /// Naive-over-optimized I/O ratio (the headline speedup), if the naive
    /// baseline was run.
    pub fn speedup(&self) -> Option<f64> {
        self.naive
            .map(|n| n.total() as f64 / self.optimized.total().max(1) as f64)
    }

    /// Lemma-2-over-bucket I/O ratio — how many times fewer I/Os the
    /// randomized engine pays than the deterministic one at this point.
    pub fn bucket_speedup_vs_lemma2(&self) -> f64 {
        self.optimized.total() as f64 / self.bucket.total().max(1) as f64
    }

    /// Whether this point is subject to the "bucket strictly beats Lemma 2"
    /// gate (`N/M ≥ 4`; below that the randomized engine's fixed costs can
    /// legitimately lose to the near-in-cache bitonic sort).
    pub fn bucket_gate_applies(&self) -> bool {
        self.point.n >= 4 * self.point.m
    }
}

/// `⌈log2(⌈N/M⌉)⌉`, the shared "external levels" factor of every bound
/// checked by this harness (0 when the array fits in cache).
fn ceil_log2_ratio(n: usize, m: usize) -> u64 {
    let ratio = n.div_ceil(m);
    if ratio <= 1 {
        0
    } else {
        u64::from(usize::BITS - (ratio - 1).leading_zeros())
    }
}

/// The Lemma 2 bound with the explicit constant [`BOUND_CONSTANT`]:
/// `C · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉²)`.
pub fn sort_io_bound(n: usize, b: usize, m: usize) -> u64 {
    let lg = ceil_log2_ratio(n, m);
    BOUND_CONSTANT * n.div_ceil(b) as u64 * (1 + lg * lg)
}

/// `⌈log_{M/B}(N/B)⌉` computed exactly in integers: the smallest `t ≥ 1`
/// with `(M/B)^t ≥ ⌈N/B⌉`, the base clamped to `≥ 2` so the bound is
/// well-defined even at degenerate cache sizes.
fn ceil_log_base_ratio(n: usize, b: usize, m: usize) -> u64 {
    let nb = n.div_ceil(b) as u64;
    let base = (m / b).max(2) as u64;
    let mut t = 1u64;
    let mut pow = base;
    while pow < nb {
        pow = pow.saturating_mul(base);
        t += 1;
    }
    t
}

/// The bucket-sort bound with the explicit constant
/// [`BUCKET_BOUND_CONSTANT`]: `C_k · ⌈N/B⌉ · max(1, ⌈log_{M/B}(N/B)⌉)` —
/// the `log_{M/B}` gate of the optimal external sorting bound.
pub fn bucket_sort_io_bound(n: usize, b: usize, m: usize) -> u64 {
    BUCKET_BOUND_CONSTANT * n.div_ceil(b) as u64 * ceil_log_base_ratio(n, b, m)
}

/// Deterministic pseudo-random input used by every benchmark run, so results
/// are reproducible across machines and PRs.
pub fn bench_input(n: usize, salt: u64) -> Vec<Element> {
    (0..n)
        .map(|i| Element::keyed(extmem::util::hash64(i as u64, salt), i))
        .collect()
}

/// One timed run of the Lemma 2 sort over a re-encrypting store with any
/// backing (`ExtMem` or `FileStore`): asserts the output is sorted and
/// returns the layer's I/O count and the elapsed time.
fn run_encrypted_sort<S: extmem::BackingStore>(
    mut enc: EncryptedStore<S>,
    cells: &[Cell],
    m: usize,
    expected: &[Element],
) -> (IoStats, u64) {
    let eh = enc.alloc_array_from_cells(cells);
    let (ereport, ns) = timed(|| external_oblivious_sort(&mut enc, &eh, m, SortOrder::Ascending));
    assert_eq!(
        enc.snapshot_cells(&eh)
            .into_iter()
            .flatten()
            .collect::<Vec<_>>(),
        expected,
        "encrypted sort failed"
    );
    (ereport.io, ns)
}

/// One timed run of the bucket sort over a re-encrypting store with any
/// backing: asserts the output is sorted and returns the I/O count, the
/// access trace and the elapsed time.
fn run_encrypted_bucket_sort<S: extmem::BackingStore>(
    mut enc: EncryptedStore<S>,
    cells: &[Cell],
    m: usize,
    expected: &[Element],
    bcfg: &BucketSortConfig,
) -> (IoStats, extmem::AccessTrace, u64) {
    let beh = enc.alloc_array_from_cells(cells);
    enc.enable_trace();
    let (bereport, ns) = timed(|| {
        bucket_oblivious_sort(&mut enc, &beh, m, SortOrder::Ascending, bcfg)
            .unwrap_or_else(|e| panic!("encrypted bucket sort failed: {e}"))
    });
    assert_eq!(
        enc.snapshot_cells(&beh)
            .into_iter()
            .flatten()
            .collect::<Vec<_>>(),
        expected,
        "encrypted bucket sort mis-sorted"
    );
    let betrace = enc.take_trace().expect("tracing was enabled");
    (bereport.io, betrace, ns)
}

/// Measures one grid point. Runs the optimized sorter always, the naive
/// baseline when `run_naive` is set (it costs `Θ((N/B) log² N)` simulated
/// I/Os, which is cheap to simulate but noisy to read), and — when
/// `backends` is set — the wall-clock backend sweep: both engines over
/// `FileStore` and `Encrypted(FileStore)` plus the bucket engine over
/// `PrefetchingStore<FileStore>` and `Prefetching(Encrypted(FileStore))`
/// (decrypt-ahead workers against the batched-keystream span path), every
/// file-backed trace asserted byte-identical to the `ExtMem` reference. The
/// full `Prefetching(Auth(Encrypted(FileStore)))` stack also runs once on
/// two same-shape inputs and must produce identical logical traces and I/O
/// counts — the MAC arrays shift the address layout, so data-independence
/// rather than ExtMem byte-parity is the assertable property there. Panics
/// if any sorter fails to actually sort — a benchmark of a wrong algorithm
/// is meaningless.
pub fn run_sort_point(point: GridPoint, run_naive: bool, backends: bool) -> SortBenchResult {
    let GridPoint { n, b, m } = point;
    let input = bench_input(n, 0xB0B);
    let mut expected = input.clone();
    expected.sort_unstable();

    let mut mem = ExtMem::with_trace(b);
    let h = mem.alloc_array_from_elements(&input);
    let (report, lemma2_extmem_ns) =
        timed(|| external_oblivious_sort(&mut mem, &h, m, SortOrder::Ascending));
    assert_eq!(
        mem.snapshot_elements(&h),
        expected,
        "optimized sort failed at N={n} B={b} M={m}"
    );
    let optimized = report.io;
    let l2trace = mem.take_trace().expect("tracing was enabled");

    // The same sort over the re-encrypting store: every block is decrypted on
    // read and re-encrypted (fresh nonce) on write, yet the I/O count is
    // identical — the trait-generic sort closes the ROADMAP's
    // sort-over-EncryptedStore item. In the backend sweep the ciphertext
    // lives in a real file, so the timing covers cipher + file system work.
    let ecells: Vec<Cell> = input.iter().copied().map(Some).collect();
    let (encrypted_io, lemma2_encfile_ns) = if backends {
        let fs = FileStore::temp(b).expect("tempdir-backed block file");
        run_encrypted_sort(
            EncryptedStore::with_backing(fs, 0x50F7),
            &ecells,
            m,
            &expected,
        )
    } else {
        run_encrypted_sort(EncryptedStore::new(b, 0x50F7), &ecells, m, &expected)
    };
    assert_eq!(
        encrypted_io, optimized,
        "the encryption layer must add zero I/Os to the sort at N={n} B={b} M={m}"
    );

    // The plain file-backed Lemma 2 sort: real reads and writes, and the
    // server-visible trace must match the simulator's byte for byte.
    let lemma2_file_ns = if backends {
        let mut fs = FileStore::temp(b).expect("tempdir-backed block file");
        let fh = fs.alloc_array_from_elements(&input);
        fs.enable_trace();
        let (frep, ns) = timed(|| external_oblivious_sort(&mut fs, &fh, m, SortOrder::Ascending));
        assert_eq!(
            fs.snapshot_elements(&fh),
            expected,
            "file-backed sort failed at N={n} B={b} M={m}"
        );
        assert_eq!(
            frep.io, optimized,
            "the file store must count the same I/Os at N={n} B={b} M={m}"
        );
        let ftrace = fs.take_trace().expect("tracing was enabled");
        assert_eq!(
            ftrace, l2trace,
            "FileStore sort trace must be byte-identical to ExtMem at N={n} B={b} M={m}"
        );
        ns
    } else {
        0
    };

    // The randomized bucket oblivious sort head-to-head, plaintext and
    // encrypted, with the access traces captured. Both runs use the same
    // fixed seed, so beyond equal outputs and equal I/O counts the two
    // traces must be *byte-identical* — the encryption layer may not perturb
    // the server-visible access pattern in any way.
    let bcfg = BucketSortConfig::seeded(BUCKET_SORT_SEED);
    let mut bmem = ExtMem::with_trace(b);
    let bh = bmem.alloc_array_from_elements(&input);
    let (bucket_report, bucket_extmem_ns) = timed(|| {
        bucket_oblivious_sort(&mut bmem, &bh, m, SortOrder::Ascending, &bcfg)
            .unwrap_or_else(|e| panic!("bucket sort failed at N={n} B={b} M={m}: {e}"))
    });
    assert_eq!(
        bmem.snapshot_elements(&bh),
        expected,
        "bucket sort mis-sorted at N={n} B={b} M={m}"
    );
    let bucket = bucket_report.io;
    let btrace = bmem.take_trace().expect("tracing was enabled");

    let (bucket_encrypted_io, betrace, bucket_encfile_ns) = if backends {
        let fs = FileStore::temp(b).expect("tempdir-backed block file");
        run_encrypted_bucket_sort(
            EncryptedStore::with_backing(fs, 0x50F8),
            &ecells,
            m,
            &expected,
            &bcfg,
        )
    } else {
        run_encrypted_bucket_sort(EncryptedStore::new(b, 0x50F8), &ecells, m, &expected, &bcfg)
    };
    assert_eq!(
        bucket_encrypted_io, bucket,
        "the encryption layer must add zero I/Os to the bucket sort at N={n} B={b} M={m}"
    );
    assert_eq!(
        btrace, betrace,
        "plaintext and encrypted bucket-sort traces must be byte-identical"
    );

    // The headline wall-clock pair: the bucket sort over the plain file
    // store (synchronous loads) versus the same sort over
    // `PrefetchingStore<FileStore>`, whose shape-derived hints let a worker
    // pool overlap reads with the oblivious routing work. The prefetching
    // run's *logical* trace — recorded in foreground request order — must
    // still match the simulator's byte for byte: read-ahead is a latency
    // optimization, never a visible access-pattern change.
    let (bucket_file_ns, bucket_prefetch_ns, bucket_encfile_ns, encrypted_prefetch_ns) = if backends
    {
        // Min-of-N on the two wall-clock-gated runs, with the repetitions
        // INTERLEAVED (plain, prefetch, plain, prefetch, ...) so both
        // backends sample the same noise windows — VM clock drift across a
        // bench run is larger than the margin under test, so back-to-back
        // batches would compare different weather, not different backends.
        // The logical work is identical across repetitions (same input,
        // same seed, asserted below), so the minimum is the cleanest
        // estimate of each backend's intrinsic cost.
        const WALL_CLOCK_REPS: usize = 5;
        let mut file_ns = u64::MAX;
        let mut prefetch_ns = u64::MAX;
        let mut encfile_ns = u64::MAX;
        let mut enc_prefetch_ns = u64::MAX;
        for _ in 0..WALL_CLOCK_REPS {
            let mut fs = FileStore::temp(b).expect("tempdir-backed block file");
            let fh = fs.alloc_array_from_elements(&input);
            fs.enable_trace();
            let (frep, ns) = timed(|| {
                bucket_oblivious_sort(&mut fs, &fh, m, SortOrder::Ascending, &bcfg)
                    .unwrap_or_else(|e| panic!("file-backed bucket sort failed: {e}"))
            });
            file_ns = file_ns.min(ns);
            assert_eq!(
                fs.snapshot_elements(&fh),
                expected,
                "file-backed bucket sort mis-sorted at N={n} B={b} M={m}"
            );
            assert_eq!(frep.io, bucket, "file-backed bucket I/Os diverged");
            let ftrace = fs.take_trace().expect("tracing was enabled");
            assert_eq!(
                ftrace, btrace,
                "FileStore bucket trace must be byte-identical to ExtMem at N={n} B={b} M={m}"
            );

            let mut pfs = FileStore::temp(b).expect("tempdir-backed block file");
            let ph = pfs.alloc_array_from_elements(&input);
            let mut ps = PrefetchingStore::new(pfs);
            ps.enable_trace();
            let (prep, ns) = timed(|| {
                let rep = bucket_oblivious_sort(&mut ps, &ph, m, SortOrder::Ascending, &bcfg)
                    .unwrap_or_else(|e| panic!("prefetching bucket sort failed: {e}"));
                // Durability is part of the measured cost: flush the
                // write-behind buffer inside the timed region.
                ps.flush_writes()
                    .unwrap_or_else(|e| panic!("write-behind flush failed: {e}"));
                rep
            });
            prefetch_ns = prefetch_ns.min(ns);
            assert_eq!(
                ps.inner().snapshot_elements(&ph),
                expected,
                "prefetching bucket sort mis-sorted at N={n} B={b} M={m}"
            );
            assert_eq!(prep.io, bucket, "prefetching bucket I/Os diverged");
            let ptrace = ps.take_trace().expect("tracing was enabled");
            assert_eq!(
                ptrace, btrace,
                "PrefetchingStore bucket trace must be byte-identical to ExtMem at N={n} B={b} M={m}"
            );

            // The encrypted pair, interleaved the same way: the plain
            // `Encrypted(FileStore)` (synchronous decrypt-on-load) against
            // `Prefetching(Encrypted(FileStore))` — decrypt-ahead workers,
            // batched keystream, write-behind spans re-encrypted off the
            // foreground thread.
            let (eio, etrace, ns) = run_encrypted_bucket_sort(
                EncryptedStore::with_backing(
                    FileStore::temp(b).expect("tempdir-backed block file"),
                    0x50F8,
                ),
                &ecells,
                m,
                &expected,
                &bcfg,
            );
            encfile_ns = encfile_ns.min(ns);
            assert_eq!(eio, bucket, "encrypted bucket I/Os diverged");
            assert_eq!(etrace, btrace, "encrypted bucket trace diverged");

            let mut penc = EncryptedStore::with_backing(
                FileStore::temp(b).expect("tempdir-backed block file"),
                0x50F8,
            );
            let peh = penc.alloc_array_from_cells(&ecells);
            let mut pes = PrefetchingStore::new(penc);
            pes.enable_trace();
            let (perep, ns) = timed(|| {
                let rep = bucket_oblivious_sort(&mut pes, &peh, m, SortOrder::Ascending, &bcfg)
                    .unwrap_or_else(|e| panic!("encrypted prefetching bucket sort failed: {e}"));
                pes.flush_writes()
                    .unwrap_or_else(|e| panic!("write-behind flush failed: {e}"));
                rep
            });
            enc_prefetch_ns = enc_prefetch_ns.min(ns);
            assert_eq!(
                pes.inner()
                    .snapshot_cells(&peh)
                    .into_iter()
                    .flatten()
                    .collect::<Vec<_>>(),
                expected,
                "encrypted prefetching bucket sort mis-sorted at N={n} B={b} M={m}"
            );
            assert_eq!(
                perep.io, bucket,
                "encrypted prefetching bucket I/Os diverged"
            );
            let petrace = pes.take_trace().expect("tracing was enabled");
            assert_eq!(
                petrace, btrace,
                "Prefetching(Encrypted(FileStore)) bucket trace must be byte-identical to ExtMem \
                 at N={n} B={b} M={m}"
            );
        }

        // Full-stack obliviousness: a sort through
        // `Prefetching(Auth(Encrypted(FileStore)))` — spans MACed as a
        // batch on write, verified ahead on worker threads. The auth layer
        // interleaves MAC arrays into the address space, so its layout (and
        // hence its trace) cannot be compared to ExtMem's; instead the
        // logical trace is asserted *data-independent*: two different
        // same-shape inputs must produce byte-identical traces and I/Os.
        // The Lemma 2 engine is the right probe here — its trace is a
        // function of shape alone, while the bucket engine's is a
        // deterministic function of (shape, seed, data).
        {
            use extmem::{AuthenticatedStore, BlockStore};
            let run_full_stack = |cells: &[Cell]| {
                let enc = EncryptedStore::with_backing(
                    FileStore::temp(b).expect("tempdir-backed block file"),
                    0x50F8,
                );
                let mut auth = AuthenticatedStore::new(enc, 0x4D4143);
                let ah = BlockStore::alloc_array(&mut auth, cells.len());
                auth.try_store_span(&ah, 0, cells)
                    .unwrap_or_else(|e| panic!("full-stack populate failed: {e}"));
                let mut ps = PrefetchingStore::new(auth);
                ps.enable_trace();
                let rep = external_oblivious_sort(&mut ps, &ah, m, SortOrder::Ascending);
                ps.flush_writes()
                    .unwrap_or_else(|e| panic!("write-behind flush failed: {e}"));
                let trace = ps.take_trace().expect("tracing was enabled");
                let mut sorted = Vec::with_capacity(cells.len());
                for i in 0..ah.n_blocks() {
                    let blk = ps.load_block(&ah, i);
                    sorted.extend(blk.slots().iter().flatten().copied());
                    ps.recycle(blk);
                }
                (rep.io, trace, sorted)
            };
            let (io_a, trace_a, sorted_a) = run_full_stack(&ecells);
            assert_eq!(
                sorted_a, expected,
                "full-stack sort mis-sorted at N={n} B={b} M={m}"
            );
            let other_input = bench_input(n, 0xB0C);
            let other_cells: Vec<Cell> = other_input.iter().copied().map(Some).collect();
            let (io_b, trace_b, _) = run_full_stack(&other_cells);
            assert_eq!(
                io_a, io_b,
                "full-stack I/O counts must be input-independent at N={n} B={b} M={m}"
            );
            assert_eq!(
                trace_a, trace_b,
                "Prefetching(Auth(Encrypted(FileStore))) traces must be byte-identical across \
                 same-shape inputs at N={n} B={b} M={m}"
            );
        }
        (file_ns, prefetch_ns, encfile_ns, enc_prefetch_ns)
    } else {
        (0, 0, bucket_encfile_ns, 0)
    };

    let (naive, naive_levels) = if run_naive {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_elements(&input);
        let nrep = naive_external_bitonic_sort(&mut mem, &h, m, SortOrder::Ascending);
        assert_eq!(
            mem.snapshot_elements(&h),
            expected,
            "naive sort failed at N={n} B={b} M={m}"
        );
        (Some(nrep.io), Some(nrep.levels))
    } else {
        (None, None)
    };

    let bound_total = sort_io_bound(n, b, m);
    let bucket_bound_total = bucket_sort_io_bound(n, b, m);
    let timings = backends.then_some(SortTimings {
        lemma2: BackendNanos {
            extmem_ns: lemma2_extmem_ns,
            file_ns: lemma2_file_ns,
            encrypted_file_ns: lemma2_encfile_ns,
        },
        bucket: BackendNanos {
            extmem_ns: bucket_extmem_ns,
            file_ns: bucket_file_ns,
            encrypted_file_ns: bucket_encfile_ns,
        },
        bucket_prefetch_ns,
        encrypted_prefetch_ns,
    });
    SortBenchResult {
        point,
        optimized,
        report,
        encrypted: encrypted_io,
        bucket,
        bucket_report,
        bucket_encrypted: bucket_encrypted_io,
        bucket_bound_total,
        bucket_within_bound: bucket.total() <= bucket_bound_total,
        naive,
        naive_levels,
        bound_total,
        within_bound: optimized.total() <= bound_total,
        timings,
    }
}

/// The default grid: `B = 64`, `N ∈ {2^14, 2^16, 2^18}`,
/// `M ∈ {2^10, 2^13}` — the 3×2 grid the acceptance criteria call for,
/// including the headline point `(2^18, 64, 2^13)`.
pub fn default_grid() -> Vec<GridPoint> {
    let mut grid = Vec::new();
    for &n in &[1usize << 14, 1 << 16, 1 << 18] {
        for &m in &[1usize << 10, 1 << 13] {
            grid.push(GridPoint { n, b: 64, m });
        }
    }
    grid
}

/// A small smoke grid (`N = 2^12`) cheap enough to run in CI on every push:
/// exercises the JSON emitters and the bound gates without the full-size
/// simulation.
pub fn smoke_grid() -> Vec<GridPoint> {
    vec![
        GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 9,
        },
        GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 10,
        },
    ]
}

/// The compaction bound `C_c · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)` — one log
/// factor, not two.
pub fn compact_io_bound(n: usize, b: usize, m: usize) -> u64 {
    COMPACT_BOUND_CONSTANT * n.div_ceil(b) as u64 * (1 + ceil_log2_ratio(n, m))
}

/// Deterministic pseudo-random occupancy (roughly half the cells occupied)
/// used by every compaction benchmark run.
pub fn bench_occupancy(n: usize, salt: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            if extmem::util::hash64(i as u64, salt).is_multiple_of(2) {
                Some(Element::keyed(i as u64, i))
            } else {
                None
            }
        })
        .collect()
}

/// Measured result of one compaction grid point.
#[derive(Clone, Debug)]
pub struct CompactBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// I/O statistics of the optimized external butterfly compaction.
    pub optimized: IoStats,
    /// Structural report of the optimized compaction.
    pub report: CompactReport,
    /// I/Os of the identical run over the re-encrypting store (always equal
    /// to `optimized` — the encryption layer costs zero extra I/Os).
    pub encrypted: IoStats,
    /// I/O statistics of the naive full-depth baseline, if it was run.
    pub naive: Option<IoStats>,
    /// Levels the naive baseline executed, if it was run.
    pub naive_levels: Option<usize>,
    /// The bound `C_c · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)`.
    pub bound_total: u64,
    /// Whether the optimized compaction satisfies the bound.
    pub within_bound: bool,
    /// Wall-clock timings over `ExtMem`, `FileStore` and
    /// `Encrypted(FileStore)` — `None` when run I/O-count-only. The
    /// file-backed trace is asserted byte-identical to `ExtMem` first.
    pub elapsed: Option<BackendNanos>,
}

impl CompactBenchResult {
    /// Naive-over-optimized I/O ratio, if the naive baseline was run.
    pub fn speedup(&self) -> Option<f64> {
        self.naive
            .map(|n| n.total() as f64 / self.optimized.total().max(1) as f64)
    }
}

/// One timed run of the butterfly compaction over a re-encrypting store with
/// any backing: asserts the compacted output and returns the I/O count and
/// the elapsed time.
fn run_encrypted_compact<S: extmem::BackingStore>(
    mut enc: EncryptedStore<S>,
    cells: &[Cell],
    m: usize,
    expected: &[Cell],
) -> (IoStats, u64) {
    let eh = enc.alloc_array_from_cells(cells);
    let (ereport, ns) = timed(|| compact(&mut enc, &eh, m));
    assert_eq!(
        enc.snapshot_cells(&eh),
        expected,
        "encrypted compaction failed"
    );
    (ereport.io, ns)
}

/// Measures one compaction grid point: the optimized butterfly compaction on
/// a plain arena, the identical run over an [`EncryptedStore`] (asserting
/// equal I/O counts and equal output), optionally the naive full-depth
/// baseline, and — when `backends` is set — timed runs over `FileStore`
/// (trace asserted byte-identical to `ExtMem`) and `Encrypted(FileStore)`.
/// Panics if any of them mis-compacts — a benchmark of a wrong algorithm is
/// meaningless.
pub fn run_compact_point(point: GridPoint, run_naive: bool, backends: bool) -> CompactBenchResult {
    let GridPoint { n, b, m } = point;
    let cells = bench_occupancy(n, 0xC0);
    let mut expected: Vec<Cell> = cells.iter().filter(|c| c.is_some()).copied().collect();
    expected.resize(n, None);

    let mut mem = ExtMem::with_trace(b);
    let h = mem.alloc_array_from_cells(&cells);
    let (report, extmem_ns) = timed(|| compact(&mut mem, &h, m));
    assert_eq!(
        mem.snapshot_cells(&h),
        expected,
        "optimized compaction failed at N={n} B={b} M={m}"
    );
    let optimized = report.io;
    let trace = mem.take_trace().expect("tracing was enabled");

    // The same algorithm over the re-encrypting store: every block is
    // decrypted on read and re-encrypted (fresh nonce) on write, yet the I/O
    // count and the address trace are identical. In the backend sweep the
    // ciphertext lives in a real file.
    let (encrypted_io, encrypted_file_ns) = if backends {
        let fs = FileStore::temp(b).expect("tempdir-backed block file");
        run_encrypted_compact(
            EncryptedStore::with_backing(fs, 0x0D0_5EC),
            &cells,
            m,
            &expected,
        )
    } else {
        run_encrypted_compact(EncryptedStore::new(b, 0x0D0_5EC), &cells, m, &expected)
    };
    assert_eq!(
        encrypted_io, optimized,
        "the encryption layer must add zero I/Os"
    );

    // The plain file-backed run, its trace checked against the simulator's.
    let file_ns = if backends {
        let mut fs = FileStore::temp(b).expect("tempdir-backed block file");
        let fh = fs.alloc_array_from_cells(&cells);
        fs.enable_trace();
        let (frep, ns) = timed(|| compact(&mut fs, &fh, m));
        assert_eq!(
            fs.snapshot_cells(&fh),
            expected,
            "file-backed compaction failed at N={n} B={b} M={m}"
        );
        assert_eq!(frep.io, optimized, "file-backed compaction I/Os diverged");
        let ftrace = fs.take_trace().expect("tracing was enabled");
        assert_eq!(
            ftrace, trace,
            "FileStore compaction trace must be byte-identical to ExtMem at N={n} B={b} M={m}"
        );
        ns
    } else {
        0
    };

    let (naive, naive_levels) = if run_naive {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(&cells);
        let nrep = naive_external_butterfly_compact(&mut mem, &h, m);
        assert_eq!(
            mem.snapshot_cells(&h),
            expected,
            "naive compaction failed at N={n} B={b} M={m}"
        );
        (Some(nrep.io), Some(nrep.levels))
    } else {
        (None, None)
    };

    let bound_total = compact_io_bound(n, b, m);
    CompactBenchResult {
        point,
        optimized,
        report,
        encrypted: encrypted_io,
        naive,
        naive_levels,
        bound_total,
        within_bound: optimized.total() <= bound_total,
        elapsed: backends.then_some(BackendNanos {
            extmem_ns,
            file_ns,
            encrypted_file_ns,
        }),
    }
}

/// The selection bound `C_s · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)` — the single-log
/// form selection inherits from prune-and-compact.
pub fn select_io_bound(n: usize, b: usize, m: usize) -> u64 {
    SELECT_BOUND_CONSTANT * n.div_ceil(b) as u64 * (1 + ceil_log2_ratio(n, m))
}

/// Measured result of one selection grid point.
#[derive(Clone, Debug)]
pub struct SelectBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// The rank selected (the median, `k = N/2`).
    pub k: usize,
    /// I/O statistics of the optimized external selection.
    pub optimized: IoStats,
    /// Structural report of the optimized selection.
    pub report: SelectReport,
    /// I/Os of the identical run over the re-encrypting store (always equal
    /// to `optimized` — the encryption layer costs zero extra I/Os, and
    /// [`run_select_point`] asserts the traces are byte-identical too).
    pub encrypted: IoStats,
    /// I/O statistics of the naive sort-then-index baseline, if it was run.
    pub naive: Option<IoStats>,
    /// Levels the naive baseline's full-depth sort executed, if it was run.
    pub naive_levels: Option<usize>,
    /// The bound `C_s · ⌈N/B⌉ · (1 + ⌈log2(⌈N/M⌉)⌉)`.
    pub bound_total: u64,
    /// Whether the optimized selection satisfies the bound.
    pub within_bound: bool,
    /// Wall-clock timings over `ExtMem`, `FileStore` and
    /// `Encrypted(FileStore)` — `None` when run I/O-count-only. The
    /// file-backed trace is asserted byte-identical to `ExtMem` first.
    pub elapsed: Option<BackendNanos>,
}

impl SelectBenchResult {
    /// Naive-over-optimized I/O ratio, if the naive baseline was run.
    pub fn speedup(&self) -> Option<f64> {
        self.naive
            .map(|n| n.total() as f64 / self.optimized.total().max(1) as f64)
    }
}

/// Measures one selection grid point at `k = N/2` (the median): the optimized
/// selection on a plain arena with its trace captured, the identical run over
/// an [`EncryptedStore`] (asserting an equal result, equal I/O counts **and a
/// byte-identical access trace**), and optionally the naive sort-then-index
/// baseline. When `backends` is set the encrypted run is file-backed and a
/// plain `FileStore` run is added, both timed, the file trace asserted
/// byte-identical to `ExtMem`. Panics if any of them mis-selects — a
/// benchmark of a wrong algorithm is meaningless.
pub fn run_select_point(point: GridPoint, run_naive: bool, backends: bool) -> SelectBenchResult {
    let GridPoint { n, b, m } = point;
    let input = bench_input(n, 0x5E1);
    let k = n / 2;
    let mut reference: Vec<(u64, usize)> =
        input.iter().enumerate().map(|(j, e)| (e.key, j)).collect();
    reference.sort_unstable();
    let expected = input[reference[k].1];

    let mut mem = ExtMem::with_trace(b);
    let h = mem.alloc_array_from_elements(&input);
    let ((got, report), extmem_ns) = timed(|| select_kth(&mut mem, &h, m, k));
    let trace = mem.take_trace().expect("trace was enabled");
    assert_eq!(
        got, expected,
        "optimized selection failed at N={n} B={b} M={m}"
    );
    let optimized = report.io;

    // The same selection over the re-encrypting store: equal answer, equal
    // I/O count, and the adversary's view — the address trace — is identical
    // byte for byte. In the backend sweep the ciphertext lives in a real
    // file.
    let ecells: Vec<Cell> = input.iter().copied().map(Some).collect();
    let (egot, encrypted_io, etrace, encrypted_file_ns) = if backends {
        let fs = FileStore::temp(b).expect("tempdir-backed block file");
        let mut enc = EncryptedStore::with_backing(fs, 0x5EC_5E1);
        let eh = enc.alloc_array_from_cells(&ecells);
        enc.enable_trace();
        let ((egot, ereport), ns) = timed(|| select_kth(&mut enc, &eh, m, k));
        let etrace = enc.take_trace().expect("trace was enabled");
        (egot, ereport.io, etrace, ns)
    } else {
        let mut enc = EncryptedStore::new(b, 0x5EC_5E1);
        let eh = enc.alloc_array_from_cells(&ecells);
        enc.enable_trace();
        let ((egot, ereport), ns) = timed(|| select_kth(&mut enc, &eh, m, k));
        let etrace = enc.take_trace().expect("trace was enabled");
        (egot, ereport.io, etrace, ns)
    };
    assert_eq!(
        egot, expected,
        "encrypted selection failed at N={n} B={b} M={m}"
    );
    assert_eq!(
        encrypted_io, optimized,
        "the encryption layer must add zero I/Os to selection"
    );
    assert_eq!(
        trace, etrace,
        "plaintext and encrypted selection traces must be byte-identical at N={n} B={b} M={m}"
    );

    // The plain file-backed run, its trace checked against the simulator's.
    let file_ns = if backends {
        let mut fs = FileStore::temp(b).expect("tempdir-backed block file");
        let fh = fs.alloc_array_from_elements(&input);
        fs.enable_trace();
        let ((fgot, frep), ns) = timed(|| select_kth(&mut fs, &fh, m, k));
        assert_eq!(
            fgot, expected,
            "file-backed selection failed at N={n} B={b} M={m}"
        );
        assert_eq!(frep.io, optimized, "file-backed selection I/Os diverged");
        let ftrace = fs.take_trace().expect("tracing was enabled");
        assert_eq!(
            ftrace, trace,
            "FileStore selection trace must be byte-identical to ExtMem at N={n} B={b} M={m}"
        );
        ns
    } else {
        0
    };

    let (naive, naive_levels) = if run_naive {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_elements(&input);
        let (ngot, nrep) = naive_select_kth(&mut mem, &h, m, k);
        assert_eq!(
            ngot, expected,
            "naive selection failed at N={n} B={b} M={m}"
        );
        (Some(nrep.io), Some(nrep.levels))
    } else {
        (None, None)
    };

    let bound_total = select_io_bound(n, b, m);
    SelectBenchResult {
        point,
        k,
        optimized,
        report,
        encrypted: encrypted_io,
        naive,
        naive_levels,
        bound_total,
        within_bound: optimized.total() <= bound_total,
        elapsed: backends.then_some(BackendNanos {
            extmem_ns,
            file_ns,
            encrypted_file_ns,
        }),
    }
}

/// Emits one point's `"elapsed_ns"` JSON line: a per-backend object when the
/// wall-clock sweep ran, `null` otherwise. When timings are present the
/// emitting `run_*_point` has already asserted the file-backed trace is
/// byte-identical to `ExtMem`, so a `"file_trace_identical": true` line
/// rides along.
fn emit_elapsed(s: &mut String, elapsed: Option<&BackendNanos>) {
    match elapsed {
        Some(t) => {
            let _ = writeln!(
                s,
                "      \"elapsed_ns\": {{\"extmem\": {}, \"file\": {}, \"encrypted_file\": {}}},",
                t.extmem_ns, t.file_ns, t.encrypted_file_ns
            );
            s.push_str("      \"file_trace_identical\": true,\n");
        }
        None => s.push_str("      \"elapsed_ns\": null,\n"),
    }
}

/// Renders the selection results as the `BENCH_select.json` document
/// (hand-rolled JSON; the workspace deliberately has no external
/// dependencies).
pub fn select_to_json(results: &[SelectBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"external_oblivious_selection\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str("  \"bound\": \"C * ceil(N/B) * (1 + ceil(log2(ceil(N/M))))\",\n");
    let _ = writeln!(s, "  \"bound_constant\": {SELECT_BOUND_CONSTANT},");
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"k\": {},", r.k);
        let _ = writeln!(s, "      \"optimized_reads\": {},", r.optimized.reads);
        let _ = writeln!(s, "      \"optimized_writes\": {},", r.optimized.writes);
        let _ = writeln!(s, "      \"optimized_total\": {},", r.optimized.total());
        let _ = writeln!(s, "      \"encrypted_total\": {},", r.encrypted.total());
        // run_select_point asserts the byte-identical plaintext/encrypted
        // trace before a result is ever constructed.
        s.push_str("      \"encrypted_trace_identical\": true,\n");
        emit_elapsed(&mut s, r.elapsed.as_ref());
        let _ = writeln!(s, "      \"rounds\": {},", r.report.rounds);
        let _ = writeln!(s, "      \"chunk_elems\": {},", r.report.chunk_elems);
        let _ = writeln!(s, "      \"final_window\": {},", r.report.final_window);
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        match (r.naive, r.naive_levels, r.speedup()) {
            (Some(naive), Some(levels), Some(speedup)) => {
                let _ = writeln!(s, "      \"naive_total\": {},", naive.total());
                let _ = writeln!(s, "      \"naive_levels\": {levels},");
                let _ = writeln!(s, "      \"speedup_vs_naive\": {speedup:.2},");
            }
            _ => {
                s.push_str("      \"naive_total\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the selection results.
pub fn select_to_table(results: &[SelectBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>6}",
        "N", "B", "M", "opt I/Os", "naive I/Os", "bound", "speedup", "file ms", "encf ms", "ok"
    );
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let naive = r
            .naive
            .map(|x| x.total().to_string())
            .unwrap_or_else(|| "-".into());
        let speedup = r
            .speedup()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>6}",
            n,
            b,
            m,
            r.optimized.total(),
            naive,
            r.bound_total,
            speedup,
            fmt_ms(r.elapsed.as_ref().map(|t| t.file_ns)),
            fmt_ms(r.elapsed.as_ref().map(|t| t.encrypted_file_ns)),
            if r.within_bound { "yes" } else { "NO" }
        );
    }
    s
}

/// Renders the results as the `BENCH_sort.json` document (hand-rolled JSON;
/// the workspace deliberately has no external dependencies).
pub fn to_json(results: &[SortBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"external_oblivious_sort\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str("  \"bound\": \"C * ceil(N/B) * (1 + ceil(log2(ceil(N/M)))^2)\",\n");
    let _ = writeln!(s, "  \"bound_constant\": {BOUND_CONSTANT},");
    s.push_str("  \"bucket_bound\": \"C_k * ceil(N/B) * max(1, ceil(log_{M/B}(N/B)))\",\n");
    let _ = writeln!(s, "  \"bucket_bound_constant\": {BUCKET_BOUND_CONSTANT},");
    let _ = writeln!(s, "  \"bucket_seed\": {BUCKET_SORT_SEED},");
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"optimized_reads\": {},", r.optimized.reads);
        let _ = writeln!(s, "      \"optimized_writes\": {},", r.optimized.writes);
        let _ = writeln!(s, "      \"optimized_total\": {},", r.optimized.total());
        let _ = writeln!(s, "      \"encrypted_total\": {},", r.encrypted.total());
        match &r.timings {
            Some(t) => {
                let _ = writeln!(
                    s,
                    "      \"lemma2_elapsed_ns\": {{\"extmem\": {}, \"file\": {}, \"encrypted_file\": {}}},",
                    t.lemma2.extmem_ns, t.lemma2.file_ns, t.lemma2.encrypted_file_ns
                );
                let _ = writeln!(
                    s,
                    "      \"bucket_elapsed_ns\": {{\"extmem\": {}, \"file\": {}, \"encrypted_file\": {}}},",
                    t.bucket.extmem_ns, t.bucket.file_ns, t.bucket.encrypted_file_ns
                );
                let _ = writeln!(s, "      \"bucket_prefetch_ns\": {},", t.bucket_prefetch_ns);
                let _ = writeln!(
                    s,
                    "      \"encrypted_prefetch_ns\": {},",
                    t.encrypted_prefetch_ns
                );
                // run_sort_point asserts every file-backed trace is
                // byte-identical to the ExtMem reference before a timing is
                // ever recorded.
                s.push_str("      \"file_trace_identical\": true,\n");
            }
            None => {
                s.push_str("      \"lemma2_elapsed_ns\": null,\n");
                s.push_str("      \"bucket_elapsed_ns\": null,\n");
                s.push_str("      \"bucket_prefetch_ns\": null,\n");
                s.push_str("      \"encrypted_prefetch_ns\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"region_elems\": {},", r.report.region_elems);
        let _ = writeln!(
            s,
            "      \"external_levels\": {},",
            r.report.external_levels
        );
        let _ = writeln!(s, "      \"finish_passes\": {},", r.report.finish_passes);
        let _ = writeln!(s, "      \"bucket_reads\": {},", r.bucket.reads);
        let _ = writeln!(s, "      \"bucket_writes\": {},", r.bucket.writes);
        let _ = writeln!(s, "      \"bucket_total\": {},", r.bucket.total());
        let _ = writeln!(
            s,
            "      \"bucket_encrypted_total\": {},",
            r.bucket_encrypted.total()
        );
        let _ = writeln!(s, "      \"bucket_z\": {},", r.bucket_report.z);
        let _ = writeln!(s, "      \"bucket_levels\": {},", r.bucket_report.levels);
        let _ = writeln!(
            s,
            "      \"bucket_superlevels\": {},",
            r.bucket_report.superlevels
        );
        let _ = writeln!(
            s,
            "      \"bucket_merge_passes\": {},",
            r.bucket_report.merge_passes
        );
        let _ = writeln!(s, "      \"bucket_bound_total\": {},", r.bucket_bound_total);
        let _ = writeln!(
            s,
            "      \"bucket_within_bound\": {},",
            r.bucket_within_bound
        );
        let _ = writeln!(
            s,
            "      \"bucket_speedup_vs_lemma2\": {:.2},",
            r.bucket_speedup_vs_lemma2()
        );
        let _ = writeln!(
            s,
            "      \"bucket_gate_applies\": {},",
            r.bucket_gate_applies()
        );
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        match (r.naive, r.naive_levels, r.speedup()) {
            (Some(naive), Some(levels), Some(speedup)) => {
                let _ = writeln!(s, "      \"naive_total\": {},", naive.total());
                let _ = writeln!(s, "      \"naive_levels\": {levels},");
                let _ = writeln!(s, "      \"speedup_vs_naive\": {speedup:.2},");
            }
            _ => {
                s.push_str("      \"naive_total\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the compaction results as the `BENCH_compact.json` document
/// (hand-rolled JSON; the workspace deliberately has no external
/// dependencies).
pub fn compact_to_json(results: &[CompactBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"external_butterfly_compaction\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str("  \"bound\": \"C * ceil(N/B) * (1 + ceil(log2(ceil(N/M))))\",\n");
    let _ = writeln!(s, "  \"bound_constant\": {COMPACT_BOUND_CONSTANT},");
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"optimized_reads\": {},", r.optimized.reads);
        let _ = writeln!(s, "      \"optimized_writes\": {},", r.optimized.writes);
        let _ = writeln!(s, "      \"optimized_total\": {},", r.optimized.total());
        let _ = writeln!(s, "      \"encrypted_total\": {},", r.encrypted.total());
        emit_elapsed(&mut s, r.elapsed.as_ref());
        let _ = writeln!(s, "      \"window_elems\": {},", r.report.window_elems);
        let _ = writeln!(
            s,
            "      \"in_cache_levels\": {},",
            r.report.in_cache_levels
        );
        let _ = writeln!(
            s,
            "      \"external_levels\": {},",
            r.report.external_levels
        );
        let _ = writeln!(s, "      \"occupied\": {},", r.report.occupied);
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        match (r.naive, r.naive_levels, r.speedup()) {
            (Some(naive), Some(levels), Some(speedup)) => {
                let _ = writeln!(s, "      \"naive_total\": {},", naive.total());
                let _ = writeln!(s, "      \"naive_levels\": {levels},");
                let _ = writeln!(s, "      \"speedup_vs_naive\": {speedup:.2},");
            }
            _ => {
                s.push_str("      \"naive_total\": null,\n");
            }
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the compaction results.
pub fn compact_to_table(results: &[CompactBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>6}",
        "N", "B", "M", "opt I/Os", "naive I/Os", "bound", "speedup", "file ms", "encf ms", "ok"
    );
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let naive = r
            .naive
            .map(|x| x.total().to_string())
            .unwrap_or_else(|| "-".into());
        let speedup = r
            .speedup()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>6}",
            n,
            b,
            m,
            r.optimized.total(),
            naive,
            r.bound_total,
            speedup,
            fmt_ms(r.elapsed.as_ref().map(|t| t.file_ns)),
            fmt_ms(r.elapsed.as_ref().map(|t| t.encrypted_file_ns)),
            if r.within_bound { "yes" } else { "NO" }
        );
    }
    s
}

/// Formats nanoseconds as milliseconds with one decimal, `"-"` for a timing
/// that was not measured.
fn fmt_ms(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.1}", ns as f64 / 1e6),
        None => "-".into(),
    }
}

/// Renders a human-readable table of the results for terminal output.
pub fn to_table(results: &[SortBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "N",
        "B",
        "M",
        "opt I/Os",
        "bkt I/Os",
        "naive I/Os",
        "bkt bound",
        "bkt/L2",
        "speedup",
        "file ms",
        "pf ms",
        "ok"
    );
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let naive = r
            .naive
            .map(|x| x.total().to_string())
            .unwrap_or_else(|| "-".into());
        let speedup = r
            .speedup()
            .map(|x| format!("{x:.2}x"))
            .unwrap_or_else(|| "-".into());
        let ok = r.within_bound
            && r.bucket_within_bound
            && (!r.bucket_gate_applies() || r.bucket.total() < r.optimized.total());
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8} {:>6}",
            n,
            b,
            m,
            r.optimized.total(),
            r.bucket.total(),
            naive,
            r.bucket_bound_total,
            format!("{:.2}x", r.bucket_speedup_vs_lemma2()),
            speedup,
            fmt_ms(r.timings.as_ref().map(|t| t.bucket.file_ns)),
            fmt_ms(r.timings.as_ref().map(|t| t.bucket_prefetch_ns)),
            if ok { "yes" } else { "NO" }
        );
    }
    s
}

// ---------------------------------------------------------------------------
// The untrusted-server fault benchmark (`BENCH_faults.json`)
// ---------------------------------------------------------------------------

/// One scenario of the fault benchmark: a store stack (authenticated or
/// plain) plus a deterministic fault specification injected underneath it.
#[derive(Clone, Copy, Debug)]
pub struct FaultScenario {
    /// Scenario name as emitted into the JSON.
    pub name: &'static str,
    /// Whether an [`AuthenticatedStore`] sits between the client and the
    /// faulty server.
    pub authenticated: bool,
    /// Fault rates injected during the sort (populate and verification run
    /// fault-free).
    pub spec: FaultSpec,
}

/// The fixed scenario list of the fault benchmark. The rates are chosen so
/// every fault lane fires reliably even on the `N = 2^12` smoke grid; the
/// stale lane runs hotter because replays are only *material* on blocks
/// already rewritten with new content.
pub fn fault_scenarios() -> Vec<FaultScenario> {
    let none = FaultSpec::none();
    vec![
        FaultScenario {
            name: "plain_no_faults",
            authenticated: false,
            spec: none,
        },
        FaultScenario {
            name: "auth_no_faults",
            authenticated: true,
            spec: none,
        },
        FaultScenario {
            name: "auth_transient",
            authenticated: true,
            spec: FaultSpec {
                transient_read_ppm: 20_000,
                ..none
            },
        },
        FaultScenario {
            name: "auth_corrupt",
            authenticated: true,
            spec: FaultSpec {
                corrupt_read_ppm: 2_000,
                ..none
            },
        },
        FaultScenario {
            name: "auth_stale",
            authenticated: true,
            spec: FaultSpec {
                stale_read_ppm: 8_000,
                ..none
            },
        },
        FaultScenario {
            name: "auth_drop",
            authenticated: true,
            spec: FaultSpec {
                drop_write_ppm: 2_000,
                ..none
            },
        },
        // The motivation row: the same corrupting server *without* the
        // authentication layer completes the sort and hands back silently
        // wrong data.
        FaultScenario {
            name: "plain_corrupt_silent",
            authenticated: false,
            spec: FaultSpec {
                corrupt_read_ppm: 2_000,
                ..none
            },
        },
    ]
}

/// Which store sits at the bottom of the fault stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultBackend {
    /// `Auth ∘ Faulty ∘ Encrypted(ExtMem)` — the in-memory simulator.
    ExtMem,
    /// `Auth ∘ Faulty ∘ Encrypted(FileStore)` — a tempdir-backed block file
    /// doing real reads and writes under the whole software stack.
    File,
}

impl FaultBackend {
    /// The backend name emitted into the JSON rows.
    pub fn name(self) -> &'static str {
        match self {
            FaultBackend::ExtMem => "extmem",
            FaultBackend::File => "file",
        }
    }
}

/// Measured result of one fault scenario at one grid point.
#[derive(Clone, Debug)]
pub struct FaultBenchResult {
    /// The parameters measured.
    pub point: GridPoint,
    /// The scenario that produced this row.
    pub scenario: FaultScenario,
    /// The bottom-level store backing this row (`"extmem"` or `"file"`).
    pub backend: &'static str,
    /// Wall-clock nanoseconds of the sort window (including retries).
    pub elapsed_ns: u64,
    /// Bottom-level (server-side) I/Os of the sort window, including MAC
    /// traffic and the final MAC flush when authenticated.
    pub sort_io: IoStats,
    /// Transient retries performed by the retry layer.
    pub retries: u64,
    /// Abstract backoff units slept across those retries.
    pub backoff_units: u64,
    /// Faults actually injected during the sort window.
    pub faults: FaultStats,
    /// The typed error the sort returned, if any (rendered).
    pub run_error: Option<String>,
    /// The typed error the fault-free verified read-back returned, if any.
    pub readback_error: Option<String>,
    /// Whether the read-back matched the expected sorted output (only
    /// meaningful when no error preempted it).
    pub output_correct: Option<bool>,
    /// Bottom-level I/O overhead of this scenario relative to the
    /// `plain_no_faults` baseline at the same point (filled by
    /// [`run_fault_grid`]).
    pub overhead_vs_plain: Option<f64>,
}

impl FaultBenchResult {
    /// Whether tampering surfaced as a typed error (at run time or on the
    /// verified read-back).
    pub fn detected(&self) -> bool {
        self.run_error.is_some() || self.readback_error.is_some()
    }

    /// The row's outcome classification: `"correct"`, `"detected"`, or the
    /// forbidden-under-authentication `"silent_wrong"`.
    pub fn outcome(&self) -> &'static str {
        if self.detected() {
            "detected"
        } else if self.output_correct == Some(true) {
            "correct"
        } else {
            "silent_wrong"
        }
    }
}

/// Measures one fault scenario at one grid point over the chosen backend:
/// populate fault-free, sort with the scenario's faults injected, then
/// verify fault-free. The measured I/O window covers the sort plus (when
/// authenticated) the final MAC flush — exactly the traffic a client pays
/// per operation against an untrusted server.
pub fn run_fault_point(
    point: GridPoint,
    scenario: FaultScenario,
    backend: FaultBackend,
) -> FaultBenchResult {
    match backend {
        FaultBackend::ExtMem => run_fault_point_on(
            point,
            scenario,
            EncryptedStore::new(point.b, 0xFA17_0001),
            backend,
        ),
        FaultBackend::File => {
            let fs = FileStore::temp(point.b).expect("tempdir-backed block file");
            run_fault_point_on(
                point,
                scenario,
                EncryptedStore::with_backing(fs, 0xFA17_0001),
                backend,
            )
        }
    }
}

fn run_fault_point_on<S: extmem::BackingStore>(
    point: GridPoint,
    scenario: FaultScenario,
    enc: EncryptedStore<S>,
    backend: FaultBackend,
) -> FaultBenchResult {
    use extmem::{AuthenticatedStore, BlockStore, FaultyStore, RetryPolicy};
    use odo_core::try_sort;

    let GridPoint { n, b: _, m } = point;
    let input = bench_input(n, 0xFA17);
    let mut expected = input.clone();
    expected.sort_unstable();
    let cells: Vec<Cell> = input.iter().copied().map(Some).collect();
    let policy = RetryPolicy::default();

    let faulty = FaultyStore::new(enc, 0xFA17_0002, FaultSpec::none());

    let check = |got: Result<Vec<Cell>, extmem::StoreError>| match got {
        Ok(out) => {
            let flat: Vec<Element> = out.into_iter().flatten().collect();
            (None, Some(flat == expected))
        }
        Err(e) => (Some(e.to_string()), None),
    };

    if scenario.authenticated {
        let mut auth = AuthenticatedStore::new(faulty, 0xFA17_0003);
        let h = BlockStore::alloc_array(&mut auth, n);
        auth.try_store_span(&h, 0, &cells)
            .expect("fault-free populate");
        auth.flush_macs().expect("fault-free flush");

        let before = auth.inner().inner().io_stats();
        auth.inner_mut().set_spec(scenario.spec);
        let faults_before = auth.inner().fault_stats();
        let (run, elapsed_ns) = timed(|| try_sort(&mut auth, &h, m, SortOrder::Ascending, policy));
        auth.inner_mut().set_spec(FaultSpec::none());
        let faults = auth.inner().fault_stats();
        let _ = auth.flush_macs();
        let after = auth.inner().inner().io_stats();

        let (retries, backoff_units, run_error) = match run {
            Ok((_, retry)) => (retry.retries, retry.backoff_units, None),
            Err(e) => (0, 0, Some(e.to_string())),
        };
        let (readback_error, output_correct) = if run_error.is_some() {
            (None, None)
        } else {
            check(auth.try_load_span(&h, 0, n))
        };
        FaultBenchResult {
            point,
            scenario,
            backend: backend.name(),
            elapsed_ns,
            sort_io: IoStats {
                reads: after.reads - before.reads,
                writes: after.writes - before.writes,
            },
            retries,
            backoff_units,
            faults: FaultStats {
                transient_reads: faults.transient_reads - faults_before.transient_reads,
                corrupt_reads: faults.corrupt_reads - faults_before.corrupt_reads,
                stale_reads: faults.stale_reads - faults_before.stale_reads,
                dropped_writes: faults.dropped_writes - faults_before.dropped_writes,
            },
            run_error,
            readback_error,
            output_correct,
            overhead_vs_plain: None,
        }
    } else {
        let mut faulty = faulty;
        let h = BlockStore::alloc_array(&mut faulty, n);
        faulty
            .try_store_span(&h, 0, &cells)
            .expect("fault-free populate");

        let before = faulty.inner().io_stats();
        faulty.set_spec(scenario.spec);
        let (run, elapsed_ns) =
            timed(|| try_sort(&mut faulty, &h, m, SortOrder::Ascending, policy));
        faulty.set_spec(FaultSpec::none());
        let faults = faulty.fault_stats();
        let after = faulty.inner().io_stats();

        let (retries, backoff_units, run_error) = match run {
            Ok((_, retry)) => (retry.retries, retry.backoff_units, None),
            Err(e) => (0, 0, Some(e.to_string())),
        };
        let (readback_error, output_correct) = if run_error.is_some() {
            (None, None)
        } else {
            check(faulty.try_load_span(&h, 0, n))
        };
        FaultBenchResult {
            point,
            scenario,
            backend: backend.name(),
            elapsed_ns,
            sort_io: IoStats {
                reads: after.reads - before.reads,
                writes: after.writes - before.writes,
            },
            retries,
            backoff_units,
            faults,
            run_error,
            readback_error,
            output_correct,
            overhead_vs_plain: None,
        }
    }
}

/// Runs every [`fault_scenarios`] row at `point` over one backend and fills
/// each result's overhead relative to the same backend's `plain_no_faults`
/// baseline (the fault schedules are seeded per scenario, so the I/O counts
/// — and hence the overheads — are identical across backends; only
/// `elapsed_ns` differs).
pub fn run_fault_scenarios(point: GridPoint, backend: FaultBackend) -> Vec<FaultBenchResult> {
    let mut results: Vec<FaultBenchResult> = fault_scenarios()
        .into_iter()
        .map(|s| run_fault_point(point, s, backend))
        .collect();
    let baseline = results
        .iter()
        .find(|r| r.scenario.name == "plain_no_faults")
        .map(|r| r.sort_io.total())
        .expect("the scenario list starts with the plain baseline");
    for r in &mut results {
        r.overhead_vs_plain = Some(r.sort_io.total() as f64 / baseline.max(1) as f64 - 1.0);
    }
    results
}

/// Runs every [`fault_scenarios`] row at `point` over *both* backends —
/// `Encrypted(ExtMem)` and `Encrypted(FileStore)` — so each JSON row carries
/// a backend tag and a wall-clock column next to its I/O counts.
pub fn run_fault_grid(point: GridPoint) -> Vec<FaultBenchResult> {
    let mut results = run_fault_scenarios(point, FaultBackend::ExtMem);
    results.extend(run_fault_scenarios(point, FaultBackend::File));
    results
}

/// Checks the fault-model acceptance gates over one grid point's results.
/// Returns every violated gate as a message; an empty vector means the point
/// passes.
pub fn check_fault_gates(results: &[FaultBenchResult]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut push = |cond: bool, msg: String| {
        if !cond {
            violations.push(msg);
        }
    };
    for r in results {
        let GridPoint { n, b, m } = r.point;
        let at = format!("{}[{}] at N={n} B={b} M={m}", r.scenario.name, r.backend);
        match r.scenario.name {
            "plain_no_faults" => {
                push(
                    r.outcome() == "correct",
                    format!("{at}: baseline must sort correctly"),
                );
            }
            "auth_no_faults" => {
                push(
                    r.outcome() == "correct",
                    format!("{at}: must sort correctly"),
                );
                let overhead = r.overhead_vs_plain.unwrap_or(f64::INFINITY);
                push(
                    overhead <= 0.15,
                    format!(
                        "{at}: authentication overhead {:.1}% > 15% ({} vs baseline I/Os)",
                        overhead * 100.0,
                        r.sort_io.total()
                    ),
                );
            }
            "auth_transient" => {
                push(
                    r.outcome() == "correct",
                    format!(
                        "{at}: transients must retry to the correct result, got {:?}",
                        r.run_error
                    ),
                );
                push(
                    r.retries > 0,
                    format!("{at}: the transient lane never fired"),
                );
                push(
                    r.faults.tampering() == 0,
                    format!("{at}: transients are not tampering"),
                );
            }
            "auth_corrupt" | "auth_stale" | "auth_drop" => {
                push(
                    r.faults.tampering() > 0,
                    format!("{at}: the tamper lane never fired — raise the rate"),
                );
                push(
                    r.outcome() == "detected",
                    format!(
                        "{at}: tampering must surface as a typed error, got {}",
                        r.outcome()
                    ),
                );
            }
            "plain_corrupt_silent" => {
                push(
                    r.faults.tampering() > 0,
                    format!("{at}: the corrupt lane never fired — raise the rate"),
                );
                push(
                    r.outcome() == "silent_wrong",
                    format!(
                        "{at}: without authentication corruption should yield a silently \
                         wrong answer (the motivation row), got {}",
                        r.outcome()
                    ),
                );
            }
            other => push(false, format!("unknown scenario {other:?}")),
        }
    }
    violations
}

/// Renders the fault results as the `BENCH_faults.json` document
/// (hand-rolled JSON; the workspace deliberately has no external
/// dependencies).
pub fn faults_to_json(results: &[FaultBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"untrusted_server_faults\",\n");
    s.push_str(
        "  \"io_model\": \"1 I/O per bottom-level block read or write; sort window incl. MAC traffic\",\n",
    );
    s.push_str("  \"workload\": \"external_oblivious_sort\",\n");
    s.push_str("  \"rows\": [\n");
    for (i, r) in results.iter().enumerate() {
        let GridPoint { n, b, m } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"scenario\": \"{}\",", r.scenario.name);
        let _ = writeln!(s, "      \"backend\": \"{}\",", r.backend);
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"authenticated\": {},", r.scenario.authenticated);
        let _ = writeln!(
            s,
            "      \"fault_ppm\": {{\"transient\": {}, \"corrupt\": {}, \"stale\": {}, \"drop\": {}}},",
            r.scenario.spec.transient_read_ppm,
            r.scenario.spec.corrupt_read_ppm,
            r.scenario.spec.stale_read_ppm,
            r.scenario.spec.drop_write_ppm
        );
        let _ = writeln!(s, "      \"sort_reads\": {},", r.sort_io.reads);
        let _ = writeln!(s, "      \"sort_writes\": {},", r.sort_io.writes);
        let _ = writeln!(s, "      \"sort_total\": {},", r.sort_io.total());
        let _ = writeln!(s, "      \"elapsed_ns\": {},", r.elapsed_ns);
        match r.overhead_vs_plain {
            Some(o) => {
                let _ = writeln!(s, "      \"overhead_vs_plain\": {o:.4},");
            }
            None => s.push_str("      \"overhead_vs_plain\": null,\n"),
        }
        let _ = writeln!(s, "      \"retries\": {},", r.retries);
        let _ = writeln!(s, "      \"backoff_units\": {},", r.backoff_units);
        let _ = writeln!(
            s,
            "      \"faults_injected\": {{\"transient\": {}, \"corrupt\": {}, \"stale\": {}, \"drop\": {}}},",
            r.faults.transient_reads,
            r.faults.corrupt_reads,
            r.faults.stale_reads,
            r.faults.dropped_writes
        );
        match &r.run_error {
            Some(e) => {
                let _ = writeln!(s, "      \"run_error\": \"{}\",", e.replace('"', "'"));
            }
            None => s.push_str("      \"run_error\": null,\n"),
        }
        match &r.readback_error {
            Some(e) => {
                let _ = writeln!(s, "      \"readback_error\": \"{}\",", e.replace('"', "'"));
            }
            None => s.push_str("      \"readback_error\": null,\n"),
        }
        let _ = writeln!(s, "      \"outcome\": \"{}\"", r.outcome());
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the fault results.
pub fn faults_to_table(results: &[FaultBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>22} {:>8} {:>8} {:>12} {:>9} {:>8} {:>8} {:>8} {:>12}",
        "scenario", "backend", "N", "sort I/Os", "overhead", "retries", "faults", "ms", "outcome"
    );
    for r in results {
        let overhead = r
            .overhead_vs_plain
            .map(|o| format!("{:+.1}%", o * 100.0))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            s,
            "{:>22} {:>8} {:>8} {:>12} {:>9} {:>8} {:>8} {:>8} {:>12}",
            r.scenario.name,
            r.backend,
            r.point.n,
            r.sort_io.total(),
            overhead,
            r.retries,
            r.faults.total(),
            fmt_ms(Some(r.elapsed_ns)),
            r.outcome()
        );
    }
    s
}

/// One parameter point of the ORAM benchmark grid: the `(N, B, M)` model
/// plus the ORAM's own two knobs — the flush period `P` and the length of
/// the measured access sequence (the amortization window).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OramGridPoint {
    /// Address-space size `n`.
    pub n: usize,
    /// Block size `B` in elements.
    pub b: usize,
    /// Private client cache `M` in elements (the rebuilds' sort and
    /// compaction budget).
    pub m: usize,
    /// Flush period `P` (a power of two): the client cache drains into the
    /// hierarchy every `P` accesses.
    pub period: usize,
    /// Accesses measured.
    pub accesses: usize,
}

/// Fixed seed of every benchmarked ORAM, so the epoch salts — and with them
/// the probe schedule and each rebuild's bucket-sort bin assignment — are
/// reproducible across machines and PRs.
pub const ORAM_BENCH_SEED: u64 = 0x04A7_0B5E;

/// The engine-appropriate per-pass sort bound: Lemma 2's squared-log form
/// for the bitonic engine, the `log_{M/B}` form for the bucket engine.
fn sorter_pass_bound(engine: SortEngine, n: usize, b: usize, m: usize) -> u64 {
    match engine {
        SortEngine::Bitonic => sort_io_bound(n, b, m),
        SortEngine::Bucket => bucket_sort_io_bound(n, b, m),
    }
}

/// Analytic I/O bound of one rebuild into level `j`, composed pass by pass
/// from the pipeline's fixed structure: collect (client span + every source
/// table streamed once), two full sorts of the scratch region, two
/// read-modify-write sweeps, one filler block per bucket, one §3
/// order-preserving compaction, and the prefix copy into the table.
fn oram_rebuild_bound(
    geo: &[LevelGeometry],
    client_blocks: usize,
    b: usize,
    m: usize,
    j: usize,
    engine: SortEngine,
) -> u64 {
    let g = &geo[j];
    let scratch_cells = g.scratch_blocks * b;
    let mut io = client_blocks as u64;
    for src in &geo[..j] {
        io += 2 * src.table_blocks as u64;
    }
    if j + 1 == geo.len() {
        // The deepest level rebuilds into itself, consuming its own table.
        io += 2 * g.table_blocks as u64;
    }
    io += 2 * sorter_pass_bound(engine, scratch_cells, b, m);
    io += 4 * g.scratch_blocks as u64;
    io += g.table_blocks as u64;
    io += compact_io_bound(scratch_cells, b, m);
    io += 2 * g.table_blocks as u64;
    io
}

/// The composed analytic I/O bound for a run of `accesses` ORAM accesses:
/// one probe read per level per access, plus [`oram_rebuild_bound`] for the
/// level each flush actually targets (the binary-counter rule
/// [`Oram::target_level`]). Every term is an explicit-constant upper bound
/// on its pass, so the total upper-bounds the measured count — and since
/// level `j` is rebuilt every `2^(j+1)` flushes at `O(sort(cap_j))` I/Os,
/// the sum telescopes to the paper's `O(log² n)` amortized block I/Os per
/// access.
pub fn oram_io_bound(
    geo: &[LevelGeometry],
    client_blocks: usize,
    b: usize,
    m: usize,
    period: u64,
    accesses: u64,
    engine: SortEngine,
) -> u64 {
    let levels = geo.len();
    let mut total = accesses * levels as u64;
    for f in 1..=accesses / period {
        let j = Oram::target_level(f, levels);
        total += oram_rebuild_bound(geo, client_blocks, b, m, j, engine);
    }
    total
}

/// Measured result of one ORAM grid point.
#[derive(Clone, Debug)]
pub struct OramBenchResult {
    /// The parameters measured.
    pub point: OramGridPoint,
    /// Levels in the hierarchy (`O(log n)`).
    pub levels: usize,
    /// Rebuilds triggered during the window (`accesses / period`).
    pub flushes: u64,
    /// Server-side I/Os of the whole access sequence (probes + rebuilds).
    pub io: IoStats,
    /// The composed analytic bound [`oram_io_bound`].
    pub bound_total: u64,
    /// Whether the measured total satisfies the bound.
    pub within_bound: bool,
    /// Client stash size after the window (bucket-overflow reals).
    pub stash_len: usize,
    /// Wall clock of the identical sequence over `ExtMem`, `FileStore` and
    /// `EncryptedStore<FileStore>` — `None` when run I/O-count-only. Every
    /// file-backed run's trace is asserted byte-identical to `ExtMem`'s.
    pub timings: Option<BackendNanos>,
    /// Wall clock of the identical sequence over
    /// `Prefetching(Encrypted(FileStore))` — decrypt-ahead workers plus
    /// write-behind span encryption, flushed inside the timed region. Its
    /// logical trace is asserted byte-identical to `ExtMem`'s. `None` when
    /// run I/O-count-only.
    pub encrypted_prefetch_ns: Option<u64>,
}

impl OramBenchResult {
    /// Measured amortized I/Os per access — the headline `O(log² n)` number.
    pub fn amortized_ios(&self) -> f64 {
        self.io.total() as f64 / self.point.accesses.max(1) as f64
    }

    /// The analytic bound, amortized per access.
    pub fn bound_amortized(&self) -> f64 {
        self.bound_total as f64 / self.point.accesses.max(1) as f64
    }
}

/// Drives one ORAM through a request sequence, returning the read results
/// in order.
fn run_oram_requests<S: extmem::BlockStore>(
    store: &mut S,
    oram: &mut Oram,
    reqs: &[(u64, Option<u64>)],
) -> Vec<u64> {
    let mut out = Vec::with_capacity(reqs.len());
    for &(addr, write) in reqs {
        match write {
            Some(v) => oram.write(store, addr, v),
            None => out.push(oram.read(store, addr)),
        }
    }
    out
}

/// Measures one ORAM grid point: a deterministic mixed read/write sequence
/// (hash-spread addresses, one write in three) over `ExtMem`, checked
/// against a client-side mirror and gated by [`oram_io_bound`]. When
/// `backends` is set the identical sequence replays over `FileStore`,
/// `EncryptedStore<FileStore>` and `Prefetching(Encrypted(FileStore))`
/// (decrypt-ahead workers, write-behind flushed on the clock), each timed,
/// each trace asserted byte-identical to the simulator's — same seed, same
/// salts, same schedule, on disk and under encryption.
pub fn run_oram_point(point: OramGridPoint, backends: bool) -> OramBenchResult {
    use extmem::BlockStore;
    let OramGridPoint {
        n,
        b,
        m,
        period,
        accesses,
    } = point;
    let cfg = OramConfig::new(period, m, ORAM_BENCH_SEED);
    let reqs: Vec<(u64, Option<u64>)> = (0..accesses as u64)
        .map(|k| {
            let addr = extmem::util::hash64(k, 0x0AC7) % n as u64;
            if k.is_multiple_of(3) {
                // Values shifted under 63 bits: the EncryptedStore contract.
                (addr, Some(extmem::util::hash64(k, 0x7A1) >> 1))
            } else {
                (addr, None)
            }
        })
        .collect();
    let mut mirror = std::collections::HashMap::new();
    let mut expected = Vec::new();
    for &(addr, write) in &reqs {
        match write {
            Some(v) => {
                mirror.insert(addr, v);
            }
            None => expected.push(mirror.get(&addr).copied().unwrap_or(0)),
        }
    }

    let mut mem = ExtMem::new(b);
    let mut oram = Oram::new(&mut mem, n as u64, &cfg);
    let geo = oram.geometry();
    let levels = oram.level_count();
    let client_blocks = oram.client_slots() / b;
    mem.enable_trace();
    let before = mem.io_stats();
    let (out, extmem_ns) = timed(|| run_oram_requests(&mut mem, &mut oram, &reqs));
    let io = mem.io_stats() - before;
    assert_eq!(
        out, expected,
        "ORAM read results diverged from the mirror at n={n} B={b} M={m} P={period}"
    );
    let mem_trace = mem.take_trace().expect("tracing was enabled");
    let bound_total = oram_io_bound(
        &geo,
        client_blocks,
        b,
        m,
        period as u64,
        accesses as u64,
        cfg.sorter.engine(),
    );

    let timings = backends.then(|| {
        let mut fs = FileStore::temp(b).expect("tempdir-backed block file");
        let mut foram = Oram::new(&mut fs, n as u64, &cfg);
        fs.enable_trace();
        let (fout, file_ns) = timed(|| run_oram_requests(&mut fs, &mut foram, &reqs));
        assert_eq!(fout, expected, "file-backed ORAM results diverged at n={n}");
        let ftrace = fs.take_trace().expect("tracing was enabled");
        assert_eq!(
            ftrace, mem_trace,
            "FileStore ORAM trace must be byte-identical to ExtMem at n={n} B={b} M={m} P={period}"
        );

        let inner = FileStore::temp(b).expect("tempdir-backed block file");
        let mut enc = EncryptedStore::with_backing(inner, 0x04A7_0002);
        let mut eoram = Oram::new(&mut enc, n as u64, &cfg);
        enc.enable_trace();
        let (eout, encrypted_file_ns) = timed(|| run_oram_requests(&mut enc, &mut eoram, &reqs));
        assert_eq!(eout, expected, "encrypted ORAM results diverged at n={n}");
        let etrace = enc.take_trace().expect("tracing was enabled");
        assert_eq!(
            etrace, mem_trace,
            "EncryptedStore<FileStore> ORAM trace must be byte-identical to ExtMem at n={n} B={b} M={m} P={period}"
        );
        BackendNanos {
            extmem_ns,
            file_ns,
            encrypted_file_ns,
        }
    });

    let encrypted_prefetch_ns = backends.then(|| {
        let inner = FileStore::temp(b).expect("tempdir-backed block file");
        let enc = EncryptedStore::with_backing(inner, 0x04A7_0002);
        let mut ps = PrefetchingStore::new(enc);
        let mut poram = Oram::new(&mut ps, n as u64, &cfg);
        ps.enable_trace();
        // The flush belongs inside the timed region: write-behind only
        // counts as a win if the encrypt-and-land cost is paid on the clock.
        let (pout, ns) = timed(|| {
            let out = run_oram_requests(&mut ps, &mut poram, &reqs);
            ps.flush_writes()
                .unwrap_or_else(|e| panic!("write-behind flush failed: {e}"));
            out
        });
        assert_eq!(pout, expected, "prefetched ORAM results diverged at n={n}");
        let ptrace = ps.take_trace().expect("tracing was enabled");
        assert_eq!(
            ptrace, mem_trace,
            "Prefetching(Encrypted(FileStore)) ORAM logical trace must be \
             byte-identical to ExtMem at n={n} B={b} M={m} P={period}"
        );
        ns
    });

    OramBenchResult {
        point,
        levels,
        flushes: oram.flushes(),
        io,
        bound_total,
        within_bound: io.total() <= bound_total,
        stash_len: oram.stash_len(),
        timings,
        encrypted_prefetch_ns,
    }
}

/// The full ORAM grid: three shapes, each deep enough that the deepest
/// level's self-consuming rebuild fires at least once — except the last
/// point, whose window stops short of it, pinning the partially-filled
/// hierarchy's cost too.
pub fn oram_default_grid() -> Vec<OramGridPoint> {
    vec![
        OramGridPoint {
            n: 1 << 10,
            b: 64,
            m: 1 << 10,
            period: 64,
            accesses: 4096,
        },
        OramGridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 13,
            period: 64,
            accesses: 8192,
        },
        OramGridPoint {
            n: 1 << 14,
            b: 64,
            m: 1 << 13,
            period: 128,
            accesses: 8192,
        },
    ]
}

/// The CI smoke grid: two small shapes (one with a deliberately tiny block
/// size) cheap enough for every push, both reaching the deepest level's
/// rebuild.
pub fn oram_smoke_grid() -> Vec<OramGridPoint> {
    vec![
        OramGridPoint {
            n: 1 << 10,
            b: 64,
            m: 1 << 10,
            period: 64,
            accesses: 2048,
        },
        OramGridPoint {
            n: 1 << 10,
            b: 8,
            m: 1 << 8,
            period: 16,
            accesses: 2048,
        },
    ]
}

/// Renders the ORAM results as the `BENCH_oram.json` document (hand-rolled
/// JSON; the workspace deliberately has no external dependencies).
pub fn oram_to_json(results: &[OramBenchResult]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"benchmark\": \"hierarchical_oram\",\n");
    s.push_str("  \"io_model\": \"1 I/O per block read or write, ExtMem::stats\",\n");
    s.push_str(
        "  \"bound\": \"probes + per-flush rebuild bounds composed from the sort/compact bounds (O(log^2 n) amortized per access)\",\n",
    );
    s.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let OramGridPoint {
            n,
            b,
            m,
            period,
            accesses,
        } = r.point;
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"n\": {n},");
        let _ = writeln!(s, "      \"b\": {b},");
        let _ = writeln!(s, "      \"m\": {m},");
        let _ = writeln!(s, "      \"period\": {period},");
        let _ = writeln!(s, "      \"accesses\": {accesses},");
        let _ = writeln!(s, "      \"levels\": {},", r.levels);
        let _ = writeln!(s, "      \"flushes\": {},", r.flushes);
        let _ = writeln!(s, "      \"reads\": {},", r.io.reads);
        let _ = writeln!(s, "      \"writes\": {},", r.io.writes);
        let _ = writeln!(s, "      \"total_ios\": {},", r.io.total());
        let _ = writeln!(
            s,
            "      \"amortized_ios_per_access\": {:.2},",
            r.amortized_ios()
        );
        let _ = writeln!(s, "      \"bound_total\": {},", r.bound_total);
        let _ = writeln!(
            s,
            "      \"bound_amortized_per_access\": {:.2},",
            r.bound_amortized()
        );
        let _ = writeln!(s, "      \"stash_len\": {},", r.stash_len);
        emit_elapsed(&mut s, r.timings.as_ref());
        match r.encrypted_prefetch_ns {
            Some(ns) => {
                let _ = writeln!(s, "      \"encrypted_prefetch_ns\": {ns},");
            }
            None => s.push_str("      \"encrypted_prefetch_ns\": null,\n"),
        }
        let _ = writeln!(s, "      \"within_bound\": {}", r.within_bound);
        s.push_str("    }");
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders a human-readable table of the ORAM results.
pub fn oram_to_table(results: &[OramBenchResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>4} {:>6} {:>4} {:>8} {:>6} {:>10} {:>9} {:>9} {:>8} {:>8} {:>6}",
        "n",
        "B",
        "M",
        "P",
        "accesses",
        "levels",
        "I/Os",
        "amort",
        "bound/ac",
        "file ms",
        "enc ms",
        "ok"
    );
    for r in results {
        let OramGridPoint {
            n,
            b,
            m,
            period,
            accesses,
        } = r.point;
        let _ = writeln!(
            s,
            "{:>8} {:>4} {:>6} {:>4} {:>8} {:>6} {:>10} {:>9.1} {:>9.1} {:>8} {:>8} {:>6}",
            n,
            b,
            m,
            period,
            accesses,
            r.levels,
            r.io.total(),
            r.amortized_ios(),
            r.bound_amortized(),
            fmt_ms(r.timings.map(|t| t.file_ns)),
            fmt_ms(r.timings.map(|t| t.encrypted_file_ns)),
            if r.within_bound { "yes" } else { "NO" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_formula_matches_hand_computation() {
        // N = 2^18, B = 64, M = 2^13: 4 * 4096 * (1 + 25) = 425,984.
        assert_eq!(sort_io_bound(1 << 18, 64, 1 << 13), 425_984);
        // N <= M: scan-bound only.
        assert_eq!(sort_io_bound(1 << 10, 64, 1 << 12), 4 * 16);
    }

    #[test]
    fn small_point_is_within_bound_and_beats_naive_3x() {
        // Debug-friendly miniature of the acceptance criterion: the in-cache
        // finishing + stride batching must beat full depth by ≥ 3×.
        let point = GridPoint {
            n: 1 << 12,
            b: 16,
            m: 1 << 8,
        };
        let r = run_sort_point(point, true, false);
        assert!(r.within_bound, "optimized sort exceeded the bound: {r:?}");
        let speedup = r.speedup().unwrap();
        assert!(speedup >= 3.0, "speedup only {speedup:.2}x");
    }

    #[test]
    fn bucket_bound_formula_matches_hand_computation() {
        // N = 2^18, B = 64, M = 2^13: base M/B = 128, N/B = 4096 = 128^1.71…,
        // so the ceil log is 2: 12 * 4096 * 2 = 98,304.
        assert_eq!(bucket_sort_io_bound(1 << 18, 64, 1 << 13), 98_304);
        // N = 2^12, B = 64, M = 2^9: base 8, N/B = 64 = 8^2: 12 * 64 * 2.
        assert_eq!(bucket_sort_io_bound(1 << 12, 64, 1 << 9), 12 * 64 * 2);
        // In-cache ratio clamps to the scan term `max(1, …)`.
        assert_eq!(bucket_sort_io_bound(1 << 10, 64, 1 << 12), 12 * 16);
    }

    #[test]
    fn grid_is_three_by_two() {
        let grid = default_grid();
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|p| p.b == 64));
    }

    #[test]
    fn json_has_all_points_and_fields() {
        let results: Vec<SortBenchResult> = [
            GridPoint {
                n: 256,
                b: 8,
                m: 64,
            },
            GridPoint {
                n: 512,
                b: 8,
                m: 64,
            },
        ]
        .into_iter()
        .map(|p| run_sort_point(p, true, true))
        .collect();
        let json = to_json(&results);
        assert_eq!(json.matches("\"optimized_total\"").count(), 2);
        assert!(json.contains("\"bound_constant\": 4"));
        assert!(json.contains("\"encrypted_total\""));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"within_bound\": true"));
        assert!(json.contains("\"bucket_bound_constant\": 12"));
        assert_eq!(json.matches("\"bucket_total\"").count(), 2);
        assert!(json.contains("\"bucket_encrypted_total\""));
        assert!(json.contains("\"bucket_z\""));
        assert!(json.contains("\"bucket_within_bound\": true"));
        assert!(json.contains("\"bucket_speedup_vs_lemma2\""));
        assert_eq!(json.matches("\"lemma2_elapsed_ns\"").count(), 2);
        assert_eq!(json.matches("\"bucket_elapsed_ns\"").count(), 2);
        assert_eq!(json.matches("\"bucket_prefetch_ns\"").count(), 2);
        assert_eq!(json.matches("\"encrypted_prefetch_ns\"").count(), 2);
        assert!(json.contains("\"file_trace_identical\": true"));
        assert!(!json.contains("\"encrypted_prefetch_ns\": null"));
        assert!(!json.contains("\"lemma2_elapsed_ns\": null"));
    }

    #[test]
    fn compact_bound_formula_matches_hand_computation() {
        // N = 2^18, B = 64, M = 2^13: 32 * 4096 * (1 + 5) = 786,432.
        assert_eq!(compact_io_bound(1 << 18, 64, 1 << 13), 786_432);
        // N <= M: scan bound only.
        assert_eq!(compact_io_bound(1 << 10, 64, 1 << 12), 32 * 16);
    }

    #[test]
    fn compact_small_point_is_within_bound_and_beats_naive() {
        let point = GridPoint {
            n: 1 << 12,
            b: 16,
            m: 1 << 8,
        };
        let r = run_compact_point(point, true, false);
        assert!(r.within_bound, "compaction exceeded the bound: {r:?}");
        let speedup = r.speedup().unwrap();
        assert!(speedup > 1.0, "naive baseline not beaten: {speedup:.2}x");
        assert_eq!(r.encrypted, r.optimized);
    }

    #[test]
    fn compact_json_has_all_points_and_fields() {
        let results: Vec<CompactBenchResult> = [
            GridPoint {
                n: 256,
                b: 8,
                m: 64,
            },
            GridPoint {
                n: 512,
                b: 8,
                m: 64,
            },
        ]
        .into_iter()
        .map(|p| run_compact_point(p, true, true))
        .collect();
        let json = compact_to_json(&results);
        assert_eq!(json.matches("\"optimized_total\"").count(), 2);
        assert!(json.contains("\"bound_constant\": 32"));
        assert!(json.contains("\"encrypted_total\""));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"within_bound\": true"));
        assert_eq!(json.matches("\"elapsed_ns\"").count(), 2);
        assert!(json.contains("\"file_trace_identical\": true"));
        assert!(!json.contains("\"elapsed_ns\": null"));
    }

    /// The I/O-bound regression gate: if a future refactor pushes the sort
    /// past `C·(N/B)(1 + log²(N/M))`, the compaction past
    /// `C_c·(N/B)(1 + log(N/M))`, or the selection past
    /// `C_s·(N/B)(1 + log(N/M))` at any benchmark grid point, this test
    /// fails — without needing the release-mode bench binary. (The naive
    /// baselines are skipped here, and the `N = 2^18` points are left to the
    /// release-mode bench binary, which gates them on every CI push — debug
    /// builds simulate them too slowly for the unit-test suite.)
    #[test]
    fn io_bound_regression_at_grid_points() {
        let test_sized = default_grid().into_iter().filter(|p| p.n <= 1 << 16);
        for point in smoke_grid().into_iter().chain(test_sized) {
            let s = run_sort_point(point, false, false);
            assert!(
                s.within_bound,
                "sort exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                s.optimized.total(),
                s.bound_total
            );
            assert_eq!(
                s.encrypted, s.optimized,
                "re-encryption added I/Os to the sort at N={} B={} M={}",
                point.n, point.b, point.m
            );
            assert!(
                s.bucket_within_bound,
                "bucket sort exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                s.bucket.total(),
                s.bucket_bound_total
            );
            assert_eq!(
                s.bucket_encrypted, s.bucket,
                "re-encryption added I/Os to the bucket sort at N={} B={} M={}",
                point.n, point.b, point.m
            );
            if s.bucket_gate_applies() {
                assert!(
                    s.bucket.total() < s.optimized.total(),
                    "bucket sort did not beat Lemma 2 at N={} B={} M={}: {} >= {}",
                    point.n,
                    point.b,
                    point.m,
                    s.bucket.total(),
                    s.optimized.total()
                );
            }
            let c = run_compact_point(point, false, false);
            assert!(
                c.within_bound,
                "compaction exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                c.optimized.total(),
                c.bound_total
            );
            assert_eq!(
                c.encrypted, c.optimized,
                "re-encryption added I/Os at N={} B={} M={}",
                point.n, point.b, point.m
            );
            let sel = run_select_point(point, false, false);
            assert!(
                sel.within_bound,
                "selection exceeded its I/O bound at N={} B={} M={}: {} > {}",
                point.n,
                point.b,
                point.m,
                sel.optimized.total(),
                sel.bound_total
            );
            // run_select_point itself asserts the byte-identical
            // plaintext/encrypted trace; re-check the I/O equality here for a
            // readable failure.
            assert_eq!(
                sel.encrypted, sel.optimized,
                "re-encryption added I/Os to selection at N={} B={} M={}",
                point.n, point.b, point.m
            );
        }
    }

    #[test]
    fn select_small_point_is_within_bound_and_beats_naive() {
        let point = GridPoint {
            n: 1 << 12,
            b: 16,
            m: 1 << 8,
        };
        let r = run_select_point(point, true, false);
        assert!(r.within_bound, "selection exceeded the bound: {r:?}");
        let speedup = r.speedup().unwrap();
        assert!(speedup > 1.0, "naive baseline not beaten: {speedup:.2}x");
        assert_eq!(r.encrypted, r.optimized);
        assert!(r.report.rounds >= 1, "the external path must iterate");
    }

    #[test]
    fn select_json_has_all_points_and_fields() {
        let results: Vec<SelectBenchResult> = [
            GridPoint {
                n: 512,
                b: 8,
                m: 64,
            },
            GridPoint {
                n: 1024,
                b: 8,
                m: 64,
            },
        ]
        .into_iter()
        .map(|p| run_select_point(p, true, true))
        .collect();
        let json = select_to_json(&results);
        assert_eq!(json.matches("\"optimized_total\"").count(), 2);
        assert!(json.contains("\"bound_constant\": 64"));
        assert!(json.contains("\"encrypted_trace_identical\": true"));
        assert!(json.contains("\"speedup_vs_naive\""));
        assert!(json.contains("\"within_bound\": true"));
        assert_eq!(json.matches("\"elapsed_ns\"").count(), 2);
        assert!(json.contains("\"file_trace_identical\": true"));
        assert!(!json.contains("\"elapsed_ns\": null"));
    }

    #[test]
    fn fault_gates_pass_at_the_smoke_point() {
        extmem::install_quiet_abort_hook();
        let results = run_fault_scenarios(
            GridPoint {
                n: 1 << 12,
                b: 64,
                m: 1 << 9,
            },
            FaultBackend::ExtMem,
        );
        assert_eq!(results.len(), fault_scenarios().len());
        let violations = check_fault_gates(&results);
        assert!(
            violations.is_empty(),
            "fault gates violated: {violations:#?}"
        );
    }

    /// The same gates with a real file at the bottom of the stack: the fault
    /// schedule is seeded above the backing store, so detection, retries and
    /// I/O counts must not care whether blocks live in memory or on disk.
    #[test]
    fn fault_gates_pass_over_the_file_backend() {
        extmem::install_quiet_abort_hook();
        let point = GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 9,
        };
        let file = run_fault_scenarios(point, FaultBackend::File);
        let violations = check_fault_gates(&file);
        assert!(
            violations.is_empty(),
            "file-backed fault gates violated: {violations:#?}"
        );
        // Backend equivalence row by row: identical I/Os, retries, faults
        // and outcomes — only the wall clock may differ.
        let mem = run_fault_scenarios(point, FaultBackend::ExtMem);
        for (f, m) in file.iter().zip(&mem) {
            assert_eq!(f.scenario.name, m.scenario.name);
            assert_eq!(f.sort_io, m.sort_io, "{}: I/Os diverged", f.scenario.name);
            assert_eq!(
                f.retries, m.retries,
                "{}: retries diverged",
                f.scenario.name
            );
            assert_eq!(
                f.outcome(),
                m.outcome(),
                "{}: outcome diverged",
                f.scenario.name
            );
        }
    }

    /// Strips the wall-clock lines — the only legitimately nondeterministic
    /// part of a fault row — so the rest can be compared byte for byte.
    fn strip_timing(json: &str) -> String {
        json.lines()
            .filter(|l| !l.contains("\"elapsed_ns\""))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The seeded-determinism satellite at the benchmark level: two
    /// independent runs of the same grid produce byte-identical JSON — fault
    /// schedules, retry counts and I/O totals included — once the wall-clock
    /// column is stripped.
    #[test]
    fn faults_json_is_deterministic_across_runs() {
        extmem::install_quiet_abort_hook();
        let point = GridPoint {
            n: 1 << 12,
            b: 64,
            m: 1 << 9,
        };
        let a = faults_to_json(&run_fault_grid(point));
        let b = faults_to_json(&run_fault_grid(point));
        assert_eq!(
            strip_timing(&a),
            strip_timing(&b),
            "BENCH_faults.json must be reproducible modulo wall clock"
        );
        assert_eq!(
            a.matches("\"scenario\"").count(),
            2 * fault_scenarios().len(),
            "every scenario must appear once per backend"
        );
        assert_eq!(
            a.matches("\"backend\": \"file\"").count(),
            fault_scenarios().len()
        );
        assert!(a.contains("\"backend\": \"extmem\""));
        assert!(a.contains("\"elapsed_ns\""));
        assert!(a.contains("\"outcome\": \"detected\""));
        assert!(a.contains("\"outcome\": \"silent_wrong\""));
        assert!(a.contains("\"overhead_vs_plain\""));
    }

    #[test]
    fn exact_io_counts_at_a_reference_point() {
        // N = 2^12, B = 16, M = 2^8: F = 256, passes = presort(1) +
        // external(1+2+3+4) + finishing(4) = 15, each 2·256 I/Os.
        let r = run_sort_point(
            GridPoint {
                n: 1 << 12,
                b: 16,
                m: 1 << 8,
            },
            false,
            false,
        );
        assert_eq!(r.optimized.total(), 15 * 2 * 256);
        assert_eq!(r.report.external_levels, 10);
        assert_eq!(r.report.finish_passes, 4);
    }

    /// The ORAM's amortized-cost regression gate at the CI smoke points:
    /// measured I/Os within the composed analytic bound, with the deepest
    /// level's self-consuming rebuild exercised (`flushes` reaches
    /// `2^(levels-1)`).
    #[test]
    fn oram_amortized_cost_is_within_the_composed_bound() {
        for point in oram_smoke_grid() {
            let r = run_oram_point(point, false);
            assert!(
                r.within_bound,
                "ORAM exceeded its composed bound at n={} B={} M={} P={}: {} > {}",
                point.n,
                point.b,
                point.m,
                point.period,
                r.io.total(),
                r.bound_total
            );
            assert!(r.levels >= 2);
            assert!(
                r.flushes >= 1 << (r.levels - 1),
                "the smoke window must reach the deepest level's rebuild"
            );
        }
    }

    #[test]
    fn oram_json_has_all_points_and_fields() {
        let results = vec![run_oram_point(
            OramGridPoint {
                n: 256,
                b: 8,
                m: 128,
                period: 16,
                accesses: 512,
            },
            true,
        )];
        let json = oram_to_json(&results);
        assert!(json.contains("\"benchmark\": \"hierarchical_oram\""));
        assert!(json.contains("\"amortized_ios_per_access\""));
        assert!(json.contains("\"bound_amortized_per_access\""));
        assert!(json.contains("\"within_bound\": true"));
        assert!(json.contains("\"file_trace_identical\": true"));
        assert!(!json.contains("\"elapsed_ns\": null"));
        assert!(json.contains("\"encrypted_prefetch_ns\""));
        assert!(!json.contains("\"encrypted_prefetch_ns\": null"));
        assert!(json.contains("\"stash_len\""));
    }
}
