//! `odo-bench` binary: runs the sort benchmark grid and writes
//! `BENCH_sort.json` into the current directory.
//!
//! Usage: `cargo run --release -p odo-bench` (from the repo root, so the
//! JSON lands next to `Cargo.toml`).

use odo_bench::{default_grid, run_sort_point, to_json, to_table, GridPoint};

fn main() {
    let grid = default_grid();
    let mut results = Vec::with_capacity(grid.len());
    for point in grid {
        eprintln!(
            "measuring N={} B={} M={} (optimized + naive)...",
            point.n, point.b, point.m
        );
        results.push(run_sort_point(point, true));
    }

    print!("{}", to_table(&results));

    let json = to_json(&results);
    let path = "BENCH_sort.json";
    std::fs::write(path, &json).expect("failed to write BENCH_sort.json");
    println!("wrote {path}");

    // Enforce the acceptance gates so CI fails loudly on regressions:
    // every point within the bound, and the headline point
    // (N=2^18, B=64, M=2^13) at least 3× cheaper than the naive baseline.
    let mut failed = false;
    for r in &results {
        if !r.within_bound {
            eprintln!(
                "BOUND VIOLATION at N={} B={} M={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.optimized.total(),
                r.bound_total
            );
            failed = true;
        }
    }
    let headline = GridPoint {
        n: 1 << 18,
        b: 64,
        m: 1 << 13,
    };
    if let Some(r) = results.iter().find(|r| r.point == headline) {
        let speedup = r.speedup().unwrap_or(0.0);
        println!(
            "headline (N=2^18, B=64, M=2^13): {} I/Os vs naive {} — {speedup:.2}x",
            r.optimized.total(),
            r.naive.map(|n| n.total()).unwrap_or(0)
        );
        if speedup < 3.0 {
            eprintln!("HEADLINE REGRESSION: speedup {speedup:.2}x < 3x");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
