//! `odo-bench` binary: runs the sort and compaction benchmark grids and
//! writes `BENCH_sort.json` / `BENCH_compact.json` into the current
//! directory.
//!
//! Usage:
//!
//! * `cargo run --release -p odo-bench` — the full default grid (from the
//!   repo root, so the JSON lands next to `Cargo.toml`).
//! * `cargo run --release -p odo-bench -- --smoke` — the `N = 2^12` smoke
//!   grid: same emitters, same bound gates, cheap enough for every CI push
//!   (JSON goes to `BENCH_sort.smoke.json` / `BENCH_compact.smoke.json` so a
//!   smoke run never clobbers the full-grid numbers).

use odo_bench::{
    compact_to_json, compact_to_table, default_grid, run_compact_point, run_sort_point, smoke_grid,
    to_json, to_table, GridPoint,
};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let grid = if smoke { smoke_grid() } else { default_grid() };

    // --- external oblivious sort ---
    let mut results = Vec::with_capacity(grid.len());
    for &point in &grid {
        eprintln!(
            "sort: measuring N={} B={} M={} (optimized + naive)...",
            point.n, point.b, point.m
        );
        results.push(run_sort_point(point, true));
    }
    print!("{}", to_table(&results));
    let json = to_json(&results);
    let path = if smoke {
        "BENCH_sort.smoke.json"
    } else {
        "BENCH_sort.json"
    };
    std::fs::write(path, &json).expect("failed to write the sort benchmark JSON");
    println!("wrote {path}");

    // --- external butterfly compaction ---
    let mut cresults = Vec::with_capacity(grid.len());
    for &point in &grid {
        eprintln!(
            "compact: measuring N={} B={} M={} (optimized + encrypted + naive)...",
            point.n, point.b, point.m
        );
        cresults.push(run_compact_point(point, true));
    }
    print!("{}", compact_to_table(&cresults));
    let cjson = compact_to_json(&cresults);
    let cpath = if smoke {
        "BENCH_compact.smoke.json"
    } else {
        "BENCH_compact.json"
    };
    std::fs::write(cpath, &cjson).expect("failed to write the compaction benchmark JSON");
    println!("wrote {cpath}");

    // Enforce the acceptance gates so CI fails loudly on regressions: every
    // point within its bound, compaction beating the naive baseline at every
    // point, and (full grid only) the headline sort speedup.
    let mut failed = false;
    for r in &results {
        if !r.within_bound {
            eprintln!(
                "SORT BOUND VIOLATION at N={} B={} M={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.optimized.total(),
                r.bound_total
            );
            failed = true;
        }
    }
    for r in &cresults {
        if !r.within_bound {
            eprintln!(
                "COMPACT BOUND VIOLATION at N={} B={} M={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.optimized.total(),
                r.bound_total
            );
            failed = true;
        }
        if r.speedup().is_some_and(|s| s <= 1.0) {
            eprintln!(
                "COMPACT REGRESSION at N={} B={} M={}: naive is not beaten ({:?} vs {})",
                r.point.n,
                r.point.b,
                r.point.m,
                r.naive.map(|n| n.total()),
                r.optimized.total()
            );
            failed = true;
        }
    }
    if !smoke {
        let headline = GridPoint {
            n: 1 << 18,
            b: 64,
            m: 1 << 13,
        };
        if let Some(r) = results.iter().find(|r| r.point == headline) {
            let speedup = r.speedup().unwrap_or(0.0);
            println!(
                "sort headline (N=2^18, B=64, M=2^13): {} I/Os vs naive {} — {speedup:.2}x",
                r.optimized.total(),
                r.naive.map(|n| n.total()).unwrap_or(0)
            );
            if speedup < 3.0 {
                eprintln!("SORT HEADLINE REGRESSION: speedup {speedup:.2}x < 3x");
                failed = true;
            }
        }
        if let Some(r) = cresults.iter().find(|r| r.point == headline) {
            println!(
                "compact headline (N=2^18, B=64, M=2^13): {} I/Os vs naive {} — {:.2}x",
                r.optimized.total(),
                r.naive.map(|n| n.total()).unwrap_or(0),
                r.speedup().unwrap_or(0.0)
            );
        }
    }
    if failed {
        std::process::exit(1);
    }
}
