//! `odo-bench` binary: runs the sort, compaction, selection, fault-model
//! and ORAM benchmark grids and writes `BENCH_sort.json` /
//! `BENCH_compact.json` / `BENCH_select.json` / `BENCH_faults.json` /
//! `BENCH_oram.json` into the current directory.
//!
//! Usage:
//!
//! * `cargo run --release -p odo-bench` — every benchmark on the full
//!   default grid (from the repo root, so the JSON lands next to
//!   `Cargo.toml`).
//! * `cargo run --release -p odo-bench -- select` — one benchmark only
//!   (`sort`, `compact`, `select`, `faults`, `oram`, or `all`).
//! * `cargo run --release -p odo-bench -- --smoke` — the `N = 2^12` smoke
//!   grid: same emitters, same bound gates, cheap enough for every CI push
//!   (JSON goes to `target/BENCH_*.smoke.json`, outside the working tree's
//!   tracked files, so a smoke run never clobbers the full-grid numbers and
//!   never dirties a CI checkout).

use odo_bench::{
    check_fault_gates, compact_to_json, compact_to_table, default_grid, faults_to_json,
    faults_to_table, oram_default_grid, oram_smoke_grid, oram_to_json, oram_to_table,
    run_compact_point, run_fault_grid, run_oram_point, run_select_point, run_sort_point,
    select_to_json, select_to_table, smoke_grid, to_json, to_table, GridPoint,
};

/// Where a benchmark JSON artifact goes. Full-grid runs write the tracked
/// `BENCH_*.json` files into the current directory (the repo root); smoke
/// runs write `target/BENCH_*.smoke.json` so a CI checkout stays clean.
fn artifact_path(smoke: bool, stem: &str) -> String {
    if smoke {
        std::fs::create_dir_all("target").expect("failed to create target/");
        format!("target/{stem}.smoke.json")
    } else {
        format!("{stem}.json")
    }
}

fn main() {
    // Tampered runs abort via a typed panic payload that `try_sort` catches
    // and converts to `Err`; keep the default hook from spamming stderr with
    // those intentional, fully-handled unwinds.
    extmem::install_quiet_abort_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Shared CI runners have noisy clocks: `--no-wall-clock-gate` downgrades
    // the wall-clock headline gate to a warning while keeping every I/O-count
    // and trace-parity gate hard.
    let wall_clock_gate = !args.iter().any(|a| a == "--no-wall-clock-gate");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    assert!(
        matches!(
            which,
            "all" | "sort" | "compact" | "select" | "faults" | "oram"
        ),
        "unknown benchmark {which:?}: expected sort, compact, select, faults, oram, or all"
    );
    let run = |name: &str| which == "all" || which == name;
    let grid = if smoke { smoke_grid() } else { default_grid() };
    let headline = GridPoint {
        n: 1 << 18,
        b: 64,
        m: 1 << 13,
    };
    let mut failed = false;

    // --- external oblivious sort ---
    let mut results = Vec::new();
    if run("sort") {
        for &point in &grid {
            eprintln!(
                "sort: measuring N={} B={} M={} (optimized + encrypted + naive + timed file backends)...",
                point.n, point.b, point.m
            );
            results.push(run_sort_point(point, true, true));
        }
        print!("{}", to_table(&results));
        let json = to_json(&results);
        let path = artifact_path(smoke, "BENCH_sort");
        std::fs::write(&path, &json).expect("failed to write the sort benchmark JSON");
        println!("wrote {path}");
    }

    // --- external butterfly compaction ---
    let mut cresults = Vec::new();
    if run("compact") {
        for &point in &grid {
            eprintln!(
                "compact: measuring N={} B={} M={} (optimized + encrypted + naive + timed file backends)...",
                point.n, point.b, point.m
            );
            cresults.push(run_compact_point(point, true, true));
        }
        print!("{}", compact_to_table(&cresults));
        let cjson = compact_to_json(&cresults);
        let cpath = artifact_path(smoke, "BENCH_compact");
        std::fs::write(&cpath, &cjson).expect("failed to write the compaction benchmark JSON");
        println!("wrote {cpath}");
    }

    // --- §4 oblivious selection ---
    let mut sresults = Vec::new();
    if run("select") {
        for &point in &grid {
            eprintln!(
                "select: measuring N={} B={} M={} k=N/2 (optimized + encrypted-trace parity + naive + timed file backends)...",
                point.n, point.b, point.m
            );
            sresults.push(run_select_point(point, true, true));
        }
        print!("{}", select_to_table(&sresults));
        let sjson = select_to_json(&sresults);
        let spath = artifact_path(smoke, "BENCH_select");
        std::fs::write(&spath, &sjson).expect("failed to write the selection benchmark JSON");
        println!("wrote {spath}");
    }

    // --- the untrusted-server fault model ---
    let mut fresults = Vec::new();
    if run("faults") {
        let fault_grid: Vec<GridPoint> = if smoke {
            vec![GridPoint {
                n: 1 << 12,
                b: 64,
                m: 1 << 9,
            }]
        } else {
            vec![
                GridPoint {
                    n: 1 << 14,
                    b: 64,
                    m: 1 << 10,
                },
                headline,
            ]
        };
        for &point in &fault_grid {
            eprintln!(
                "faults: measuring N={} B={} M={} (auth overhead + tamper detection + retries, extmem + file backends)...",
                point.n, point.b, point.m
            );
            fresults.extend(run_fault_grid(point));
        }
        print!("{}", faults_to_table(&fresults));
        let fjson = faults_to_json(&fresults);
        let fpath = artifact_path(smoke, "BENCH_faults");
        std::fs::write(&fpath, &fjson).expect("failed to write the fault benchmark JSON");
        println!("wrote {fpath}");
    }

    // --- hierarchical ORAM amortized cost ---
    let mut oresults = Vec::new();
    if run("oram") {
        let ogrid = if smoke {
            oram_smoke_grid()
        } else {
            oram_default_grid()
        };
        for &point in &ogrid {
            eprintln!(
                "oram: measuring n={} B={} M={} P={} over {} accesses (extmem + timed file + encrypted-file backends, trace parity)...",
                point.n, point.b, point.m, point.period, point.accesses
            );
            oresults.push(run_oram_point(point, true));
        }
        print!("{}", oram_to_table(&oresults));
        let ojson = oram_to_json(&oresults);
        let opath = artifact_path(smoke, "BENCH_oram");
        std::fs::write(&opath, &ojson).expect("failed to write the ORAM benchmark JSON");
        println!("wrote {opath}");
    }

    // Enforce the acceptance gates so CI fails loudly on regressions: every
    // point within its bound, compaction and selection beating their naive
    // baselines at every point, and (full grid only) the headline speedups.
    for r in &results {
        if !r.within_bound {
            eprintln!(
                "SORT BOUND VIOLATION at N={} B={} M={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.optimized.total(),
                r.bound_total
            );
            failed = true;
        }
        if !r.bucket_within_bound {
            eprintln!(
                "BUCKET BOUND VIOLATION at N={} B={} M={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.bucket.total(),
                r.bucket_bound_total
            );
            failed = true;
        }
        if r.bucket_gate_applies() && r.bucket.total() >= r.optimized.total() {
            eprintln!(
                "BUCKET REGRESSION at N={} B={} M={} (N/M >= 4): bucket {} >= Lemma 2 {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.bucket.total(),
                r.optimized.total()
            );
            failed = true;
        }
    }
    for r in &cresults {
        if !r.within_bound {
            eprintln!(
                "COMPACT BOUND VIOLATION at N={} B={} M={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.optimized.total(),
                r.bound_total
            );
            failed = true;
        }
        if r.speedup().is_some_and(|s| s <= 1.0) {
            eprintln!(
                "COMPACT REGRESSION at N={} B={} M={}: naive is not beaten ({:?} vs {})",
                r.point.n,
                r.point.b,
                r.point.m,
                r.naive.map(|n| n.total()),
                r.optimized.total()
            );
            failed = true;
        }
    }
    for r in &sresults {
        if !r.within_bound {
            eprintln!(
                "SELECT BOUND VIOLATION at N={} B={} M={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.optimized.total(),
                r.bound_total
            );
            failed = true;
        }
        if r.speedup().is_some_and(|s| s <= 1.0) {
            eprintln!(
                "SELECT REGRESSION at N={} B={} M={}: naive sort-then-index is not beaten ({:?} vs {})",
                r.point.n,
                r.point.b,
                r.point.m,
                r.naive.map(|n| n.total()),
                r.optimized.total()
            );
            failed = true;
        }
    }
    for r in &oresults {
        if !r.within_bound {
            eprintln!(
                "ORAM BOUND VIOLATION at n={} B={} M={} P={}: {} > {}",
                r.point.n,
                r.point.b,
                r.point.m,
                r.point.period,
                r.io.total(),
                r.bound_total
            );
            failed = true;
        }
    }
    if let Some(r) = oresults.last() {
        println!(
            "oram headline (n={}, B={}, M={}, P={}): {:.1} amortized I/Os per access \
             over {} levels, bound {:.1}",
            r.point.n,
            r.point.b,
            r.point.m,
            r.point.period,
            r.amortized_ios(),
            r.levels,
            r.bound_amortized()
        );
    }
    for msg in check_fault_gates(&fresults) {
        eprintln!("FAULT GATE VIOLATION: {msg}");
        failed = true;
    }
    if let Some(r) = fresults
        .iter()
        .find(|r| r.point == headline && r.scenario.name == "auth_no_faults")
    {
        println!(
            "faults headline (N=2^18, B=64, M=2^13): authentication costs {:+.1}% bottom-level I/Os",
            r.overhead_vs_plain.unwrap_or(f64::NAN) * 100.0
        );
    }
    if !smoke {
        if let Some(r) = results.iter().find(|r| r.point == headline) {
            let speedup = r.speedup().unwrap_or(0.0);
            println!(
                "sort headline (N=2^18, B=64, M=2^13): {} I/Os vs naive {} — {speedup:.2}x",
                r.optimized.total(),
                r.naive.map(|n| n.total()).unwrap_or(0)
            );
            if speedup < 3.0 {
                eprintln!("SORT HEADLINE REGRESSION: speedup {speedup:.2}x < 3x");
                failed = true;
            }
            println!(
                "bucket headline (N=2^18, B=64, M=2^13): {} I/Os vs Lemma 2 {} — {:.2}x fewer, bound {}",
                r.bucket.total(),
                r.optimized.total(),
                r.bucket_speedup_vs_lemma2(),
                r.bucket_bound_total
            );
            if r.bucket.total() >= r.optimized.total() {
                eprintln!(
                    "BUCKET HEADLINE REGRESSION: bucket {} >= Lemma 2 {}",
                    r.bucket.total(),
                    r.optimized.total()
                );
                failed = true;
            }
            // The wall-clock headline: shape-derived read-ahead must beat
            // the plain file store's synchronous loads on the bucket sort.
            // Only gated on the full grid — timing on the N=2^12 smoke grid
            // is all fixed costs.
            if let Some(t) = &r.timings {
                let file_ms = t.bucket.file_ns as f64 / 1e6;
                let pf_ms = t.bucket_prefetch_ns as f64 / 1e6;
                println!(
                    "wall-clock headline (N=2^18, B=64, M=2^13, bucket): \
                     FileStore {file_ms:.1} ms vs PrefetchingStore<FileStore> {pf_ms:.1} ms \
                     — {:.2}x",
                    file_ms / pf_ms.max(1e-9)
                );
                if t.bucket_prefetch_ns >= t.bucket.file_ns {
                    eprintln!(
                        "PREFETCH HEADLINE REGRESSION: PrefetchingStore<FileStore> \
                         {pf_ms:.1} ms >= FileStore {file_ms:.1} ms on the bucket sort"
                    );
                    if wall_clock_gate {
                        failed = true;
                    } else {
                        eprintln!(
                            "(wall-clock gate disabled by --no-wall-clock-gate; not failing)"
                        );
                    }
                }
                // The encrypted headline: decrypt-ahead workers plus the
                // batched keystream span path must beat synchronous
                // decrypt-on-load over the same encrypted file.
                let enc_ms = t.bucket.encrypted_file_ns as f64 / 1e6;
                let epf_ms = t.encrypted_prefetch_ns as f64 / 1e6;
                println!(
                    "wall-clock headline (N=2^18, B=64, M=2^13, bucket): \
                     Encrypted(FileStore) {enc_ms:.1} ms vs \
                     Prefetching(Encrypted(FileStore)) {epf_ms:.1} ms — {:.2}x",
                    enc_ms / epf_ms.max(1e-9)
                );
                if t.encrypted_prefetch_ns >= t.bucket.encrypted_file_ns {
                    eprintln!(
                        "ENCRYPTED PREFETCH HEADLINE REGRESSION: \
                         Prefetching(Encrypted(FileStore)) {epf_ms:.1} ms >= \
                         Encrypted(FileStore) {enc_ms:.1} ms on the bucket sort"
                    );
                    if wall_clock_gate {
                        failed = true;
                    } else {
                        eprintln!(
                            "(wall-clock gate disabled by --no-wall-clock-gate; not failing)"
                        );
                    }
                }
            }
        }
        if let Some(r) = cresults.iter().find(|r| r.point == headline) {
            println!(
                "compact headline (N=2^18, B=64, M=2^13): {} I/Os vs naive {} — {:.2}x",
                r.optimized.total(),
                r.naive.map(|n| n.total()).unwrap_or(0),
                r.speedup().unwrap_or(0.0)
            );
        }
        if let Some(r) = sresults.iter().find(|r| r.point == headline) {
            let speedup = r.speedup().unwrap_or(0.0);
            println!(
                "select headline (N=2^18, B=64, M=2^13, k=N/2): {} I/Os vs naive {} — {speedup:.2}x",
                r.optimized.total(),
                r.naive.map(|n| n.total()).unwrap_or(0)
            );
            if speedup < 2.0 {
                eprintln!("SELECT HEADLINE REGRESSION: speedup {speedup:.2}x < 2x");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
