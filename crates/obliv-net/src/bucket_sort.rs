//! Randomized bucket oblivious sort — beating the Lemma 2 squared log.
//!
//! The Lemma 2 external bitonic sort pays `O((N/B)·log²(N/M))` I/Os. This
//! module implements the randomized alternative from *Bucket Oblivious Sort*
//! (Asharov, Chan, Nayak, Pass, Ren, Shi; see PAPERS.md), adapted to the
//! external-memory outsourced-data model, landing at
//! `O((N/B)·log_{M/B}(N/B))` I/Os — the external-memory sorting optimum —
//! for every practical shape:
//!
//! 1. **Random bin assignment.** Each occupied cell is assigned a uniform
//!    routing tag derived from `hash(position, seed)`. The array is cut into
//!    `2^L` buckets of capacity `Z`, each initially at most half full.
//! 2. **Butterfly routing.** `L` levels of the oblivious 2-way [`merge_split`]
//!    primitive route every item to the bucket named by its tag. Levels are
//!    grouped into *superlevels* of `γ = ⌊log2(M/Z)⌋` consecutive levels each:
//!    a superlevel loads a group of `2^γ` buckets into the private cache,
//!    routes all `γ` levels CPU-side, and writes the group back — so the
//!    whole butterfly costs `⌈L/γ⌉ ≈ log_{M/B}(N/B)` passes over the bucket
//!    array instead of `L` passes.
//! 3. **Dummy removal + run formation.** The last superlevel keeps each
//!    routed group in cache, removes the bucket padding with a tight
//!    order-preserving compaction (the §3 operation, executed in cache where
//!    the network degenerates to a stable pack), sorts the survivors, and
//!    emits them as a sorted block-aligned run.
//! 4. **`M/B`-way merge.** The runs are merged with a classic multi-way
//!    merge of fan-in `≈ M/B`. Because step 2 delivered a uniformly random
//!    permutation of the items, the merge's data-dependent read order leaks
//!    nothing about the *input* — this is exactly the random-shuffle argument
//!    of the bucket-sort paper (and of oblivious shuffle-then-sort designs
//!    generally).
//!
//! # Fresh tags per superlevel
//!
//! `extmem::Element` has no spare bits to carry an `L`-bit label through the
//! store, and a parallel label array would double the butterfly's I/O —
//! enough to lose to Lemma 2 at small `N/M`. Instead each superlevel draws a
//! *fresh* `γ`-bit tag per item from `hash(slot, salt_s)`, where `slot` is
//! the (distinct) global slot the item currently occupies and `salt_s` is a
//! per-superlevel salt. The final bucket index is the concatenation of
//! independent uniform draws, hence uniform — nothing needs to persist
//! server-side but the items themselves.
//!
//! # What is (and is not) hidden
//!
//! Steps 1–2 have a fixed, shape-determined trace. Step 3's run lengths and
//! step 4's interleaving depend on the seed and the occupancy, which is safe
//! by the shuffle argument above — but it means the bucket sort's trace is a
//! deterministic function of `(shape, seed, data)`, not of shape alone like
//! the Lemma 2 sort. The guarantees tested here are: byte-identical traces
//! across backends (plaintext vs encrypted) and across reruns with the same
//! seed. Callers who need a shape-only trace keep the Lemma 2 engine.
//!
//! # Overflow and seed re-rolls
//!
//! A bucket receives `Bin(2μ, 1/2)` items per level with mean `μ ≤ Z/2`, so
//! a level overflows with probability at most `exp(−Z/6)` per bucket
//! (`≈ 5·10⁻¹⁰` at the default `Z = 128`). The capacity knob is
//! [`BucketSortConfig::z`].
//!
//! Overflow is not the only tail event. Resident items are charged one
//! element slot each, plus one slot per four items for their 32-bit routing
//! tags (a tag is a quarter of an element slot), plus one block for whichever
//! block is being streamed — the *actual* occupancy, which is data-dependent
//! (fine: the budget models the client's private memory, invisible to the
//! adversary). Because groups pack densely (`2^γ·Z ≤ M`), a freakishly
//! skewed assignment can push a resident group far past its expected
//! half-full state and exhaust the budget before any single bucket formally
//! overflows — most likely at tight shapes like `Z = M/2`, `γ = 1`.
//!
//! Both events are tails of the same random assignment and get the same
//! treatment: the sort *re-rolls internally* with a derived seed
//! (`hash(attempt, seed)` — still a deterministic function of the config, so
//! traces stay reproducible) and restarts from the input array, which is
//! never modified before the final merge's shape-determined budget has been
//! secured. Only after four attempts fail does the typed error
//! ([`BucketSortError::Overflow`] or a `BudgetExceeded` store error) reach
//! the caller; [`BucketSortReport::attempts`] records the re-rolls.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;

use extmem::element::{cell_cmp_none_last, cell_cmp_none_last_desc, Cell};
use extmem::util::{hash64, ilog2_floor, next_pow2};
use extmem::{
    run_fallible, ArrayHandle, Block, BlockStore, CacheBudget, Element, IoStats, RetryPolicy,
    RetryStats, StoreError,
};

use crate::batcher::odd_even_merge_sort_by;
use crate::external_sort::SortOrder;

/// Default minimum bucket capacity: `exp(−128/6) ≈ 5·10⁻¹⁰` per-bucket
/// overflow probability.
const DEFAULT_MIN_BUCKET_CAPACITY: usize = 128;

/// Routing attempts before a tail event (bucket overflow or a freak-skew
/// budget exhaustion) surfaces as the typed error. Attempt `k > 0` re-rolls
/// the assignment with seed `hash(k, cfg.seed)`, so the whole retry ladder
/// is a deterministic function of the config.
const MAX_SEED_ATTEMPTS: usize = 4;

/// Per-cursor hint window (in blocks) for the multi-way merge. Deep enough
/// that a prefetching store can coalesce a run's reads into spans, shallow
/// enough that `fan_in × MERGE_LOOKAHEAD` outstanding hints stay well under
/// a prefetcher's ready budget at the grid points we benchmark.
const MERGE_LOOKAHEAD: usize = 8;

/// Tuning knobs for [`bucket_oblivious_sort`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketSortConfig {
    /// Seed for the random bin assignment. Same seed + same input ⇒
    /// byte-identical trace and output.
    pub seed: u64,
    /// Bucket capacity `Z` (power of two, `B ≤ Z ≤ M/2`, so a two-bucket
    /// MergeSplit group stays resident). `None` picks the capacity that
    /// minimizes butterfly passes, preferring larger buckets (lower overflow
    /// probability) on ties, with a floor of 128.
    pub z: Option<usize>,
}

impl BucketSortConfig {
    /// Config with the given seed and automatic bucket capacity.
    pub fn seeded(seed: u64) -> Self {
        BucketSortConfig { seed, z: None }
    }

    /// Config with an explicit bucket capacity.
    pub fn with_bucket_capacity(seed: u64, z: usize) -> Self {
        BucketSortConfig { seed, z: Some(z) }
    }
}

impl Default for BucketSortConfig {
    fn default() -> Self {
        BucketSortConfig {
            seed: 0x0b5e_55ed_0dd5_0bb5,
            z: None,
        }
    }
}

/// What a bucket sort did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketSortReport {
    /// I/Os charged to this sort (reads + writes deltas).
    pub io: IoStats,
    /// Bucket capacity `Z` actually used (0 on the in-cache path).
    pub z: usize,
    /// Number of butterfly buckets `2^L` (0 on the in-cache path).
    pub buckets: usize,
    /// Butterfly depth `L` in MergeSplit levels.
    pub levels: usize,
    /// External passes over the bucket array (`⌈L/γ⌉`).
    pub superlevels: usize,
    /// Sorted runs emitted by the last superlevel.
    pub runs: usize,
    /// Multi-way merge passes over the runs (≥ 1 on the external path).
    pub merge_passes: usize,
    /// Occupied (non-dummy) input cells; the output is exactly this prefix.
    pub occupied: usize,
    /// Routing attempts consumed: 1 when the first assignment succeeded,
    /// more when tail events (overflow or freak-skew budget exhaustion)
    /// forced internal seed re-rolls. `io` includes the abandoned attempts.
    pub attempts: usize,
    /// Whether the whole array fit in the private cache.
    pub in_cache: bool,
}

/// A [`merge_split`] output bucket exceeded its capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeSplitOverflow {
    /// Which output overflowed: 0 = the bit-clear side, 1 = the bit-set side.
    pub side: usize,
    /// How many items wanted that side.
    pub size: usize,
    /// The bucket capacity that was exceeded.
    pub capacity: usize,
    /// The tag bit the node split on.
    pub bit: u32,
}

impl fmt::Display for MergeSplitOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merge-split overflow: {} items routed to side {} of a bucket of capacity {} (bit {})",
            self.size, self.side, self.capacity, self.bit
        )
    }
}

impl Error for MergeSplitOverflow {}

/// Everything a bucket sort can fail with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BucketSortError {
    /// A bucket exceeded its capacity `Z` during butterfly routing. Retry
    /// with a fresh seed; the probability is `≈ exp(−Z/6)` per bucket-level.
    Overflow {
        /// Superlevel (external pass) in which the overflow happened.
        superlevel: usize,
        /// MergeSplit level within the superlevel.
        level: usize,
        /// Global index of the bucket that overflowed.
        bucket: usize,
        /// How many items wanted the bucket.
        size: usize,
        /// The configured bucket capacity `Z`.
        capacity: usize,
    },
    /// The arguments don't describe a runnable sort (bad `Z`, cache too
    /// small, non-power-of-two blocks, …).
    InvalidArgument {
        /// Human-readable validation failure.
        reason: &'static str,
    },
    /// The store failed, or a data-dependent cache high-water mark exceeded
    /// the private-memory budget.
    Store(StoreError),
}

impl fmt::Display for BucketSortError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BucketSortError::Overflow {
                superlevel,
                level,
                bucket,
                size,
                capacity,
            } => write!(
                f,
                "bucket overflow at superlevel {superlevel} level {level}: \
                 {size} items routed to bucket {bucket} of capacity {capacity}"
            ),
            BucketSortError::InvalidArgument { reason } => write!(f, "{reason}"),
            BucketSortError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl Error for BucketSortError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BucketSortError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for BucketSortError {
    fn from(e: StoreError) -> Self {
        BucketSortError::Store(e)
    }
}

/// The two output buckets of a [`merge_split`] node: `(bit-clear side,
/// bit-set side)`, each a bucket of `(item, tag)` pairs.
pub type MergeSplitOutput<T> = (Vec<(T, u32)>, Vec<(T, u32)>);

/// One oblivious 2-way MergeSplit node (the *Bucket Oblivious Sort*
/// primitive): takes two buckets of `(item, tag)` pairs and splits their
/// union by bit `bit` of the tag — bit clear to the first output, bit set to
/// the second — preserving input order (`a`'s items before `b`'s) on both
/// sides. Fails if either side would exceed `capacity` items.
///
/// Executed inside the private cache, so the node itself produces no I/O;
/// the obliviousness of the network comes from the fixed schedule of bucket
/// loads and stores around it.
pub fn merge_split<T>(
    a: Vec<(T, u32)>,
    b: Vec<(T, u32)>,
    bit: u32,
    capacity: usize,
) -> Result<MergeSplitOutput<T>, MergeSplitOverflow> {
    let mut lo: Vec<(T, u32)> = Vec::new();
    let mut hi: Vec<(T, u32)> = Vec::new();
    for pair in a.into_iter().chain(b) {
        if (pair.1 >> bit) & 1 == 0 {
            lo.push(pair);
        } else {
            hi.push(pair);
        }
    }
    if lo.len() > capacity {
        return Err(MergeSplitOverflow {
            side: 0,
            size: lo.len(),
            capacity,
            bit,
        });
    }
    if hi.len() > capacity {
        return Err(MergeSplitOverflow {
            side: 1,
            size: hi.len(),
            capacity,
            bit,
        });
    }
    Ok((lo, hi))
}

/// Sorts array `h` by key in the given order, dummies last, using at most
/// `cache_elems` words of private memory.
///
/// Same contract as
/// [`external_oblivious_sort`](crate::external_sort::external_oblivious_sort),
/// with two deltas: the trace depends on `(shape, cfg.seed, data)` rather
/// than shape alone (see the module docs), and failure is a typed
/// [`BucketSortError`] instead of a panic.
pub fn bucket_oblivious_sort<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
    cfg: &BucketSortConfig,
) -> Result<BucketSortReport, BucketSortError> {
    match order {
        SortOrder::Ascending => {
            bucket_oblivious_sort_by(store, h, cache_elems, cfg, &cell_cmp_none_last)
        }
        SortOrder::Descending => {
            bucket_oblivious_sort_by(store, h, cache_elems, cfg, &cell_cmp_none_last_desc)
        }
    }
}

/// Fallible variant of [`bucket_oblivious_sort`] for untrusted/unreliable
/// servers: transient faults are retried per `policy`, tampering and
/// exhausted retries surface as [`BucketSortError::Store`], and routing
/// overflow keeps its typed shape.
pub fn try_bucket_oblivious_sort<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
    cfg: &BucketSortConfig,
    policy: RetryPolicy,
) -> Result<(BucketSortReport, RetryStats), BucketSortError> {
    let (inner, retries) = run_fallible(store, policy, |s| {
        bucket_oblivious_sort(s, h, cache_elems, order, cfg)
    })?;
    Ok((inner?, retries))
}

/// Sorts array `h` with a custom total order on occupied cells.
///
/// `cmp` is only ever consulted on occupied (`Some`) cells: the bucket sort
/// removes dummies structurally and always emits them after every occupied
/// cell, whatever `cmp` says about `None`.
pub fn bucket_oblivious_sort_by<S, F>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    cfg: &BucketSortConfig,
    cmp: &F,
) -> Result<BucketSortReport, BucketSortError>
where
    S: BlockStore,
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = h.block_elems();
    let n = h.len();
    let start = store.io_stats();
    let ecmp = |x: &Element, y: &Element| cmp(&Some(*x), &Some(*y));

    if n <= 1 {
        return Ok(BucketSortReport {
            occupied: if n == 1 {
                usize::from(store.load_span(h, 0, n)[0].is_some())
            } else {
                0
            },
            io: store.io_stats() - start,
            attempts: 1,
            in_cache: true,
            ..BucketSortReport::default()
        });
    }

    // In-cache path: one read pass + one write pass.
    let whole = n.div_ceil(b) * b;
    if whole <= cache_elems {
        let mut budget = CacheBudget::new(cache_elems);
        budget.try_acquire(whole).map_err(BucketSortError::Store)?;
        let cells = store.load_span(h, 0, n);
        let mut reals: Vec<Cell> = cells.iter().filter(|c| c.is_some()).copied().collect();
        let occupied = reals.len();
        odd_even_merge_sort_by(&mut reals, cmp);
        reals.resize(n, None);
        store.store_span(h, 0, &reals);
        budget.release(whole);
        return Ok(BucketSortReport {
            io: store.io_stats() - start,
            occupied,
            attempts: 1,
            in_cache: true,
            ..BucketSortReport::default()
        });
    }

    if !b.is_power_of_two() {
        return Err(BucketSortError::InvalidArgument {
            reason: "bucket sort's external path requires a power-of-two block size",
        });
    }
    if cache_elems < 8 * b {
        return Err(BucketSortError::InvalidArgument {
            reason: "bucket sort needs a private cache of at least eight blocks (M >= 8B)",
        });
    }

    let planned = Layout::plan(n, b, cache_elems, cfg)?;
    let mut last_tail_error = None;
    for attempt in 0..MAX_SEED_ATTEMPTS {
        let layout = Layout {
            seed: if attempt == 0 {
                cfg.seed
            } else {
                hash64(attempt as u64, cfg.seed)
            },
            ..planned
        };
        match run_external(store, h, cache_elems, &layout, &ecmp) {
            Ok((occupied, runs, merge_passes)) => {
                return Ok(BucketSortReport {
                    io: store.io_stats() - start,
                    z: layout.z,
                    buckets: layout.buckets,
                    levels: layout.levels,
                    superlevels: layout.superlevels,
                    runs,
                    merge_passes,
                    occupied,
                    attempts: attempt + 1,
                    in_cache: false,
                });
            }
            // Tail events of the random assignment: re-roll the seed. Every
            // other error (tampering, invalid shapes, …) propagates.
            Err(e)
                if matches!(
                    e,
                    BucketSortError::Overflow { .. }
                        | BucketSortError::Store(StoreError::BudgetExceeded { .. })
                ) =>
            {
                last_tail_error = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last_tail_error.expect("at least one routing attempt ran"))
}

/// One full external-path attempt under `layout.seed`: distribute, route,
/// finish, multi-way merge. Returns `(occupied, runs, merge_passes)`.
///
/// Retry soundness: the input array `h` is only written by the final
/// `merge_runs` call, whose shape-determined budget charge is acquired
/// before its first write and cannot fail (fan-in is planned to fit `M`).
/// Every data-dependent failure — routing overflow, freak-skew budget
/// exhaustion — therefore happens while `h` is still intact, so the caller
/// may re-roll the seed and run the attempt again.
fn run_external<S, F>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    layout: &Layout,
    ecmp: &F,
) -> Result<(usize, usize, usize), BucketSortError>
where
    S: BlockStore,
    F: Fn(&Element, &Element) -> Ordering,
{
    let n = layout.n;
    let b = layout.b;
    let mut budget = CacheBudget::new(cache_elems);
    let scratch = store.alloc_array(layout.buckets * layout.z);

    // Phase 1+2a: distribute into half-full buckets and route the first
    // superlevel, fused (the input chunk read doubles as the bucket load).
    let mut occupied = 0usize;
    let grp0 = 1usize << layout.width(0);
    for gidx in 0..layout.buckets / grp0 {
        occupied += distribute_group(store, h, &scratch, layout, gidx, &mut budget)?;
    }

    // Phase 2b: the middle superlevels, each a full pass over the buckets.
    for s in 1..layout.superlevels - 1 {
        let grp = 1usize << layout.width(s);
        for gidx in 0..layout.buckets / grp {
            route_group(store, &scratch, layout, s, gidx, &mut budget)?;
        }
    }

    // Phase 2c+3: last superlevel fused with dummy removal and run
    // formation. One block-aligned sorted run per group.
    let s_last = layout.superlevels - 1;
    let run_count = layout.buckets >> layout.width(s_last);
    let run_cap_blocks = n.div_ceil(b) + run_count;
    let run_a = store.alloc_array(run_cap_blocks * b);
    let mut runs: Vec<RunMeta> = Vec::with_capacity(run_count);
    let mut cursor_block = 0usize;
    for gidx in 0..run_count {
        let meta = finish_group(
            store,
            &scratch,
            &run_a,
            layout,
            s_last,
            gidx,
            cursor_block,
            &mut budget,
            ecmp,
        )?;
        cursor_block = meta.first_block + meta.reals.div_ceil(b);
        runs.push(meta);
    }

    // Phase 4: merge the runs with fan-in ≈ M/B, ping-ponging between two
    // scratch arrays until one pass suffices, then merge into `h`.
    let fan = ((cache_elems - b) / (b + 2)).max(2);
    let mut merge_passes = 0usize;
    let mut src = run_a;
    let mut src_runs = runs;
    let mut pong: Option<ArrayHandle> = None;
    loop {
        if src_runs.len() <= fan {
            merge_runs(store, &src, &src_runs, h, 0, Some(n), &mut budget, ecmp)?;
            merge_passes += 1;
            break;
        }
        let dst = *pong.get_or_insert_with(|| store.alloc_array(run_cap_blocks * b));
        let mut next_runs = Vec::with_capacity(src_runs.len().div_ceil(fan));
        let mut out_block = 0usize;
        for group in src_runs.chunks(fan) {
            let reals = merge_runs(store, &src, group, &dst, out_block, None, &mut budget, ecmp)?;
            next_runs.push(RunMeta {
                first_block: out_block,
                reals,
            });
            out_block += reals.div_ceil(b);
        }
        pong = Some(src);
        src = dst;
        src_runs = next_runs;
        merge_passes += 1;
    }

    Ok((occupied, run_count, merge_passes))
}

/// The butterfly geometry: all shape-only, fixed before the first I/O.
#[derive(Clone, Copy, Debug)]
struct Layout {
    /// Block size `B`.
    b: usize,
    /// Bucket capacity `Z`.
    z: usize,
    /// Number of buckets `2^L`.
    buckets: usize,
    /// Butterfly depth `L`.
    levels: usize,
    /// Levels routed per superlevel: the largest `γ` with `2^γ·Z ≤ M`,
    /// clamped to `[1, L]`.
    gamma: usize,
    /// `⌈L/γ⌉` external passes.
    superlevels: usize,
    /// Input elements feeding each level-0 bucket (`≤ Z/2`).
    chunk: usize,
    /// Input length `N`.
    n: usize,
    /// Assignment seed.
    seed: u64,
}

impl Layout {
    fn plan(
        n: usize,
        b: usize,
        cache_elems: usize,
        cfg: &BucketSortConfig,
    ) -> Result<Layout, BucketSortError> {
        let z = match cfg.z {
            Some(z) => {
                if !z.is_power_of_two() || z < 2 {
                    return Err(BucketSortError::InvalidArgument {
                        reason: "bucket capacity Z must be a power of two of at least 2",
                    });
                }
                if z < b {
                    return Err(BucketSortError::InvalidArgument {
                        reason: "bucket capacity Z must be at least one block (Z >= B)",
                    });
                }
                if 2 * z > cache_elems {
                    return Err(BucketSortError::InvalidArgument {
                        reason: "bucket capacity Z must keep a two-bucket merge-split group \
                                 resident in the private cache (M >= 2Z)",
                    });
                }
                z
            }
            None => {
                // Candidates range up to M/2 (a two-bucket group must stay
                // resident); prefer whatever minimizes superlevels, larger Z
                // on ties (lower overflow probability).
                let hi = 1usize << ilog2_floor(cache_elems / 2);
                let lo = b.max(DEFAULT_MIN_BUCKET_CAPACITY).min(hi);
                let mut best = lo;
                let mut best_p = superlevels_for(n, lo, cache_elems);
                let mut z = lo << 1;
                while z <= hi {
                    let p = superlevels_for(n, z, cache_elems);
                    if p <= best_p {
                        best = z;
                        best_p = p;
                    }
                    z <<= 1;
                }
                best
            }
        };
        let buckets = bucket_count(n, z);
        let levels = ilog2_floor(buckets) as usize;
        let gamma = gamma_for(levels, z, cache_elems);
        Ok(Layout {
            b,
            z,
            buckets,
            levels,
            gamma,
            superlevels: levels.div_ceil(gamma),
            chunk: n.div_ceil(buckets),
            n,
            seed: cfg.seed,
        })
    }

    /// MergeSplit levels routed by superlevel `s` (γ, except a shorter tail).
    fn width(&self, s: usize) -> usize {
        self.gamma.min(self.levels - s * self.gamma)
    }

    /// Stride between the member buckets of a superlevel-`s` group.
    fn stride(&self, s: usize) -> usize {
        1usize << (s * self.gamma)
    }

    /// First member bucket of group `gidx` at superlevel `s`: the members
    /// are the buckets whose index bits `[s·γ, s·γ + width)` range over all
    /// values with every other bit fixed.
    fn group_base(&self, s: usize, gidx: usize) -> usize {
        let stride = self.stride(s);
        let low = gidx & (stride - 1);
        let high = gidx >> (s * self.gamma);
        (high << (s * self.gamma + self.width(s))) | low
    }

    /// Per-superlevel tag salt: independent uniform draws per superlevel.
    fn salt(&self, s: usize) -> u64 {
        hash64(s as u64, self.seed)
    }
}

/// `2^L`: the smallest power of two giving every bucket a ≤ half-full start.
fn bucket_count(n: usize, z: usize) -> usize {
    next_pow2((2 * n).div_ceil(z).max(2))
}

/// `γ`: the largest group width with `2^γ·Z ≤ M`, clamped to `[1, levels]`
/// (and to 32: tags are `u32`). Groups pack densely — buckets average half
/// full, and the rare freakishly over-full group is a re-rolled tail event,
/// not a planning constraint (see the module docs).
fn gamma_for(levels: usize, z: usize, cache_elems: usize) -> usize {
    (ilog2_floor(cache_elems / z) as usize).clamp(1, levels.clamp(1, 32))
}

fn superlevels_for(n: usize, z: usize, cache_elems: usize) -> usize {
    let levels = ilog2_floor(bucket_count(n, z)) as usize;
    levels.div_ceil(gamma_for(levels, z, cache_elems))
}

/// A sorted block-aligned run in a run scratch array.
#[derive(Clone, Copy, Debug)]
struct RunMeta {
    first_block: usize,
    reals: usize,
}

/// Budget bookkeeping for one resident group of tagged buckets: one slot per
/// item plus one slot per four 32-bit tags.
struct GroupCharge {
    items: usize,
    tag_slots: usize,
}

impl GroupCharge {
    fn new() -> Self {
        GroupCharge {
            items: 0,
            tag_slots: 0,
        }
    }

    fn add(&mut self, budget: &mut CacheBudget, items: usize) -> Result<(), BucketSortError> {
        budget.try_acquire(items).map_err(BucketSortError::Store)?;
        self.items += items;
        let want = self.items.div_ceil(4);
        if want > self.tag_slots {
            budget
                .try_acquire(want - self.tag_slots)
                .map_err(BucketSortError::Store)?;
            self.tag_slots = want;
        }
        Ok(())
    }

    fn drop_items(&mut self, budget: &mut CacheBudget, items: usize) {
        budget.release(items);
        self.items -= items;
    }

    fn finish(self, budget: &mut CacheBudget) {
        budget.release(self.items + self.tag_slots);
    }
}

/// A bucket resident in cache: `(item, fresh γ-bit tag)` pairs, reals only.
type TaggedBucket = Vec<(Element, u32)>;

/// Superlevel 0, fused with distribution: stream the group's input chunks
/// block by block, tag the occupied cells, route `width(0)` levels in cache,
/// and write the group's buckets (dummy-padded to `Z`) to `scratch`.
fn distribute_group<S: BlockStore>(
    store: &mut S,
    input: &ArrayHandle,
    scratch: &ArrayHandle,
    layout: &Layout,
    gidx: usize,
    budget: &mut CacheBudget,
) -> Result<usize, BucketSortError> {
    let b = layout.b;
    let grp = 1usize << layout.width(0);
    let base = layout.group_base(0, gidx);
    let salt = layout.salt(0);
    let mask = (grp - 1) as u64;

    let mut buckets: Vec<TaggedBucket> = (0..grp).map(|_| Vec::new()).collect();
    let mut charge = GroupCharge::new();

    let pos_lo = base * layout.chunk;
    let pos_hi = ((base + grp) * layout.chunk).min(layout.n);
    if pos_lo < pos_hi {
        // The group's input chunk occupies a shape-determined block range;
        // advertise the whole sweep so a prefetching store can read ahead.
        let schedule: Vec<usize> = (pos_lo / b..=(pos_hi - 1) / b).collect();
        store.hint_blocks(input, &schedule);
        for bi in pos_lo / b..=(pos_hi - 1) / b {
            budget.try_acquire(b).map_err(BucketSortError::Store)?;
            let blk = store.load_block(input, bi);
            let mut pushed = 0usize;
            for pos in pos_lo.max(bi * b)..pos_hi.min((bi + 1) * b) {
                if let Some(item) = blk.get(pos - bi * b) {
                    let tag = (hash64(pos as u64, salt) & mask) as u32;
                    buckets[pos / layout.chunk - base].push((item, tag));
                    pushed += 1;
                }
            }
            charge.add(budget, pushed)?;
            budget.release(b);
        }
    }
    let occupied = buckets.iter().map(Vec::len).sum();

    route_buckets(&mut buckets, layout, 0, base)?;
    write_group(
        store,
        scratch,
        &mut buckets,
        layout,
        0,
        base,
        budget,
        &mut charge,
    )?;
    charge.finish(budget);
    Ok(occupied)
}

/// A middle superlevel's group: load the member buckets, draw fresh tags,
/// route `width(s)` levels in cache, write the buckets back.
fn route_group<S: BlockStore>(
    store: &mut S,
    scratch: &ArrayHandle,
    layout: &Layout,
    s: usize,
    gidx: usize,
    budget: &mut CacheBudget,
) -> Result<(), BucketSortError> {
    let base = layout.group_base(s, gidx);
    let mut charge = GroupCharge::new();
    let mut buckets = load_group(store, scratch, layout, s, base, budget, &mut charge)?;
    route_buckets(&mut buckets, layout, s, base)?;
    write_group(
        store,
        scratch,
        &mut buckets,
        layout,
        s,
        base,
        budget,
        &mut charge,
    )?;
    charge.finish(budget);
    Ok(())
}

/// The last superlevel's group, fused with dummy removal and run emission:
/// route, tightly compact the group's occupants (the §3 operation, executed
/// in cache), sort them, and append them to `run_scratch` as one
/// block-aligned run starting at `first_block`.
#[allow(clippy::too_many_arguments)]
fn finish_group<S, F>(
    store: &mut S,
    scratch: &ArrayHandle,
    run_scratch: &ArrayHandle,
    layout: &Layout,
    s: usize,
    gidx: usize,
    first_block: usize,
    budget: &mut CacheBudget,
    ecmp: &F,
) -> Result<RunMeta, BucketSortError>
where
    S: BlockStore,
    F: Fn(&Element, &Element) -> Ordering,
{
    let b = layout.b;
    let base = layout.group_base(s, gidx);
    let mut charge = GroupCharge::new();
    let mut buckets = load_group(store, scratch, layout, s, base, budget, &mut charge)?;
    route_buckets(&mut buckets, layout, s, base)?;

    // Dummy removal: tight order-preserving compaction of the group. In
    // cache the §3 butterfly degenerates to a stable pack of the occupied
    // cells — the items move, the charge is unchanged.
    let mut reals: Vec<Element> = Vec::with_capacity(buckets.iter().map(Vec::len).sum());
    for bucket in buckets.iter_mut() {
        for (item, _tag) in bucket.drain(..) {
            reals.push(item);
        }
    }
    odd_even_merge_sort_by(&mut reals, ecmp);

    budget.try_acquire(b).map_err(BucketSortError::Store)?;
    let mut it = reals.iter().copied();
    for t in 0..reals.len().div_ceil(b) {
        let mut blk = Block::empty(b);
        for slot in 0..b {
            match it.next() {
                Some(item) => blk.set(slot, Some(item)),
                None => break,
            }
        }
        store.store_block(run_scratch, first_block + t, blk);
    }
    budget.release(b);

    let meta = RunMeta {
        first_block,
        reals: reals.len(),
    };
    charge.drop_items(budget, meta.reals);
    charge.finish(budget);
    Ok(meta)
}

/// Loads a group's member buckets from `scratch`, tagging each occupied cell
/// with a fresh `width(s)`-bit tag drawn from its current global slot.
fn load_group<S: BlockStore>(
    store: &mut S,
    scratch: &ArrayHandle,
    layout: &Layout,
    s: usize,
    base: usize,
    budget: &mut CacheBudget,
    charge: &mut GroupCharge,
) -> Result<Vec<TaggedBucket>, BucketSortError> {
    let b = layout.b;
    let z = layout.z;
    let grp = 1usize << layout.width(s);
    let stride = layout.stride(s);
    let salt = layout.salt(s);
    let mask = (grp - 1) as u64;

    // The member buckets of a group are fixed by `(s, base)` alone, so the
    // gather order below is shape-determined; hint the full block list.
    let mut schedule = Vec::with_capacity(grp * (z / b));
    for m in 0..grp {
        let first_block = (base + m * stride) * z / b;
        schedule.extend(first_block..first_block + z / b);
    }
    store.hint_blocks(scratch, &schedule);

    let mut buckets = Vec::with_capacity(grp);
    for m in 0..grp {
        let bucket_id = base + m * stride;
        let first_block = bucket_id * z / b;
        let mut v: TaggedBucket = Vec::new();
        for t in 0..z / b {
            budget.try_acquire(b).map_err(BucketSortError::Store)?;
            let blk = store.load_block(scratch, first_block + t);
            let mut pushed = 0usize;
            for (slot, cell) in blk.slots().iter().enumerate() {
                if let Some(item) = cell {
                    let gslot = (bucket_id * z + t * b + slot) as u64;
                    let tag = (hash64(gslot, salt) & mask) as u32;
                    v.push((*item, tag));
                    pushed += 1;
                }
            }
            charge.add(budget, pushed)?;
            budget.release(b);
        }
        buckets.push(v);
    }
    Ok(buckets)
}

/// Routes `width(s)` MergeSplit levels over a group held in cache. Local
/// level `t` pairs buckets differing in bit `t` and splits on tag bit `t`,
/// so after all levels item `x` sits in the member bucket named by its tag.
fn route_buckets(
    buckets: &mut [TaggedBucket],
    layout: &Layout,
    s: usize,
    base: usize,
) -> Result<(), BucketSortError> {
    let stride = layout.stride(s);
    let g = buckets.len().trailing_zeros() as usize;
    for t in 0..g {
        let bit = 1usize << t;
        for j in 0..buckets.len() {
            if j & bit != 0 {
                continue;
            }
            let k = j | bit;
            let a = std::mem::take(&mut buckets[j]);
            let c = std::mem::take(&mut buckets[k]);
            let (lo, hi) =
                merge_split(a, c, t as u32, layout.z).map_err(|e| BucketSortError::Overflow {
                    superlevel: s,
                    level: t,
                    bucket: base + if e.side == 0 { j } else { k } * stride,
                    size: e.size,
                    capacity: e.capacity,
                })?;
            buckets[j] = lo;
            buckets[k] = hi;
        }
    }
    Ok(())
}

/// Writes a group's buckets back to `scratch`, each dummy-padded to `Z`,
/// draining the cache charge bucket by bucket.
#[allow(clippy::too_many_arguments)]
fn write_group<S: BlockStore>(
    store: &mut S,
    scratch: &ArrayHandle,
    buckets: &mut [TaggedBucket],
    layout: &Layout,
    s: usize,
    base: usize,
    budget: &mut CacheBudget,
    charge: &mut GroupCharge,
) -> Result<(), BucketSortError> {
    let b = layout.b;
    let z = layout.z;
    let stride = layout.stride(s);
    for (m, bucket) in buckets.iter_mut().enumerate() {
        let bucket_id = base + m * stride;
        let first_block = bucket_id * z / b;
        let len = bucket.len();
        budget.try_acquire(b).map_err(BucketSortError::Store)?;
        let mut it = bucket.drain(..);
        for t in 0..z / b {
            let mut blk = Block::empty(b);
            for slot in 0..b {
                match it.next() {
                    Some((item, _tag)) => blk.set(slot, Some(item)),
                    None => break,
                }
            }
            store.store_block(scratch, first_block + t, blk);
        }
        drop(it);
        budget.release(b);
        charge.drop_items(budget, len);
    }
    Ok(())
}

/// Merges sorted runs from `src` into one run on `dst` starting at
/// `dst_first_block`. With `pad_to = Some(n)` (the final pass into the
/// caller's array) the output is dummy-padded to exactly `⌈n/B⌉` blocks;
/// otherwise the tail block is dummy-padded to the block boundary. Ties
/// break by run index, so the merge is deterministic. Returns the number of
/// occupied cells written.
#[allow(clippy::too_many_arguments)]
fn merge_runs<S, F>(
    store: &mut S,
    src: &ArrayHandle,
    runs: &[RunMeta],
    dst: &ArrayHandle,
    dst_first_block: usize,
    pad_to: Option<usize>,
    budget: &mut CacheBudget,
    ecmp: &F,
) -> Result<usize, BucketSortError>
where
    S: BlockStore,
    F: Fn(&Element, &Element) -> Ordering,
{
    let b = store.block_elems();
    struct Cursor {
        block: usize,
        slot: usize,
        remaining: usize,
        buf: Block,
    }
    // One resident block per input run, one output block, two bookkeeping
    // slots per run for the cursor — this is what bounds the fan-in at M/B.
    let charge = runs.len() * (b + 2) + b;
    budget.try_acquire(charge).map_err(BucketSortError::Store)?;

    let mut cursors: Vec<Cursor> = runs
        .iter()
        .map(|r| Cursor {
            block: r.first_block,
            slot: 0,
            remaining: r.reals,
            buf: Block::empty(b),
        })
        .collect();
    // Hint a sliding window of the next MERGE_LOOKAHEAD blocks per cursor
    // as the merge advances. Each hinted block belongs to the run its
    // cursor is draining, so the physical read set is exactly the runs'
    // blocks either way; the hints only shift *when* within the run a block
    // may be fetched, which is determined by the cursor-advance schedule the
    // trace already exposes — prefetching adds no address-trace information.
    let heads: Vec<usize> = cursors
        .iter()
        .filter(|c| c.remaining > 0)
        .flat_map(|c| {
            (0..MERGE_LOOKAHEAD)
                .take_while(|j| c.remaining > j * b)
                .map(|j| c.block + j)
        })
        .collect();
    store.hint_blocks(src, &heads);
    for c in cursors.iter_mut() {
        if c.remaining > 0 {
            c.buf = store.load_block(src, c.block);
        }
    }

    let mut out = Block::empty(b);
    let mut out_slot = 0usize;
    let mut out_block = dst_first_block;
    let mut written = 0usize;
    loop {
        let mut best: Option<(usize, Element)> = None;
        for (i, c) in cursors.iter().enumerate() {
            if c.remaining == 0 {
                continue;
            }
            let head = c
                .buf
                .get(c.slot)
                .expect("merge run invariant: the first `reals` cells of a run are occupied");
            // Strict `<` keeps the earliest run on ties: deterministic.
            if best.is_none() || ecmp(&head, &best.as_ref().unwrap().1) == Ordering::Less {
                best = Some((i, head));
            }
        }
        let Some((i, item)) = best else { break };
        out.set(out_slot, Some(item));
        out_slot += 1;
        if out_slot == b {
            store.store_block(dst, out_block, out);
            out = Block::empty(b);
            out_slot = 0;
            out_block += 1;
        }
        written += 1;
        let c = &mut cursors[i];
        c.slot += 1;
        c.remaining -= 1;
        if c.slot == b && c.remaining > 0 {
            c.block += 1;
            c.buf = store.load_block(src, c.block);
            c.slot = 0;
            // Slide the window: the initial hints covered the first
            // MERGE_LOOKAHEAD blocks of the run, so each advance exposes
            // exactly the one new block at the window's far edge.
            if c.remaining > (MERGE_LOOKAHEAD - 1) * b {
                store.hint_blocks(src, &[c.block + MERGE_LOOKAHEAD - 1]);
            }
        }
    }

    match pad_to {
        Some(n) => {
            // The final pass always writes exactly ⌈n/B⌉ blocks; the slots
            // past `written` stay dummies.
            let total_blocks = dst_first_block + n.div_ceil(b);
            while out_block < total_blocks {
                store.store_block(dst, out_block, out);
                out = Block::empty(b);
                out_block += 1;
            }
        }
        None => {
            if out_slot > 0 {
                store.store_block(dst, out_block, out);
            }
        }
    }

    budget.release(charge);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::ExtMem;

    fn e(k: u64) -> Element {
        Element::new(k, 0)
    }

    fn keyed_input(n: usize, salt: u64, range: u64) -> Vec<Cell> {
        (0..n)
            .map(|i| Some(Element::new(hash64(i as u64, salt) % range, i as u64)))
            .collect()
    }

    fn run_sort(
        cells: &[Cell],
        b: usize,
        cache: usize,
        cfg: &BucketSortConfig,
    ) -> (Vec<Cell>, BucketSortReport) {
        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(cells);
        let rep = bucket_oblivious_sort(&mut mem, &h, cache, SortOrder::Ascending, cfg)
            .expect("sort failed");
        (mem.snapshot_cells(&h), rep)
    }

    fn assert_sorted_reals_first(out: &[Cell], expected_keys: &mut Vec<u64>) {
        expected_keys.sort_unstable();
        let reals: Vec<u64> = out
            .iter()
            .take_while(|c| c.is_some())
            .map(|c| c.unwrap().key)
            .collect();
        assert_eq!(&reals, expected_keys, "sorted occupied prefix mismatch");
        assert!(
            out[reals.len()..].iter().all(|c| c.is_none()),
            "dummies must all sit after the occupied prefix"
        );
    }

    #[test]
    fn merge_split_partitions_stably_by_the_tag_bit() {
        let a = vec![(10u64, 0b01u32), (11, 0b10), (12, 0b11)];
        let b = vec![(20u64, 0b00u32), (21, 0b01)];
        let (lo, hi) = merge_split(a, b, 0, 8).unwrap();
        // Bit 0 clear: 11 (from a), 20 (from b) — a's items first, in order.
        assert_eq!(lo, vec![(11, 0b10), (20, 0b00)]);
        assert_eq!(hi, vec![(10, 0b01), (12, 0b11), (21, 0b01)]);
        // Same pairs on bit 1 split differently.
        let a = vec![(10u64, 0b01u32), (11, 0b10), (12, 0b11)];
        let b = vec![(20u64, 0b00u32), (21, 0b01)];
        let (lo, hi) = merge_split(a, b, 1, 8).unwrap();
        assert_eq!(lo, vec![(10, 0b01), (20, 0b00), (21, 0b01)]);
        assert_eq!(hi, vec![(11, 0b10), (12, 0b11)]);
    }

    #[test]
    fn merge_split_zero_one_exhaustive() {
        // 0-1 principle over the routing bit: every 0/1 tag pattern over two
        // buckets of up to 3 items routes to exactly the stable partition,
        // and overflows exactly when one side exceeds the capacity.
        for la in 0..=3usize {
            for lb in 0..=3usize {
                for pattern in 0..1u32 << (la + lb) {
                    let a: Vec<(usize, u32)> = (0..la).map(|i| (i, (pattern >> i) & 1)).collect();
                    let b: Vec<(usize, u32)> = (0..lb)
                        .map(|i| (la + i, (pattern >> (la + i)) & 1))
                        .collect();
                    let zeros = (la + lb) as u32 - pattern.count_ones();
                    let ones = pattern.count_ones();
                    for cap in 0..=4usize {
                        let r = merge_split(a.clone(), b.clone(), 0, cap);
                        if zeros as usize > cap || ones as usize > cap {
                            let err = r.unwrap_err();
                            assert_eq!(err.capacity, cap);
                            assert_eq!(err.size, if err.side == 0 { zeros } else { ones } as usize);
                        } else {
                            let (lo, hi) = r.unwrap();
                            assert_eq!(lo.len(), zeros as usize);
                            assert_eq!(hi.len(), ones as usize);
                            // Stability: ids ascend on both sides (inputs
                            // were id-ordered across a then b).
                            assert!(lo.windows(2).all(|w| w[0].0 < w[1].0));
                            assert!(hi.windows(2).all(|w| w[0].0 < w[1].0));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sorts_in_cache_when_the_array_fits() {
        let cells = keyed_input(96, 7, 50);
        let mut keys: Vec<u64> = cells.iter().flatten().map(|e| e.key).collect();
        let (out, rep) = run_sort(&cells, 8, 256, &BucketSortConfig::default());
        assert!(rep.in_cache);
        assert_eq!(rep.occupied, 96);
        assert_sorted_reals_first(&out, &mut keys);
    }

    #[test]
    fn sorts_externally_with_dummies_and_duplicates() {
        let n = 4096;
        let b = 8;
        let cache = 512; // external: n > M, γ = 2 at the default Z = 128
        let mut cells = keyed_input(n, 13, 97);
        for (i, cell) in cells.iter_mut().enumerate() {
            if hash64(i as u64, 99).is_multiple_of(3) {
                *cell = None;
            }
        }
        let mut keys: Vec<u64> = cells.iter().flatten().map(|e| e.key).collect();
        let (out, rep) = run_sort(&cells, b, cache, &BucketSortConfig::seeded(42));
        assert!(!rep.in_cache);
        assert!(rep.superlevels >= 2);
        assert_eq!(rep.occupied, keys.len());
        assert_sorted_reals_first(&out, &mut keys);
    }

    #[test]
    fn sorts_non_power_of_two_lengths_natively() {
        for n in [1000usize, 1537, 2049, 3000] {
            let cells = keyed_input(n, n as u64, 10); // heavy duplicates
            let mut keys: Vec<u64> = cells.iter().flatten().map(|e| e.key).collect();
            let (out, rep) = run_sort(&cells, 8, 320, &BucketSortConfig::seeded(5));
            assert!(!rep.in_cache, "n={n} should take the external path");
            assert_sorted_reals_first(&out, &mut keys);
        }
    }

    #[test]
    fn descending_order_is_supported() {
        let cells = keyed_input(2048, 3, 1000);
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        bucket_oblivious_sort(
            &mut mem,
            &h,
            320,
            SortOrder::Descending,
            &BucketSortConfig::seeded(9),
        )
        .unwrap();
        let out = mem.snapshot_cells(&h);
        let keys: Vec<u64> = out.iter().flatten().map(|e| e.key).collect();
        assert_eq!(keys.len(), 2048);
        assert!(keys.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn all_equal_keys_do_not_overflow() {
        // Tags come from positions, not keys: equal keys spread uniformly.
        let cells: Vec<Cell> = (0..4096).map(|i| Some(Element::new(7, i))).collect();
        let (out, _rep) = run_sort(&cells, 8, 512, &BucketSortConfig::seeded(1));
        assert!(out.iter().all(|c| c.map(|e| e.key) == Some(7)));
    }

    #[test]
    fn all_dummy_input_yields_all_dummy_output() {
        let cells: Vec<Cell> = vec![None; 2048];
        let (out, rep) = run_sort(&cells, 8, 320, &BucketSortConfig::seeded(2));
        assert_eq!(rep.occupied, 0);
        assert!(out.iter().all(|c| c.is_none()));
    }

    #[test]
    fn explicit_bucket_capacity_is_validated() {
        let cells = keyed_input(4096, 1, 100);
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        for (z, reason_part) in [
            (48, "power of two"),
            (4, "at least one block"),
            (512, "M >= 2Z"),
        ] {
            let cfg = BucketSortConfig::with_bucket_capacity(0, z);
            let err =
                bucket_oblivious_sort(&mut mem, &h, 320, SortOrder::Ascending, &cfg).unwrap_err();
            match err {
                BucketSortError::InvalidArgument { reason } => {
                    assert!(
                        reason.contains(reason_part),
                        "Z={z}: reason {reason:?} should mention {reason_part:?}"
                    );
                }
                other => panic!("Z={z}: expected InvalidArgument, got {other:?}"),
            }
        }
    }

    #[test]
    fn freak_cache_skew_rerolls_the_seed_instead_of_dying() {
        // Regression: with Z = M/2 and γ = 1 a freakishly full MergeSplit
        // group (2Z items + tag slots + a streamed block > M) used to kill
        // the sort with a data-dependent `BudgetExceeded` before any bucket
        // formally overflowed. (N, B, M) = (1024, 16, 128) with this
        // salt/seed reproduced the failure; the sort must now re-roll the
        // assignment seed internally and still deliver the sorted array.
        let cells: Vec<Cell> = (0..1024)
            .map(|i| Some(Element::keyed(hash64(i as u64, 3), i)))
            .collect();
        let (out, rep) = run_sort(&cells, 16, 128, &BucketSortConfig::seeded(1));
        assert!(!rep.in_cache);
        assert!(
            rep.attempts > 1 && rep.attempts <= MAX_SEED_ATTEMPTS,
            "this shape/seed must exercise the re-roll path, got attempts = {}",
            rep.attempts
        );
        let keys: Vec<u64> = out.iter().flatten().map(|e| e.key).collect();
        assert_eq!(keys.len(), 1024);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // The re-roll ladder is deterministic: a second run replays it.
        let (out2, rep2) = run_sort(&cells, 16, 128, &BucketSortConfig::seeded(1));
        assert_eq!(out, out2);
        assert_eq!(rep, rep2);
    }

    #[test]
    fn tiny_cache_is_a_typed_error_not_a_panic() {
        let cells = keyed_input(4096, 1, 100);
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&cells);
        let err = bucket_oblivious_sort(
            &mut mem,
            &h,
            40, // < 8B
            SortOrder::Ascending,
            &BucketSortConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, BucketSortError::InvalidArgument { .. }));
    }

    #[test]
    fn same_seed_same_io_different_seed_may_differ() {
        let cells = keyed_input(4096, 21, 1 << 20);
        let (out1, rep1) = run_sort(&cells, 8, 512, &BucketSortConfig::seeded(77));
        let (out2, rep2) = run_sort(&cells, 8, 512, &BucketSortConfig::seeded(77));
        assert_eq!(out1, out2);
        assert_eq!(rep1, rep2, "same seed must reproduce the identical run");
        let (out3, _rep3) = run_sort(&cells, 8, 512, &BucketSortConfig::seeded(78));
        assert_eq!(out1, out3, "the sorted output is seed-independent");
    }

    #[test]
    fn beats_the_lemma2_sort_when_n_is_large_relative_to_m() {
        use crate::external_sort::external_oblivious_sort;
        let n = 1 << 14;
        let b = 64;
        let cache = 1 << 10; // N/M = 16
        let cells = keyed_input(n, 4, 1 << 30);

        let mut mem = ExtMem::new(b);
        let h = mem.alloc_array_from_cells(&cells);
        let rep = bucket_oblivious_sort(
            &mut mem,
            &h,
            cache,
            SortOrder::Ascending,
            &BucketSortConfig::default(),
        )
        .unwrap();

        let mut mem2 = ExtMem::new(b);
        let h2 = mem2.alloc_array_from_cells(&cells);
        let lemma2 = external_oblivious_sort(&mut mem2, &h2, cache, SortOrder::Ascending);

        assert_eq!(
            mem.snapshot_cells(&h),
            mem2.snapshot_cells(&h2),
            "both sorts must agree"
        );
        assert!(
            rep.io.total() < lemma2.io.total(),
            "bucket sort ({}) must beat Lemma 2 ({}) at N/M = 16",
            rep.io.total(),
            lemma2.io.total()
        );
    }

    #[test]
    fn trivial_lengths_are_reported_in_cache() {
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array_from_cells(&[Some(e(3))]);
        let rep = bucket_oblivious_sort(
            &mut mem,
            &h,
            64,
            SortOrder::Ascending,
            &BucketSortConfig::default(),
        )
        .unwrap();
        assert!(rep.in_cache);
        assert_eq!(rep.occupied, 1);
    }
}
