//! Batcher's odd-even mergesort.
//!
//! The classic `O(n log² n)`-comparator deterministic sorting network, usable
//! on slices of **any** length. The paper's Lemma 2 black box (a
//! deterministic data-oblivious sort) is realised in-cache with exactly this
//! network, and the test-suite uses the explicit [`Network`] form to verify
//! it with the zero-one principle.
//!
//! Arbitrary lengths are handled by generating the network for the next power
//! of two and dropping every comparator that touches a wire `≥ n`. This is
//! sound because dropped comparators would only ever see a virtual `+∞`
//! sentinel on their high wire: ascending comparators never move such a
//! sentinel to a lower index, so the sentinels stay parked on the dropped
//! wires for the whole run and the real wires behave exactly as in the padded
//! network.

use crate::compare::compare_exchange_by;
use crate::network::{Comparator, Network};
use std::cmp::Ordering;

/// Sorts `v` in place with Batcher's odd-even mergesort (ascending).
pub fn odd_even_merge_sort<T: Ord>(v: &mut [T]) {
    odd_even_merge_sort_by(v, &|a: &T, b: &T| a.cmp(b));
}

/// Sorts `v` in place with Batcher's odd-even mergesort using a custom
/// comparison.
pub fn odd_even_merge_sort_by<T, F>(v: &mut [T], cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let n = v.len();
    if n < 2 {
        return;
    }
    let p = n.next_power_of_two();
    for_each_comparator(p, &mut |i, j| {
        if j < n {
            compare_exchange_by(v, i, j, cmp);
        }
    });
}

/// Builds the explicit comparator network for `n` wires (each comparator in
/// its own stage, in application order).
pub fn odd_even_merge_network(n: usize) -> Network {
    let mut net = Network::new(n.max(1));
    if n < 2 {
        return net;
    }
    let p = n.next_power_of_two();
    for_each_comparator(p, &mut |i, j| {
        if j < n {
            net.push_comparator(Comparator::new(i, j));
        }
    });
    net
}

/// Number of comparators the network uses for `n` wires (after dropping the
/// out-of-range ones).
pub fn comparator_count(n: usize) -> usize {
    let mut c = 0usize;
    if n >= 2 {
        let p = n.next_power_of_two();
        for_each_comparator(p, &mut |_i, j| {
            if j < n {
                c += 1;
            }
        });
    }
    c
}

/// Enumerates the comparators of the power-of-two odd-even mergesort over
/// `p` wires, in application order.
fn for_each_comparator(p: usize, visit: &mut impl FnMut(usize, usize)) {
    debug_assert!(p.is_power_of_two());
    sort_rec(0, p, visit);
}

fn sort_rec(lo: usize, n: usize, visit: &mut impl FnMut(usize, usize)) {
    if n > 1 {
        let m = n / 2;
        sort_rec(lo, m, visit);
        sort_rec(lo + m, m, visit);
        merge_rec(lo, n, 1, visit);
    }
}

/// Odd-even merge of the (already sorted) halves of `v[lo..lo+n]`, where `r`
/// is the distance between elements of the subsequence being merged.
fn merge_rec(lo: usize, n: usize, r: usize, visit: &mut impl FnMut(usize, usize)) {
    let m = r * 2;
    if m < n {
        merge_rec(lo, n, m, visit); // even subsequence
        merge_rec(lo + r, n, m, visit); // odd subsequence
        let mut i = lo + r;
        while i + r < lo + n {
            visit(i, i + r);
            i += m;
        }
    } else {
        visit(lo, lo + r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_power_of_two_lengths() {
        let mut v = vec![5, 3, 8, 1, 9, 2, 7, 4];
        odd_even_merge_sort(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5, 7, 8, 9]);
    }

    #[test]
    fn sorts_non_power_of_two_lengths() {
        for n in [0usize, 1, 2, 3, 5, 6, 7, 9, 13, 31, 33, 100] {
            let mut v: Vec<u32> = (0..n as u32).rev().collect();
            odd_even_merge_sort(&mut v);
            let expected: Vec<u32> = (0..n as u32).collect();
            assert_eq!(v, expected, "failed for n={n}");
        }
    }

    #[test]
    fn handles_duplicates() {
        let mut v = vec![2, 2, 1, 1, 3, 3, 2, 1, 3];
        odd_even_merge_sort(&mut v);
        assert_eq!(v, vec![1, 1, 1, 2, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn custom_comparison_sorts_descending() {
        let mut v = vec![1, 4, 2, 3];
        odd_even_merge_sort_by(&mut v, &|a: &i32, b: &i32| b.cmp(a));
        assert_eq!(v, vec![4, 3, 2, 1]);
    }

    #[test]
    fn network_passes_zero_one_principle_for_small_widths() {
        for n in 1..=10 {
            let net = odd_even_merge_network(n);
            assert!(
                net.sorts_all_zero_one_inputs(),
                "odd-even network of width {n} is not a sorter"
            );
        }
    }

    #[test]
    fn network_and_in_place_sort_agree() {
        let n = 11;
        let net = odd_even_merge_network(n);
        let mut a: Vec<u32> = (0..n as u32).map(|i| (i * 7919) % 97).collect();
        let mut b = a.clone();
        net.apply(&mut a);
        odd_even_merge_sort(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn comparator_count_grows_like_n_log_squared_n() {
        // Exact well-known counts for powers of two: C(2)=1, C(4)=5, C(8)=19.
        assert_eq!(comparator_count(2), 1);
        assert_eq!(comparator_count(4), 5);
        assert_eq!(comparator_count(8), 19);
        // Dropping out-of-range comparators only reduces the count.
        assert!(comparator_count(7) <= comparator_count(8));
    }

    #[test]
    fn access_pattern_is_input_independent() {
        // Record the comparator sequence for two different inputs of the same
        // length: it must be identical (the network is data-oblivious).
        fn record(n: usize) -> Vec<(usize, usize)> {
            let mut seq = Vec::new();
            let p = n.next_power_of_two();
            super::for_each_comparator(p, &mut |i, j| {
                if j < n {
                    seq.push((i, j));
                }
            });
            seq
        }
        assert_eq!(record(13), record(13));
    }
}
