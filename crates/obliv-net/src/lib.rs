//! # odo-obliv-net — data-oblivious sorting and routing networks
//!
//! Deterministic data-oblivious building blocks used throughout the
//! workspace:
//!
//! * [`compare`] — compare-exchange primitives, the only data-dependent
//!   operation a sorting network performs (and it performs it with a fixed
//!   access pattern).
//! * [`network`] — explicit comparator-network representation plus
//!   zero-one-principle exhaustive checking used by the test-suite.
//! * [`batcher`] — Batcher's odd-even mergesort for in-memory slices of any
//!   length, the workhorse in-cache oblivious sort.
//! * [`bitonic`] — Batcher's bitonic sorter for power-of-two slices; its
//!   stride structure is what the external-memory sort exploits.
//! * [`shellsort`] — Goodrich's randomized Shellsort (SODA 2010), cited as
//!   related work in the paper; provided as a practical randomized
//!   alternative and exercised by the benches.
//! * [`butterfly`] — the butterfly-like routing network of the paper's
//!   Section 3 (Figure 1), in its in-memory circuit form, plus an ASCII
//!   renderer that regenerates Figure 1.
//! * [`external_sort`] — the paper's **Lemma 2** substitute: a deterministic
//!   data-oblivious external-memory sort costing
//!   `O((N/B)(1 + log²(N/M)))` I/Os, implemented as an external bitonic sort
//!   whose small sub-problems are finished inside the private cache.
//! * [`bucket_sort`] — the randomized *Bucket Oblivious Sort* route: butterfly
//!   routing of `Z`-capacity buckets via the 2-way [`merge_split`] primitive
//!   plus an `M/B`-way run merge, costing `O((N/B)·log_{M/B}(N/B))` I/Os —
//!   beating the Lemma 2 squared log whenever `N ≫ M`.
//!
//! Everything except [`bucket_sort`] is deterministic: on any two inputs of
//! the same size the sequence of element positions touched — and for the
//! external sort, the sequence of block addresses — is identical. The bucket
//! sort's trace is a deterministic function of `(shape, seed, data)`; see its
//! module docs for the random-shuffle obliviousness argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod bitonic;
pub mod bucket_sort;
pub mod butterfly;
pub mod compare;
pub mod external_sort;
pub mod network;
pub mod shellsort;

pub use batcher::odd_even_merge_sort;
pub use bitonic::{bitonic_merge_pow2_by, bitonic_network, bitonic_sort_pow2};
pub use bucket_sort::{
    bucket_oblivious_sort, bucket_oblivious_sort_by, merge_split, try_bucket_oblivious_sort,
    BucketSortConfig, BucketSortError, BucketSortReport, MergeSplitOverflow,
};
pub use external_sort::{
    external_oblivious_sort, external_oblivious_sort_by, try_external_oblivious_sort, SortOrder,
    SortReport,
};
pub use network::{Comparator, Network};
pub use shellsort::randomized_shellsort;

/// Announces the strictly sequential block-read schedule `[lo, hi)` of
/// array `h` in one [`hint_blocks`](extmem::BlockStore::hint_blocks) call,
/// so a prefetching store coalesces the whole range into span reads. The
/// sort passes build richer stride-shaped schedules by hand; the purely
/// sequential consumers — the ORAM rebuild pipeline's collect, suppress,
/// keep and copy passes above this crate, and any future streaming pass —
/// share this helper instead of each re-rolling the same vector.
pub fn hint_block_range<S: extmem::BlockStore>(
    store: &mut S,
    h: &extmem::ArrayHandle,
    lo: usize,
    hi: usize,
) {
    if hi > lo {
        let schedule: Vec<usize> = (lo..hi).collect();
        store.hint_blocks(h, &schedule);
    }
}
