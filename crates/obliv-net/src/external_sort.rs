//! The paper's **Lemma 2** substitute: a deterministic data-oblivious
//! external-memory sort costing `O((N/B)(1 + log²(N/M)))` I/Os.
//!
//! # Algorithm
//!
//! The sorter is a block-strided bitonic sort over an array held by any
//! [`BlockStore`] backend — the plaintext [`extmem::ExtMem`] arena or the
//! re-encrypting [`extmem::EncryptedStore`], with identical traces and I/O
//! counts either way. The
//! classic bitonic network on `p = 2^ℓ` wires runs stages of sequence length
//! `k = 2, 4, …, p`; stage `k` executes compare-exchange levels of stride
//! `s = k/2, k/4, …, 1`, where level `(k, s)` pairs `i` with `i ⊕ s` and
//! merges ascending exactly when bit `k` of `i` is clear. Run naively, every
//! one of the `O(log² p)` levels is a full pass over the array — `Θ(N/B)`
//! block reads plus writes each — which is what the `baseline` crate does and
//! what this module's two I/O optimizations collapse:
//!
//! 1. **In-cache finishing.** Let `F` be the largest power-of-two region
//!    size guaranteed to fit in the `M`-word private cache. Every level with
//!    stride `s ≤ F/2` operates entirely inside aligned `F`-element regions,
//!    so the tail of every merge (all levels with stride `< F`) is executed
//!    by loading each region once, finishing the remaining compare-exchange
//!    levels CPU-side ([`bitonic_merge_pow2_by`]), and writing the region
//!    back: one read pass plus one write pass per stage instead of
//!    `log F` block passes. The same trick presorts each `F`-region up
//!    front ([`bitonic_sort_pow2_by`] in cache), replacing the first
//!    `log F` stages — `O(log² F)` levels — with a single pass.
//! 2. **Stride batching.** An external level with block-aligned stride
//!    (`B | s`) touches each block in exactly one block pair `(β, β + s/B)`.
//!    All `B` element compare-exchanges that touch that pair are fused into
//!    a single read-modify-write round trip via
//!    [`BlockStore::modify_pair`]: 2 reads + 2 writes per pair, i.e.
//!    `2·(N/B)` I/Os for the whole level — never one round trip per element.
//!    Non-aligned strides (only possible when `B` is not a power of two)
//!    fall back to an LRU [`BlockCache`] sweep with the same `2·(N/B)`
//!    asymptotics.
//!
//! # I/O count
//!
//! With `F = Θ(M)` the external levels of stage `k` are the strides
//! `k/2 … F`, so stage `F·2^t` costs `t` external passes plus one finishing
//! pass, and the presort is one more pass. Writing `P = 2·⌈N/B⌉` I/Os per
//! pass, the total is
//!
//! ```text
//! P · (1 + Σ_{t=1}^{log(N/M)} (t + 1))  =  O((N/B)(1 + log²(N/M)))
//! ```
//!
//! matching Lemma 2. Every access is a fixed function of `(N, B, M)` — block
//! reads in static loops, compare-exchanges hidden inside the private cache —
//! so the server-visible trace is identical for any two same-shape inputs;
//! the obliviousness test-suite asserts this byte-for-byte.
//!
//! # Measured
//!
//! `odo-bench` (see `BENCH_sort.json`) measures, at
//! `N = 2^18, B = 64, M = 2^13`: **172,032** total I/Os for this sorter
//! versus **1,400,832** for the naive full-depth baseline — an **8.1×**
//! reduction, against a bound of `4·(N/B)(1 + ⌈log2(N/M)⌉²) = 425,984`.

use crate::bitonic::{bitonic_merge_pow2_by, bitonic_sort_pow2_by};
use crate::compare::exchange_dir_by;
use extmem::element::{cell_cmp_none_last, cell_cmp_none_last_desc, Cell};
use extmem::{
    run_fallible, ArrayHandle, BlockCache, BlockStore, CacheBudget, IoStats, RetryPolicy,
    RetryStats, StoreError,
};
use std::cmp::Ordering;

/// Direction of an [`external_oblivious_sort`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOrder {
    /// Keys ascending; dummy (empty) cells sort after every occupied cell.
    Ascending,
    /// Keys descending; dummy (empty) cells still sort after every occupied
    /// cell.
    Descending,
}

/// What an external sort did, alongside its I/O cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SortReport {
    /// I/Os charged to this sort (reads + writes deltas).
    pub io: IoStats,
    /// The in-cache region size `F` in elements (a power of two `≤ M`).
    pub region_elems: usize,
    /// Number of regions presorted entirely inside the private cache.
    pub presort_regions: usize,
    /// Number of external compare-exchange levels executed as block passes.
    pub external_levels: usize,
    /// Number of in-cache finishing passes (one per merge stage).
    pub finish_passes: usize,
    /// Whether the input was padded to a power of two via a scratch array.
    pub padded: bool,
}

/// Sorts array `h` by key in the given order, dummies last, using at most
/// `cache_elems` words of private memory. Returns the [`SortReport`].
///
/// Generic over the [`BlockStore`] backend: the identical algorithm —
/// identical address trace, identical I/O count — runs over a plaintext
/// [`extmem::ExtMem`] arena or an [`extmem::EncryptedStore`] (the `odo-bench`
/// harness asserts the zero-extra-I/O property at every grid point).
///
/// # Panics
/// Panics if `cache_elems < 2·B` (the paper's minimal `M ≥ 2B` regime).
pub fn external_oblivious_sort<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
) -> SortReport {
    match order {
        SortOrder::Ascending => {
            external_oblivious_sort_by(store, h, cache_elems, &cell_cmp_none_last)
        }
        SortOrder::Descending => {
            external_oblivious_sort_by(store, h, cache_elems, &cell_cmp_none_last_desc)
        }
    }
}

/// Fallible variant of [`external_oblivious_sort`] for untrusted/unreliable
/// servers: transient faults are retried per `policy` (the retry schedule
/// depends only on the server's fault schedule, never on the data, so traces
/// stay data-independent), and the first permanent [`StoreError`] — a
/// corrupted block, a rollback, exhausted retries — aborts the pass and is
/// returned instead of panicking or producing wrong output.
///
/// On `Err` the contents of `h` (and of the scratch array, for non-power-of-
/// two lengths) are unspecified; the store itself remains usable and its I/O
/// accounting reflects every operation actually issued.
pub fn try_external_oblivious_sort<S: BlockStore>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    order: SortOrder,
    policy: RetryPolicy,
) -> Result<(SortReport, RetryStats), StoreError> {
    run_fallible(store, policy, |s| {
        external_oblivious_sort(s, h, cache_elems, order)
    })
}

/// Sorts array `h` with a custom total order on cells.
///
/// When `h.len()` is not a power of two the sort pads into a scratch array
/// whose extra slots are dummies; `cmp` must therefore order every dummy
/// (`None`) cell after every occupied cell, or elements may be truncated on
/// copy-back. Power-of-two lengths accept any total order.
pub fn external_oblivious_sort_by<S, F>(
    store: &mut S,
    h: &ArrayHandle,
    cache_elems: usize,
    cmp: &F,
) -> SortReport
where
    S: BlockStore,
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = h.block_elems();
    assert!(
        cache_elems >= 2 * b,
        "external sort needs a private cache of at least two blocks (M >= 2B)"
    );
    let start = store.io_stats();
    let n = h.len();
    if n <= 1 {
        return SortReport {
            io: store.io_stats() - start,
            region_elems: n.max(1),
            presort_regions: 0,
            external_levels: 0,
            finish_passes: 0,
            padded: false,
        };
    }
    let p = n.next_power_of_two();
    let mut report = if p == n {
        sort_pow2(store, h, cache_elems, cmp)
    } else {
        // Pad into a fresh power-of-two scratch array (its tail slots are
        // dummies), sort, and stream the first ⌈n/B⌉ blocks back. The extra
        // cost is O(N/B) and the whole detour is shape-determined.
        let scratch = store.alloc_array(p);
        for i in 0..h.n_blocks() {
            let blk = store.load_block(h, i);
            store.store_block(&scratch, i, blk);
        }
        let mut r = sort_pow2(store, &scratch, cache_elems, cmp);
        for i in 0..h.n_blocks() {
            let blk = store.load_block(&scratch, i);
            store.store_block(h, i, blk);
        }
        r.padded = true;
        r
    };
    report.io = store.io_stats() - start;
    report
}

/// Core sorter for an array of exactly `p` (a power of two ≥ 2) slots.
fn sort_pow2<S, F>(store: &mut S, a: &ArrayHandle, cache_elems: usize, cmp: &F) -> SortReport
where
    S: BlockStore,
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = a.block_elems();
    let p = a.len();
    let f0 = in_cache_region(p, b, cache_elems);
    let mut budget = CacheBudget::new(cache_elems);
    let mut report = SortReport {
        io: IoStats::default(),
        region_elems: f0,
        presort_regions: p / f0,
        external_levels: 0,
        finish_passes: 0,
        padded: false,
    };

    // Phase 1 — presort: each f0-region is fully sorted inside the private
    // cache, alternating directions so adjacent region pairs form bitonic
    // sequences (region g ascending iff g is even; with a single region this
    // is the final ascending sort).
    for g in 0..p / f0 {
        in_cache_pass(store, a, &mut budget, g * f0, f0, |cells| {
            bitonic_sort_pow2_by(cells, g % 2 == 0, cmp);
        });
    }

    // Phase 2 — merge stages k = 2·f0 … p. External strided levels first,
    // then one in-cache finishing pass executes every remaining level
    // (strides f0/2 … 1) of the stage.
    let mut k = 2 * f0;
    while k <= p {
        let mut s = k / 2;
        while s >= f0 {
            external_level(store, a, &mut budget, cache_elems, s, k, cmp);
            report.external_levels += 1;
            s /= 2;
        }
        for g in 0..p / f0 {
            let lo = g * f0;
            let asc = lo & k == 0;
            in_cache_pass(store, a, &mut budget, lo, f0, |cells| {
                bitonic_merge_pow2_by(cells, asc, cmp);
            });
        }
        report.finish_passes += 1;
        k *= 2;
    }
    report
}

/// One external compare-exchange level: stride `s`, stage `k`.
fn external_level<S, F>(
    store: &mut S,
    a: &ArrayHandle,
    budget: &mut CacheBudget,
    cache_elems: usize,
    s: usize,
    k: usize,
    cmp: &F,
) where
    S: BlockStore,
    F: Fn(&Cell, &Cell) -> Ordering,
{
    let b = a.block_elems();
    let p = a.len();
    if s.is_multiple_of(b) {
        // Stride batching fast path: the stride is block-aligned, so every
        // block belongs to exactly one pair (β, β + s/B) and all B element
        // compare-exchanges on that pair fuse into one read-modify-write
        // round trip. 2·(N/B) I/Os for the level.
        //
        // The whole level's read schedule is a function of (p, b, s) alone,
        // so announce it up front: a prefetching store overlaps the reads
        // with the compare-exchange work, every other store ignores it.
        let nb = p / b;
        let mut schedule = Vec::with_capacity(nb);
        for beta in 0..nb {
            if (beta * b) & s == 0 {
                schedule.push(beta);
                schedule.push(beta + s / b);
            }
        }
        store.hint_blocks(a, &schedule);
        for beta in 0..nb {
            let base = beta * b;
            if base & s == 0 {
                let partner = beta + s / b;
                let asc = base & k == 0;
                budget.with(2 * b, |_| {
                    store.modify_pair(a, beta, partner, |x, y| {
                        for j in 0..b {
                            let (lo, hi) = exchange_dir_by(x.get(j), y.get(j), asc, cmp);
                            x.set(j, lo);
                            y.set(j, hi);
                        }
                    });
                });
            }
        }
    } else {
        // General path: an LRU block-cache sweep over the data-independent
        // pair sequence. Cells are written unconditionally so every touched
        // block is dirtied and written back — the trace stays a function of
        // shape alone.
        let m_blocks = (cache_elems / b).max(2);
        // First-touch order over the pair sequence is (near-)ascending in
        // block index; the ascending hint covers every block the sweep reads.
        let schedule: Vec<usize> = (0..p.div_ceil(b)).collect();
        store.hint_blocks(a, &schedule);
        budget.with(m_blocks * b, |_| {
            let mut cache = BlockCache::new(store, *a, m_blocks);
            for i in 0..p {
                if i & s == 0 {
                    let l = i | s;
                    let asc = i & k == 0;
                    let (u, v) = (cache.read(i), cache.read(l));
                    let (lo, hi) = exchange_dir_by(u, v, asc, cmp);
                    cache.write(i, lo);
                    cache.write(l, hi);
                }
            }
        });
    }
}

/// Loads the aligned region `[lo, lo + f)` into the private cache, applies
/// `work` CPU-side (free in the I/O model), and stores the region back.
fn in_cache_pass<S: BlockStore>(
    store: &mut S,
    a: &ArrayHandle,
    budget: &mut CacheBudget,
    lo: usize,
    f: usize,
    work: impl FnOnce(&mut [Cell]),
) {
    let b = a.block_elems();
    budget.with(span_blocks(f, b) * b, |_| {
        let mut cells = store.load_span(a, lo, lo + f);
        work(&mut cells);
        store.store_span(a, lo, &cells);
    });
}

/// Largest power-of-two region size `F ≤ p` whose worst-case block span is
/// guaranteed to fit in `cache_elems` words of private memory. Always ≥ 2
/// given `cache_elems ≥ 2B`.
fn in_cache_region(p: usize, b: usize, cache_elems: usize) -> usize {
    let mut best = 2;
    let mut f = 4;
    while f <= p && span_blocks(f, b) * b <= cache_elems {
        best = f;
        f *= 2;
    }
    best.min(p)
}

/// Conservative worst-case number of blocks an aligned `f`-element region can
/// span (exact `f/B` when `B | f`, since aligned region starts are then block
/// starts).
fn span_blocks(f: usize, b: usize) -> usize {
    if f.is_multiple_of(b) {
        f / b
    } else {
        f / b + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::{Element, ExtMem};

    fn e(k: u64) -> Element {
        Element::new(k, 0)
    }

    fn keyed_input(n: usize, salt: u64) -> Vec<Element> {
        (0..n)
            .map(|i| Element::keyed(extmem::util::hash64(i as u64, salt) % 1000, i))
            .collect()
    }

    fn run_sort(
        n: usize,
        b: usize,
        m: usize,
        salt: u64,
    ) -> (Vec<Element>, SortReport, Vec<Element>) {
        let mut mem = ExtMem::new(b);
        let input = keyed_input(n, salt);
        let h = mem.alloc_array_from_elements(&input);
        let report = external_oblivious_sort(&mut mem, &h, m, SortOrder::Ascending);
        (mem.snapshot_elements(&h), report, input)
    }

    #[test]
    fn sorts_across_shapes() {
        for (n, b, m) in [
            (64usize, 4usize, 16usize),
            (256, 8, 32),
            (1024, 16, 128),
            (100, 7, 21), // non-power-of-two everything
            (33, 5, 15),
            (512, 64, 128), // single in-cache region
        ] {
            let (got, report, input) = run_sort(n, b, m, 42);
            let mut expected = input.clone();
            expected.sort_unstable();
            assert_eq!(got, expected, "failed for N={n} B={b} M={m}");
            assert!(report.io.total() > 0);
        }
    }

    #[test]
    fn descending_order_reverses() {
        let mut mem = ExtMem::new(8);
        let input = keyed_input(128, 7);
        let h = mem.alloc_array_from_elements(&input);
        external_oblivious_sort(&mut mem, &h, 32, SortOrder::Descending);
        let got = mem.snapshot_elements(&h);
        let mut expected = input;
        expected.sort_unstable();
        expected.reverse();
        assert_eq!(got, expected);
    }

    #[test]
    fn dummies_sort_to_the_end() {
        let mut mem = ExtMem::new(4);
        let cells: Vec<Cell> = vec![
            None,
            Some(e(5)),
            None,
            Some(e(1)),
            Some(e(9)),
            None,
            Some(e(3)),
            None,
            None,
            Some(e(2)),
        ];
        let h = mem.alloc_array_from_cells(&cells);
        external_oblivious_sort(&mut mem, &h, 8, SortOrder::Ascending);
        let got = mem.snapshot_cells(&h);
        assert_eq!(
            got[..5],
            [Some(e(1)), Some(e(2)), Some(e(3)), Some(e(5)), Some(e(9))]
        );
        assert!(got[5..].iter().all(|c| c.is_none()));
    }

    #[test]
    fn trivial_inputs_cost_nothing() {
        let mut mem = ExtMem::new(4);
        let h = mem.alloc_array_from_elements(&[e(1)]);
        let report = external_oblivious_sort(&mut mem, &h, 8, SortOrder::Ascending);
        assert_eq!(report.io.total(), 0);
    }

    #[test]
    fn report_counts_match_structure() {
        // N = 256, B = 8, M = 32 → F = 32, p/F = 8 regions,
        // stages k = 64..256 → external levels 1+2+3 = 6, finishing 3.
        let (_, report, _) = run_sort(256, 8, 32, 3);
        assert_eq!(report.region_elems, 32);
        assert_eq!(report.presort_regions, 8);
        assert_eq!(report.external_levels, 6);
        assert_eq!(report.finish_passes, 3);
        assert!(!report.padded);
        // Every pass is 2·(N/B) = 64 I/Os: presort + 6 external + 3 finish.
        assert_eq!(report.io.total(), 64 * 10);
    }

    #[test]
    fn io_count_is_quasilinear_not_full_depth() {
        // Whole input fits in cache: exactly one read + one write pass.
        let (_, report, _) = run_sort(256, 8, 256, 11);
        assert_eq!(report.io.total(), 2 * 32);
        assert_eq!(report.external_levels, 0);
    }

    #[test]
    #[should_panic(expected = "at least two blocks")]
    fn tiny_cache_is_rejected() {
        let mut mem = ExtMem::new(8);
        let h = mem.alloc_array(64);
        external_oblivious_sort(&mut mem, &h, 8, SortOrder::Ascending);
    }

    #[test]
    fn in_cache_region_respects_cache_and_alignment() {
        assert_eq!(in_cache_region(1 << 18, 64, 1 << 13), 1 << 13);
        assert_eq!(in_cache_region(256, 8, 32), 32);
        assert_eq!(in_cache_region(16, 8, 1 << 10), 16); // clamped to p
                                                         // Non-power-of-two B: spans are over-estimated conservatively.
        let f = in_cache_region(1 << 10, 7, 70);
        assert!(span_blocks(f, 7) * 7 <= 70);
        assert!(f >= 2);
    }
}
