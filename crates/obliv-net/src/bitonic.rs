//! Batcher's bitonic sorter.
//!
//! The bitonic sorter is the second classic `O(n log² n)` sorting network.
//! Its recursive structure — sort the two halves in opposite directions, then
//! run a sequence of fixed-stride compare-exchange passes — is exactly what
//! the external-memory deterministic sort in [`crate::external_sort`]
//! exploits: every pass touches blocks in a fixed, data-independent order,
//! and sub-problems that fit in the private cache can be finished there for
//! free (as far as the adversary is concerned).
//!
//! The in-memory functions here require power-of-two lengths (callers pad
//! with sentinels); [`crate::batcher`] handles arbitrary lengths.

use crate::compare::compare_exchange_dir_by;
use crate::network::{Comparator, Network};
use std::cmp::Ordering;

/// Sorts a power-of-two-length slice ascending.
///
/// # Panics
/// Panics if `v.len()` is not a power of two (use
/// [`crate::batcher::odd_even_merge_sort`] for arbitrary lengths).
pub fn bitonic_sort_pow2<T: Ord>(v: &mut [T]) {
    bitonic_sort_pow2_by(v, true, &|a: &T, b: &T| a.cmp(b));
}

/// Sorts a power-of-two-length slice in the given direction with a custom
/// comparison.
pub fn bitonic_sort_pow2_by<T, F>(v: &mut [T], ascending: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let n = v.len();
    assert!(
        n.is_power_of_two() || n == 0,
        "bitonic_sort_pow2 requires a power-of-two length"
    );
    if n > 1 {
        sort_rec(v, 0, n, ascending, cmp);
    }
}

/// Merges a bitonic power-of-two-length slice into sorted order in the given
/// direction.
///
/// A slice is *bitonic* when it is an ascending run followed by a descending
/// run (or a rotation thereof); in particular the concatenation of an
/// ascending and a descending sorted half is bitonic. This is the
/// `O(n log n)`-comparator tail of the bitonic sorter, exposed on its own
/// because it is exactly what the external-memory sort's **in-cache
/// finishing** runs once a merge sub-problem fits in the private cache: all
/// remaining compare-exchange levels of the region, executed CPU-side.
///
/// # Panics
/// Panics if `v.len()` is not a power of two.
pub fn bitonic_merge_pow2_by<T, F>(v: &mut [T], ascending: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let n = v.len();
    assert!(
        n.is_power_of_two() || n == 0,
        "bitonic_merge_pow2 requires a power-of-two length"
    );
    if n > 1 {
        merge_rec(v, 0, n, ascending, cmp);
    }
}

/// Builds the explicit [`Network`] form of the bitonic sorter over `n` wires
/// (`n` a power of two), one level of disjoint comparators per stage.
///
/// The network uses *directed* comparators ([`Comparator::directed`]):
/// descending merge halves route their maximum to the lower wire, exactly as
/// [`bitonic_sort_pow2`] executes them. The test-suite verifies the network
/// with the zero-one principle and checks it agrees with the in-place sorter.
///
/// # Panics
/// Panics if `n` is not a power of two.
pub fn bitonic_network(n: usize) -> Network {
    assert!(
        n.is_power_of_two() || n == 0,
        "bitonic_network requires a power-of-two width"
    );
    let mut net = Network::new(n.max(1));
    if n < 2 {
        return net;
    }
    // Iterative formulation: stage k doubles the sorted sequence length,
    // stride s halves within a stage; pair (i, i ^ s) merges ascending iff
    // bit k of i is clear. Each (k, s) level is one stage of disjoint
    // comparators.
    let mut k = 2;
    while k <= n {
        let mut s = k / 2;
        while s >= 1 {
            let mut stage = Vec::with_capacity(n / 2);
            for i in 0..n {
                let l = i ^ s;
                if l > i {
                    let asc = i & k == 0;
                    stage.push(if asc {
                        Comparator::directed(i, l)
                    } else {
                        Comparator::directed(l, i)
                    });
                }
            }
            net.push_stage(stage);
            s /= 2;
        }
        k *= 2;
    }
    net
}

fn sort_rec<T, F>(v: &mut [T], lo: usize, n: usize, asc: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    if n <= 1 {
        return;
    }
    let half = n / 2;
    sort_rec(v, lo, half, true, cmp);
    sort_rec(v, lo + half, half, false, cmp);
    merge_rec(v, lo, n, asc, cmp);
}

/// Merges a bitonic range `v[lo..lo+n]` into `asc` order.
fn merge_rec<T, F>(v: &mut [T], lo: usize, n: usize, asc: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    if n <= 1 {
        return;
    }
    let half = n / 2;
    for i in lo..lo + half {
        compare_exchange_dir_by(v, i, i + half, asc, cmp);
    }
    merge_rec(v, lo, half, asc, cmp);
    merge_rec(v, lo + half, half, asc, cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_power_of_two_inputs() {
        let mut v = vec![7u32, 3, 9, 1, 0, 12, 5, 5];
        bitonic_sort_pow2(&mut v);
        assert_eq!(v, vec![0, 1, 3, 5, 5, 7, 9, 12]);
    }

    #[test]
    fn sorts_descending_when_asked() {
        let mut v = vec![4u32, 1, 3, 2];
        bitonic_sort_pow2_by(&mut v, false, &|a: &u32, b: &u32| a.cmp(b));
        assert_eq!(v, vec![4, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two_lengths() {
        let mut v = vec![3u32, 1, 2];
        bitonic_sort_pow2(&mut v);
    }

    #[test]
    fn random_inputs_match_std_sort() {
        let mut x: u64 = 12345;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for exp in [4usize, 6, 8] {
            let n = 1 << exp;
            let mut v: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            bitonic_sort_pow2(&mut v);
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn empty_and_single_element_are_fine() {
        let mut v: Vec<u32> = vec![];
        bitonic_sort_pow2(&mut v);
        let mut w = vec![9u32];
        bitonic_sort_pow2(&mut w);
        assert_eq!(w, vec![9]);
    }

    #[test]
    fn merge_finishes_a_bitonic_sequence() {
        // Ascending half followed by descending half is bitonic.
        let mut v = vec![1u32, 4, 6, 9, 8, 5, 3, 0];
        bitonic_merge_pow2_by(&mut v, true, &|a: &u32, b: &u32| a.cmp(b));
        assert_eq!(v, vec![0, 1, 3, 4, 5, 6, 8, 9]);
        let mut w = vec![1u32, 4, 6, 9, 8, 5, 3, 0];
        bitonic_merge_pow2_by(&mut w, false, &|a: &u32, b: &u32| a.cmp(b));
        assert_eq!(w, vec![9, 8, 6, 5, 4, 3, 1, 0]);
    }

    #[test]
    fn network_passes_zero_one_principle_exhaustively() {
        // Zero-one principle: a comparator network sorts all inputs iff it
        // sorts all 0/1 inputs. Checked exhaustively through the explicit
        // Network form (directed comparators included).
        for n in [1usize, 2, 4, 8, 16] {
            let net = bitonic_network(n);
            assert!(
                net.sorts_all_zero_one_inputs(),
                "bitonic network of width {n} is not a sorter"
            );
        }
    }

    #[test]
    fn network_and_in_place_sort_agree() {
        let n = 16;
        let net = bitonic_network(n);
        let mut a: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761) % 101)
            .collect();
        let mut b = a.clone();
        net.apply(&mut a);
        bitonic_sort_pow2(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn network_size_matches_known_counts() {
        // Bitonic sorter on 2^k wires has k(k+1)/2 levels of n/2 comparators.
        let net = bitonic_network(8);
        assert_eq!(net.depth(), 6); // 3*4/2 levels
        assert_eq!(net.size(), 6 * 4);
        assert!(net.stages().iter().all(|s| s.len() == 4));
    }

    #[test]
    fn sorts_all_zero_one_inputs_width_8() {
        // Direct 0-1 principle check of the in-place sorter (not the Network
        // form, which normalises descending comparators).
        let n = 8;
        for mask in 0u32..(1 << n) {
            let mut v: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
            bitonic_sort_pow2(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "failed mask {mask:b}");
        }
    }
}
