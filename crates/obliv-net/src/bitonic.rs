//! Batcher's bitonic sorter.
//!
//! The bitonic sorter is the second classic `O(n log² n)` sorting network.
//! Its recursive structure — sort the two halves in opposite directions, then
//! run a sequence of fixed-stride compare-exchange passes — is exactly what
//! the external-memory deterministic sort in [`crate::external_sort`]
//! exploits: every pass touches blocks in a fixed, data-independent order,
//! and sub-problems that fit in the private cache can be finished there for
//! free (as far as the adversary is concerned).
//!
//! The in-memory functions here require power-of-two lengths (callers pad
//! with sentinels); [`crate::batcher`] handles arbitrary lengths.

use crate::compare::compare_exchange_dir_by;
use std::cmp::Ordering;

/// Sorts a power-of-two-length slice ascending.
///
/// # Panics
/// Panics if `v.len()` is not a power of two (use
/// [`crate::batcher::odd_even_merge_sort`] for arbitrary lengths).
pub fn bitonic_sort_pow2<T: Ord>(v: &mut [T]) {
    bitonic_sort_pow2_by(v, true, &|a: &T, b: &T| a.cmp(b));
}

/// Sorts a power-of-two-length slice in the given direction with a custom
/// comparison.
pub fn bitonic_sort_pow2_by<T, F>(v: &mut [T], ascending: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    let n = v.len();
    assert!(
        n.is_power_of_two() || n == 0,
        "bitonic_sort_pow2 requires a power-of-two length"
    );
    if n > 1 {
        sort_rec(v, 0, n, ascending, cmp);
    }
}

fn sort_rec<T, F>(v: &mut [T], lo: usize, n: usize, asc: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    if n <= 1 {
        return;
    }
    let half = n / 2;
    sort_rec(v, lo, half, true, cmp);
    sort_rec(v, lo + half, half, false, cmp);
    merge_rec(v, lo, n, asc, cmp);
}

/// Merges a bitonic range `v[lo..lo+n]` into `asc` order.
fn merge_rec<T, F>(v: &mut [T], lo: usize, n: usize, asc: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    if n <= 1 {
        return;
    }
    let half = n / 2;
    for i in lo..lo + half {
        compare_exchange_dir_by(v, i, i + half, asc, cmp);
    }
    merge_rec(v, lo, half, asc, cmp);
    merge_rec(v, lo + half, half, asc, cmp);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_power_of_two_inputs() {
        let mut v = vec![7u32, 3, 9, 1, 0, 12, 5, 5];
        bitonic_sort_pow2(&mut v);
        assert_eq!(v, vec![0, 1, 3, 5, 5, 7, 9, 12]);
    }

    #[test]
    fn sorts_descending_when_asked() {
        let mut v = vec![4u32, 1, 3, 2];
        bitonic_sort_pow2_by(&mut v, false, &|a: &u32, b: &u32| a.cmp(b));
        assert_eq!(v, vec![4, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two_lengths() {
        let mut v = vec![3u32, 1, 2];
        bitonic_sort_pow2(&mut v);
    }

    #[test]
    fn random_inputs_match_std_sort() {
        let mut x: u64 = 12345;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for exp in [4usize, 6, 8] {
            let n = 1 << exp;
            let mut v: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
            let mut expected = v.clone();
            expected.sort_unstable();
            bitonic_sort_pow2(&mut v);
            assert_eq!(v, expected);
        }
    }

    #[test]
    fn empty_and_single_element_are_fine() {
        let mut v: Vec<u32> = vec![];
        bitonic_sort_pow2(&mut v);
        let mut w = vec![9u32];
        bitonic_sort_pow2(&mut w);
        assert_eq!(w, vec![9]);
    }

    #[test]
    fn sorts_all_zero_one_inputs_width_8() {
        // Direct 0-1 principle check of the in-place sorter (not the Network
        // form, which normalises descending comparators).
        let n = 8;
        for mask in 0u32..(1 << n) {
            let mut v: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
            bitonic_sort_pow2(&mut v);
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "failed mask {mask:b}");
        }
    }
}
