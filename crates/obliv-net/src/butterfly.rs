//! The butterfly-like compaction network (paper Section 3, Figure 1).
//!
//! The network has `⌈log n⌉ + 1` levels of `n` cells each. Cell `j` of level
//! `L_i` is connected to cells `j` and `j − 2^i` of level `L_{i+1}`. An
//! occupied cell starts on level `L_0` labelled with the *distance* it must
//! move to the left to reach its destination in a tight compaction; on level
//! `L_i` the cell routes along the `j − 2^i` wire exactly when bit `i` of its
//! remaining distance is set, and the label is reduced accordingly
//! (`d ← d − (d mod 2^{i+1})`). Lemma 5 of the paper shows that valid
//! distance labels — those arising from an order-preserving compaction, or
//! more generally any labels that are *non-decreasing* over occupied cells
//! with strictly increasing destinations `j − d_j` — never collide at an
//! internal cell. (Monotone destinations alone are **not** enough: cells
//! `2, 3` with labels `2, 1` have destinations `0 < 2` yet collide on level
//! `L_1`; the exhaustive Lemma 5 test exercises both sides.)
//!
//! This module provides the in-memory circuit form: routing with explicit
//! labels, stable-compaction label computation, the reverse (expansion)
//! direction, and an ASCII renderer that regenerates Figure 1. The
//! external-memory, I/O-efficient execution of the same circuit lives in
//! `odo-core::compact::butterfly`.

/// Error returned when two occupied cells try to enter the same cell of an
/// internal level, i.e. the distance labels were not valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutingCollision {
    /// The level at which the collision happened (destination level index).
    pub level: usize,
    /// The cell index both items tried to occupy.
    pub cell: usize,
}

impl std::fmt::Display for RoutingCollision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "butterfly routing collision at level {} cell {}",
            self.level, self.cell
        )
    }
}

impl std::error::Error for RoutingCollision {}

/// Everything that can be wrong with a label table handed to the routing
/// functions. A table read back from an *untrusted* store can be arbitrary
/// garbage even when each block individually looked plausible (e.g. a
/// corrupted-but-MAC-passing window), so the fallible entry points
/// ([`try_route_with_labels`], [`try_render_labels`]) classify every
/// inconsistency as a typed error instead of panicking mid-route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingError {
    /// Two occupied cells routed to the same internal cell.
    Collision(RoutingCollision),
    /// The label table does not describe a valid routing: a label without an
    /// item (or vice versa), a label that would move an item past cell 0, or
    /// leftover distance after the last level.
    MalformedLabels {
        /// The cell at which the inconsistency was detected.
        cell: usize,
        /// What was inconsistent about it.
        reason: &'static str,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::Collision(c) => c.fmt(f),
            RoutingError::MalformedLabels { cell, reason } => {
                write!(f, "malformed label table at cell {cell}: {reason}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

impl From<RoutingCollision> for RoutingError {
    fn from(c: RoutingCollision) -> Self {
        RoutingError::Collision(c)
    }
}

/// Number of routing levels for an `n`-cell network (`⌈log2 n⌉`).
pub fn levels(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Computes the distance labels of a stable tight compaction: occupied cell
/// `j` with rank `ρ(j)` (number of occupied cells strictly before it) gets
/// label `j − ρ(j)`. Unoccupied cells get `None`.
pub fn compaction_labels<T>(cells: &[Option<T>]) -> Vec<Option<usize>> {
    let mut rank = 0usize;
    cells
        .iter()
        .enumerate()
        .map(|(j, c)| {
            if c.is_some() {
                let d = j - rank;
                rank += 1;
                Some(d)
            } else {
                None
            }
        })
        .collect()
}

/// Routes items through the butterfly network according to their distance
/// labels (`labels[j]` must be `Some(d)` exactly when `cells[j]` is occupied,
/// with `d ≤ j`). Returns the contents of the final level.
pub fn route_with_labels<T: Clone>(
    cells: &[Option<T>],
    labels: &[Option<usize>],
) -> Result<Vec<Option<T>>, RoutingCollision> {
    match try_route_with_labels(cells, labels) {
        Ok(out) => Ok(out),
        Err(RoutingError::Collision(c)) => Err(c),
        Err(RoutingError::MalformedLabels { cell, reason }) => {
            if reason.contains("past cell 0") {
                panic!("distance label may not move an item past cell 0")
            }
            panic!("labels and occupancy must agree at cell {cell}")
        }
    }
}

/// Fully fallible form of [`route_with_labels`]: *every* inconsistency in the
/// label table — occupancy mismatches, out-of-range labels, collisions,
/// unconsumed distance — is returned as a typed [`RoutingError`] instead of
/// panicking. This is the entry point to use when the labels were read back
/// from an untrusted store: a tampered (but individually plausible-looking)
/// table surfaces as `Err`, never as a panic or a silent mis-route.
pub fn try_route_with_labels<T: Clone>(
    cells: &[Option<T>],
    labels: &[Option<usize>],
) -> Result<Vec<Option<T>>, RoutingError> {
    assert_eq!(cells.len(), labels.len(), "one label per cell");
    let n = cells.len();
    let lv = levels(n);
    // Current level state: (item, remaining distance).
    let mut cur: Vec<Option<(T, usize)>> = Vec::with_capacity(n);
    for (j, (c, l)) in cells.iter().zip(labels.iter()).enumerate() {
        cur.push(match (c, l) {
            (Some(item), Some(d)) => {
                if *d > j {
                    return Err(RoutingError::MalformedLabels {
                        cell: j,
                        reason: "distance label may not move an item past cell 0",
                    });
                }
                Some((item.clone(), *d))
            }
            (None, None) => None,
            _ => {
                return Err(RoutingError::MalformedLabels {
                    cell: j,
                    reason: "labels and occupancy must agree",
                })
            }
        });
    }

    for i in 0..lv {
        let mut next: Vec<Option<(T, usize)>> = vec![None; n];
        let step = 1usize << i;
        let modulus = step << 1;
        for (j, slot) in cur.into_iter().enumerate() {
            if let Some((item, d)) = slot {
                let hop = d % modulus; // either 0 or 2^i for valid labels
                debug_assert!(hop == 0 || hop == step, "invalid distance label");
                let dest = j - hop;
                let nd = d - hop;
                if next[dest].is_some() {
                    return Err(RoutingError::Collision(RoutingCollision {
                        level: i + 1,
                        cell: dest,
                    }));
                }
                next[dest] = Some((item, nd));
            }
        }
        cur = next;
    }
    cur.into_iter()
        .enumerate()
        .map(|(j, slot)| match slot {
            Some((item, 0)) => Ok(Some(item)),
            Some((_, _)) => Err(RoutingError::MalformedLabels {
                cell: j,
                reason: "distance not consumed by the last level",
            }),
            None => Ok(None),
        })
        .collect()
}

/// Stable tight compaction of `cells` through the butterfly network: occupied
/// items move to the front, preserving their relative order; the array length
/// is unchanged (the tail is left unoccupied).
pub fn compact<T: Clone>(cells: &[Option<T>]) -> Vec<Option<T>> {
    let labels = compaction_labels(cells);
    route_with_labels(cells, &labels).expect("compaction labels are always collision-free")
}

/// The reverse operation (the paper notes the network can be used "in
/// reverse" to expand a compact array): the occupied cells of `cells` must
/// form a prefix (as produced by [`compact`]), and item `i` of the prefix is
/// moved right to position `targets[i]`, where `targets` is strictly
/// increasing with `targets[i] < cells.len()`.
///
/// Implemented as the compaction circuit run *backwards in time*: the levels
/// execute from the largest stride down, and on level `L_i` an item hops
/// from `j` to `j + 2^i` exactly when bit `i` of its remaining distance is
/// set. The reversed run retraces the trajectories of the forward stable
/// compaction that takes the expanded array back to the prefix, so by
/// Lemma 5 it never collides. (Running the levels in the *forward* order
/// does collide on legitimate target sets — e.g. a 6-item prefix of a
/// 64-cell array expanding to `[3, 10, 11, 40, 41, 63]` collides on `L_1` —
/// which is why the direction of time, not mirroring, is the correct way to
/// reverse the network.)
pub fn expand<T: Clone>(cells: &[Option<T>], targets: &[usize]) -> Vec<Option<T>> {
    let n = cells.len();
    let r = targets.len();
    for w in targets.windows(2) {
        assert!(w[0] < w[1], "expansion targets must be strictly increasing");
    }
    if let Some(&last) = targets.last() {
        assert!(last < n, "expansion target out of range");
    }
    for (j, c) in cells.iter().enumerate() {
        if j < r {
            assert!(c.is_some(), "expand expects an occupied prefix");
        } else {
            assert!(c.is_none(), "expand expects dummies after the prefix");
        }
    }
    // Strictly increasing targets give targets[i] ≥ i, so every distance
    // label targets[i] − i is well-defined, and the labels are non-decreasing
    // in i — the time-reversed run is a valid stable compaction.
    let mut cur: Vec<Option<(T, usize)>> = vec![None; n];
    for i in 0..r {
        let item = cells[i].clone().expect("prefix was validated above");
        cur[i] = Some((item, targets[i] - i));
    }
    for i in (0..levels(n)).rev() {
        let step = 1usize << i;
        let mut next: Vec<Option<(T, usize)>> = vec![None; n];
        for (j, slot) in cur.into_iter().enumerate() {
            if let Some((item, d)) = slot {
                let hop = d & step;
                let dest = j + hop;
                debug_assert!(
                    next[dest].is_none(),
                    "prefix expansion cannot collide (Lemma 5, time-reversed)"
                );
                next[dest] = Some((item, d - hop));
            }
        }
        cur = next;
    }
    cur.into_iter()
        .map(|slot| {
            slot.map(|(item, d)| {
                debug_assert_eq!(d, 0, "all distance must be consumed by level 0");
                item
            })
        })
        .collect()
}

/// Renders the level-by-level remaining-distance labels of a routing run in
/// the style of the paper's Figure 1: one row per level, occupied cells show
/// their remaining distance, empty cells show `·`.
pub fn render_labels<T: Clone>(cells: &[Option<T>], labels: &[Option<usize>]) -> String {
    try_render_labels(cells, labels).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`render_labels`] for label tables of untrusted origin:
/// a table whose occupancy and labels disagree, whose labels run past cell 0,
/// or whose routing collides yields a typed [`RoutingError`] instead of a
/// panic mid-render.
pub fn try_render_labels<T: Clone>(
    cells: &[Option<T>],
    labels: &[Option<usize>],
) -> Result<String, RoutingError> {
    assert_eq!(cells.len(), labels.len(), "one label per cell");
    let n = cells.len();
    let lv = levels(n);
    let mut cur: Vec<Option<usize>> = labels.to_vec();
    let mut occupied: Vec<bool> = cells.iter().map(|c| c.is_some()).collect();
    for (j, (occ, lab)) in occupied.iter().zip(cur.iter()).enumerate() {
        if *occ != lab.is_some() {
            return Err(RoutingError::MalformedLabels {
                cell: j,
                reason: "labels and occupancy must agree",
            });
        }
    }
    let mut out = String::new();
    for i in 0..=lv {
        out.push_str(&format!("L{i:<2} "));
        for j in 0..n {
            if occupied[j] {
                out.push_str(&format!("{:>3}", cur[j].unwrap_or(0)));
            } else {
                out.push_str("  ·");
            }
        }
        out.push('\n');
        if i == lv {
            break;
        }
        let step = 1usize << i;
        let modulus = step << 1;
        let mut next_occ = vec![false; n];
        let mut next_lab: Vec<Option<usize>> = vec![None; n];
        for j in 0..n {
            if occupied[j] {
                let d = cur[j].ok_or(RoutingError::MalformedLabels {
                    cell: j,
                    reason: "labels and occupancy must agree",
                })?;
                let hop = d % modulus;
                if hop > j {
                    return Err(RoutingError::MalformedLabels {
                        cell: j,
                        reason: "distance label may not move an item past cell 0",
                    });
                }
                let dest = j - hop;
                if next_occ[dest] {
                    return Err(RoutingError::Collision(RoutingCollision {
                        level: i + 1,
                        cell: dest,
                    }));
                }
                next_occ[dest] = true;
                next_lab[dest] = Some(d - hop);
            }
        }
        occupied = next_occ;
        cur = next_lab;
    }
    Ok(out)
}

/// Reproduces the instance drawn in the paper's Figure 1: a 16-cell level
/// with seven occupied cells whose remaining distances on `L_0` are
/// 2, 3, 3, 6, 8, 8, 9 (reading occupied cells left to right).
pub fn figure1_example() -> (Vec<Option<u32>>, Vec<Option<usize>>) {
    // Place 7 occupied cells so that their stable-compaction distances are
    // exactly the figure's labels. distance d_j = j - rank.
    // rank: 0..6, so occupied positions are rank + label:
    // 0+2=2, 1+3=4, 2+3=5, 3+6=9, 4+8=12, 5+8=13, 6+9=15.
    let positions = [2usize, 4, 5, 9, 12, 13, 15];
    let n = 16;
    let mut cells: Vec<Option<u32>> = vec![None; n];
    for (rank, &p) in positions.iter().enumerate() {
        cells[p] = Some(rank as u32);
    }
    let labels = compaction_labels(&cells);
    (cells, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_is_ceil_log2() {
        assert_eq!(levels(1), 0);
        assert_eq!(levels(2), 1);
        assert_eq!(levels(3), 2);
        assert_eq!(levels(8), 3);
        assert_eq!(levels(9), 4);
    }

    #[test]
    fn compaction_labels_count_empty_cells_to_the_left() {
        let cells = vec![None, Some(1u32), None, Some(2), Some(3), None];
        assert_eq!(
            compaction_labels(&cells),
            vec![None, Some(1), None, Some(2), Some(2), None]
        );
    }

    #[test]
    fn compact_moves_items_to_front_preserving_order() {
        let cells = vec![
            None,
            Some(10u32),
            None,
            None,
            Some(20),
            Some(30),
            None,
            Some(40),
        ];
        let out = compact(&cells);
        assert_eq!(
            out,
            vec![
                Some(10),
                Some(20),
                Some(30),
                Some(40),
                None,
                None,
                None,
                None
            ]
        );
    }

    #[test]
    fn compact_of_full_and_empty_arrays_is_identity() {
        let full: Vec<Option<u32>> = (0..8).map(Some).collect();
        assert_eq!(compact(&full), full);
        let empty: Vec<Option<u32>> = vec![None; 8];
        assert_eq!(compact(&empty), empty);
    }

    #[test]
    fn no_collision_for_random_occupancy_patterns() {
        // Deterministic pseudo-random patterns over several sizes.
        let mut x: u64 = 99;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for n in [5usize, 16, 33, 100, 257] {
            let cells: Vec<Option<u64>> = (0..n)
                .map(|i| {
                    if next() % 3 == 0 {
                        Some(i as u64)
                    } else {
                        None
                    }
                })
                .collect();
            let out = compact(&cells);
            let expected: Vec<u64> = cells.iter().filter_map(|c| *c).collect();
            let got: Vec<u64> = out
                .iter()
                .take(expected.len())
                .map(|c| c.unwrap())
                .collect();
            assert_eq!(got, expected);
            assert!(out.iter().skip(expected.len()).all(|c| c.is_none()));
        }
    }

    #[test]
    fn invalid_labels_report_a_collision() {
        // Two items both routed to cell 0.
        let cells = vec![Some(1u32), Some(2), None, None];
        let labels = vec![Some(0usize), Some(1), None, None];
        let err = route_with_labels(&cells, &labels).unwrap_err();
        assert_eq!(err.cell, 0);
    }

    #[test]
    fn expand_is_inverse_of_compact() {
        let cells = vec![None, Some(1u32), Some(2), None, None, Some(3), None, None];
        let targets: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(j, _)| j)
            .collect();
        let compacted = compact(&cells);
        let restored = expand(&compacted, &targets);
        assert_eq!(restored, cells);
    }

    #[test]
    fn expand_rejects_non_monotone_targets() {
        let cells = vec![Some(1u32), Some(2), None, None];
        let result = std::panic::catch_unwind(|| expand(&cells, &[2, 1]));
        assert!(result.is_err());
    }

    #[test]
    fn figure1_example_routes_without_collision_and_compacts() {
        let (cells, labels) = figure1_example();
        let routed = route_with_labels(&cells, &labels).unwrap();
        let occupied: Vec<u32> = routed.iter().take(7).map(|c| c.unwrap()).collect();
        assert_eq!(occupied, vec![0, 1, 2, 3, 4, 5, 6]);
        assert!(routed.iter().skip(7).all(|c| c.is_none()));
        // The figure's L0 labels, reading occupied cells left to right.
        let l0: Vec<usize> = labels.iter().filter_map(|l| *l).collect();
        assert_eq!(l0, vec![2, 3, 3, 6, 8, 8, 9]);
    }

    #[test]
    fn render_produces_one_row_per_level() {
        let (cells, labels) = figure1_example();
        let s = render_labels(&cells, &labels);
        let rows: Vec<&str> = s.lines().collect();
        assert_eq!(rows.len(), levels(cells.len()) + 1);
        assert!(rows[0].starts_with("L0"));
    }

    #[test]
    fn try_route_classifies_every_malformed_table_as_err() {
        // Label without an item.
        let cells: Vec<Option<u32>> = vec![None, Some(1), None, None];
        let labels = vec![Some(0usize), Some(1), None, None];
        assert_eq!(
            try_route_with_labels(&cells, &labels),
            Err(RoutingError::MalformedLabels {
                cell: 0,
                reason: "labels and occupancy must agree",
            })
        );
        // Item without a label.
        let cells: Vec<Option<u32>> = vec![Some(1), Some(2), None, None];
        let labels = vec![Some(0usize), None, None, None];
        assert!(matches!(
            try_route_with_labels(&cells, &labels),
            Err(RoutingError::MalformedLabels { cell: 1, .. })
        ));
        // Label running past cell 0.
        let cells: Vec<Option<u32>> = vec![None, Some(1), None, None];
        let labels = vec![None, Some(3usize), None, None];
        assert!(matches!(
            try_route_with_labels(&cells, &labels),
            Err(RoutingError::MalformedLabels {
                cell: 1,
                reason: "distance label may not move an item past cell 0",
            })
        ));
        // Collision is still reported as a collision.
        let cells = vec![Some(1u32), Some(2), None, None];
        let labels = vec![Some(0usize), Some(1), None, None];
        assert_eq!(
            try_route_with_labels(&cells, &labels),
            Err(RoutingError::Collision(RoutingCollision {
                level: 1,
                cell: 0
            }))
        );
        // A valid table still routes.
        let cells = vec![None, Some(7u32), None, Some(8)];
        let labels = compaction_labels(&cells);
        assert_eq!(
            try_route_with_labels(&cells, &labels).unwrap(),
            vec![Some(7), Some(8), None, None]
        );
    }

    #[test]
    fn try_render_rejects_malformed_tables_instead_of_panicking() {
        // The exact shape that used to hit the bare unwrap on the first
        // level walk: occupancy says occupied, labels say dummy.
        let cells: Vec<Option<u32>> = vec![None, Some(1), Some(2), None];
        let labels = vec![None, Some(1usize), None, None]; // cell 2 lies
        let err = try_render_labels(&cells, &labels).unwrap_err();
        assert!(matches!(err, RoutingError::MalformedLabels { cell: 2, .. }));
        // Colliding labels surface as a collision, not a silent merge.
        let cells: Vec<Option<u32>> = vec![Some(1), Some(2), None, None];
        let labels = vec![Some(0usize), Some(1), None, None];
        assert_eq!(
            try_render_labels(&cells, &labels),
            Err(RoutingError::Collision(RoutingCollision {
                level: 1,
                cell: 0
            }))
        );
        // Valid tables render exactly as before.
        let (cells, labels) = figure1_example();
        assert_eq!(
            try_render_labels(&cells, &labels).unwrap(),
            render_labels(&cells, &labels)
        );
    }

    #[test]
    #[should_panic(expected = "labels and occupancy must agree at cell 1")]
    fn infallible_route_keeps_the_legacy_panic_message() {
        let cells: Vec<Option<u32>> = vec![Some(1), Some(2), None, None];
        let labels = vec![Some(0usize), None, None, None];
        let _ = route_with_labels(&cells, &labels);
    }
}
