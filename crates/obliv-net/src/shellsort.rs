//! Goodrich's randomized Shellsort (SODA 2010).
//!
//! A randomized data-oblivious sorting algorithm that runs in `O(n log n)`
//! comparisons and sorts any input with very high probability. The paper
//! under reproduction cites it as the practical randomized alternative to
//! `O(n log² n)` deterministic networks.
//!
//! The algorithm proceeds over geometrically decreasing offsets
//! `n/2, n/4, …, 1`. For each offset the array is viewed as consecutive
//! *regions* of that size, and pairs of regions are *region
//! compare-exchanged*: a few random matchings are drawn between the two
//! regions and each matched pair is compare-exchanged, smaller element to the
//! left region. Per offset the paper runs a shaker pass (adjacent regions
//! left-to-right, then right-to-left), then a brick pass (regions 3 apart,
//! 2 apart, then even-adjacent and odd-adjacent pairs).
//!
//! **Obliviousness by construction:** the full comparator schedule is
//! generated up front by [`comparison_schedule`] from `(n, seed)` alone —
//! the data is only ever touched through compare-exchanges at
//! schedule-determined positions, so for a fixed seed the access pattern is
//! identical on every input of the same length (the fixed-seed determinism
//! test asserts exactly this).

use crate::compare::compare_exchange_by;
use extmem::util::splitmix64;
use std::cmp::Ordering;

/// Number of random matchings per region compare-exchange. The analysis
/// needs only a constant; using a few keeps the failure probability
/// negligible at the small sizes the test-suite exercises.
const MATCHINGS: usize = 4;

/// A tiny deterministic xorshift64* generator seeded via `splitmix64`.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        Rng(splitmix64(seed) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (((self.next() as u128) * (n as u128)) >> 64) as usize
    }
}

/// A Fisher–Yates random permutation of `0..n`.
fn permutation(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        p.swap(i, j);
    }
    p
}

/// Emits the compare-exchange pairs of a region compare-exchange between the
/// regions starting at `a` and `b` (`a < b`), each `len` elements long.
fn region_compare_exchange(
    schedule: &mut Vec<(usize, usize)>,
    rng: &mut Rng,
    a: usize,
    b: usize,
    len: usize,
) {
    for _ in 0..MATCHINGS {
        let perm = permutation(rng, len);
        for (i, &j) in perm.iter().enumerate() {
            schedule.push((a + i, b + j));
        }
    }
}

/// Generates the full comparator schedule for length `n` (a power of two)
/// and the given seed. Every emitted pair `(i, j)` has `i < j` and is
/// compare-exchanged ascending (minimum to `i`).
///
/// # Panics
/// Panics if `n` is not a power of two (the structure of the offset sequence
/// assumes it; callers pad if needed).
pub fn comparison_schedule(n: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(
        n.is_power_of_two() || n <= 1,
        "randomized Shellsort requires a power-of-two length"
    );
    let mut schedule = Vec::new();
    if n <= 1 {
        return schedule;
    }
    let mut rng = Rng::new(seed);
    let mut offset = n / 2;
    while offset >= 1 {
        let regions = n / offset;
        // Shaker pass: adjacent regions left-to-right…
        for i in 0..regions - 1 {
            region_compare_exchange(
                &mut schedule,
                &mut rng,
                i * offset,
                (i + 1) * offset,
                offset,
            );
        }
        // …then right-to-left.
        for i in (0..regions - 1).rev() {
            region_compare_exchange(
                &mut schedule,
                &mut rng,
                i * offset,
                (i + 1) * offset,
                offset,
            );
        }
        // Brick pass: regions 3 apart, 2 apart, then even- and odd-adjacent.
        for i in 0..regions.saturating_sub(3) {
            region_compare_exchange(
                &mut schedule,
                &mut rng,
                i * offset,
                (i + 3) * offset,
                offset,
            );
        }
        for i in 0..regions.saturating_sub(2) {
            region_compare_exchange(
                &mut schedule,
                &mut rng,
                i * offset,
                (i + 2) * offset,
                offset,
            );
        }
        for i in (0..regions - 1).step_by(2) {
            region_compare_exchange(
                &mut schedule,
                &mut rng,
                i * offset,
                (i + 1) * offset,
                offset,
            );
        }
        for i in (1..regions.saturating_sub(1)).step_by(2) {
            region_compare_exchange(
                &mut schedule,
                &mut rng,
                i * offset,
                (i + 1) * offset,
                offset,
            );
        }
        offset /= 2;
    }
    schedule
}

/// Sorts a power-of-two-length slice ascending with randomized Shellsort
/// (with very high probability), deterministically for a fixed `seed`.
pub fn randomized_shellsort<T: Ord>(v: &mut [T], seed: u64) {
    randomized_shellsort_by(v, seed, &|a: &T, b: &T| a.cmp(b));
}

/// Sorts with a custom comparison; see [`randomized_shellsort`].
pub fn randomized_shellsort_by<T, F>(v: &mut [T], seed: u64, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    for (i, j) in comparison_schedule(v.len(), seed) {
        compare_exchange_by(v, i, j, cmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_input(n: usize, salt: u64) -> Vec<u64> {
        (0..n as u64)
            .map(|i| splitmix64(i ^ salt) % 10_000)
            .collect()
    }

    #[test]
    fn sorts_random_inputs() {
        for n in [2usize, 4, 16, 64, 256, 1024] {
            for salt in [1u64, 2, 3] {
                let mut v = pseudo_random_input(n, salt);
                let mut expected = v.clone();
                expected.sort_unstable();
                randomized_shellsort(&mut v, 0xC0FFEE);
                assert_eq!(v, expected, "failed for n={n} salt={salt}");
            }
        }
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        // The comparator schedule — i.e. the entire access pattern — is a
        // function of (n, seed) only, never of the data.
        let a = comparison_schedule(128, 99);
        let b = comparison_schedule(128, 99);
        assert_eq!(a, b);
        // Sorting twice with the same seed gives identical results.
        let mut x = pseudo_random_input(128, 5);
        let mut y = x.clone();
        randomized_shellsort(&mut x, 99);
        randomized_shellsort(&mut y, 99);
        assert_eq!(x, y);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        assert_ne!(comparison_schedule(64, 1), comparison_schedule(64, 2));
    }

    #[test]
    fn schedule_pairs_are_oriented_and_in_range() {
        let n = 64;
        for (i, j) in comparison_schedule(n, 7) {
            assert!(i < j && j < n);
        }
    }

    #[test]
    fn schedule_size_is_quasilinear() {
        // O(n log n): per offset a constant number of region passes, each
        // touching each element MATCHINGS times.
        let n = 256;
        let len = comparison_schedule(n, 3).len();
        let passes_bound = 6 * MATCHINGS; // shaker(2) + brick(4) passes
        assert!(len <= passes_bound * n * 8 /* log2(256) */);
    }

    #[test]
    fn trivial_lengths_are_fine() {
        let mut empty: Vec<u32> = vec![];
        randomized_shellsort(&mut empty, 1);
        let mut one = vec![5u32];
        randomized_shellsort(&mut one, 1);
        assert_eq!(one, vec![5]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_is_rejected() {
        let mut v = vec![3u32, 1, 2];
        randomized_shellsort(&mut v, 0);
    }

    #[test]
    fn handles_adversarial_patterns() {
        for n in [64usize, 256] {
            // Reversed, sorted, organ-pipe, constant.
            let patterns: Vec<Vec<u64>> = vec![
                (0..n as u64).rev().collect(),
                (0..n as u64).collect(),
                (0..n as u64 / 2).chain((0..n as u64 / 2).rev()).collect(),
                vec![7; n],
            ];
            for mut v in patterns {
                let mut expected = v.clone();
                expected.sort_unstable();
                randomized_shellsort(&mut v, 0xDEADBEEF);
                assert_eq!(v, expected);
            }
        }
    }
}
