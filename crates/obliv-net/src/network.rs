//! Explicit comparator networks.
//!
//! A comparator network is a data-independent circuit: a sequence of stages,
//! each a set of disjoint [`Comparator`]s. Representing networks explicitly
//! (rather than only as recursive procedures) buys us three things:
//!
//! * the test-suite can verify sorting networks exhaustively with the
//!   **zero-one principle** (a comparator network sorts every input iff it
//!   sorts every 0/1 input),
//! * the benchmark harness can count comparators and depth, and
//! * networks can be *applied* to any slice, which is how the in-memory
//!   sorters double as circuit simulations (the paper lists "simulating a
//!   circuit" as the canonical data-oblivious access pattern).

use crate::compare::compare_exchange_min_max_by;
use std::cmp::Ordering;

/// A single comparator: wire `lo` receives the minimum, wire `hi` the
/// maximum. When `lo < hi` the comparator is *ascending*; a *descending*
/// comparator (as bitonic networks use in their odd halves) has `lo > hi`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Comparator {
    /// Wire index that receives the minimum.
    pub lo: usize,
    /// Wire index that receives the maximum.
    pub hi: usize,
}

impl Comparator {
    /// Creates an ascending comparator, normalising the orientation to
    /// `lo < hi`.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a comparator needs two distinct wires");
        Comparator {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a directed comparator: `min_wire` receives the minimum and
    /// `max_wire` the maximum, in either index order. Needed to express
    /// networks with descending comparators (e.g. the bitonic sorter)
    /// exactly as their recursive procedures execute them.
    pub fn directed(min_wire: usize, max_wire: usize) -> Self {
        assert_ne!(min_wire, max_wire, "a comparator needs two distinct wires");
        Comparator {
            lo: min_wire,
            hi: max_wire,
        }
    }

    /// Whether the comparator is ascending (`lo < hi`).
    pub fn is_ascending(&self) -> bool {
        self.lo < self.hi
    }
}

/// A comparator network: stages of disjoint comparators over `width` wires.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Network {
    width: usize,
    stages: Vec<Vec<Comparator>>,
}

impl Network {
    /// Creates an empty network over `width` wires.
    pub fn new(width: usize) -> Self {
        Network {
            width,
            stages: Vec::new(),
        }
    }

    /// Number of wires.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of stages (the network's depth).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total number of comparators.
    pub fn size(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }

    /// The stages themselves.
    pub fn stages(&self) -> &[Vec<Comparator>] {
        &self.stages
    }

    /// Appends a stage, checking that its comparators touch disjoint wires in
    /// range.
    pub fn push_stage(&mut self, stage: Vec<Comparator>) {
        let mut used = vec![false; self.width];
        for c in &stage {
            assert!(c.lo.max(c.hi) < self.width, "comparator wire out of range");
            assert!(
                !used[c.lo] && !used[c.hi],
                "comparators within a stage must be disjoint"
            );
            used[c.lo] = true;
            used[c.hi] = true;
        }
        self.stages.push(stage);
    }

    /// Appends a single comparator as its own stage (convenience for
    /// sequentially-generated networks).
    pub fn push_comparator(&mut self, c: Comparator) {
        assert!(c.lo.max(c.hi) < self.width, "comparator wire out of range");
        self.stages.push(vec![c]);
    }

    /// Applies the network to a slice using the natural ordering.
    pub fn apply<T: Ord>(&self, v: &mut [T]) {
        self.apply_by(v, &|a: &T, b: &T| a.cmp(b));
    }

    /// Applies the network to a slice using a custom comparison.
    pub fn apply_by<T, F>(&self, v: &mut [T], cmp: &F)
    where
        F: Fn(&T, &T) -> Ordering,
    {
        assert!(v.len() >= self.width, "slice narrower than the network");
        for stage in &self.stages {
            for c in stage {
                compare_exchange_min_max_by(v, c.lo, c.hi, cmp);
            }
        }
    }

    /// Checks the zero-one principle exhaustively: the network sorts every
    /// 0/1 input of length `width`. Exponential in `width`; intended for
    /// tests with small widths.
    pub fn sorts_all_zero_one_inputs(&self) -> bool {
        assert!(self.width <= 24, "exhaustive 0-1 check limited to width 24");
        for mask in 0u32..(1u32 << self.width) {
            let mut v: Vec<u8> = (0..self.width).map(|i| ((mask >> i) & 1) as u8).collect();
            self.apply(&mut v);
            if v.windows(2).any(|w| w[0] > w[1]) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_wire_sorter() -> Network {
        let mut n = Network::new(3);
        n.push_stage(vec![Comparator::new(0, 1)]);
        n.push_stage(vec![Comparator::new(1, 2)]);
        n.push_stage(vec![Comparator::new(0, 1)]);
        n
    }

    #[test]
    fn comparator_orientation_is_normalised() {
        let c = Comparator::new(5, 2);
        assert_eq!(c.lo, 2);
        assert_eq!(c.hi, 5);
    }

    #[test]
    #[should_panic]
    fn degenerate_comparator_is_rejected() {
        let _ = Comparator::new(3, 3);
    }

    #[test]
    fn three_wire_sorter_passes_zero_one_check() {
        assert!(three_wire_sorter().sorts_all_zero_one_inputs());
    }

    #[test]
    fn incomplete_network_fails_zero_one_check() {
        let mut n = Network::new(3);
        n.push_stage(vec![Comparator::new(0, 1)]);
        assert!(!n.sorts_all_zero_one_inputs());
    }

    #[test]
    fn apply_sorts_arbitrary_values_when_network_is_a_sorter() {
        let n = three_wire_sorter();
        let mut v = vec![30, 10, 20];
        n.apply(&mut v);
        assert_eq!(v, vec![10, 20, 30]);
    }

    #[test]
    fn depth_and_size_are_reported() {
        let n = three_wire_sorter();
        assert_eq!(n.depth(), 3);
        assert_eq!(n.size(), 3);
        assert_eq!(n.width(), 3);
    }

    #[test]
    fn directed_comparator_routes_max_to_lower_wire() {
        let mut n = Network::new(2);
        n.push_comparator(Comparator::directed(1, 0)); // descending
        let mut v = vec![1, 5];
        n.apply(&mut v);
        assert_eq!(v, vec![5, 1]);
        assert!(!Comparator::directed(1, 0).is_ascending());
        assert!(Comparator::new(1, 0).is_ascending());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_comparators_in_one_stage_are_rejected() {
        let mut n = Network::new(3);
        n.push_stage(vec![Comparator::new(0, 1), Comparator::new(1, 2)]);
    }
}
