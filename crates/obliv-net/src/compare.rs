//! Compare-exchange primitives.
//!
//! A *compare-exchange* on positions `(i, j)` reads both cells, writes the
//! smaller to `i` and the larger to `j` (for an ascending comparator). The
//! positions touched never depend on the data — only the (hidden) contents of
//! the two cells do — which is why circuits built from compare-exchange
//! operations are data-oblivious by construction.
//!
//! The helpers here are generic over the comparison so callers can sort by
//! key, by original index (for order-preserving compaction) or with dummies
//! forced to one end.

use std::cmp::Ordering;

/// Compare-exchange `v[i]` and `v[j]` so that afterwards
/// `cmp(&v[i], &v[j]) != Greater` (ascending comparator).
#[inline]
pub fn compare_exchange_by<T, F>(v: &mut [T], i: usize, j: usize, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    debug_assert!(i < j, "comparators must be oriented low-to-high");
    if cmp(&v[i], &v[j]) == Ordering::Greater {
        v.swap(i, j);
    }
}

/// Compare-exchange for `Ord` types.
#[inline]
pub fn compare_exchange<T: Ord>(v: &mut [T], i: usize, j: usize) {
    compare_exchange_by(v, i, j, &|a: &T, b: &T| a.cmp(b));
}

/// Descending compare-exchange (larger element ends up at the lower index).
#[inline]
pub fn compare_exchange_desc_by<T, F>(v: &mut [T], i: usize, j: usize, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    debug_assert!(i < j);
    if cmp(&v[i], &v[j]) == Ordering::Less {
        v.swap(i, j);
    }
}

/// Directional compare-exchange used by bitonic networks.
#[inline]
pub fn compare_exchange_dir_by<T, F>(v: &mut [T], i: usize, j: usize, ascending: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    if ascending {
        compare_exchange_by(v, i, j, cmp);
    } else {
        compare_exchange_desc_by(v, i, j, cmp);
    }
}

/// Compare-exchange that routes the minimum to `min_idx` and the maximum to
/// `max_idx`, with no constraint on which index is lower. This is what a
/// *directed* comparator of a bitonic network performs: descending
/// comparators are simply `min_idx > max_idx`.
#[inline]
pub fn compare_exchange_min_max_by<T, F>(v: &mut [T], min_idx: usize, max_idx: usize, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    debug_assert_ne!(min_idx, max_idx);
    if cmp(&v[min_idx], &v[max_idx]) == Ordering::Greater {
        v.swap(min_idx, max_idx);
    }
}

/// Orders an owned pair for a directional comparator: returns the values in
/// the order they belong at `(lower index, higher index)` — minimum first
/// when `ascending`, maximum first otherwise.
///
/// This is the by-value form of the compare-exchange used by the external
/// sorters, which read cells out of blocks or caches and write both back
/// unconditionally (so the server-visible access pattern never depends on
/// whether the pair swapped).
#[inline]
pub fn exchange_dir_by<T, F>(u: T, v: T, ascending: bool, cmp: &F) -> (T, T)
where
    F: Fn(&T, &T) -> Ordering,
{
    let swap = cmp(&u, &v) == Ordering::Greater;
    let (small, large) = if swap { (v, u) } else { (u, v) };
    if ascending {
        (small, large)
    } else {
        (large, small)
    }
}

/// Returns `true` if `v` is sorted according to `cmp`.
pub fn is_sorted_by<T, F>(v: &[T], cmp: &F) -> bool
where
    F: Fn(&T, &T) -> Ordering,
{
    v.windows(2).all(|w| cmp(&w[0], &w[1]) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_comparator_orders_pair() {
        let mut v = vec![5, 1];
        compare_exchange(&mut v, 0, 1);
        assert_eq!(v, vec![1, 5]);
        compare_exchange(&mut v, 0, 1);
        assert_eq!(v, vec![1, 5], "already ordered pair is untouched");
    }

    #[test]
    fn descending_comparator_orders_pair() {
        let mut v = vec![1, 5];
        compare_exchange_desc_by(&mut v, 0, 1, &|a: &i32, b: &i32| a.cmp(b));
        assert_eq!(v, vec![5, 1]);
    }

    #[test]
    fn directional_comparator_respects_flag() {
        let mut v = vec![3, 7];
        compare_exchange_dir_by(&mut v, 0, 1, false, &|a: &i32, b: &i32| a.cmp(b));
        assert_eq!(v, vec![7, 3]);
        compare_exchange_dir_by(&mut v, 0, 1, true, &|a: &i32, b: &i32| a.cmp(b));
        assert_eq!(v, vec![3, 7]);
    }

    #[test]
    fn custom_comparison_is_honoured() {
        // Sort by absolute value.
        let mut v = vec![-9, 2];
        compare_exchange_by(&mut v, 0, 1, &|a: &i32, b: &i32| a.abs().cmp(&b.abs()));
        assert_eq!(v, vec![2, -9]);
    }

    #[test]
    fn is_sorted_detects_order() {
        let cmp = |a: &i32, b: &i32| a.cmp(b);
        assert!(is_sorted_by(&[1, 2, 2, 3], &cmp));
        assert!(!is_sorted_by(&[1, 3, 2], &cmp));
        assert!(is_sorted_by::<i32, _>(&[], &cmp));
    }
}
