//! Compare-exchange primitives.
//!
//! A *compare-exchange* on positions `(i, j)` reads both cells, writes the
//! smaller to `i` and the larger to `j` (for an ascending comparator). The
//! positions touched never depend on the data — only the (hidden) contents of
//! the two cells do — which is why circuits built from compare-exchange
//! operations are data-oblivious by construction.
//!
//! The helpers here are generic over the comparison so callers can sort by
//! key, by original index (for order-preserving compaction) or with dummies
//! forced to one end.

use std::cmp::Ordering;

/// Compare-exchange `v[i]` and `v[j]` so that afterwards
/// `cmp(&v[i], &v[j]) != Greater` (ascending comparator).
#[inline]
pub fn compare_exchange_by<T, F>(v: &mut [T], i: usize, j: usize, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    debug_assert!(i < j, "comparators must be oriented low-to-high");
    if cmp(&v[i], &v[j]) == Ordering::Greater {
        v.swap(i, j);
    }
}

/// Compare-exchange for `Ord` types.
#[inline]
pub fn compare_exchange<T: Ord>(v: &mut [T], i: usize, j: usize) {
    compare_exchange_by(v, i, j, &|a: &T, b: &T| a.cmp(b));
}

/// Descending compare-exchange (larger element ends up at the lower index).
#[inline]
pub fn compare_exchange_desc_by<T, F>(v: &mut [T], i: usize, j: usize, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    debug_assert!(i < j);
    if cmp(&v[i], &v[j]) == Ordering::Less {
        v.swap(i, j);
    }
}

/// Directional compare-exchange used by bitonic networks.
#[inline]
pub fn compare_exchange_dir_by<T, F>(v: &mut [T], i: usize, j: usize, ascending: bool, cmp: &F)
where
    F: Fn(&T, &T) -> Ordering,
{
    if ascending {
        compare_exchange_by(v, i, j, cmp);
    } else {
        compare_exchange_desc_by(v, i, j, cmp);
    }
}

/// Returns `true` if `v` is sorted according to `cmp`.
pub fn is_sorted_by<T, F>(v: &[T], cmp: &F) -> bool
where
    F: Fn(&T, &T) -> Ordering,
{
    v.windows(2).all(|w| cmp(&w[0], &w[1]) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_comparator_orders_pair() {
        let mut v = vec![5, 1];
        compare_exchange(&mut v, 0, 1);
        assert_eq!(v, vec![1, 5]);
        compare_exchange(&mut v, 0, 1);
        assert_eq!(v, vec![1, 5], "already ordered pair is untouched");
    }

    #[test]
    fn descending_comparator_orders_pair() {
        let mut v = vec![1, 5];
        compare_exchange_desc_by(&mut v, 0, 1, &|a: &i32, b: &i32| a.cmp(b));
        assert_eq!(v, vec![5, 1]);
    }

    #[test]
    fn directional_comparator_respects_flag() {
        let mut v = vec![3, 7];
        compare_exchange_dir_by(&mut v, 0, 1, false, &|a: &i32, b: &i32| a.cmp(b));
        assert_eq!(v, vec![7, 3]);
        compare_exchange_dir_by(&mut v, 0, 1, true, &|a: &i32, b: &i32| a.cmp(b));
        assert_eq!(v, vec![3, 7]);
    }

    #[test]
    fn custom_comparison_is_honoured() {
        // Sort by absolute value.
        let mut v = vec![-9, 2];
        compare_exchange_by(&mut v, 0, 1, &|a: &i32, b: &i32| a.abs().cmp(&b.abs()));
        assert_eq!(v, vec![2, -9]);
    }

    #[test]
    fn is_sorted_detects_order() {
        let cmp = |a: &i32, b: &i32| a.cmp(b);
        assert!(is_sorted_by(&[1, 2, 2, 3], &cmp));
        assert!(!is_sorted_by(&[1, 3, 2], &cmp));
        assert!(is_sorted_by::<i32, _>(&[], &cmp));
    }
}
