//! Obliviousness test-suite for the external sort: the server-visible block
//! access sequence must be *identical* for any two inputs of the same shape.

use extmem::element::Cell;
use extmem::trace::{assert_oblivious, TraceSummary};
use extmem::{AccessTrace, Element, EncryptedStore, ExtMem};
use obliv_net::external_sort::{external_oblivious_sort, SortOrder};

fn trace_of(cells: &[Cell], b: usize, m: usize, order: SortOrder) -> AccessTrace {
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(cells);
    mem.enable_trace();
    external_oblivious_sort(&mut mem, &h, m, order);
    mem.take_trace().expect("trace was enabled")
}

fn keyed(vals: impl IntoIterator<Item = u64>) -> Vec<Cell> {
    vals.into_iter()
        .enumerate()
        .map(|(i, k)| Some(Element::keyed(k, i)))
        .collect()
}

fn pseudo_random(n: usize, salt: u64) -> Vec<Cell> {
    keyed((0..n as u64).map(|i| extmem::util::hash64(i, salt) % 1000))
}

#[test]
fn external_sort_trace_is_input_independent() {
    for (n, b, m) in [
        (256usize, 8usize, 32usize),
        (256, 8, 256),
        (1024, 16, 64),
        (100, 7, 21), // padded, non-power-of-two B
    ] {
        let sorted = keyed(0..n as u64);
        let reversed = keyed((0..n as u64).rev());
        let random = pseudo_random(n, 0xFEED);
        let constant = keyed(std::iter::repeat_n(42, n));

        let t0 = trace_of(&sorted, b, m, SortOrder::Ascending);
        for (label, input) in [
            ("reversed", &reversed),
            ("random", &random),
            ("constant", &constant),
        ] {
            let t = trace_of(input, b, m, SortOrder::Ascending);
            assert_oblivious(
                &t0,
                &t,
                &format!("external sort N={n} B={b} M={m} vs {label}"),
            );
        }
    }
}

#[test]
fn trace_is_also_independent_of_dummy_placement() {
    // Same shape, different occupancy pattern: the adversary must not be
    // able to tell where the dummies are.
    let n = 128;
    let dense: Vec<Cell> = (0..n).map(|i| Some(Element::keyed(i as u64, i))).collect();
    let sparse: Vec<Cell> = (0..n)
        .map(|i| {
            if i % 3 == 0 {
                Some(Element::keyed(1000 - i as u64, i))
            } else {
                None
            }
        })
        .collect();
    let a = trace_of(&dense, 8, 32, SortOrder::Ascending);
    let b = trace_of(&sparse, 8, 32, SortOrder::Ascending);
    assert_oblivious(&a, &b, "dense vs sparse occupancy");
}

#[test]
fn descending_and_ascending_share_the_access_pattern() {
    // The comparator direction is computed inside the private cache; the
    // server-visible sequence is identical either way.
    let input = pseudo_random(256, 3);
    let a = trace_of(&input, 8, 64, SortOrder::Ascending);
    let d = trace_of(&input, 8, 64, SortOrder::Descending);
    assert_oblivious(&a, &d, "ascending vs descending");
}

#[test]
fn encrypted_store_shares_the_exact_sort_trace() {
    // The trait-generic sort over the re-encrypting store: the adversary's
    // view (addresses AND I/O count) is identical to the plaintext run, and
    // the output still comes back sorted after the decrypt round trips.
    for (n, b, m) in [(512usize, 8usize, 64usize), (300, 16, 128)] {
        let cells = pseudo_random(n, 0xE7C);
        let plain = trace_of(&cells, b, m, SortOrder::Ascending);

        let mut enc = EncryptedStore::new(b, 0x50F7);
        let h = enc.alloc_array_from_cells(&cells);
        enc.enable_trace();
        let report = external_oblivious_sort(&mut enc, &h, m, SortOrder::Ascending);
        let etrace = enc.take_trace().expect("trace was enabled");
        assert_oblivious(&plain, &etrace, "plaintext vs encrypted sort");
        assert_eq!(etrace.len() as u64, report.io.total());

        let got: Vec<Element> = enc.snapshot_cells(&h).into_iter().flatten().collect();
        let mut expected: Vec<Element> = cells.iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "N={n} B={b} M={m}");
    }
}

#[test]
fn trace_length_matches_reported_io() {
    let input = pseudo_random(512, 9);
    let mut mem = ExtMem::new(16);
    let h = mem.alloc_array_from_cells(&input);
    mem.enable_trace();
    let report = external_oblivious_sort(&mut mem, &h, 64, SortOrder::Ascending);
    let trace = mem.take_trace().unwrap();
    let summary = TraceSummary::of(&trace);
    assert_eq!(summary.len as u64, report.io.total());
    assert_eq!(summary.reads as u64, report.io.reads);
    assert_eq!(summary.writes as u64, report.io.writes);
}

#[test]
fn external_sort_matches_std_sort_on_random_inputs() {
    // Property test: across shapes and seeds, the oblivious sort agrees
    // with the standard library sort.
    for salt in 0..8u64 {
        for (n, b, m) in [
            (64usize, 4usize, 16usize),
            (129, 8, 32),
            (500, 16, 64),
            (1024, 32, 256),
        ] {
            let input: Vec<Element> = (0..n)
                .map(|i| Element::keyed(extmem::util::hash64(i as u64, salt) % 64, i))
                .collect();
            let mut mem = ExtMem::new(b);
            let h = mem.alloc_array_from_elements(&input);
            external_oblivious_sort(&mut mem, &h, m, SortOrder::Ascending);
            let mut expected = input;
            expected.sort_unstable();
            assert_eq!(
                mem.snapshot_elements(&h),
                expected,
                "mismatch at n={n} b={b} m={m} salt={salt}"
            );
        }
    }
}

#[test]
fn shellsort_schedule_is_oblivious_for_fixed_seed() {
    // The randomized Shellsort's comparator schedule depends only on
    // (length, seed) — the fixed-coins form of the paper's definition of
    // data-obliviousness for randomized algorithms.
    let s1 = obliv_net::shellsort::comparison_schedule(256, 77);
    let s2 = obliv_net::shellsort::comparison_schedule(256, 77);
    assert_eq!(s1, s2);
}
