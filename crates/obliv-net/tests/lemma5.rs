//! Exhaustive verification of the paper's Lemma 5: for *every* occupancy
//! pattern (all bitmasks up to `n = 12`), the stable-compaction distance
//! labels route through the butterfly network without a collision — and
//! labellings violating the lemma's hypotheses do collide, so the test would
//! notice if the routing stopped checking.

use obliv_net::butterfly::{
    compact, compaction_labels, expand, levels, route_with_labels, RoutingCollision,
};

/// Builds the cell array of an occupancy bitmask: bit `j` set ⇒ cell `j`
/// occupied (holding its rank, so order preservation is checkable).
fn cells_of_mask(n: usize, mask: u32) -> Vec<Option<u32>> {
    let mut rank = 0u32;
    (0..n)
        .map(|j| {
            if mask >> j & 1 == 1 {
                rank += 1;
                Some(rank - 1)
            } else {
                None
            }
        })
        .collect()
}

#[test]
fn all_masks_up_to_n12_route_without_collision() {
    for n in 1..=12usize {
        for mask in 0..1u32 << n {
            let cells = cells_of_mask(n, mask);
            let labels = compaction_labels(&cells);
            let routed = route_with_labels(&cells, &labels).unwrap_or_else(|e| {
                panic!("collision for n={n} mask={mask:#b}: {e}");
            });
            let k = mask.count_ones() as usize;
            // Tight: exactly the first k cells occupied.
            assert!(
                routed.iter().take(k).all(|c| c.is_some()),
                "not tight for n={n} mask={mask:#b}"
            );
            assert!(
                routed.iter().skip(k).all(|c| c.is_none()),
                "tail not empty for n={n} mask={mask:#b}"
            );
            // Stable / order-preserving: ranks appear in order.
            let prefix: Vec<u32> = routed.iter().take(k).map(|c| c.unwrap()).collect();
            assert_eq!(
                prefix,
                (0..k as u32).collect::<Vec<_>>(),
                "order broken for n={n} mask={mask:#b}"
            );
        }
    }
}

#[test]
fn all_masks_up_to_n10_expand_back() {
    // The reverse direction, exhaustively: compacting then expanding to the
    // original occupied positions is the identity.
    for n in 1..=10usize {
        for mask in 0..1u32 << n {
            let cells = cells_of_mask(n, mask);
            let targets: Vec<usize> = (0..n).filter(|j| mask >> j & 1 == 1).collect();
            let restored = expand(&compact(&cells), &targets);
            assert_eq!(
                restored, cells,
                "round trip broken for n={n} mask={mask:#b}"
            );
        }
    }
}

#[test]
fn crafted_invalid_labels_do_collide() {
    // Two items routed to the same destination: the degenerate violation.
    let cells = vec![Some(0u32), Some(1), None, None];
    let labels = vec![Some(0usize), Some(1), None, None];
    assert_eq!(
        route_with_labels(&cells, &labels),
        Err(RoutingCollision { level: 1, cell: 0 })
    );

    // Subtler: destinations strictly increasing (0 < 2) but the labels
    // decrease (2 > 1), violating Lemma 5's monotone-label hypothesis — the
    // items collide at cell 2 of level L_1 even though their destinations
    // are distinct. This is the counterexample showing why expansion must
    // run the network backwards in time rather than mirrored.
    let cells = vec![None, None, Some(0u32), Some(1)];
    let labels = vec![None, None, Some(2usize), Some(1)];
    let err = route_with_labels(&cells, &labels).unwrap_err();
    assert_eq!(err, RoutingCollision { level: 1, cell: 2 });
}

#[test]
fn level_count_matches_network_depth() {
    // The exhaustive sweep above exercises n both at and off powers of two;
    // pin the depth formula the external executor relies on.
    for (n, lv) in [(1usize, 0usize), (2, 1), (3, 2), (4, 2), (12, 4), (16, 4)] {
        assert_eq!(levels(n), lv, "levels({n})");
    }
}
