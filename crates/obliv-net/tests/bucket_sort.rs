//! Integration battery for the randomized bucket oblivious sort:
//!
//! * differential oracle — the Lemma 2 deterministic sort is ground truth
//!   across ≥ 20 datasets (shapes × salts × occupancy × order);
//! * the 0-1 principle at the MergeSplit level — every 0/1 tag pattern
//!   routes exactly;
//! * seeded determinism — the same `(shape, seed, data)` yields a
//!   byte-identical server-visible trace across two fresh runs;
//! * backend parity — plaintext [`ExtMem`] and [`EncryptedStore`] runs share
//!   one byte-identical trace;
//! * the full untrusted stack — Auth ∘ Faulty ∘ Encrypted with transient
//!   faults retries to the exact sorted result, and a corrupting server
//!   surfaces as a typed error, never a silently wrong answer.

use extmem::element::Cell;
use extmem::util::hash64;
use extmem::{
    AccessTrace, AuthenticatedStore, BlockStore, Element, EncryptedStore, ExtMem, FaultSpec,
    FaultyStore, RetryPolicy, StoreError,
};
use obliv_net::bucket_sort::{
    bucket_oblivious_sort, merge_split, try_bucket_oblivious_sort, BucketSortConfig,
    BucketSortError,
};
use obliv_net::external_sort::{external_oblivious_sort, SortOrder};

fn bucket_run(
    cells: &[Cell],
    b: usize,
    m: usize,
    order: SortOrder,
    seed: u64,
) -> (Vec<Cell>, AccessTrace) {
    let mut mem = ExtMem::with_trace(b);
    let h = mem.alloc_array_from_cells(cells);
    bucket_oblivious_sort(&mut mem, &h, m, order, &BucketSortConfig::seeded(seed))
        .expect("bucket sort failed");
    let trace = mem.take_trace().expect("trace was enabled");
    (mem.snapshot_cells(&h), trace)
}

fn oracle_run(cells: &[Cell], b: usize, m: usize, order: SortOrder) -> Vec<Cell> {
    let mut mem = ExtMem::new(b);
    let h = mem.alloc_array_from_cells(cells);
    external_oblivious_sort(&mut mem, &h, m, order);
    mem.snapshot_cells(&h)
}

/// Dataset generator: occupancy pattern and key distribution vary with the
/// salt, so the grid covers dense, sparse, duplicate-heavy, pre-sorted and
/// reversed inputs. Payloads stay distinct, so the full `Element` order is
/// strict and the unstable bucket sort must agree with the oracle byte for
/// byte.
fn dataset(n: usize, salt: u64) -> Vec<Cell> {
    (0..n)
        .map(|i| {
            let occupied = match salt % 4 {
                0 => true,                                      // dense
                1 => !hash64(i as u64, salt).is_multiple_of(3), // sparse
                2 => i % 2 == 0,                                // alternating
                _ => i < n / 3,                                 // occupied prefix
            };
            occupied.then(|| {
                let key = match salt % 3 {
                    0 => hash64(i as u64, salt),      // random, distinct whp
                    1 => hash64(i as u64, salt) % 13, // duplicate-heavy
                    _ => i as u64,                    // pre-sorted
                };
                Element::keyed(key, i)
            })
        })
        .collect()
}

#[test]
fn bucket_agrees_with_the_lemma2_oracle_across_twenty_datasets() {
    // Caches of at least 512 elements keep the auto-picked bucket capacity
    // at Z ≥ 128, where the per-bucket overflow probability (≤ exp(−Z/6))
    // is negligible; tiny-cache geometries are covered by the unit tests,
    // where overflow is a legitimate typed outcome.
    let shapes = [
        (1024usize, 8usize, 512usize),
        (2048, 16, 512),
        (4000, 16, 1024),
        (4096, 32, 1024),
    ];
    let mut cases = 0;
    for (n, b, m) in shapes {
        for salt in 0..5u64 {
            let cells = dataset(n, salt.wrapping_mul(0x9E37).wrapping_add(salt));
            let order = if salt % 2 == 0 {
                SortOrder::Ascending
            } else {
                SortOrder::Descending
            };
            let (got, _) = bucket_run(&cells, b, m, order, 0xD1F5 ^ salt);
            let want = oracle_run(&cells, b, m, order);
            assert_eq!(got, want, "N={n} B={b} M={m} salt={salt} {order:?}");
            cases += 1;
        }
    }
    assert!(cases >= 20, "the battery must cover at least 20 datasets");
}

#[test]
fn merge_split_satisfies_the_zero_one_principle() {
    // Every 0/1 pattern of 8 tagged items across two input buckets: the
    // bit-clear items land on side 0 and the bit-set items on side 1, with
    // nothing lost and nothing invented — the 0-1 principle instance that
    // makes the whole butterfly a permutation network.
    for pattern in 0u32..256 {
        let tagged: Vec<(u64, u32)> = (0..8).map(|i| (i as u64, (pattern >> i) & 1)).collect();
        let (a, b) = tagged.split_at(4);
        let (zeros, ones) =
            merge_split(a.to_vec(), b.to_vec(), 0, 8).expect("capacity 8 cannot overflow");
        assert!(
            zeros.iter().all(|&(_, t)| t & 1 == 0),
            "pattern {pattern:#b}"
        );
        assert!(
            ones.iter().all(|&(_, t)| t & 1 == 1),
            "pattern {pattern:#b}"
        );
        let mut all: Vec<u64> = zeros.iter().chain(&ones).map(|&(v, _)| v).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).map(|i| i as u64).collect::<Vec<_>>());
        assert_eq!(zeros.len() as u32, 8 - pattern.count_ones());
    }
}

#[test]
fn same_seed_same_data_is_byte_identical_across_runs() {
    let cells = dataset(1024, 7);
    let (out_a, trace_a) = bucket_run(&cells, 16, 128, SortOrder::Ascending, 99);
    let (out_b, trace_b) = bucket_run(&cells, 16, 128, SortOrder::Ascending, 99);
    assert!(!trace_a.is_empty());
    assert_eq!(out_a, out_b);
    assert_eq!(
        trace_a, trace_b,
        "the same (shape, seed, data) must replay a byte-identical trace"
    );
}

#[test]
fn plaintext_and_encrypted_traces_are_byte_identical() {
    for (n, b, m, seed) in [(512usize, 8usize, 64usize, 3u64), (2048, 16, 256, 4)] {
        let cells = dataset(n, 2); // dense lane of the generator
        let (plain_out, plain_trace) = bucket_run(&cells, b, m, SortOrder::Ascending, seed);

        let mut enc = EncryptedStore::new(b, 0xC1F4);
        let h = enc.alloc_array_from_cells(&cells);
        enc.enable_trace();
        let report = bucket_oblivious_sort(
            &mut enc,
            &h,
            m,
            SortOrder::Ascending,
            &BucketSortConfig::seeded(seed),
        )
        .expect("encrypted bucket sort failed");
        let etrace = enc.take_trace().expect("trace was enabled");
        assert_eq!(enc.snapshot_cells(&h), plain_out, "N={n}");
        assert_eq!(etrace.len() as u64, report.io.total());
        assert_eq!(
            plain_trace, etrace,
            "re-encryption must not perturb the access pattern at N={n}"
        );
    }
}

type Stack = AuthenticatedStore<FaultyStore<EncryptedStore>>;

fn stack(seed: u64) -> Stack {
    let enc = EncryptedStore::new(8, 0xA11CE ^ seed);
    let faulty = FaultyStore::new(enc, seed, FaultSpec::none());
    AuthenticatedStore::new(faulty, 0x4D41_4353 ^ seed)
}

fn populate(auth: &mut Stack, cells: &[Cell]) -> extmem::ArrayHandle {
    let h = BlockStore::alloc_array(auth, cells.len());
    auth.try_store_span(&h, 0, cells).unwrap();
    auth.flush_macs().unwrap();
    h
}

#[test]
fn transient_faults_on_the_full_stack_retry_to_the_sorted_result() {
    extmem::install_quiet_abort_hook();
    let cells: Vec<Cell> = (0..1024)
        .map(|i| Some(Element::keyed(hash64(i as u64, 0xFA) >> 16, i as usize)))
        .collect();
    let mut auth = stack(11);
    let h = populate(&mut auth, &cells);
    auth.inner_mut().set_spec(FaultSpec {
        transient_read_ppm: 30_000,
        corrupt_read_ppm: 0,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    });
    let (report, retry) = try_bucket_oblivious_sort(
        &mut auth,
        &h,
        128,
        SortOrder::Ascending,
        &BucketSortConfig::seeded(5),
        RetryPolicy::default(),
    )
    .expect("transients must be ridden out");
    assert!(retry.retries > 0, "3% transients must cause retries");
    assert!(report.io.total() > 0);

    auth.inner_mut().set_spec(FaultSpec::none());
    let got = auth.try_load_span(&h, 0, 1024).unwrap();
    let mut want: Vec<Element> = cells.iter().flatten().copied().collect();
    want.sort_unstable();
    let got: Vec<Element> = got.into_iter().flatten().collect();
    assert_eq!(got, want);
}

#[test]
fn a_corrupting_server_surfaces_as_a_typed_error() {
    extmem::install_quiet_abort_hook();
    let cells: Vec<Cell> = (0..1024)
        .map(|i| Some(Element::keyed(hash64(i as u64, 0xC0), i as usize)))
        .collect();
    let mut auth = stack(13);
    let h = populate(&mut auth, &cells);
    auth.inner_mut().set_spec(FaultSpec {
        transient_read_ppm: 0,
        corrupt_read_ppm: 1_000_000,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    });
    let err = try_bucket_oblivious_sort(
        &mut auth,
        &h,
        128,
        SortOrder::Ascending,
        &BucketSortConfig::seeded(5),
        RetryPolicy::default(),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            BucketSortError::Store(StoreError::Corrupted { .. } | StoreError::Stale { .. })
        ),
        "got {err:?}"
    );
}
