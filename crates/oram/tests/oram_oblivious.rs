//! ORAM obliviousness trace battery.
//!
//! The adversary's whole view of a hierarchical ORAM is the block-access
//! trace. These tests pin the two halves of the obliviousness claim:
//!
//! 1. **Shape determinism** — with the bitonic rebuild engine the trace is a
//!    function of the shape and the request *count* alone, up to which
//!    bucket each level probe lands in. [`Oram::canonicalize_trace`] folds
//!    the probe's bucket index away (it is uniformly random under the epoch
//!    salt and independent of the data); after that, two dozen deliberately
//!    different same-length request sequences — hit-heavy, miss-heavy,
//!    all-read, all-write, repeated, distinct — must produce byte-identical
//!    traces.
//! 2. **Backend parity** — the raw (uncanonicalized) trace is identical
//!    across `ExtMem`, `FileStore` and `EncryptedStore<FileStore>` and
//!    across re-runs: nothing about a backend, a file, or the encryption
//!    layer perturbs the schedule.

use extmem::util::hash64;
use extmem::{AccessTrace, EncryptedStore, ExtMem, FileStore};
use odo_core::OblivSorter;
use oram::{Oram, OramConfig};

const N: u64 = 64;
const B: usize = 8;
const SEQ_LEN: u64 = 256;

fn cfg(sorter: OblivSorter) -> OramConfig {
    OramConfig::new(8, 64, 0x0B5E55ED).with_sorter(sorter)
}

/// One request: an address and `Some(value)` for a write, `None` for a read.
type Request = (u64, Option<u64>);

/// 24 same-length sequences stressing every hit/miss, read/write,
/// repeated/distinct axis the issue names.
fn sequences() -> Vec<Vec<Request>> {
    let mut seqs: Vec<Vec<Request>> = Vec::new();
    for s in 0..24u64 {
        let seq = (0..SEQ_LEN)
            .map(|k| match s % 6 {
                // Distinct-address read sweep: all misses at first.
                0 => (k % N, None),
                // Single hot address, all reads: pure hits after the first.
                1 => (s % N, None),
                // Distinct-address write sweep.
                2 => ((k * 7 + s) % N, Some(k + 1)),
                // Single hot address, all writes.
                3 => ((s + 11) % N, Some(k ^ s)),
                // Hash-mixed reads and writes.
                4 => {
                    let a = hash64(k, s) % N;
                    if k % 3 == 0 {
                        (a, Some(hash64(k, !s) >> 1))
                    } else {
                        (a, None)
                    }
                }
                // Read-then-write alternation over a tiny working set.
                _ => ((k / 2) % 4, if k % 2 == 0 { None } else { Some(k) }),
            })
            .collect();
        seqs.push(seq);
    }
    seqs
}

fn run_extmem(sorter: OblivSorter, seq: &[Request]) -> (Oram, AccessTrace) {
    let mut store = ExtMem::new(B);
    let mut oram = Oram::new(&mut store, N, &cfg(sorter));
    store.enable_trace();
    for &(addr, write) in seq {
        match write {
            Some(v) => oram.write(&mut store, addr, v),
            None => {
                oram.read(&mut store, addr);
            }
        }
    }
    let trace = store.take_trace().expect("trace was enabled");
    (oram, trace)
}

#[test]
fn canonicalized_traces_are_identical_across_request_sequences() {
    let seqs = sequences();
    let mut reference: Option<AccessTrace> = None;
    for (i, seq) in seqs.iter().enumerate() {
        let (oram, raw) = run_extmem(OblivSorter::Bitonic, seq);
        let canonical = oram.canonicalize_trace(&raw);
        match &reference {
            None => reference = Some(canonical),
            Some(r) => assert_eq!(
                r, &canonical,
                "sequence {i} produced a distinguishable canonical trace"
            ),
        }
    }
}

#[test]
fn reads_and_writes_of_the_same_addresses_are_indistinguishable() {
    // The sharpest pair: identical address pattern, one all-read, one
    // all-write. Identical even before canonicalizing the probes, because
    // the probes land in the same buckets when the addresses agree.
    let addrs: Vec<u64> = (0..SEQ_LEN).map(|k| hash64(k, 42) % N).collect();
    let reads: Vec<Request> = addrs.iter().map(|&a| (a, None)).collect();
    let writes: Vec<Request> = addrs.iter().map(|&a| (a, Some(a * 3 + 1))).collect();
    let (_, read_trace) = run_extmem(OblivSorter::Bitonic, &reads);
    let (_, write_trace) = run_extmem(OblivSorter::Bitonic, &writes);
    assert_eq!(
        read_trace, write_trace,
        "read and write traces must be byte-identical"
    );
}

#[test]
fn bucket_engine_traces_have_data_independent_length() {
    // The randomized bucket sort's trace is a function of (shape, seed,
    // data) — the *sequence* of addresses varies with the bin assignment,
    // but its length may not: every pass touches a fixed block count.
    let seqs = sequences();
    let mut len: Option<usize> = None;
    for (i, seq) in seqs.iter().enumerate() {
        let (_, raw) = run_extmem(OblivSorter::bucket(0xB17E), seq);
        match len {
            None => len = Some(raw.len()),
            Some(l) => assert_eq!(l, raw.len(), "sequence {i} changed the trace length"),
        }
    }
}

#[test]
fn raw_traces_agree_across_backends_and_reruns() {
    let seq: Vec<Request> = (0..SEQ_LEN)
        .map(|k| {
            let a = hash64(k, 7) % N;
            if k % 2 == 0 {
                (a, Some(k + 100))
            } else {
                (a, None)
            }
        })
        .collect();

    for sorter in [OblivSorter::Bitonic, OblivSorter::bucket(0xFACADE)] {
        let (_, mem_trace) = run_extmem(sorter, &seq);
        let (_, mem_trace_again) = run_extmem(sorter, &seq);
        assert_eq!(mem_trace, mem_trace_again, "re-runs must replay the trace");

        // FileStore.
        let mut file = FileStore::temp(B).expect("temp store");
        let mut oram = Oram::new(&mut file, N, &cfg(sorter));
        file.enable_trace();
        let mut values_file = Vec::new();
        for &(addr, write) in &seq {
            match write {
                Some(v) => oram.write(&mut file, addr, v),
                None => values_file.push(oram.read(&mut file, addr)),
            }
        }
        let file_trace = file.take_trace().expect("trace was enabled");
        assert_eq!(mem_trace, file_trace, "FileStore must replay the trace");

        // EncryptedStore over FileStore: same schedule, ciphertext blocks.
        let inner = FileStore::temp(B).expect("temp store");
        let mut enc = EncryptedStore::with_backing(inner, 0x5EC2E7);
        let mut oram = Oram::new(&mut enc, N, &cfg(sorter));
        enc.enable_trace();
        let mut values_enc = Vec::new();
        for &(addr, write) in &seq {
            match write {
                Some(v) => oram.write(&mut enc, addr, v),
                None => values_enc.push(oram.read(&mut enc, addr)),
            }
        }
        let enc_trace = enc.take_trace().expect("trace was enabled");
        assert_eq!(
            mem_trace, enc_trace,
            "the encryption layer must not perturb the schedule"
        );

        // Parity of answers, not just of traces.
        assert_eq!(values_file, values_enc);
    }
}

#[test]
fn results_agree_across_backends() {
    // Differential correctness across every backend the trace tests use,
    // with the default (bucket) engine and a final full read-out.
    let seq: Vec<Request> = (0..SEQ_LEN)
        .map(|k| {
            let a = hash64(k, 99) % N;
            if k % 3 == 0 {
                (a, Some(hash64(k, 1) >> 1))
            } else {
                (a, None)
            }
        })
        .collect();
    let run = |store: &mut dyn RunBackend| -> Vec<u64> { store.run(&seq) };

    let mut mem = MemBackend(ExtMem::new(B));
    let mut file = FileBackend(FileStore::temp(B).expect("temp store"));
    let mut enc = EncBackend(EncryptedStore::with_backing(
        FileStore::temp(B).expect("temp store"),
        0xC0DEC,
    ));
    let a = run(&mut mem);
    let b = run(&mut file);
    let c = run(&mut enc);
    assert_eq!(a, b);
    assert_eq!(b, c);
}

/// Object-safe shim so the differential test can iterate heterogeneous
/// backends without duplicating the driver loop.
trait RunBackend {
    fn run(&mut self, seq: &[(u64, Option<u64>)]) -> Vec<u64>;
}

macro_rules! impl_run_backend {
    ($name:ident, $inner:ty) => {
        struct $name($inner);
        impl RunBackend for $name {
            fn run(&mut self, seq: &[(u64, Option<u64>)]) -> Vec<u64> {
                let store = &mut self.0;
                let mut oram = Oram::new(store, N, &cfg(OblivSorter::bucket(0xD1FF)));
                let mut out = Vec::new();
                for &(addr, write) in seq {
                    match write {
                        Some(v) => oram.write(store, addr, v),
                        None => out.push(oram.read(store, addr)),
                    }
                }
                for a in 0..N {
                    out.push(oram.read(store, a));
                }
                out
            }
        }
    };
}

impl_run_backend!(MemBackend, ExtMem);
impl_run_backend!(FileBackend, FileStore);
impl_run_backend!(EncBackend, EncryptedStore<FileStore>);
