//! ORAM fault battery over the full untrusted-server stack:
//! `Auth ∘ Faulty ∘ Encrypted ∘ FileStore`.
//!
//! Safety claim, same as the algorithm-level batteries in `odo-core`:
//! tampering (corrupted blocks, rollbacks, dropped writes) surfaces as a
//! typed tampering error — never a silently wrong value — while transient
//! faults are retried to the *exact* result a fault-free run produces. On
//! top of that, the ORAM adds client state that can be left inconsistent by
//! an aborted access, so a fatal error poisons the client: every later
//! `try_*` call reports [`OdoError::InvalidState`] instead of serving from
//! a hierarchy that no longer matches the server.

use std::collections::HashMap;

use extmem::util::hash64;
use extmem::{
    install_quiet_abort_hook, AuthenticatedStore, EncryptedStore, FaultSpec, FaultyStore,
    FileStore, RetryPolicy,
};
use odo_core::OdoError;
use oram::{Oram, OramConfig};

type Stack = AuthenticatedStore<FaultyStore<EncryptedStore<FileStore>>>;

const N: u64 = 64;
const B: usize = 8;
const WARMUP: u64 = 96;
const FAULTY_ACCESSES: u64 = 160;

fn stack(seed: u64) -> Stack {
    let file = FileStore::temp(B).expect("tempdir-backed block file");
    let enc = EncryptedStore::with_backing(file, 0xA11CE ^ seed);
    let faulty = FaultyStore::new(enc, seed, FaultSpec::none());
    AuthenticatedStore::new(faulty, 0x4D41_4353 ^ seed)
}

#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Detected,
    Correct,
    SilentWrong,
}

/// Builds an ORAM on a fresh stack, warms it up fault-free, then runs a
/// mixed request load under `spec`, checking every answer against a
/// client-side mirror.
fn run_case(seed: u64, spec: FaultSpec) -> (u64, u64, Outcome) {
    install_quiet_abort_hook();
    let mut auth = stack(seed);
    let mut oram = Oram::new(&mut auth, N, &OramConfig::new(8, 64, seed));
    let mut mirror: HashMap<u64, u64> = HashMap::new();

    for k in 0..WARMUP {
        let addr = hash64(k, seed) % N;
        let v = hash64(k, !seed) >> 1;
        oram.write(&mut auth, addr, v);
        mirror.insert(addr, v);
    }

    auth.inner_mut().set_spec(spec);
    let mut retries = 0u64;
    let mut outcome = Outcome::Correct;
    for k in 0..FAULTY_ACCESSES {
        let addr = hash64(k, seed ^ 0xF4417) % N;
        let result = if k % 3 == 0 {
            let v = hash64(k, seed ^ 0xBEEF) >> 1;
            oram.try_write(&mut auth, addr, v, RetryPolicy::default())
                .map(|stats| {
                    mirror.insert(addr, v);
                    (None, stats)
                })
        } else {
            oram.try_read(&mut auth, addr, RetryPolicy::default())
                .map(|(value, stats)| (Some(value), stats))
        };
        match result {
            Ok((value, stats)) => {
                retries += stats.retries;
                if let Some(got) = value {
                    let want = mirror.get(&addr).copied().unwrap_or(0);
                    if got != want {
                        outcome = Outcome::SilentWrong;
                        break;
                    }
                }
            }
            Err(e) => {
                assert!(
                    e.is_tampering(),
                    "seed {seed}: fatal error must classify as tampering, got {e:?}"
                );
                // A fatal abort poisons the client: the hierarchy may be
                // mid-rebuild, so serving more requests could be wrong.
                let next = oram.try_read(&mut auth, 0, RetryPolicy::default());
                assert!(
                    matches!(next, Err(OdoError::InvalidState { .. })),
                    "seed {seed}: post-abort access must refuse, got {next:?}"
                );
                outcome = Outcome::Detected;
                break;
            }
        }
    }
    auth.inner_mut().set_spec(FaultSpec::none());
    let tampering = auth.inner().fault_stats().tampering();
    (tampering, retries, outcome)
}

const TAMPER_LANES: [(&str, FaultSpec); 4] = [
    (
        "corrupt",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 1500,
            stale_read_ppm: 0,
            drop_write_ppm: 0,
        },
    ),
    (
        "stale",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 0,
            stale_read_ppm: 6000,
            drop_write_ppm: 0,
        },
    ),
    (
        "drop",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 0,
            stale_read_ppm: 0,
            drop_write_ppm: 1500,
        },
    ),
    (
        "mixed",
        FaultSpec {
            transient_read_ppm: 0,
            corrupt_read_ppm: 700,
            stale_read_ppm: 700,
            drop_write_ppm: 700,
        },
    ),
];

#[test]
fn tampered_oram_accesses_are_detected_never_silently_wrong() {
    let mut tampered_runs = 0u64;
    let mut detected_runs = 0u64;
    for (lane, spec) in TAMPER_LANES {
        for seed in 1..=5u64 {
            let (tampering, _, outcome) = run_case(seed, spec);
            assert_ne!(
                outcome,
                Outcome::SilentWrong,
                "{lane} seed {seed}: SILENT WRONG ANSWER with {tampering} \
                 tampering faults injected"
            );
            if tampering > 0 {
                tampered_runs += 1;
                if outcome == Outcome::Detected {
                    detected_runs += 1;
                }
            }
        }
    }
    assert!(
        tampered_runs >= 10,
        "the lane rates are meant to fire in most runs, got {tampered_runs}/20"
    );
    assert!(
        detected_runs > 0,
        "detection never fired ({detected_runs}/{tampered_runs})"
    );
}

#[test]
fn transient_faults_retry_to_the_exact_mirror_results() {
    let spec = FaultSpec {
        transient_read_ppm: 20_000,
        corrupt_read_ppm: 0,
        stale_read_ppm: 0,
        drop_write_ppm: 0,
    };
    let mut total_retries = 0u64;
    for seed in 1..=3u64 {
        let (tampering, retries, outcome) = run_case(seed, spec);
        assert_eq!(tampering, 0, "transients are not tampering");
        assert_eq!(
            outcome,
            Outcome::Correct,
            "seed {seed}: every answer must match the mirror exactly"
        );
        total_retries += retries;
    }
    assert!(
        total_retries > 0,
        "the transient rate is meant to fire and be retried"
    );
}

#[test]
fn a_fault_free_run_over_the_stack_matches_the_mirror() {
    let (tampering, retries, outcome) = run_case(77, FaultSpec::none());
    assert_eq!(tampering, 0);
    assert_eq!(retries, 0);
    assert_eq!(outcome, Outcome::Correct);
}
