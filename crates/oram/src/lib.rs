//! # odo-oram — hierarchical ORAM over the oblivious primitive stack
//!
//! A client-side Oblivious RAM simulation in the hierarchical style of
//! Goldreich–Ostrovsky as externalized by Goodrich–Mitzenmacher: the server
//! holds a geometric hierarchy of bucket hash tables, the client holds
//! `O(period)` words, and every `read`/`write` touches one bucket per
//! occupied level — a *dummy* bucket once the item has been found, so hits
//! and misses are indistinguishable. Levels are periodically reshuffled
//! into the next level down by a rebuild that is nothing but the
//! workspace's existing oblivious machinery: an [`OblivSorter`] pass, a
//! filler-padding trick, a second sorter pass under a fresh epoch salt, and
//! the paper's Section 3 order-preserving compaction. The rebuild *is* a
//! sort+compact pipeline; this crate adds no low-level oblivious machinery
//! of its own.
//!
//! ## Obliviousness
//!
//! The server-visible trace of an access is one block probe per occupied
//! level, at `bucket_of(hash64(key, salt_j))` where `key` is the requested
//! address until the item is found and a per-access nonce afterwards. Fresh
//! salts are drawn at every rebuild and a found item is immediately cached
//! client-side, so no level is ever probed twice for the same key within
//! one of its epochs — every probe lands on an independently uniform
//! bucket. Rebuild passes read and write every block of their scratch
//! region unconditionally; survivor counts and per-bucket loads never
//! modulate the trace (overflowing reals are swallowed into the client
//! stash, not spilled to the server). With the deterministic
//! [`OblivSorter::Bitonic`] engine the whole trace is a function of the
//! shape `(n, B, M, period)` and the access *count* alone, up to which
//! bucket each probe lands in — the trace battery in
//! `tests/oram_oblivious.rs` checks exactly this by canonicalizing probe
//! addresses per level.
//!
//! ## Costs
//!
//! With `L = O(log n)` levels, an access costs `L` probes plus an amortized
//! rebuild share: level `j` is rebuilt every `2^(j+1)` flushes at
//! `O(sort(cap_j))` I/Os, which telescopes to `O(log² n)` amortized block
//! I/Os per access with the bitonic engine (`bench oram` gates this
//! analytically). Values are full `u64` words client-side, but must fit in
//! 63 bits to run over [`EncryptedStore`](extmem::EncryptedStore) — the
//! same contract as every other algorithm in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Ordering;

use extmem::element::cell_cmp_none_last;
use extmem::util::{bucket_of, hash64, splitmix64};
use extmem::{
    run_fallible, AccessEvent, AccessTrace, ArrayHandle, Block, BlockStore, Cell, Element,
    RetryPolicy, RetryStats,
};
use odo_core::obliv_net::hint_block_range;
use odo_core::{compact_order_preserving, OblivSorter, OdoError};

/// Low bits of a packed rebuild key carrying the copy's age class
/// (0 = cache, 1 = stash, `i+2` = level `i`); the suppression pass keeps the
/// lowest-priority (newest) copy of every address.
const PRIO_BITS: u32 = 8;
/// Key tag of a filler cell. Fillers pad every bucket to exactly `B`
/// candidates during a rebuild so the compaction that produces the table
/// image is independent of how many real items each bucket drew.
const FILLER_BIT: u64 = 1 << 62;
/// Key tag of a dummy-probe nonce: `DUMMY_PROBE_BIT | access_counter` is
/// distinct from every real address and from every earlier nonce.
const DUMMY_PROBE_BIT: u64 = 1 << 63;
/// Key of a pad cell. Rebuild passes convert every discarded cell (empty
/// client slots, last epoch's fillers, suppressed stale duplicates) into an
/// occupied pad instead of a dummy, so the *occupied count* a sort engine
/// sees is a function of the shape and the flush number alone — the
/// randomized bucket engine sizes its butterfly by that count, and a
/// data-dependent count would leak how many distinct addresses are live.
const PAD_KEY: u64 = 1 << 61;
/// Addresses must fit under the tag bits even after the priority shift.
const MAX_ADDR_BITS: u32 = 48;

#[inline]
fn pack_key(addr: u64, prio: u8) -> u64 {
    (addr << PRIO_BITS) | prio as u64
}

/// Shape and strategy knobs for an [`Oram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OramConfig {
    /// Flush period `P` (a power of two): the client cache is flushed into
    /// the hierarchy every `P` accesses. Level `j` has capacity
    /// `P · 2^(j+1)` cells.
    pub period: usize,
    /// Private client memory `M` in elements available to the rebuild's
    /// sort and compaction passes. Must be at least `8B`.
    pub cache_elems: usize,
    /// Seed for the epoch salts (and the default bucket sorter). Two ORAMs
    /// built with the same seed, shape and request sequence produce the
    /// same trace on any backend.
    pub seed: u64,
    /// The sort engine rebuilds run on. Defaults to the randomized bucket
    /// sort; use [`OblivSorter::Bitonic`] for a fully shape-deterministic
    /// trace (the trace battery does).
    pub sorter: OblivSorter,
}

impl OramConfig {
    /// A config with the default (bucket) sorter seeded from `seed`.
    pub fn new(period: usize, cache_elems: usize, seed: u64) -> Self {
        OramConfig {
            period,
            cache_elems,
            seed,
            sorter: OblivSorter::bucket(splitmix64(seed ^ 0x5EED_0B50)),
        }
    }

    /// Replaces the rebuild sort engine.
    pub fn with_sorter(mut self, sorter: OblivSorter) -> Self {
        self.sorter = sorter;
        self
    }
}

/// One server-held level: a bucket hash table plus its rebuild scratch
/// region, both preallocated at build time so the server-visible address
/// layout never depends on the access history.
struct Level {
    table: ArrayHandle,
    scratch: ArrayHandle,
    cap: usize,
    nb: usize,
    salt: u64,
    occupied: bool,
}

/// The server-side block layout of one level, for trace analysis and
/// benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelGeometry {
    /// Level index (0 = shallowest).
    pub level: usize,
    /// Table capacity in cells (`P · 2^(level+1)`, at least one block).
    pub cap: usize,
    /// Whether the level currently holds a table (probed on access).
    pub occupied: bool,
    /// Global block address of the table's first block.
    pub table_base: usize,
    /// Table size in blocks (`cap / B` buckets).
    pub table_blocks: usize,
    /// Global block address of the rebuild scratch region.
    pub scratch_base: usize,
    /// Scratch size in blocks.
    pub scratch_blocks: usize,
}

/// A hierarchical ORAM client. Generic over any [`BlockStore`] backend —
/// the same instance runs over [`ExtMem`](extmem::ExtMem), a
/// [`FileStore`](extmem::FileStore), an encrypted store or the full
/// authenticated untrusted-server stack.
pub struct Oram {
    n: u64,
    b: usize,
    period: u64,
    cache_elems: usize,
    sorter: OblivSorter,
    client_slots: usize,
    levels: Vec<Level>,
    /// Most-recently-accessed items, newest value per address; at most one
    /// entry is added per access and the cache is drained every `period`.
    cache: Vec<(u64, u64)>,
    /// Reals that overflowed a bucket during a rebuild; re-injected at the
    /// next flush with priority just below the cache.
    stash: Vec<(u64, u64)>,
    accesses: u64,
    flushes: u64,
    rng: u64,
    poisoned: bool,
}

impl Oram {
    /// Builds an ORAM over addresses `0..n` on `store`. Allocates every
    /// level's table and scratch region up front (fresh arrays read as
    /// all-dummy on every backend, so building performs no data I/O) —
    /// the address layout is a function of the shape alone.
    ///
    /// # Panics
    /// If `n` is zero or exceeds `2^48`, `period` is not a power of two,
    /// the store's block size is not a power of two, or
    /// `cache_elems < 8 · B`.
    pub fn new<S: BlockStore>(store: &mut S, n: u64, cfg: &OramConfig) -> Self {
        let b = store.block_elems();
        assert!(n >= 1, "ORAM address space must be non-empty");
        assert!(
            n <= 1 << MAX_ADDR_BITS,
            "ORAM addresses must fit in {MAX_ADDR_BITS} bits"
        );
        assert!(
            cfg.period.is_power_of_two(),
            "ORAM period must be a power of two"
        );
        assert!(
            b.is_power_of_two(),
            "ORAM requires a power-of-two block size"
        );
        assert!(
            cfg.cache_elems >= 8 * b,
            "ORAM rebuilds need cache_elems >= 8 * block size"
        );
        let p = cfg.period;
        // Client capacity: up to `period` cache entries plus stash headroom
        // for bucket overflows, rounded up to whole blocks.
        let client_slots = (2 * p + 8 * b).div_ceil(b) * b;
        // The deepest level must fit every address plus all client state at
        // load factor <= 1/2.
        let need = 2 * (n as usize) + 2 * client_slots;
        let mut l = 1usize;
        while (p << l) < need {
            l += 1;
        }
        assert!(
            l + 2 < (1 << PRIO_BITS),
            "level count exceeds the priority encoding"
        );
        let cap_of = |j: usize| (p << (j + 1)).max(b);
        let mut levels = Vec::with_capacity(l);
        for j in 0..l {
            let cap = cap_of(j);
            let scratch_len = client_slots
                + (0..j).map(&cap_of).sum::<usize>()
                + if j == l - 1 { cap } else { 0 }
                + cap;
            let table = store.alloc_array(cap);
            let scratch = store.alloc_array(scratch_len);
            levels.push(Level {
                table,
                scratch,
                cap,
                nb: cap / b,
                salt: 0,
                occupied: false,
            });
        }
        Oram {
            n,
            b,
            period: p as u64,
            cache_elems: cfg.cache_elems,
            sorter: cfg.sorter,
            client_slots,
            levels,
            cache: Vec::new(),
            stash: Vec::new(),
            accesses: 0,
            flushes: 0,
            rng: splitmix64(cfg.seed ^ 0x0DD0_0A4D),
            poisoned: false,
        }
    }

    /// Reads address `addr`, returning its current value (0 if never
    /// written). Performs the full oblivious access — one bucket probe per
    /// occupied level — and may trigger an amortized rebuild.
    pub fn read<S: BlockStore>(&mut self, store: &mut S, addr: u64) -> u64 {
        self.access(store, addr, None)
    }

    /// Writes `value` to address `addr`. Same trace shape as [`Self::read`]
    /// — the server cannot distinguish reads from writes.
    pub fn write<S: BlockStore>(&mut self, store: &mut S, addr: u64, value: u64) {
        self.access(store, addr, Some(value));
    }

    /// Fallible [`Self::read`] for untrusted/unreliable backends: transient
    /// faults retry per `policy`; tampering and exhausted retries surface
    /// as a typed [`OdoError`] and poison the client (further `try_*` calls
    /// return [`OdoError::InvalidState`] — rebuild the ORAM to recover).
    pub fn try_read<S: BlockStore>(
        &mut self,
        store: &mut S,
        addr: u64,
        policy: RetryPolicy,
    ) -> Result<(u64, RetryStats), OdoError> {
        self.try_access(store, addr, None, policy)
    }

    /// Fallible [`Self::write`]; see [`Self::try_read`] for the contract.
    pub fn try_write<S: BlockStore>(
        &mut self,
        store: &mut S,
        addr: u64,
        value: u64,
        policy: RetryPolicy,
    ) -> Result<RetryStats, OdoError> {
        self.try_access(store, addr, Some(value), policy)
            .map(|(_, stats)| stats)
    }

    fn try_access<S: BlockStore>(
        &mut self,
        store: &mut S,
        addr: u64,
        write: Option<u64>,
        policy: RetryPolicy,
    ) -> Result<(u64, RetryStats), OdoError> {
        if self.poisoned {
            return Err(OdoError::InvalidState {
                reason: "the ORAM client aborted mid-access and its level \
                         state no longer matches the server",
            });
        }
        if addr >= self.n {
            return Err(OdoError::InvalidArgument {
                reason: "ORAM address out of range",
            });
        }
        let (value, stats) = run_fallible(store, policy, |s| self.access(s, addr, write))?;
        Ok((value, stats))
    }

    /// One oblivious access: scan the client, probe one bucket per occupied
    /// level (the requested address until found, a fresh nonce afterwards),
    /// cache the result, and flush every `period` accesses.
    fn access<S: BlockStore>(&mut self, store: &mut S, addr: u64, write: Option<u64>) -> u64 {
        assert!(!self.poisoned, "ORAM client is poisoned");
        assert!(addr < self.n, "ORAM address out of range");
        self.poisoned = true;

        let mut found: Option<u64> = None;
        for &(a, v) in &self.cache {
            if a == addr {
                found = Some(v);
            }
        }
        if found.is_none() {
            for &(a, v) in &self.stash {
                if a == addr {
                    found = Some(v);
                }
            }
        }

        let nonce = DUMMY_PROBE_BIT | self.accesses;
        for lvl in &self.levels {
            if !lvl.occupied {
                continue;
            }
            let probe = if found.is_none() { addr } else { nonce };
            let bucket = bucket_of(hash64(probe, lvl.salt), lvl.nb);
            let blk = store.load_block(&lvl.table, bucket);
            if found.is_none() {
                for e in blk.slots().iter().flatten() {
                    if e.key == addr {
                        found = Some(e.payload);
                    }
                }
            }
            store.recycle(blk);
        }

        let result = found.unwrap_or(0);
        let stored = write.unwrap_or(result);
        match self.cache.iter_mut().find(|(a, _)| *a == addr) {
            Some(slot) => slot.1 = stored,
            None => self.cache.push((addr, stored)),
        }

        self.accesses += 1;
        if self.accesses.is_multiple_of(self.period) {
            self.rebuild(store);
        }
        self.poisoned = false;
        result
    }

    /// Which level flush number `flush` (1-based) rebuilds into: the
    /// binary-counter rule `min(trailing_zeros(flush), levels - 1)`.
    pub fn target_level(flush: u64, levels: usize) -> usize {
        (flush.trailing_zeros() as usize).min(levels - 1)
    }

    /// Rebuilds level `j = target_level(flushes)` from the client state and
    /// every shallower level, as a pure sort+compact pipeline over the
    /// level's scratch region. Every pass reads and writes a fixed,
    /// data-independent block schedule.
    fn rebuild<S: BlockStore>(&mut self, store: &mut S) {
        self.flushes += 1;
        let l = self.levels.len();
        let j = Self::target_level(self.flushes, l);
        let include_self = j == l - 1;
        let b = self.b;
        let m = self.cache_elems;
        let scratch = self.levels[j].scratch;
        let cap = self.levels[j].cap;
        let nb = self.levels[j].nb;

        // Pass 1 — collect. Client items first (cache newest = priority 0,
        // stash = 1), then levels 0..j top-down (priority i+2), keys packed
        // as (addr << PRIO_BITS) | priority. Last epoch's fillers and
        // unused client slots become pads, so the collected occupancy is
        // exactly client_slots plus the consumed tables' capacities. The
        // untouched scratch tail is provably all-dummy (fresh arrays decode
        // as dummies; pass 7 of the previous rebuild left everything past
        // the compacted prefix empty).
        let mut client: Vec<Cell> = Vec::with_capacity(self.client_slots);
        for &(a, v) in &self.cache {
            client.push(Some(Element::new(pack_key(a, 0), v)));
        }
        for &(a, v) in &self.stash {
            client.push(Some(Element::new(pack_key(a, 1), v)));
        }
        assert!(
            client.len() <= self.client_slots,
            "ORAM client state overflowed its slots; increase the period or block size"
        );
        client.resize(self.client_slots, Some(Element::new(PAD_KEY, 0)));
        self.cache.clear();
        self.stash.clear();
        store.store_span(&scratch, 0, &client);

        let mut off = self.client_slots / b;
        for i in 0..j {
            debug_assert!(self.levels[i].occupied, "binary-counter invariant");
            off = self.copy_level_into_scratch(store, i, &scratch, off, (i + 2) as u8);
            self.levels[i].occupied = false;
        }
        if include_self && self.levels[j].occupied {
            off = self.copy_level_into_scratch(store, j, &scratch, off, (j + 2) as u8);
        }
        let _ = off;

        // Pass 2 — sort by packed key: copies of the same address become
        // adjacent, newest (lowest priority) first, dummies last.
        self.sorter.sort_by(store, &scratch, m, &cell_cmp_none_last);

        // Pass 3 — suppress stale duplicates and unpack keys back to bare
        // addresses. Sequential full sweep; every block is written back
        // whether or not it changed.
        let nblocks = scratch.n_blocks();
        hint_block_range(store, &scratch, 0, nblocks);
        let mut last: Option<u64> = None;
        let mut survivors = 0usize;
        for k in 0..nblocks {
            let mut blk = store.load_block(&scratch, k);
            for s in 0..blk.len() {
                let new = match blk.get(s) {
                    // Pads stay occupied so the occupied count cannot leak
                    // the number of live addresses; suppressed stale copies
                    // become pads for the same reason.
                    Some(e) if e.key & PAD_KEY != 0 => Some(Element::new(PAD_KEY, 0)),
                    Some(e) => {
                        let a = e.key >> PRIO_BITS;
                        if last == Some(a) {
                            Some(Element::new(PAD_KEY, 0))
                        } else {
                            last = Some(a);
                            survivors += 1;
                            Some(Element::new(a, e.payload))
                        }
                    }
                    None => None,
                };
                blk.set(s, new);
            }
            store.store_block(&scratch, k, blk);
        }
        debug_assert!(survivors + cap <= scratch.len());

        // Pass 4 — fillers: pad the (all-dummy) scratch tail with exactly B
        // filler cells per destination bucket, so pass 6 can keep exactly B
        // candidates per bucket no matter how many reals each bucket drew.
        let filler_base = (scratch.len() - cap) / b;
        for k in 0..nb {
            let cells: Vec<Cell> = (0..b)
                .map(|_| Some(Element::new(FILLER_BIT | k as u64, 0)))
                .collect();
            store.store_block(&scratch, filler_base + k, Block::from_cells(&cells));
        }

        // Pass 5 — sort by destination bucket under a fresh epoch salt;
        // within a bucket reals sort before fillers, dummies last.
        let salt = self.next_rand();
        let cmp = move |x: &Cell, y: &Cell| -> Ordering {
            let rank = |e: &Element| -> (usize, u8) {
                if e.key & PAD_KEY != 0 {
                    (usize::MAX, 2)
                } else if e.key & FILLER_BIT != 0 {
                    ((e.key & !FILLER_BIT) as usize, 1)
                } else {
                    (bucket_of(hash64(e.key, salt), nb), 0)
                }
            };
            match (x, y) {
                (Some(ex), Some(ey)) => rank(ex).cmp(&rank(ey)),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            }
        };
        self.sorter.sort_by(store, &scratch, m, &cmp);

        // Pass 6 — keep the first B candidates of every bucket (reals
        // preferentially, since they sort first); overflowing reals go to
        // the client stash, surplus fillers and all pads vanish. Fixed
        // sweep, every block written back.
        hint_block_range(store, &scratch, 0, nblocks);
        let mut cur_bucket = usize::MAX;
        let mut kept = 0usize;
        for k in 0..nblocks {
            let mut blk = store.load_block(&scratch, k);
            for s in 0..blk.len() {
                if let Some(e) = blk.get(s) {
                    if e.key & PAD_KEY != 0 {
                        blk.set(s, None);
                        continue;
                    }
                    let (bucket, filler) = if e.key & FILLER_BIT != 0 {
                        ((e.key & !FILLER_BIT) as usize, true)
                    } else {
                        (bucket_of(hash64(e.key, salt), nb), false)
                    };
                    if bucket != cur_bucket {
                        cur_bucket = bucket;
                        kept = 0;
                    }
                    if kept < b {
                        kept += 1;
                    } else {
                        if !filler {
                            self.stash.push((e.key, e.payload));
                        }
                        blk.set(s, None);
                    }
                }
            }
            store.store_block(&scratch, k, blk);
        }

        // Pass 7 — order-preserving compaction. Exactly B kept cells per
        // bucket, in bucket order, so the compacted prefix position of a
        // cell is bucket·B + rank: the prefix IS the new table image.
        let report = compact_order_preserving(store, &scratch, m);
        debug_assert_eq!(
            report.occupied, cap,
            "every bucket must keep exactly B cells"
        );

        // Pass 8 — copy the prefix into the level's table and commit the
        // new epoch.
        let table = self.levels[j].table;
        hint_block_range(store, &scratch, 0, nb);
        for k in 0..nb {
            let blk = store.load_block(&scratch, k);
            store.store_block(&table, k, blk);
        }
        self.levels[j].salt = salt;
        self.levels[j].occupied = true;
    }

    /// Streams level `i`'s table into `scratch` starting at block `off`,
    /// repacking keys with priority `prio` and dropping filler cells.
    /// Returns the next free block offset.
    fn copy_level_into_scratch<S: BlockStore>(
        &self,
        store: &mut S,
        i: usize,
        scratch: &ArrayHandle,
        off: usize,
        prio: u8,
    ) -> usize {
        let table = self.levels[i].table;
        let nb = self.levels[i].nb;
        hint_block_range(store, &table, 0, nb);
        for k in 0..nb {
            let mut blk = store.load_block(&table, k);
            for s in 0..blk.len() {
                let new = match blk.get(s) {
                    // A committed table is always full — B reals+fillers
                    // per bucket — so repacking fillers as pads keeps the
                    // collected occupancy at exactly the table capacity.
                    Some(e) if e.key & FILLER_BIT != 0 => Some(Element::new(PAD_KEY, 0)),
                    Some(e) => Some(Element::new(pack_key(e.key, prio), e.payload)),
                    None => None,
                };
                blk.set(s, new);
            }
            store.store_block(scratch, off + k, blk);
        }
        off + nb
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.rng)
    }

    /// The address-space size `n`.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the address space is empty (never true: `new` requires
    /// `n >= 1`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of levels in the hierarchy.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The flush period `P`.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total flushes (rebuilds) performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Current client stash size (bucket-overflow reals awaiting the next
    /// flush).
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Client slot budget per flush (cache + stash capacity in cells).
    pub fn client_slots(&self) -> usize {
        self.client_slots
    }

    /// The server-side block layout, level by level.
    pub fn geometry(&self) -> Vec<LevelGeometry> {
        self.levels
            .iter()
            .enumerate()
            .map(|(j, lvl)| LevelGeometry {
                level: j,
                cap: lvl.cap,
                occupied: lvl.occupied,
                table_base: lvl.table.global_block(0),
                table_blocks: lvl.table.n_blocks(),
                scratch_base: lvl.scratch.global_block(0),
                scratch_blocks: lvl.scratch.n_blocks(),
            })
            .collect()
    }

    /// Rewrites a captured trace so every probe into a level's table reads
    /// as that table's base block. Which *bucket* a probe hits is the only
    /// data-driven part of an access trace (it is uniformly random under
    /// the epoch salt); after canonicalization, traces of same-length
    /// request sequences are byte-identical under the bitonic engine.
    pub fn canonicalize_trace(&self, trace: &AccessTrace) -> AccessTrace {
        trace
            .iter()
            .map(|ev| {
                let mut addr = ev.addr;
                for lvl in &self.levels {
                    let base = lvl.table.global_block(0);
                    if addr >= base && addr < base + lvl.table.n_blocks() {
                        addr = base;
                        break;
                    }
                }
                AccessEvent { op: ev.op, addr }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extmem::ExtMem;
    use std::collections::HashMap;

    fn small_cfg(seed: u64) -> OramConfig {
        OramConfig::new(8, 64, seed)
    }

    #[test]
    fn reads_and_writes_round_trip_against_a_mirror() {
        let mut store = ExtMem::new(8);
        let n = 64u64;
        let mut oram = Oram::new(&mut store, n, &small_cfg(7));
        let mut mirror: HashMap<u64, u64> = HashMap::new();
        for k in 0..600u64 {
            let addr = hash64(k, 0xACCE55) % n;
            if k % 3 == 0 {
                let v = hash64(k, 0xDA7A) >> 1;
                oram.write(&mut store, addr, v);
                mirror.insert(addr, v);
            } else {
                let got = oram.read(&mut store, addr);
                let want = mirror.get(&addr).copied().unwrap_or(0);
                assert_eq!(got, want, "access {k} addr {addr}");
            }
        }
        assert_eq!(oram.accesses(), 600);
        assert_eq!(oram.flushes(), 75);
    }

    #[test]
    fn unwritten_addresses_read_zero() {
        let mut store = ExtMem::new(8);
        let mut oram = Oram::new(&mut store, 32, &small_cfg(1));
        for addr in 0..32u64 {
            assert_eq!(oram.read(&mut store, addr), 0);
        }
    }

    #[test]
    fn geometry_is_block_aligned_and_geometric() {
        let mut store = ExtMem::new(8);
        let oram = Oram::new(&mut store, 64, &small_cfg(3));
        let geo = oram.geometry();
        assert!(geo.len() >= 2);
        for (j, g) in geo.iter().enumerate() {
            assert_eq!(g.level, j);
            assert_eq!(g.cap % 8, 0);
            assert_eq!(g.table_blocks, g.cap / 8);
            assert!(!g.occupied, "fresh ORAM has no occupied level");
            if j > 0 {
                assert_eq!(g.cap, geo[j - 1].cap * 2, "geometric growth");
            }
        }
        // The deepest level fits the whole address space at load factor
        // 1/2.
        assert!(geo.last().unwrap().cap >= 2 * 64);
    }

    #[test]
    fn target_level_follows_the_binary_counter() {
        assert_eq!(Oram::target_level(1, 4), 0);
        assert_eq!(Oram::target_level(2, 4), 1);
        assert_eq!(Oram::target_level(3, 4), 0);
        assert_eq!(Oram::target_level(4, 4), 2);
        assert_eq!(Oram::target_level(8, 4), 3);
        // Clamped at the deepest level: it rebuilds into itself.
        assert_eq!(Oram::target_level(16, 4), 3);
        assert_eq!(Oram::target_level(24, 4), 3);
    }

    #[test]
    fn bitonic_and_bucket_rebuilds_agree() {
        let n = 64u64;
        let run = |sorter: OblivSorter| -> Vec<u64> {
            let mut store = ExtMem::new(8);
            let mut oram = Oram::new(&mut store, n, &small_cfg(9).with_sorter(sorter));
            for k in 0..300u64 {
                let addr = hash64(k, 0x5E0) % n;
                if k % 2 == 0 {
                    oram.write(&mut store, addr, k + 1);
                } else {
                    oram.read(&mut store, addr);
                }
            }
            (0..n).map(|a| oram.read(&mut store, a)).collect()
        };
        assert_eq!(
            run(OblivSorter::Bitonic),
            run(OblivSorter::bucket(0xB0CCE7))
        );
    }

    #[test]
    fn out_of_range_addresses_are_typed_errors_on_the_try_path() {
        let mut store = ExtMem::new(8);
        let mut oram = Oram::new(&mut store, 16, &small_cfg(2));
        let err = oram
            .try_read(&mut store, 16, RetryPolicy::default())
            .expect_err("address 16 is out of 0..16");
        assert!(matches!(err, OdoError::InvalidArgument { .. }));
        // The client is not poisoned by argument validation.
        let (v, _) = oram
            .try_read(&mut store, 15, RetryPolicy::default())
            .unwrap();
        assert_eq!(v, 0);
    }
}
