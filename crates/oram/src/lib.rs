//! # odo-oram — oblivious RAM constructions (placeholder)
//!
//! The paper's simulation results (Theorems 9–11) build ORAMs from the
//! oblivious sorting and compaction primitives; this crate hosts them when
//! the simulation PRs land. For now it only pins the workspace member and
//! its dependency on the machine model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Re-exported so the dependency is exercised and the crate graph stays
// honest until the real implementation lands.
pub use extmem::ExtMem;
