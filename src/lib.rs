pub use odo_core as core_alg;
