//! # odo — data-oblivious external-memory algorithms for outsourced data
//!
//! Rust reproduction of Goodrich's SPAA 2011 paper *"Data-Oblivious
//! External-Memory Algorithms for the Compaction, Selection, and Sorting of
//! Outsourced Data"* — all three title primitives. The root crate is a thin
//! façade: the machine model lives in `odo-extmem`, the sorting networks and
//! the external oblivious sort in `odo-obliv-net`, the §3 external butterfly
//! compaction (and its reverse, expansion) in `odo-core::compact`, the §4
//! selection and quantiles in `odo-core::select`, the hierarchical ORAM
//! built from those primitives in `odo-oram`, naive baselines in
//! `odo-baseline`, and the I/O-count benchmark harness in `odo-bench`
//! (binary: `odo-bench`, emitting `BENCH_sort.json`, `BENCH_compact.json`,
//! `BENCH_select.json`, `BENCH_faults.json` and `BENCH_oram.json`).
//!
//! The server is modeled as *untrusted*, not merely curious: wrap any store
//! in `extmem::AuthenticatedStore` and use the fallible `try_sort` /
//! `try_compact` / `try_select_kth` façades, and corruption or rollback by
//! the server surfaces as a typed `Err(Corrupted | Stale)` — never as
//! silently wrong data — while transient failures are retried on a
//! data-independent schedule. The fault model, the store layering and the
//! toy-crypto substitution table are documented in `DESIGN.md` at the
//! workspace root.
//!
//! See `examples/quickstart.rs` for a five-line tour, including tamper
//! detection against a corrupting server.

#![forbid(unsafe_code)]

pub use odo_core as core_alg;

pub use baseline as baseline_alg;
pub use oram as oram_sim;

/// One-stop imports: everything `odo_core::prelude` exports plus the
/// hierarchical ORAM client.
pub mod prelude {
    pub use odo_core::prelude::*;
    pub use oram::{LevelGeometry, Oram, OramConfig};
}
