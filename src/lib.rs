//! # odo — data-oblivious external-memory algorithms for outsourced data
//!
//! Rust reproduction of Goodrich's SPAA 2011 paper *"Data-Oblivious
//! External-Memory Algorithms for the Compaction, Selection, and Sorting of
//! Outsourced Data"* — all three title primitives. The root crate is a thin
//! façade: the machine model lives in `odo-extmem`, the sorting networks and
//! the external oblivious sort in `odo-obliv-net`, the §3 external butterfly
//! compaction (and its reverse, expansion) in `odo-core::compact`, the §4
//! selection and quantiles in `odo-core::select`, naive baselines in
//! `odo-baseline`, and the I/O-count benchmark harness in `odo-bench`
//! (binary: `odo-bench`, emitting `BENCH_sort.json`, `BENCH_compact.json`
//! and `BENCH_select.json`).
//!
//! See `examples/quickstart.rs` for a five-line tour.

#![forbid(unsafe_code)]

pub use odo_core as core_alg;

pub use baseline as baseline_alg;
pub use odo_core::prelude;
